"""The mini-VPR CAD substrate: packing, placement, routing, MCW, flow driver."""

from repro.cad.pack import ClbInst, PackedDesign, PadInst, pack
from repro.cad.place import Placement, place
from repro.cad.route import (
    PathFinderRouter,
    RouteTree,
    RoutingResult,
    net_terminals,
    route_design,
)
from repro.cad.mcw import McwResult, find_mcw
from repro.cad.flow import (
    FlowResult,
    required_logic_size,
    required_pad_ring,
    run_flow,
)
from repro.cad.analysis import RoutingReport, analyze_routing, logic_depth

__all__ = [
    "ClbInst",
    "PackedDesign",
    "PadInst",
    "pack",
    "Placement",
    "place",
    "PathFinderRouter",
    "RouteTree",
    "RoutingResult",
    "net_terminals",
    "route_design",
    "McwResult",
    "find_mcw",
    "FlowResult",
    "required_logic_size",
    "required_pad_ring",
    "run_flow",
    "RoutingReport",
    "analyze_routing",
    "logic_depth",
]
