"""The offline CAD flow of the paper's Figure 3, minus the VBS backend.

``run_flow`` drives netlist legalization (LUT mapping), packing, fabric
sizing, placement and routing, producing a :class:`FlowResult` that the
bitstream generators (raw and Virtual Bit-Stream) consume.  It plays the
role VTR/VPR plays in the paper; ``vbsgen`` (``repro.vbs``) sits on top of
its output exactly as described in Section III-B.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Optional

from repro.arch.fabric import FabricArch
from repro.arch.params import ArchParams
from repro.arch.rrg import RoutingGraph, routing_graph_for
from repro.cad.pack import PackedDesign, pack
from repro.cad.place import Placement, place
from repro.cad.route import RoutingResult, route_design
from repro.errors import PlacementError
from repro.netlist.lutmap import map_to_luts
from repro.netlist.model import Netlist


@dataclass
class FlowResult:
    """Everything produced by one end-to-end CAD run."""

    netlist: Netlist
    design: PackedDesign
    fabric: FabricArch
    placement: Placement
    routing: RoutingResult
    rrg: RoutingGraph
    elapsed_s: float

    @property
    def params(self) -> ArchParams:
        return self.fabric.params

    def summary(self) -> str:
        s = self.design.stats()
        return (
            f"{self.netlist.name}: {s['clbs']} CLBs / {s['pads']} pads on "
            f"{self.fabric.width}x{self.fabric.height} fabric, "
            f"W={self.params.channel_width}, "
            f"{len(self.routing.trees)} nets routed in "
            f"{self.routing.iterations} iterations, "
            f"wirelength {self.routing.total_wirelength}"
        )


def required_logic_size(n_clbs: int) -> int:
    """Smallest square logic core holding ``n_clbs`` blocks (VPR auto-size)."""
    return max(1, math.ceil(math.sqrt(max(1, n_clbs))))


def required_pad_ring(n_pads: int, pads_per_cell: int = 2) -> int:
    """Smallest logic size whose IOB ring offers ``n_pads`` sub-sites.

    An island fabric of logic size ``n`` has ``4n + 4`` ring cells.
    """
    cells = math.ceil(n_pads / pads_per_cell)
    return max(1, math.ceil((cells - 4) / 4))


def run_flow(
    netlist: Netlist,
    params: Optional[ArchParams] = None,
    logic_size: Optional[int] = None,
    seed: int = 0,
    place_inner_num: float = 0.5,
    place_fast: bool = False,
    router_kwargs: Optional[dict] = None,
) -> FlowResult:
    """Run synthesis-to-routing for ``netlist`` on an island fabric.

    ``logic_size`` defaults to the smallest square that fits both the packed
    logic blocks and the pad ring, mirroring VPR's automatic grid sizing.
    """
    t0 = time.perf_counter()
    params = params or ArchParams()

    mapped = map_to_luts(netlist, params.lut_size)
    design = pack(mapped, params.lut_size)

    min_size = max(
        required_logic_size(design.num_clbs),
        required_pad_ring(design.num_pads),
    )
    if logic_size is None:
        logic_size = min_size
    elif logic_size < min_size:
        raise PlacementError(
            f"{netlist.name}: logic size {logic_size} too small "
            f"(needs {min_size})"
        )

    fabric = FabricArch.island(params, logic_size)
    placement = place(
        design, fabric, seed=seed, inner_num=place_inner_num, fast=place_fast
    )
    rrg = routing_graph_for(fabric)
    routing = route_design(design, placement, rrg, **(router_kwargs or {}))
    return FlowResult(
        netlist=netlist,
        design=design,
        fabric=fabric,
        placement=placement,
        routing=routing,
        rrg=rrg,
        elapsed_s=time.perf_counter() - t0,
    )
