"""Simulated-annealing placement (the VPR placer of the paper's flow).

Blocks are assigned to fabric sites — CLBs to interior cells, pads to IOB
perimeter sub-sites — minimizing the classic half-perimeter wirelength
(HPWL) objective with the adaptive VPR annealing schedule: the temperature
multiplier and the move-range window both react to the acceptance rate.

The placer is deterministic for a given (design, fabric, seed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.arch.fabric import FabricArch
from repro.cad.pack import PackedDesign
from repro.errors import PlacementError
from repro.utils.rng import make_rng

Site = Tuple[int, int, int]  # (x, y, sub-site)


@dataclass
class Placement:
    """Result of placement: every instance bound to a fabric site."""

    design: PackedDesign
    fabric: FabricArch
    locations: Dict[str, Site]
    cost: float
    seed: int

    def site_of(self, inst: str) -> Site:
        try:
            return self.locations[inst]
        except KeyError:
            raise PlacementError(f"instance {inst} was never placed")

    def cell_of(self, inst: str) -> Tuple[int, int]:
        x, y, _sub = self.site_of(inst)
        return x, y

    def hpwl(self) -> float:
        """Total half-perimeter wirelength over all nets."""
        total = 0.0
        for use in self.design.nets.values():
            xs: List[int] = []
            ys: List[int] = []
            for inst, _port in [use.driver] + use.sinks:
                x, y, _ = self.locations[inst]
                xs.append(x)
                ys.append(y)
            total += (max(xs) - min(xs)) + (max(ys) - min(ys))
        return total


class _Annealer:
    """Internal annealing engine (split out for testability)."""

    def __init__(self, design: PackedDesign, fabric: FabricArch, seed: int):
        self.design = design
        self.fabric = fabric
        self.rng = make_rng(seed)

        self.clb_sites: List[Site] = [
            (p.x, p.y, 0) for p in fabric.cells_of_type("clb")
        ]
        iob_cap = fabric.block_types["iob"].capacity
        self.pad_sites: List[Site] = [
            (p.x, p.y, k)
            for p in fabric.cells_of_type("iob")
            for k in range(iob_cap)
        ]
        if len(self.clb_sites) < design.num_clbs:
            raise PlacementError(
                f"{design.num_clbs} CLBs do not fit {len(self.clb_sites)} "
                f"logic sites"
            )
        if len(self.pad_sites) < design.num_pads:
            raise PlacementError(
                f"{design.num_pads} pads do not fit {len(self.pad_sites)} "
                f"IOB sub-sites"
            )

        self.insts: List[str] = [c.name for c in design.clbs] + [
            p.name for p in design.pads
        ]
        self.is_pad: Dict[str, bool] = {c.name: False for c in design.clbs}
        self.is_pad.update({p.name: True for p in design.pads})

        # Nets indexed for incremental cost evaluation.
        self.nets = list(design.nets.values())
        self.nets_of: Dict[str, List[int]] = {name: [] for name in self.insts}
        self.net_pins: List[List[str]] = []
        for ni, use in enumerate(self.nets):
            pins = [use.driver[0]] + [s[0] for s in use.sinks]
            self.net_pins.append(pins)
            for inst in set(pins):
                self.nets_of[inst].append(ni)

        self.loc: Dict[str, Site] = {}
        self.occupant: Dict[Site, Optional[str]] = {}

    # -- cost ----------------------------------------------------------------------

    def _net_hpwl(self, ni: int) -> float:
        xs: List[int] = []
        ys: List[int] = []
        for inst in self.net_pins[ni]:
            x, y, _ = self.loc[inst]
            xs.append(x)
            ys.append(y)
        return float((max(xs) - min(xs)) + (max(ys) - min(ys)))

    def total_cost(self) -> float:
        return sum(self._net_hpwl(ni) for ni in range(len(self.nets)))

    # -- moves ---------------------------------------------------------------------

    def _initial_place(self) -> None:
        clb_sites = self.clb_sites[:]
        pad_sites = self.pad_sites[:]
        self.rng.shuffle(clb_sites)
        self.rng.shuffle(pad_sites)
        for site in clb_sites + pad_sites:
            self.occupant[site] = None
        for clb, site in zip(self.design.clbs, clb_sites):
            self.loc[clb.name] = site
            self.occupant[site] = clb.name
        for pad, site in zip(self.design.pads, pad_sites):
            self.loc[pad.name] = site
            self.occupant[site] = pad.name

    def _candidate_site(self, inst: str, rlim: float) -> Site:
        """A random same-type site within the ``rlim`` window of ``inst``."""
        x0, y0, _ = self.loc[inst]
        r = max(1, int(rlim))
        if not self.is_pad[inst]:
            # Interior logic cells form a dense grid: sample coordinates
            # directly instead of rejection-sampling the site pool.
            lo_x, hi_x = 1, self.fabric.width - 2
            lo_y, hi_y = 1, self.fabric.height - 2
            for _attempt in range(4):
                x = min(max(x0 + self.rng.randint(-r, r), lo_x), hi_x)
                y = min(max(y0 + self.rng.randint(-r, r), lo_y), hi_y)
                if self.fabric.type_name_at(x, y) == "clb":
                    return (x, y, 0)
            pool = self.clb_sites
            return pool[self.rng.randrange(len(pool))]
        # Pads live on the perimeter ring; the pool is small, so windowed
        # rejection sampling with a uniform fallback is cheap enough.
        pool = self.pad_sites
        for _attempt in range(8):
            site = pool[self.rng.randrange(len(pool))]
            if abs(site[0] - x0) <= r and abs(site[1] - y0) <= r:
                return site
        return pool[self.rng.randrange(len(pool))]

    def _delta_cost(self, moved: List[str]) -> Tuple[float, List[int], List[float]]:
        touched: List[int] = sorted(
            {ni for inst in moved for ni in self.nets_of[inst]}
        )
        new_vals = [self._net_hpwl(ni) for ni in touched]
        delta = sum(new_vals) - sum(self.net_cost[ni] for ni in touched)
        return delta, touched, new_vals

    def _try_move(self, temperature: float, rlim: float) -> bool:
        inst = self.insts[self.rng.randrange(len(self.insts))]
        old_site = self.loc[inst]
        new_site = self._candidate_site(inst, rlim)
        if new_site == old_site:
            return False
        other = self.occupant[new_site]

        # Apply tentatively (swap when the target is occupied).
        self.loc[inst] = new_site
        self.occupant[new_site] = inst
        self.occupant[old_site] = other
        moved = [inst]
        if other is not None:
            self.loc[other] = old_site
            moved.append(other)

        delta, touched, new_vals = self._delta_cost(moved)
        accept = delta <= 0 or (
            temperature > 0
            and self.rng.random() < pow(2.718281828, -delta / temperature)
        )
        if accept:
            for ni, val in zip(touched, new_vals):
                self.net_cost[ni] = val
            self.cost += delta
            return True
        # Revert.
        self.loc[inst] = old_site
        self.occupant[old_site] = inst
        self.occupant[new_site] = other
        if other is not None:
            self.loc[other] = new_site
        return False

    # -- schedule ------------------------------------------------------------------

    def anneal(self, inner_num: float, fast: bool) -> None:
        self._initial_place()
        self.net_cost: List[float] = [
            self._net_hpwl(ni) for ni in range(len(self.nets))
        ]
        self.cost = sum(self.net_cost)

        n_mov = len(self.insts)
        if n_mov <= 1 or not self.nets:
            return

        moves_per_t = max(64, int(inner_num * (n_mov ** (4.0 / 3.0))))
        if fast:
            moves_per_t = max(64, moves_per_t // 4)

        # Starting temperature: VPR uses 20x the stddev of random-move deltas;
        # probing with accepted random moves gives the same scale.
        probe = min(moves_per_t, 10 * n_mov)
        deltas: List[float] = []
        for _ in range(probe):
            before = self.cost
            self._try_move(float("inf"), max(self.fabric.width, self.fabric.height))
            deltas.append(self.cost - before)
        if len(deltas) > 1:
            mean = sum(deltas) / len(deltas)
            var = sum((d - mean) ** 2 for d in deltas) / (len(deltas) - 1)
            temperature = 20.0 * (var ** 0.5)
        else:
            temperature = 1.0
        temperature = max(temperature, 1e-3)

        rlim = float(max(self.fabric.width, self.fabric.height))
        exit_t_per_net = 0.005
        while True:
            accepted = 0
            for _ in range(moves_per_t):
                if self._try_move(temperature, rlim):
                    accepted += 1
            racc = accepted / moves_per_t
            # VPR adaptive cooling.
            if racc > 0.96:
                alpha = 0.5
            elif racc > 0.8:
                alpha = 0.9
            elif racc > 0.15:
                alpha = 0.95
            else:
                alpha = 0.8
            temperature *= alpha
            rlim = min(
                max(1.0, rlim * (1.0 - 0.44 + racc)),
                float(max(self.fabric.width, self.fabric.height)),
            )
            if temperature < exit_t_per_net * self.cost / max(1, len(self.nets)):
                break

        # Final greedy pass (temperature 0).
        for _ in range(moves_per_t):
            self._try_move(0.0, rlim)


def place(
    design: PackedDesign,
    fabric: FabricArch,
    seed: int = 0,
    inner_num: float = 0.5,
    fast: bool = False,
) -> Placement:
    """Place ``design`` on ``fabric`` with simulated annealing.

    ``inner_num`` scales moves per temperature step (VPR's ``-inner_num``);
    ``fast`` quarters it for quick experiments.
    """
    engine = _Annealer(design, fabric, seed)
    engine.anneal(inner_num, fast)
    return Placement(design, fabric, dict(engine.loc), engine.cost, seed)
