"""Minimum-channel-width (MCW) search, the Table II metric.

VPR characterizes a circuit by the smallest ``W`` at which routing succeeds;
the paper reports that value per benchmark and then *normalizes all
experiments to W = 20* so bit-stream sizes are comparable.  This module
reproduces the search: exponential probing up from a lower bound followed by
binary refinement, rebuilding the RRG at each width.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.arch.fabric import FabricArch
from repro.arch.params import ArchParams
from repro.arch.rrg import routing_graph_for
from repro.cad.pack import PackedDesign
from repro.cad.place import Placement, place
from repro.cad.route import PathFinderRouter, RoutingResult, net_terminals
from repro.errors import UnroutableError


@dataclass
class McwResult:
    """Outcome of the search: the MCW and the routing obtained there."""

    mcw: int
    routing: RoutingResult
    attempts: Dict[int, bool]  # width -> routable?


def _attempt(
    design: PackedDesign,
    placement: Placement,
    params: ArchParams,
    width: int,
    max_iterations: int,
) -> Optional[RoutingResult]:
    """Try routing at ``width`` reusing the existing placement."""
    fabric = FabricArch(
        ArchParams(
            channel_width=width,
            lut_size=params.lut_size,
            chanx_pins=params.chanx_pins,
            chany_pins=params.chany_pins,
        ),
        placement.fabric.width,
        placement.fabric.height,
        {(p.x, p.y): placement.fabric.type_name_at(p.x, p.y)
         for p in placement.fabric.cells()},
    )
    # The fabric-keyed cache makes repeated attempts at one width (and
    # any later flow at the same arch point) reuse a single graph.
    rrg = routing_graph_for(fabric)
    relocated = Placement(
        design, fabric, placement.locations, placement.cost, placement.seed
    )
    try:
        terminals = net_terminals(design, relocated, rrg)
        router = PathFinderRouter(rrg, max_iterations=max_iterations)
        return router.route(terminals)
    except UnroutableError:
        return None


def find_mcw(
    design: PackedDesign,
    fabric: FabricArch,
    placement: Optional[Placement] = None,
    w_min: int = 2,
    w_max: int = 64,
    max_iterations: int = 25,
    seed: int = 0,
) -> McwResult:
    """Find the minimum routable channel width for a placed design.

    The placement is computed once (at the given fabric's width) and reused
    across widths, as VPR does in its default binary search.
    """
    params = fabric.params
    if placement is None:
        placement = place(design, fabric, seed=seed)

    attempts: Dict[int, bool] = {}

    # Exponential probe upward for the first routable width.
    width = max(w_min, 2)
    best: Optional[RoutingResult] = None
    best_w = None
    while width <= w_max:
        result = _attempt(design, placement, params, width, max_iterations)
        attempts[width] = result is not None
        if result is not None:
            best, best_w = result, width
            break
        width *= 2
    if best is None or best_w is None:
        raise UnroutableError(
            f"{design.name}: unroutable even at W={w_max}"
        )

    # Binary refinement between the last failure and the success.
    lo = max(w_min, best_w // 2 + 1) if best_w > w_min else w_min
    hi = best_w
    while lo < hi:
        mid = (lo + hi) // 2
        result = _attempt(design, placement, params, mid, max_iterations)
        attempts[mid] = result is not None
        if result is not None:
            best, hi = result, mid
        else:
            lo = mid + 1
    return McwResult(hi, best, attempts)
