"""Negotiated-congestion (PathFinder) routing on the track-level RRG.

This is the router of the paper's VPR stage: every net becomes a tree over
routing-resource nodes (track wires and pin lines, each of capacity 1).
Nets are routed with multi-source A* from the growing tree to each sink;
congestion is resolved across iterations by PathFinder's present-sharing and
history costs.  The result is exact single-occupancy of every wire, which
guarantees the junction-level expansion (``repro.bitstream.expand``) can
realize the configuration without electrical shorts.

Determinism: net order, sink order, neighbour order and heap tie-breaks are
all fixed, so a given (design, placement, seed) always yields the same
routing — a property the Virtual Bit-Stream feedback loop relies on.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.arch.blocktype import IOB_PAD_PORTS
from repro.arch.rrg import RoutingGraph
from repro.cad.pack import PackedDesign
from repro.cad.place import Placement
from repro.errors import RoutingError, UnroutableError
from repro.utils.geometry import Rect


@dataclass
class RouteTree:
    """The routed realization of one net.

    ``parent`` maps every non-source node of the tree to its predecessor on
    the path toward the source (a directed tree rooted at ``source``).
    """

    net: str
    source: int
    sinks: List[int]
    parent: Dict[int, int] = field(default_factory=dict)

    @property
    def nodes(self) -> List[int]:
        return [self.source] + list(self.parent.keys())

    def children_map(self) -> Dict[int, List[int]]:
        """Source-rooted adjacency (children per node, ascending ids)."""
        kids: Dict[int, List[int]] = {}
        for child, par in self.parent.items():
            kids.setdefault(par, []).append(child)
        for lst in kids.values():
            lst.sort()
        return kids

    def wirelength(self) -> int:
        """Number of routing nodes used beyond the source."""
        return len(self.parent)


@dataclass
class RoutingResult:
    """All route trees plus convergence statistics."""

    trees: Dict[str, RouteTree]
    channel_width: int
    iterations: int
    total_wirelength: int
    max_occupancy: int

    def tree_of(self, net: str) -> RouteTree:
        try:
            return self.trees[net]
        except KeyError:
            raise RoutingError(f"net {net} was not routed")


def net_terminals(
    design: PackedDesign, placement: Placement, rrg: RoutingGraph
) -> Dict[str, Tuple[int, List[int]]]:
    """Resolve each net to (source node, sink nodes) on the RRG.

    CLB port ``in{i}`` sits on macro pin line ``i`` and ``out`` on line ``K``;
    pad ports go through the IOB block type's pad-to-pin-line binding.
    """
    fabric = placement.fabric
    iob = fabric.block_types["iob"]
    clbs = design.clb_by_name()
    pads = design.pad_by_name()

    def pin_node(inst: str, port: str) -> int:
        x, y, sub = placement.site_of(inst)
        if inst in clbs:
            macro_pin = (
                design.lut_size if port == "out" else int(port[2:])
            )
        elif inst in pads:
            port_name = IOB_PAD_PORTS[sub][port]
            macro_pin = iob.port(port_name).macro_pin
        else:
            raise RoutingError(f"unknown instance {inst}")
        return rrg.line(x, y, macro_pin)

    terminals: Dict[str, Tuple[int, List[int]]] = {}
    for name, use in design.nets.items():
        src = pin_node(*use.driver)
        sinks = [pin_node(inst, port) for inst, port in use.sinks]
        # A sink pin equal to the source pin would be a degenerate loop.
        sinks = [s for s in sinks if s != src]
        if sinks:
            terminals[name] = (src, sorted(set(sinks)))
    return terminals


class PathFinderRouter:
    """Iterative rip-up-and-reroute engine over one RoutingGraph."""

    def __init__(
        self,
        rrg: RoutingGraph,
        max_iterations: int = 40,
        pres_fac_first: float = 0.6,
        pres_fac_mult: float = 1.5,
        hist_fac: float = 0.4,
        astar_fac: float = 1.2,
        bb_margin: int = 3,
    ):
        self.rrg = rrg
        self.max_iterations = max_iterations
        self.pres_fac_first = pres_fac_first
        self.pres_fac_mult = pres_fac_mult
        self.hist_fac = hist_fac
        self.astar_fac = astar_fac
        self.bb_margin = bb_margin

        # Per-node state is sparse: dicts keyed by node id, populated
        # only for nodes the search actually touches.  Construction is
        # O(1) and routing memory scales with the explored region, not
        # the fabric — the property that makes giant fabrics (via the
        # tile-pattern RRG, which has no CSR to copy) routable at all.
        self._per_cell = rrg.per_cell
        self._width = rrg.fabric.width
        self._adj: Dict[int, List[int]] = {}
        self._occ: Dict[int, int] = {}
        self._hist: Dict[int, float] = {}

    def _node_xy(self, node: int) -> Tuple[int, int]:
        cell = node // self._per_cell
        y, x = divmod(cell, self._width)
        return x, y

    # -- single-net routing ------------------------------------------------------

    def _route_net(
        self,
        source: int,
        sinks: Sequence[int],
        pres_fac: float,
        bbox: Rect,
    ) -> Optional[Dict[int, int]]:
        """Route one net; returns the parent map or None when stuck."""
        adj = self._adj
        neighbor_list = self.rrg.neighbor_list
        occ_get = self._occ.get
        hist_get = self._hist.get
        hist_fac, astar_fac = self.hist_fac, self.astar_fac
        per_cell, width = self._per_cell, self._width

        tree_nodes: List[int] = [source]
        tree_set = {source}
        parent: Dict[int, int] = {}

        src_x, src_y = self._node_xy(source)

        def dist_to_source(s: int) -> int:
            x, y = self._node_xy(s)
            return abs(x - src_x) + abs(y - src_y)

        # Farthest sink first grows a trunk the others can reuse.
        order = sorted(sinks, key=lambda s: (-dist_to_source(s), s))
        for sink in order:
            sx, sy = self._node_xy(sink)
            # Fresh per-search maps: cost-to-come and predecessor exist
            # only for visited nodes (the epoch-array reset, made sparse).
            gbest: Dict[int, float] = {}
            came: Dict[int, int] = {}
            heap: List[Tuple[float, float, int]] = []
            for node in tree_nodes:
                x, y = self._node_xy(node)
                h = astar_fac * (abs(x - sx) + abs(y - sy))
                gbest[node] = 0.0
                came[node] = -1
                heap.append((h, 0.0, node))
            heapq.heapify(heap)

            found = False
            while heap:
                f, g, node = heapq.heappop(heap)
                if node == sink:
                    found = True
                    break
                if g > gbest[node]:
                    continue  # stale entry
                nbs = adj.get(node)
                if nbs is None:
                    nbs = adj[node] = neighbor_list(node)
                for nb in nbs:
                    cell = nb // per_cell
                    by = cell // width
                    bx = cell - by * width
                    if not (
                        bbox.x <= bx < bbox.x2 and bbox.y <= by < bbox.y2
                    ):
                        continue
                    # Congestion-aware node cost (capacity 1 everywhere).
                    over = occ_get(nb, 0)
                    cost = (1.0 + hist_fac * hist_get(nb, 0.0)) * (
                        1.0 + pres_fac * over
                    )
                    ng = g + cost
                    old = gbest.get(nb)
                    if old is not None and old <= ng:
                        continue
                    gbest[nb] = ng
                    came[nb] = node
                    h = astar_fac * (abs(bx - sx) + abs(by - sy))
                    heapq.heappush(heap, (ng + h, ng, nb))

            if not found:
                return None

            # Walk back from the sink to the existing tree (tree nodes were
            # seeded with came == -1, so the walk stops there) and graft the
            # new branch.
            node = sink
            while came[node] != -1:
                parent[node] = came[node]
                if node not in tree_set:
                    tree_set.add(node)
                    tree_nodes.append(node)
                node = came[node]
            if sink not in tree_set:
                tree_set.add(sink)
                tree_nodes.append(sink)

        return parent

    # -- full design routing -------------------------------------------------------

    def route(
        self,
        terminals: Dict[str, Tuple[int, List[int]]],
        full_bbox_retry: bool = True,
    ) -> RoutingResult:
        """Route every net to zero overuse or raise :class:`UnroutableError`."""
        rrg = self.rrg
        fabric_box = Rect(0, 0, rrg.fabric.width, rrg.fabric.height)
        names = sorted(terminals)
        trees: Dict[str, RouteTree] = {}
        occ = self._occ
        hist = self._hist

        def net_bbox(name: str, margin: int) -> Rect:
            src, sinks = terminals[name]
            pts = [self._node_xy(n) for n in [src] + list(sinks)]
            return Rect.spanning(pts).expanded(margin, fabric_box)

        pres_fac = self.pres_fac_first
        for iteration in range(1, self.max_iterations + 1):
            margin = self.bb_margin + 2 * (iteration - 1)
            for name in names:
                src, sinks = terminals[name]
                tree = trees.get(name)
                if tree is not None:
                    if all(occ.get(n, 0) <= 1 for n in tree.nodes):
                        continue  # keep conflict-free nets as they are
                    for n in tree.nodes:
                        occ[n] -= 1
                parent = self._route_net(src, sinks, pres_fac, net_bbox(name, margin))
                if parent is None and full_bbox_retry:
                    parent = self._route_net(src, sinks, pres_fac, fabric_box)
                if parent is None:
                    raise UnroutableError(
                        f"net {name}: no path at W={rrg.W} "
                        f"(iteration {iteration})"
                    )
                tree = RouteTree(name, src, list(sinks), parent)
                trees[name] = tree
                for n in tree.nodes:
                    occ[n] = occ.get(n, 0) + 1

            over_nodes = [n for n, o in occ.items() if o > 1]
            if not over_nodes:
                wl = sum(t.wirelength() for t in trees.values())
                return RoutingResult(
                    trees, rrg.W, iteration, wl,
                    max(occ.values(), default=0),
                )
            for n in over_nodes:
                hist[n] = hist.get(n, 0.0) + occ[n] - 1
            pres_fac *= self.pres_fac_mult

        raise UnroutableError(
            f"congestion unresolved after {self.max_iterations} iterations "
            f"at W={rrg.W} "
            f"({sum(1 for o in occ.values() if o > 1)} overused nodes)"
        )


def route_design(
    design: PackedDesign,
    placement: Placement,
    rrg: RoutingGraph,
    **router_kwargs,
) -> RoutingResult:
    """Convenience wrapper: terminals + PathFinder in one call."""
    terminals = net_terminals(design, placement, rrg)
    router = PathFinderRouter(rrg, **router_kwargs)
    return router.route(terminals)
