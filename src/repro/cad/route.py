"""Negotiated-congestion (PathFinder) routing on the track-level RRG.

This is the router of the paper's VPR stage: every net becomes a tree over
routing-resource nodes (track wires and pin lines, each of capacity 1).
Nets are routed with multi-source A* from the growing tree to each sink;
congestion is resolved across iterations by PathFinder's present-sharing and
history costs.  The result is exact single-occupancy of every wire, which
guarantees the junction-level expansion (``repro.bitstream.expand``) can
realize the configuration without electrical shorts.

Determinism: net order, sink order, neighbour order and heap tie-breaks are
all fixed, so a given (design, placement, seed) always yields the same
routing — a property the Virtual Bit-Stream feedback loop relies on.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.arch.blocktype import IOB_PAD_PORTS
from repro.arch.rrg import RoutingGraph
from repro.cad.pack import PackedDesign
from repro.cad.place import Placement
from repro.errors import RoutingError, UnroutableError
from repro.utils.geometry import Rect


@dataclass
class RouteTree:
    """The routed realization of one net.

    ``parent`` maps every non-source node of the tree to its predecessor on
    the path toward the source (a directed tree rooted at ``source``).
    """

    net: str
    source: int
    sinks: List[int]
    parent: Dict[int, int] = field(default_factory=dict)

    @property
    def nodes(self) -> List[int]:
        return [self.source] + list(self.parent.keys())

    def children_map(self) -> Dict[int, List[int]]:
        """Source-rooted adjacency (children per node, ascending ids)."""
        kids: Dict[int, List[int]] = {}
        for child, par in self.parent.items():
            kids.setdefault(par, []).append(child)
        for lst in kids.values():
            lst.sort()
        return kids

    def wirelength(self) -> int:
        """Number of routing nodes used beyond the source."""
        return len(self.parent)


@dataclass
class RoutingResult:
    """All route trees plus convergence statistics."""

    trees: Dict[str, RouteTree]
    channel_width: int
    iterations: int
    total_wirelength: int
    max_occupancy: int

    def tree_of(self, net: str) -> RouteTree:
        try:
            return self.trees[net]
        except KeyError:
            raise RoutingError(f"net {net} was not routed")


def net_terminals(
    design: PackedDesign, placement: Placement, rrg: RoutingGraph
) -> Dict[str, Tuple[int, List[int]]]:
    """Resolve each net to (source node, sink nodes) on the RRG.

    CLB port ``in{i}`` sits on macro pin line ``i`` and ``out`` on line ``K``;
    pad ports go through the IOB block type's pad-to-pin-line binding.
    """
    fabric = placement.fabric
    iob = fabric.block_types["iob"]
    clbs = design.clb_by_name()
    pads = design.pad_by_name()

    def pin_node(inst: str, port: str) -> int:
        x, y, sub = placement.site_of(inst)
        if inst in clbs:
            macro_pin = (
                design.lut_size if port == "out" else int(port[2:])
            )
        elif inst in pads:
            port_name = IOB_PAD_PORTS[sub][port]
            macro_pin = iob.port(port_name).macro_pin
        else:
            raise RoutingError(f"unknown instance {inst}")
        return rrg.line(x, y, macro_pin)

    terminals: Dict[str, Tuple[int, List[int]]] = {}
    for name, use in design.nets.items():
        src = pin_node(*use.driver)
        sinks = [pin_node(inst, port) for inst, port in use.sinks]
        # A sink pin equal to the source pin would be a degenerate loop.
        sinks = [s for s in sinks if s != src]
        if sinks:
            terminals[name] = (src, sorted(set(sinks)))
    return terminals


class PathFinderRouter:
    """Iterative rip-up-and-reroute engine over one RoutingGraph."""

    def __init__(
        self,
        rrg: RoutingGraph,
        max_iterations: int = 40,
        pres_fac_first: float = 0.6,
        pres_fac_mult: float = 1.5,
        hist_fac: float = 0.4,
        astar_fac: float = 1.2,
        bb_margin: int = 3,
    ):
        self.rrg = rrg
        self.max_iterations = max_iterations
        self.pres_fac_first = pres_fac_first
        self.pres_fac_mult = pres_fac_mult
        self.hist_fac = hist_fac
        self.astar_fac = astar_fac
        self.bb_margin = bb_margin

        n = rrg.num_nodes
        self._indptr: List[int] = rrg.indptr.tolist()
        self._nbrs: List[int] = rrg.nbrs.tolist()
        self._nx: List[int] = rrg.node_x.tolist()
        self._ny: List[int] = rrg.node_y.tolist()
        self._occ = [0] * n
        self._hist = [0.0] * n
        self._gbest = [0.0] * n
        self._came = [-1] * n
        self._visit = [0] * n
        self._epoch = 0

    # -- single-net routing ------------------------------------------------------

    def _route_net(
        self,
        source: int,
        sinks: Sequence[int],
        pres_fac: float,
        bbox: Rect,
    ) -> Optional[Dict[int, int]]:
        """Route one net; returns the parent map or None when stuck."""
        indptr, nbrs = self._indptr, self._nbrs
        nx, ny = self._nx, self._ny
        occ, hist = self._occ, self._hist
        gbest, came, visit = self._gbest, self._came, self._visit
        hist_fac, astar_fac = self.hist_fac, self.astar_fac

        tree_nodes: List[int] = [source]
        tree_set = {source}
        parent: Dict[int, int] = {}

        # Farthest sink first grows a trunk the others can reuse.
        order = sorted(
            sinks,
            key=lambda s: (-(abs(nx[s] - nx[source]) + abs(ny[s] - ny[source])), s),
        )
        for sink in order:
            self._epoch += 1
            epoch = self._epoch
            sx, sy = nx[sink], ny[sink]
            heap: List[Tuple[float, float, int]] = []
            for node in tree_nodes:
                h = astar_fac * (abs(nx[node] - sx) + abs(ny[node] - sy))
                gbest[node] = 0.0
                came[node] = -1
                visit[node] = epoch
                heap.append((h, 0.0, node))
            heapq.heapify(heap)

            found = False
            while heap:
                f, g, node = heapq.heappop(heap)
                if node == sink:
                    found = True
                    break
                if visit[node] == epoch and g > gbest[node]:
                    continue  # stale entry
                for ei in range(indptr[node], indptr[node + 1]):
                    nb = nbrs[ei]
                    bx, by = nx[nb], ny[nb]
                    if not (
                        bbox.x <= bx < bbox.x2 and bbox.y <= by < bbox.y2
                    ):
                        continue
                    # Congestion-aware node cost (capacity 1 everywhere).
                    over = occ[nb]
                    cost = (1.0 + hist_fac * hist[nb]) * (
                        1.0 + pres_fac * over
                    )
                    ng = g + cost
                    if visit[nb] == epoch and gbest[nb] <= ng:
                        continue
                    visit[nb] = epoch
                    gbest[nb] = ng
                    came[nb] = node
                    h = astar_fac * (abs(bx - sx) + abs(by - sy))
                    heapq.heappush(heap, (ng + h, ng, nb))

            if not found:
                return None

            # Walk back from the sink to the existing tree (tree nodes were
            # seeded with came == -1, so the walk stops there) and graft the
            # new branch.
            node = sink
            while came[node] != -1:
                parent[node] = came[node]
                if node not in tree_set:
                    tree_set.add(node)
                    tree_nodes.append(node)
                node = came[node]
            if sink not in tree_set:
                tree_set.add(sink)
                tree_nodes.append(sink)

        return parent

    # -- full design routing -------------------------------------------------------

    def route(
        self,
        terminals: Dict[str, Tuple[int, List[int]]],
        full_bbox_retry: bool = True,
    ) -> RoutingResult:
        """Route every net to zero overuse or raise :class:`UnroutableError`."""
        rrg = self.rrg
        fabric_box = Rect(0, 0, rrg.fabric.width, rrg.fabric.height)
        names = sorted(terminals)
        trees: Dict[str, RouteTree] = {}

        def net_bbox(name: str, margin: int) -> Rect:
            src, sinks = terminals[name]
            pts = [(self._nx[n], self._ny[n]) for n in [src] + list(sinks)]
            return Rect.spanning(pts).expanded(margin, fabric_box)

        pres_fac = self.pres_fac_first
        for iteration in range(1, self.max_iterations + 1):
            margin = self.bb_margin + 2 * (iteration - 1)
            for name in names:
                src, sinks = terminals[name]
                tree = trees.get(name)
                if tree is not None:
                    if all(self._occ[n] <= 1 for n in tree.nodes):
                        continue  # keep conflict-free nets as they are
                    for n in tree.nodes:
                        self._occ[n] -= 1
                parent = self._route_net(src, sinks, pres_fac, net_bbox(name, margin))
                if parent is None and full_bbox_retry:
                    parent = self._route_net(src, sinks, pres_fac, fabric_box)
                if parent is None:
                    raise UnroutableError(
                        f"net {name}: no path at W={rrg.W} "
                        f"(iteration {iteration})"
                    )
                tree = RouteTree(name, src, list(sinks), parent)
                trees[name] = tree
                for n in tree.nodes:
                    self._occ[n] += 1

            over_nodes = [n for n, o in enumerate(self._occ) if o > 1]
            if not over_nodes:
                wl = sum(t.wirelength() for t in trees.values())
                return RoutingResult(
                    trees, rrg.W, iteration, wl, max(self._occ, default=0)
                )
            for n in over_nodes:
                self._hist[n] += self._occ[n] - 1
            pres_fac *= self.pres_fac_mult

        raise UnroutableError(
            f"congestion unresolved after {self.max_iterations} iterations "
            f"at W={rrg.W} ({sum(1 for o in self._occ if o > 1)} overused nodes)"
        )


def route_design(
    design: PackedDesign,
    placement: Placement,
    rrg: RoutingGraph,
    **router_kwargs,
) -> RoutingResult:
    """Convenience wrapper: terminals + PathFinder in one call."""
    terminals = net_terminals(design, placement, rrg)
    router = PathFinderRouter(rrg, **router_kwargs)
    return router.route(terminals)
