"""Packing: map LUTs and latches onto the paper's LUT+FF logic blocks.

The architecture's logic block (Section II-A) is one K-input LUT whose
output optionally passes through a flip-flop — a single output pin either
way.  Packing therefore:

* fuses a latch with its driving LUT when the LUT output feeds *only* that
  latch (the common case produced by synthesis);
* realizes any remaining latch as its own block with a pass-through
  (identity) LUT in front of the FF;
* widens every truth table to the full K inputs (added inputs are
  don't-care) so blocks carry uniform NLB-bit configurations;
* turns primary inputs/outputs into pad instances bound to IOB sub-sites at
  placement time.

The result also carries the post-packing net list (driver pin + sink pins),
which is what placement and routing consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import PackError
from repro.netlist.model import NetUse, Netlist


@dataclass(frozen=True)
class ClbInst:
    """A packed logic block: K-LUT (+ optional FF) with one output net."""

    name: str
    inputs: Tuple[Optional[str], ...]  # net per LUT pin, None = unused
    output: str
    truth_table: int  # widened to 2**K rows
    use_ff: bool

    def used_input_count(self) -> int:
        return sum(1 for n in self.inputs if n is not None)


@dataclass(frozen=True)
class PadInst:
    """A primary I/O pad.  ``drives_fabric`` is True for circuit inputs."""

    name: str
    net: str
    drives_fabric: bool


class PackedDesign:
    """The output of packing: blocks, pads, and resolved net uses."""

    def __init__(
        self,
        name: str,
        lut_size: int,
        clbs: List[ClbInst],
        pads: List[PadInst],
    ):
        self.name = name
        self.lut_size = lut_size
        self.clbs = clbs
        self.pads = pads
        self.nets: Dict[str, NetUse] = {}
        self._build_nets()

    def _build_nets(self) -> None:
        for clb in self.clbs:
            use = self.nets.get(clb.output)
            if use is not None and use.driver is not None:
                raise PackError(f"net {clb.output} has two drivers")
            self.nets[clb.output] = NetUse(clb.output, (clb.name, "out"))
        for pad in self.pads:
            if pad.drives_fabric:
                if pad.net in self.nets:
                    raise PackError(f"net {pad.net} has two drivers")
                self.nets[pad.net] = NetUse(pad.net, (pad.name, "o"))
        for clb in self.clbs:
            for i, net in enumerate(clb.inputs):
                if net is None:
                    continue
                if net not in self.nets:
                    raise PackError(f"{clb.name} reads undriven net {net}")
                self.nets[net].sinks.append((clb.name, f"in{i}"))
        for pad in self.pads:
            if not pad.drives_fabric:
                if pad.net not in self.nets:
                    raise PackError(f"output pad reads undriven net {pad.net}")
                self.nets[pad.net].sinks.append((pad.name, "i"))
        # Nets nobody reads do not need routing; drop them defensively.
        self.nets = {
            name: use for name, use in self.nets.items() if use.sinks
        }

    # -- queries -------------------------------------------------------------------

    @property
    def num_clbs(self) -> int:
        return len(self.clbs)

    @property
    def num_pads(self) -> int:
        return len(self.pads)

    def clb_by_name(self) -> Dict[str, ClbInst]:
        return {c.name: c for c in self.clbs}

    def pad_by_name(self) -> Dict[str, PadInst]:
        return {p.name: p for p in self.pads}

    def stats(self) -> Dict[str, int]:
        return {
            "clbs": self.num_clbs,
            "pads": self.num_pads,
            "nets": len(self.nets),
            "pins": sum(1 + n.fanout for n in self.nets.values()),
            "ffs": sum(1 for c in self.clbs if c.use_ff),
        }

    def __repr__(self) -> str:
        s = self.stats()
        return (
            f"PackedDesign({self.name}: {s['clbs']} CLBs ({s['ffs']} FF), "
            f"{s['pads']} pads, {s['nets']} nets)"
        )


def _widen_truth_table(tt: int, arity: int, lut_size: int) -> int:
    """Repeat the table so added (unused) inputs are don't-care."""
    rows = 1 << arity
    out = 0
    for rep in range(1 << (lut_size - arity)):
        out |= tt << (rep * rows)
    return out


#: Identity function of input 0 widened later: out = in0 (rows with bit0 set).
_IDENTITY_TT_1 = 0b10


def pack(netlist: Netlist, lut_size: int = 6) -> PackedDesign:
    """Pack a legalized netlist (max arity <= K) into logic blocks."""
    if netlist.max_lut_arity() > lut_size:
        raise PackError(
            f"{netlist.name}: contains a {netlist.max_lut_arity()}-input LUT; "
            f"run repro.netlist.map_to_luts first"
        )

    # A latch is absorbed into its driving LUT when it is the sole reader of
    # the LUT output net and that net is not a primary output.
    latch_by_dnet: Dict[str, List] = {}
    for latch in netlist.latches:
        latch_by_dnet.setdefault(latch.input, []).append(latch)

    fanout: Dict[str, int] = {}
    for lut in netlist.luts:
        for net in lut.inputs:
            fanout[net] = fanout.get(net, 0) + 1
    for latch in netlist.latches:
        fanout[latch.input] = fanout.get(latch.input, 0) + 1
    for po in netlist.outputs:
        fanout[po] = fanout.get(po, 0) + 1

    absorbed = set()
    clbs: List[ClbInst] = []
    for lut in netlist.luts:
        widened = _widen_truth_table(lut.truth_table, lut.arity, lut_size)
        inputs = tuple(lut.inputs) + (None,) * (lut_size - lut.arity)
        candidates = latch_by_dnet.get(lut.output, [])
        if (
            len(candidates) == 1
            and fanout.get(lut.output, 0) == 1
            and lut.output not in netlist.outputs
        ):
            latch = candidates[0]
            absorbed.add(latch.name)
            clbs.append(
                ClbInst(f"clb_{lut.name}", inputs, latch.output, widened, True)
            )
        else:
            clbs.append(
                ClbInst(f"clb_{lut.name}", inputs, lut.output, widened, False)
            )

    # Remaining latches become pass-through blocks.
    for latch in netlist.latches:
        if latch.name in absorbed:
            continue
        widened = _widen_truth_table(_IDENTITY_TT_1, 1, lut_size)
        inputs = (latch.input,) + (None,) * (lut_size - 1)
        clbs.append(
            ClbInst(f"clb_{latch.name}", inputs, latch.output, widened, True)
        )

    pads: List[PadInst] = []
    for pi in netlist.inputs:
        pads.append(PadInst(f"ipad_{pi}", pi, drives_fabric=True))
    for po in netlist.outputs:
        pads.append(PadInst(f"opad_{po}", po, drives_fabric=False))

    return PackedDesign(netlist.name, lut_size, clbs, pads)
