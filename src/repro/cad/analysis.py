"""Post-route analysis: wirelength, channel occupancy, logic depth.

These reports back the qualitative claims the paper makes about routing
density ("the routing density varies among the surface of the reconfigurable
fabric"; "the VBS coding is especially efficient in sparse macros"): the
per-cell occupancy histogram produced here is exactly the density map that
drives the compression results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.arch.rrg import KIND_LINE, KIND_XTRK, KIND_YTRK, RoutingGraph
from repro.cad.route import RoutingResult
from repro.netlist.model import Netlist


@dataclass
class RoutingReport:
    """Aggregate routing statistics for one routed design."""

    total_wirelength: int
    avg_wirelength: float
    max_fanout: int
    track_utilization: float  # fraction of track wires carrying a net
    line_utilization: float
    occupancy_by_cell: Dict[Tuple[int, int], int]

    def densest_cells(self, count: int = 5) -> List[Tuple[Tuple[int, int], int]]:
        return sorted(
            self.occupancy_by_cell.items(), key=lambda kv: (-kv[1], kv[0])
        )[:count]


def analyze_routing(rrg: RoutingGraph, routing: RoutingResult) -> RoutingReport:
    """Build a :class:`RoutingReport` from a finished routing."""
    track_used = 0
    line_used = 0
    by_cell: Dict[Tuple[int, int], int] = {}
    track_total = 0
    line_total = 0

    used_nodes = set()
    for tree in routing.trees.values():
        used_nodes.update(tree.nodes)

    for node in range(rrg.num_nodes):
        kind, _ = rrg.node_kind(node)
        if kind in (KIND_XTRK, KIND_YTRK):
            track_total += 1
        else:
            line_total += 1
        if node in used_nodes:
            cell = rrg.node_cell(node)
            by_cell[cell] = by_cell.get(cell, 0) + 1
            if kind in (KIND_XTRK, KIND_YTRK):
                track_used += 1
            else:
                line_used += 1

    fanouts = [len(t.sinks) for t in routing.trees.values()]
    wl = [t.wirelength() for t in routing.trees.values()]
    return RoutingReport(
        total_wirelength=sum(wl),
        avg_wirelength=(sum(wl) / len(wl)) if wl else 0.0,
        max_fanout=max(fanouts, default=0),
        track_utilization=track_used / track_total if track_total else 0.0,
        line_utilization=line_used / line_total if line_total else 0.0,
        occupancy_by_cell=by_cell,
    )


def logic_depth(netlist: Netlist) -> int:
    """Unit-delay depth of the combinational core (latches are cuts)."""
    depth: Dict[str, int] = {pi: 0 for pi in netlist.inputs}
    depth.update({latch.output: 0 for latch in netlist.latches})
    remaining = list(netlist.luts)
    while remaining:
        progressed = False
        nxt = []
        for lut in remaining:
            if all(i in depth for i in lut.inputs):
                depth[lut.output] = 1 + max(
                    (depth[i] for i in lut.inputs), default=0
                )
                progressed = True
            else:
                nxt.append(lut)
        if not progressed:
            break  # cycle: reported via Netlist.simulate instead
        remaining = nxt
    sinks = [depth.get(po, 0) for po in netlist.outputs]
    sinks += [depth.get(latch.input, 0) for latch in netlist.latches]
    return max(sinks, default=0)
