"""Netlist substrate: logic model, BLIF front-end, LUT mapping, generators."""

from repro.netlist.model import Latch, Lut, NetUse, Netlist
from repro.netlist.blif import parse_blif, write_blif
from repro.netlist.lutmap import map_to_luts, MUX_TT
from repro.netlist.generate import (
    CircuitSpec,
    DEFAULT_FANIN_WEIGHTS,
    generate_circuit,
    generated_stats,
)

__all__ = [
    "Latch",
    "Lut",
    "NetUse",
    "Netlist",
    "parse_blif",
    "write_blif",
    "map_to_luts",
    "MUX_TT",
    "CircuitSpec",
    "DEFAULT_FANIN_WEIGHTS",
    "generate_circuit",
    "generated_stats",
]
