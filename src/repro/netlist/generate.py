"""Synthetic benchmark circuit generator (MCNC proxies).

The paper evaluates on the 20 largest MCNC circuits, which are not
redistributable here; this generator produces *proxy* netlists that pin the
quantities Table II fixes per circuit (logic-block count, grid size) and the
published I/O and latch profiles, and that emulate the locality structure of
real logic through a Rent-style wiring model:

* LUTs live on a virtual grid in generation order; each fanin is drawn from
  a two-sided-geometric neighbourhood of the consumer (local wires) with a
  configurable probability of escaping to a uniformly random producer
  (global wires).  Samples that land outside the virtual grid bind to a
  primary input on the nearest perimeter position, reproducing the
  IO-at-the-border bias of placed circuits.
* A configurable subset of LUTs is *registered*: the LUT drives a D-latch
  whose Q net is what consumers see, so a registered LUT packs 1:1 into the
  paper's LUT+FF logic block and may participate in feedback loops.
* Dangling LUT outputs are re-attached as extra fanins (or promoted to
  primary outputs) so every net is observable — real netlists have no dead
  logic after synthesis.

Determinism: the circuit is a pure function of its spec (the seed defaults
to a hash of the circuit name).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import NetlistError
from repro.netlist.model import Latch, Lut, Netlist
from repro.utils.rng import make_rng

#: Weights for LUT arities 1..6 (mean just above 4, matching packed MCNC).
DEFAULT_FANIN_WEIGHTS = (0.02, 0.10, 0.22, 0.30, 0.22, 0.14)


@dataclass(frozen=True)
class CircuitSpec:
    """Parameters of a synthetic circuit.

    ``locality`` is the probability that a fanin is drawn from the local
    neighbourhood rather than uniformly (higher = easier to route);
    ``reach`` is the mean Chebyshev radius of local connections.
    """

    name: str
    n_luts: int
    n_inputs: int
    n_outputs: int
    n_latches: int = 0
    lut_size: int = 6
    locality: float = 0.82
    reach: float = 2.0
    fanin_weights: Tuple[float, ...] = field(default=DEFAULT_FANIN_WEIGHTS)
    seed: Optional[int] = None
    #: Truth tables per arity are drawn from a pool of this many distinct
    #: random functions instead of fresh-random per LUT (0 = off, the
    #: historical fully-random behavior).  Real synthesized logic reuses
    #: a small cell vocabulary heavily — adder slices, muxes, replicated
    #: datapath tiles — which is the redundancy the dictionary/delta
    #: codec family exploits; a pool makes the proxies reproduce it.
    pattern_pool: int = 0

    def __post_init__(self) -> None:
        if self.n_luts < 1:
            raise NetlistError("need at least one LUT")
        if self.n_inputs < 1:
            raise NetlistError("need at least one primary input")
        if self.n_outputs < 1:
            raise NetlistError("need at least one primary output")
        if self.n_latches > self.n_luts:
            raise NetlistError("cannot register more LUTs than exist")
        if not 0.0 <= self.locality <= 1.0:
            raise NetlistError("locality must be in [0, 1]")
        if self.pattern_pool < 0:
            raise NetlistError("pattern pool must be >= 0")
        if len(self.fanin_weights) > 2 ** self.lut_size:
            raise NetlistError("fanin weight vector wider than LUT")


def _virtual_grid_side(n_luts: int) -> int:
    side = 1
    while side * side < n_luts:
        side += 1
    return side


def _perimeter_positions(side: int, count: int) -> List[Tuple[int, int]]:
    """``count`` positions spread evenly along the virtual-grid perimeter."""
    ring: List[Tuple[int, int]] = []
    if side == 1:
        ring = [(0, 0)]
    else:
        for x in range(side):
            ring.append((x, -1))
        for y in range(side):
            ring.append((side, y))
        for x in range(side - 1, -1, -1):
            ring.append((x, side))
        for y in range(side - 1, -1, -1):
            ring.append((-1, y))
    return [ring[(k * len(ring)) // count] for k in range(count)]


def generate_circuit(spec: CircuitSpec) -> Netlist:
    """Produce the deterministic proxy netlist described by ``spec``."""
    rng = make_rng(spec.seed if spec.seed is not None else spec.name)
    side = _virtual_grid_side(spec.n_luts)
    k_max = min(spec.lut_size, len(spec.fanin_weights))
    arities = list(range(1, k_max + 1))
    weights = list(spec.fanin_weights[:k_max])

    pis = [f"pi{k}" for k in range(spec.n_inputs)]
    pi_pos = _perimeter_positions(side, spec.n_inputs)

    registered = set(rng.sample(range(spec.n_luts), spec.n_latches))

    def readable(j: int) -> str:
        """The net consumers of LUT j observe (Q net when registered)."""
        return f"q{j}" if j in registered else f"n{j}"

    def lut_pos(j: int) -> Tuple[int, int]:
        return j % side, j // side

    def nearest_pi(x: int, y: int) -> str:
        best, best_d = 0, None
        for k, (px, py) in enumerate(pi_pos):
            d = abs(px - x) + abs(py - y)
            if best_d is None or d < best_d:
                best, best_d = k, d
        return pis[best]

    def sample_radius() -> int:
        # Two-sided geometric with mean ~= spec.reach.
        p = 1.0 / max(1.0, spec.reach)
        r = 1
        while rng.random() > p and r < side:
            r += 1
        return r

    def pick_fanin(i: int, taken: set) -> str:
        """One fanin for LUT i, respecting acyclicity (j < i or registered)."""
        x, y = lut_pos(i)
        for _attempt in range(8):
            if rng.random() < spec.locality:
                dx = sample_radius() * rng.choice((-1, 1))
                dy = sample_radius() * rng.choice((-1, 1))
                cx, cy = x + dx, y + dy
            else:
                cx, cy = rng.randrange(-1, side + 1), rng.randrange(-1, side + 1)
            if not (0 <= cx < side and 0 <= cy < side):
                cand = nearest_pi(cx, cy)
                if cand not in taken:
                    return cand
                continue
            j = cy * side + cx
            if j >= spec.n_luts or j == i:
                continue
            if j < i or j in registered:
                cand = readable(j)
                if cand not in taken:
                    return cand
        # Fallback: uniform legal candidate.
        for _attempt in range(16):
            j = rng.randrange(spec.n_luts)
            if j != i and (j < i or j in registered):
                cand = readable(j)
                if cand not in taken:
                    return cand
        return rng.choice([p for p in pis if p not in taken] or pis)

    luts: List[Lut] = []
    latches: List[Latch] = []
    #: arity -> the spec's shared truth-table vocabulary (pattern_pool).
    pools: Dict[int, List[int]] = {}
    for i in range(spec.n_luts):
        arity = rng.choices(arities, weights)[0]
        if i == 0:
            arity = min(arity, spec.n_inputs)
        taken: set = set()
        ins: List[str] = []
        for _ in range(arity):
            net = pick_fanin(i, taken)
            taken.add(net)
            ins.append(net)
        if not ins:
            tt = 1
        elif spec.pattern_pool:
            pool = pools.setdefault(len(ins), [])
            if len(pool) < spec.pattern_pool:
                pool.append(rng.randrange(1, (1 << (1 << len(ins))) - 1))
            tt = rng.choice(pool)
        else:
            tt = rng.randrange(1, (1 << (1 << len(ins))) - 1)
        luts.append(Lut(f"lut{i}", tuple(ins), f"n{i}", tt))
        if i in registered:
            latches.append(Latch(f"ff{i}", f"n{i}", f"q{i}", init=0))

    # Fanout accounting over observable nets.
    fanout: Dict[str, int] = {readable(j): 0 for j in range(spec.n_luts)}
    for lut in luts:
        for net in lut.inputs:
            if net in fanout:
                fanout[net] += 1

    dangling = [readable(j) for j in range(spec.n_luts) if fanout[readable(j)] == 0]
    rng.shuffle(dangling)

    # Primary outputs: prefer dangling nets, then random observable nets.
    outputs: List[str] = dangling[: spec.n_outputs]
    pool = [readable(j) for j in range(spec.n_luts) if readable(j) not in outputs]
    rng.shuffle(pool)
    outputs.extend(pool[: spec.n_outputs - len(outputs)])
    if len(outputs) < spec.n_outputs:
        raise NetlistError(
            f"{spec.name}: cannot provide {spec.n_outputs} distinct outputs "
            f"from {spec.n_luts} LUTs"
        )

    # Re-attach dangling nets not promoted to outputs as extra fanins of a
    # LUT with spare arity (a registered net may feed any LUT; an
    # unregistered net n{j} only LUTs after j).
    extra = dangling[spec.n_outputs :]
    spare = [
        i for i, lut in enumerate(luts) if lut.arity < spec.lut_size
    ]
    rng.shuffle(spare)
    rebuilt: Dict[int, List[str]] = {}
    for net in extra:
        j = int(net[1:])
        hosts = [
            i
            for i in spare
            if (j in registered or i > j)
            and net not in luts[i].inputs
            and net not in rebuilt.get(i, [])
            and len(luts[i].inputs) + len(rebuilt.get(i, [])) < spec.lut_size
        ]
        if hosts:
            rebuilt.setdefault(hosts[0], []).append(net)
        else:
            outputs.append(net)  # last resort: observe it as an extra PO

    for i, extra_ins in rebuilt.items():
        old = luts[i]
        new_inputs = old.inputs + tuple(extra_ins)
        # Extend the truth table so added inputs are don't-care.
        reps = 1 << len(extra_ins)
        rows = 1 << old.arity
        tt = 0
        for r in range(reps):
            tt |= old.truth_table << (r * rows)
        luts[i] = Lut(old.name, new_inputs, old.output, tt)

    return Netlist(spec.name, pis, outputs, luts, latches)


def generated_stats(netlist: Netlist) -> Dict[str, float]:
    """Quick structural statistics used by tests and the eval harness."""
    stats = dict(netlist.stats())
    total_fanin = sum(l.arity for l in netlist.luts)
    stats["avg_fanin"] = total_fanin / max(1, len(netlist.luts))
    return stats
