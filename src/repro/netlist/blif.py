"""BLIF reader/writer for the MCNC-style circuits the paper evaluates.

The Berkeley Logic Interchange Format subset implemented here covers what
the MCNC benchmark suite uses: ``.model``, ``.inputs``, ``.outputs``,
``.names`` (sum-of-products single-output covers), ``.latch`` and ``.end``.
Covers are converted to truth tables; functions wider than the target LUT
are decomposed later by :mod:`repro.netlist.lutmap`.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import NetlistError
from repro.netlist.model import Latch, Lut, Netlist

_MAX_NAMES_INPUTS = 16  # cover expansion is 2^n; MCNC .names stay far below


def _cover_to_truth_table(
    inputs: List[str], cover: List[Tuple[str, str]], where: str
) -> int:
    """Evaluate an SOP cover into a truth-table integer.

    ``cover`` holds (input-plane, output-plane) rows.  Rows with output '1'
    are the ON-set; '0' rows define the complemented function (BLIF allows
    either, not both).
    """
    n = len(inputs)
    if n > _MAX_NAMES_INPUTS:
        raise NetlistError(
            f"{where}: .names with {n} inputs exceeds supported "
            f"{_MAX_NAMES_INPUTS}"
        )
    out_planes = {row[1] for row in cover}
    if "1" in out_planes and "0" in out_planes:
        raise NetlistError(f"{where}: mixed ON-set and OFF-set cover")
    off_set = out_planes == {"0"}

    tt = 0
    for row_in, _row_out in cover:
        if len(row_in) != n:
            raise NetlistError(
                f"{where}: cube {row_in!r} arity mismatch ({n} inputs)"
            )
        # Enumerate the minterms matched by this cube.
        free = [i for i, ch in enumerate(row_in) if ch == "-"]
        base = 0
        for i, ch in enumerate(row_in):
            if ch == "1":
                base |= 1 << i
            elif ch not in "01-":
                raise NetlistError(f"{where}: bad cube character {ch!r}")
        for mask in range(1 << len(free)):
            idx = base
            for bit, pos in enumerate(free):
                if (mask >> bit) & 1:
                    idx |= 1 << pos
            tt |= 1 << idx
    if not cover:
        tt = 0  # constant 0 function
    if off_set:
        tt = ~tt & ((1 << (1 << n)) - 1)
    return tt


def parse_blif(text: str, name_hint: str = "blif") -> Netlist:
    """Parse BLIF text into a :class:`Netlist`."""
    # Join continuation lines and strip comments.
    raw_lines = text.replace("\\\n", " ").splitlines()
    lines: List[str] = []
    for ln in raw_lines:
        ln = ln.split("#", 1)[0].strip()
        if ln:
            lines.append(ln)

    model = name_hint
    inputs: List[str] = []
    outputs: List[str] = []
    luts: List[Lut] = []
    latches: List[Latch] = []

    i = 0
    lut_counter = 0
    constants: Dict[str, int] = {}
    while i < len(lines):
        tokens = lines[i].split()
        head = tokens[0]
        if head == ".model":
            if len(tokens) > 1:
                model = tokens[1]
            i += 1
        elif head == ".inputs":
            inputs.extend(tokens[1:])
            i += 1
        elif head == ".outputs":
            outputs.extend(tokens[1:])
            i += 1
        elif head == ".names":
            signals = tokens[1:]
            if not signals:
                raise NetlistError(f"line {i}: .names with no signals")
            *ins, out = signals
            cover: List[Tuple[str, str]] = []
            i += 1
            while i < len(lines) and not lines[i].startswith("."):
                parts = lines[i].split()
                if len(ins) == 0:
                    # Constant: single output-plane token.
                    if len(parts) != 1 or parts[0] not in "01":
                        raise NetlistError(f"line {i}: bad constant row")
                    cover.append(("", parts[0]))
                elif len(parts) != 2:
                    raise NetlistError(f"line {i}: bad cover row {lines[i]!r}")
                else:
                    cover.append((parts[0], parts[1]))
                i += 1
            if not ins:
                constants[out] = 1 if any(r[1] == "1" for r in cover) else 0
                continue
            tt = _cover_to_truth_table(ins, cover, f".names {out}")
            luts.append(Lut(f"n{lut_counter}_{out}", tuple(ins), out, tt))
            lut_counter += 1
        elif head == ".latch":
            if len(tokens) < 3:
                raise NetlistError(f"line {i}: .latch needs input and output")
            d, q = tokens[1], tokens[2]
            init = 0
            if tokens[-1] in ("0", "1", "2", "3"):
                init = int(tokens[-1]) & 1
            latches.append(Latch(f"l_{q}", d, q, init))
            i += 1
        elif head == ".end":
            i += 1
        elif head in (".clock",):
            i += 1  # single implicit clock domain
        else:
            raise NetlistError(f"line {i}: unsupported BLIF construct {head!r}")

    # Materialize constant nets as 0-input LUTs.
    for net, value in constants.items():
        luts.append(Lut(f"const_{net}", (), net, value))
        lut_counter += 1

    return Netlist(model, inputs, outputs, luts, latches)


def write_blif(netlist: Netlist) -> str:
    """Serialize a netlist back to BLIF text (ON-set covers)."""
    out: List[str] = [f".model {netlist.name}"]
    out.append(".inputs " + " ".join(netlist.inputs))
    out.append(".outputs " + " ".join(netlist.outputs))
    for latch in netlist.latches:
        out.append(f".latch {latch.input} {latch.output} re clk {latch.init}")
    for lut in netlist.luts:
        out.append(".names " + " ".join(lut.inputs + (lut.output,)))
        rows = 1 << lut.arity
        if lut.arity == 0:
            if lut.truth_table & 1:
                out.append("1")
            continue
        for idx in range(rows):
            if (lut.truth_table >> idx) & 1:
                cube = "".join(
                    "1" if (idx >> i) & 1 else "0" for i in range(lut.arity)
                )
                out.append(f"{cube} 1")
    out.append(".end")
    return "\n".join(out) + "\n"
