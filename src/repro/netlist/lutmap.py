"""Technology mapping onto K-input LUTs.

The paper's flow starts from circuits already packed into 6-LUTs; when a
netlist arrives with wider functions (e.g. from a BLIF file with large
``.names`` covers) this module legalizes it by recursive Shannon expansion:

    f(x0..xn) = xn' * f(x0..xn-1, 0)  +  xn * f(x0..xn-1, 1)

Each expansion produces the two cofactor LUTs and a 3-input multiplexer LUT.
Trivial functions (constants, buffers, single-literal functions) are mapped
directly.  The transformation is functionality-preserving, which the test
suite checks by simulation.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import NetlistError
from repro.netlist.model import Lut, Netlist

#: Truth table of a 2:1 mux with inputs (select, a, b): out = sel ? b : a.
#: Input order (LSB first): in0 = sel, in1 = a (sel=0 branch), in2 = b.
#: Row idx = sel + 2a + 4b; ON rows: {2 (a), 5 (b), 6 (a), 7 (b)} -> 0xE4.
MUX_TT = 0b11100100


def _cofactor(tt: int, arity: int, var: int, value: int) -> int:
    """Truth table of ``f`` with input ``var`` fixed to ``value``."""
    out = 0
    pos = 0
    for idx in range(1 << arity):
        if ((idx >> var) & 1) == value:
            if (tt >> idx) & 1:
                out |= 1 << pos
            pos += 1
    return out


def _depends_on(tt: int, arity: int, var: int) -> bool:
    return _cofactor(tt, arity, var, 0) != _cofactor(tt, arity, var, 1)


def _prune_inputs(lut: Lut) -> Lut:
    """Drop inputs the truth table does not actually depend on."""
    keep = [
        i for i in range(lut.arity) if _depends_on(lut.truth_table, lut.arity, i)
    ]
    if len(keep) == lut.arity:
        return lut
    new_tt = 0
    for new_idx in range(1 << len(keep)):
        # Rebuild the row index in the original variable order; pruned
        # variables are don't-care, so fix them to 0.
        idx = 0
        for bit, var in enumerate(keep):
            if (new_idx >> bit) & 1:
                idx |= 1 << var
        if (lut.truth_table >> idx) & 1:
            new_tt |= 1 << new_idx
    return Lut(
        lut.name, tuple(lut.inputs[i] for i in keep), lut.output, new_tt
    )


def map_to_luts(netlist: Netlist, lut_size: int) -> Netlist:
    """Return an equivalent netlist in which every LUT has arity <= K."""
    if lut_size < 2:
        raise NetlistError("LUT mapping requires K >= 2")

    result: List[Lut] = []
    counter = 0

    def fresh(prefix: str) -> str:
        nonlocal counter
        counter += 1
        return f"_map{counter}_{prefix}"

    def emit(inputs: Tuple[str, ...], output: str, tt: int) -> None:
        """Emit a function, decomposing recursively while arity > K."""
        arity = len(inputs)
        lut = _prune_inputs(Lut(fresh("f"), inputs, output, tt))
        if lut.arity <= lut_size:
            result.append(lut)
            return
        # Shannon-expand on the last (highest) input.
        var = lut.arity - 1
        lo = _cofactor(lut.truth_table, lut.arity, var, 0)
        hi = _cofactor(lut.truth_table, lut.arity, var, 1)
        sub_inputs = lut.inputs[:var]
        lo_net = fresh("c0")
        hi_net = fresh("c1")
        emit(sub_inputs, lo_net, lo)
        emit(sub_inputs, hi_net, hi)
        result.append(
            Lut(fresh("mux"), (lut.inputs[var], lo_net, hi_net), output, MUX_TT)
        )

    for lut in netlist.luts:
        emit(lut.inputs, lut.output, lut.truth_table)

    mapped = Netlist(
        netlist.name, netlist.inputs, netlist.outputs, result, netlist.latches
    )
    if mapped.max_lut_arity() > lut_size:
        raise NetlistError("internal: decomposition left an oversized LUT")
    return mapped
