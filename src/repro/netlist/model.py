"""Logical netlist model: LUTs, latches, primary I/Os, and simulation.

This is the input side of the CAD flow (the role VTR's elaborated netlist
plays in the paper's Figure 3).  A ``Netlist`` is a named collection of
single-output lookup tables and D-latches over named nets; it can be
functionally simulated, which the test-suite uses to prove end-to-end
equivalence of original circuit and de-virtualized configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.errors import NetlistError


@dataclass(frozen=True)
class Lut:
    """A single-output lookup table.

    ``truth_table`` holds one bit per input combination: bit ``i`` is the
    output when the inputs, read with ``inputs[0]`` as the least-significant
    bit, encode the integer ``i``.
    """

    name: str
    inputs: Tuple[str, ...]
    output: str
    truth_table: int

    def __post_init__(self) -> None:
        rows = 1 << len(self.inputs)
        if not 0 <= self.truth_table < (1 << rows):
            raise NetlistError(
                f"LUT {self.name}: truth table wider than 2^{len(self.inputs)} rows"
            )

    @property
    def arity(self) -> int:
        return len(self.inputs)

    def evaluate(self, values: Sequence[int]) -> int:
        """Output bit for the given input bit values (inputs[0] = LSB)."""
        if len(values) != len(self.inputs):
            raise NetlistError(
                f"LUT {self.name} expects {len(self.inputs)} values, "
                f"got {len(values)}"
            )
        index = 0
        for i, v in enumerate(values):
            if v:
                index |= 1 << i
        return (self.truth_table >> index) & 1


@dataclass(frozen=True)
class Latch:
    """A D flip-flop: ``output`` takes the value of ``input`` on each step."""

    name: str
    input: str
    output: str
    init: int = 0


class Netlist:
    """A combinational/sequential circuit over named nets."""

    def __init__(
        self,
        name: str,
        inputs: Iterable[str],
        outputs: Iterable[str],
        luts: Iterable[Lut] = (),
        latches: Iterable[Latch] = (),
    ):
        self.name = name
        self.inputs: List[str] = list(inputs)
        self.outputs: List[str] = list(outputs)
        self.luts: List[Lut] = list(luts)
        self.latches: List[Latch] = list(latches)
        self._validate()

    # -- structure ----------------------------------------------------------------

    def _validate(self) -> None:
        if len(set(self.inputs)) != len(self.inputs):
            raise NetlistError(f"{self.name}: duplicate primary input")
        drivers: Dict[str, str] = {}
        for pi in self.inputs:
            drivers[pi] = f"input {pi}"
        for lut in self.luts:
            if lut.output in drivers:
                raise NetlistError(
                    f"{self.name}: net {lut.output} driven by both "
                    f"{drivers[lut.output]} and LUT {lut.name}"
                )
            drivers[lut.output] = f"LUT {lut.name}"
        for latch in self.latches:
            if latch.output in drivers:
                raise NetlistError(
                    f"{self.name}: net {latch.output} driven by both "
                    f"{drivers[latch.output]} and latch {latch.name}"
                )
            drivers[latch.output] = f"latch {latch.name}"
        self._drivers = drivers
        for lut in self.luts:
            for net in lut.inputs:
                if net not in drivers:
                    raise NetlistError(
                        f"{self.name}: LUT {lut.name} reads undriven net {net}"
                    )
        for latch in self.latches:
            if latch.input not in drivers:
                raise NetlistError(
                    f"{self.name}: latch {latch.name} reads undriven net "
                    f"{latch.input}"
                )
        for po in self.outputs:
            if po not in drivers:
                raise NetlistError(f"{self.name}: primary output {po} undriven")

    def nets(self) -> Set[str]:
        """Every net name appearing in the circuit."""
        all_nets: Set[str] = set(self.inputs) | set(self.outputs)
        for lut in self.luts:
            all_nets.update(lut.inputs)
            all_nets.add(lut.output)
        for latch in self.latches:
            all_nets.add(latch.input)
            all_nets.add(latch.output)
        return all_nets

    def driver_of(self, net: str) -> str:
        """Human-readable description of what drives ``net``."""
        try:
            return self._drivers[net]
        except KeyError:
            raise NetlistError(f"{self.name}: net {net} is undriven")

    def sinks_of(self, net: str) -> List[str]:
        """Descriptions of every reader of ``net`` (LUT pins, latches, POs)."""
        out: List[str] = []
        for lut in self.luts:
            for i, inp in enumerate(lut.inputs):
                if inp == net:
                    out.append(f"LUT {lut.name}.in{i}")
        for latch in self.latches:
            if latch.input == net:
                out.append(f"latch {latch.name}")
        for po in self.outputs:
            if po == net:
                out.append(f"output {po}")
        return out

    def max_lut_arity(self) -> int:
        return max((lut.arity for lut in self.luts), default=0)

    def is_sequential(self) -> bool:
        return bool(self.latches)

    def stats(self) -> Dict[str, int]:
        return {
            "inputs": len(self.inputs),
            "outputs": len(self.outputs),
            "luts": len(self.luts),
            "latches": len(self.latches),
            "nets": len(self.nets()),
        }

    def __repr__(self) -> str:
        s = self.stats()
        return (
            f"Netlist({self.name}: {s['luts']} LUTs, {s['latches']} latches, "
            f"{s['inputs']} PIs, {s['outputs']} POs)"
        )

    # -- simulation -----------------------------------------------------------------

    def _topo_luts(self) -> List[Lut]:
        """LUTs in combinational evaluation order (latch outputs are cuts)."""
        produced: Set[str] = set(self.inputs)
        produced.update(latch.output for latch in self.latches)
        pending = list(self.luts)
        ordered: List[Lut] = []
        while pending:
            progressed = False
            remaining: List[Lut] = []
            for lut in pending:
                if all(i in produced for i in lut.inputs):
                    ordered.append(lut)
                    produced.add(lut.output)
                    progressed = True
                else:
                    remaining.append(lut)
            if not progressed:
                cyc = ", ".join(l.name for l in remaining[:5])
                raise NetlistError(
                    f"{self.name}: combinational cycle through LUTs [{cyc}...]"
                )
            pending = remaining
        return ordered

    def simulate(
        self, vectors: Sequence[Dict[str, int]]
    ) -> List[Dict[str, int]]:
        """Clock the circuit through ``vectors``; return PO values per step.

        Each vector maps every primary input to 0/1.  Latches start at their
        ``init`` value and update synchronously after outputs are sampled.
        """
        order = self._topo_luts()
        state: Dict[str, int] = {
            latch.output: latch.init & 1 for latch in self.latches
        }
        results: List[Dict[str, int]] = []
        for step, vec in enumerate(vectors):
            values: Dict[str, int] = dict(state)
            for pi in self.inputs:
                if pi not in vec:
                    raise NetlistError(
                        f"step {step}: missing value for primary input {pi}"
                    )
                values[pi] = vec[pi] & 1
            for lut in order:
                values[lut.output] = lut.evaluate(
                    [values[i] for i in lut.inputs]
                )
            results.append({po: values[po] for po in self.outputs})
            state = {
                latch.output: values[latch.input] for latch in self.latches
            }
        return results


@dataclass
class NetUse:
    """Post-packing net: one driver pin, many sink pins.

    Pins are ``(instance_name, port_name)`` pairs resolved by the placer.
    """

    name: str
    driver: Tuple[str, str]
    sinks: List[Tuple[str, str]] = field(default_factory=list)

    @property
    def fanout(self) -> int:
        return len(self.sinks)
