"""Electrical extraction: recover the loaded circuit from a configuration.

Given a :class:`FabricConfig` (from the offline flow *or* from the run-time
de-virtualization), this module rebuilds what is electrically on the fabric:

* every closed pass transistor merges two wire segments (union-find);
* the resulting equivalence classes are the electrical *components* (nets);
* block pins are hardwired to segment 0 of their pin line, so components
  attach to LUT inputs/outputs and pad sites;
* logic data decodes back into LUT truth tables, FF flags and pad enables.

The extracted circuit can be functionally simulated, which gives the
library's strongest end-to-end check: netlist -> place&route -> bitstream ->
(VBS encode -> decode) -> extraction must reproduce the original behaviour
bit-for-bit.  Extraction also detects electrical shorts (a component with
two drivers), the failure mode the de-virtualization router must avoid.
"""

from __future__ import annotations

import functools
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.arch.blocktype import decode_clb_config, decode_iob_config
from repro.arch.fabric import FabricArch
from repro.arch.macro import iter_macro_junctions
from repro.arch.params import ArchParams
from repro.bitstream.config import FabricConfig
from repro.errors import BitstreamError
from repro.utils.unionfind import UnionFind

Cell = Tuple[int, int]
PinRef = Tuple[int, int, int]  # (x, y, macro pin)


@functools.lru_cache(maxsize=16)
def switch_pair_table(params: ArchParams) -> Tuple[Tuple[Tuple, Tuple], ...]:
    """Map each routing-bit offset to the two local segment keys it joins."""
    table: List[Tuple[Tuple, Tuple]] = [None] * params.routing_bits  # type: ignore
    for offset, ends in iter_macro_junctions(params):
        k = 0
        for i in range(len(ends)):
            for j in range(i + 1, len(ends)):
                table[offset + k] = (ends[i], ends[j])
                k += 1
    if any(entry is None for entry in table):
        raise BitstreamError("switch table has holes; layout bug")
    return tuple(table)


class ExtractedBlock:
    """A logic block recovered from the bitstream."""

    def __init__(
        self,
        cell: Cell,
        truth_table: int,
        use_ff: bool,
        input_comps: Tuple[Optional[int], ...],
        output_comp: Optional[int],
    ):
        self.cell = cell
        self.truth_table = truth_table
        self.use_ff = use_ff
        self.input_comps = input_comps
        self.output_comp = output_comp


class ExtractedPad:
    """An enabled I/O pad recovered from the bitstream."""

    def __init__(self, cell: Cell, sub: int, drives_fabric: bool, comp: Optional[int]):
        self.cell = cell
        self.sub = sub
        self.drives_fabric = drives_fabric
        self.comp = comp


class ExtractedCircuit:
    """Electrical components plus the blocks/pads attached to them."""

    def __init__(
        self,
        fabric: FabricArch,
        comp_of_pin: Dict[PinRef, int],
        num_components: int,
        blocks: List[ExtractedBlock],
        pads: List[ExtractedPad],
    ):
        self.fabric = fabric
        self.comp_of_pin = comp_of_pin
        self.num_components = num_components
        self.blocks = blocks
        self.pads = pads

    # -- electrical checks -----------------------------------------------------

    def drivers_of_component(self, comp: int) -> List[str]:
        """Human-readable driver list of one component (>=2 is a short)."""
        out: List[str] = []
        for blk in self.blocks:
            if blk.output_comp == comp:
                out.append(f"CLB{blk.cell}.out")
        for pad in self.pads:
            if pad.drives_fabric and pad.comp == comp:
                out.append(f"PAD{pad.cell}[{pad.sub}].o")
        return out

    def check_no_shorts(self) -> None:
        """Raise :class:`BitstreamError` when any component has 2+ drivers."""
        by_comp: Dict[int, List[str]] = {}
        for blk in self.blocks:
            if blk.output_comp is not None:
                by_comp.setdefault(blk.output_comp, []).append(
                    f"CLB{blk.cell}.out"
                )
        for pad in self.pads:
            if pad.drives_fabric and pad.comp is not None:
                by_comp.setdefault(pad.comp, []).append(
                    f"PAD{pad.cell}[{pad.sub}].o"
                )
        for comp, drivers in sorted(by_comp.items()):
            if len(drivers) > 1:
                raise BitstreamError(
                    f"electrical short: component {comp} driven by "
                    f"{', '.join(drivers)}"
                )

    # -- functional simulation ---------------------------------------------------

    def _topo_blocks(self) -> List[ExtractedBlock]:
        """Combinational blocks in dependency order (FFs break cycles)."""
        comb = [b for b in self.blocks if not b.use_ff and b.output_comp is not None]
        producers: Dict[int, ExtractedBlock] = {
            b.output_comp: b for b in comb if b.output_comp is not None
        }
        ordered: List[ExtractedBlock] = []
        state = {id(b): 0 for b in comb}  # 0 unseen, 1 visiting, 2 done

        def visit(block: ExtractedBlock) -> None:
            if state[id(block)] == 2:
                return
            if state[id(block)] == 1:
                raise BitstreamError(
                    f"combinational loop through CLB{block.cell}"
                )
            state[id(block)] = 1
            for comp in block.input_comps:
                dep = producers.get(comp) if comp is not None else None
                if dep is not None:
                    visit(dep)
            state[id(block)] = 2
            ordered.append(block)

        for b in comb:
            visit(b)
        return ordered

    def simulate(
        self, vectors: Sequence[Dict[Tuple[Cell, int], int]]
    ) -> List[Dict[Tuple[Cell, int], int]]:
        """Clock the extracted circuit.

        Inputs/outputs are keyed by pad site ``((x, y), sub)``.  Unconnected
        LUT inputs read 0.  Returns sampled values of every fabric-sinking
        pad per step.
        """
        self.check_no_shorts()
        order = self._topo_blocks()
        in_pads = [p for p in self.pads if p.drives_fabric]
        out_pads = [p for p in self.pads if not p.drives_fabric]
        ff_blocks = [
            b for b in self.blocks if b.use_ff and b.output_comp is not None
        ]
        ff_state: Dict[int, int] = {id(b): 0 for b in ff_blocks}

        results: List[Dict[Tuple[Cell, int], int]] = []
        for step, vec in enumerate(vectors):
            values: Dict[int, int] = {}
            for pad in in_pads:
                key = (pad.cell, pad.sub)
                if key not in vec:
                    raise BitstreamError(
                        f"step {step}: missing stimulus for pad {key}"
                    )
                if pad.comp is not None:
                    values[pad.comp] = vec[key] & 1
            for blk in ff_blocks:
                values[blk.output_comp] = ff_state[id(blk)]

            def block_out(blk: ExtractedBlock) -> int:
                idx = 0
                for bit, comp in enumerate(blk.input_comps):
                    v = values.get(comp, 0) if comp is not None else 0
                    if v:
                        idx |= 1 << bit
                return (blk.truth_table >> idx) & 1

            for blk in order:
                values[blk.output_comp] = block_out(blk)

            results.append(
                {
                    (p.cell, p.sub): values.get(p.comp, 0) if p.comp is not None else 0
                    for p in out_pads
                }
            )
            # FF update: the D value is the *combinational* function of the
            # block (LUT output), evaluated after the fabric settles.
            next_state = {id(b): block_out(b) for b in ff_blocks}
            ff_state = next_state
        return results


def extract_circuit(config: FabricConfig, fabric: FabricArch) -> ExtractedCircuit:
    """Recover the :class:`ExtractedCircuit` configured by ``config``."""
    params = fabric.params
    table = switch_pair_table(params)
    uf: UnionFind = UnionFind()

    for (x, y), offsets in config.closed.items():
        for off in offsets:
            a, b = table[off]
            uf.union(
                fabric.global_segment(x, y, a), fabric.global_segment(x, y, b)
            )

    # Components get dense ids; only pins attached to a multi-segment
    # component are considered connected.
    comp_ids: Dict[object, int] = {}

    def comp_of_seg(seg: Tuple) -> Optional[int]:
        if seg not in uf:
            return None
        root = uf.find(seg)
        if root not in comp_ids:
            comp_ids[root] = len(comp_ids)
        return comp_ids[root]

    def pin_seg(x: int, y: int, pin: int) -> Tuple:
        if pin in params.chanx_pins:
            local = ("lx", params.chanx_pins.index(pin), 0)
        else:
            local = ("ly", params.chany_pins.index(pin), 0)
        return fabric.global_segment(x, y, local)

    comp_of_pin: Dict[PinRef, int] = {}
    blocks: List[ExtractedBlock] = []
    pads: List[ExtractedPad] = []

    for (x, y), logic in sorted(config.logic.items()):
        if logic.count() == 0:
            continue
        tname = fabric.type_name_at(x, y)
        if tname == "clb":
            tt, use_ff = decode_clb_config(params, logic)
            inputs = []
            for pin in range(params.lut_size):
                comp = comp_of_seg(pin_seg(x, y, pin))
                inputs.append(comp)
                if comp is not None:
                    comp_of_pin[(x, y, pin)] = comp
            out_comp = comp_of_seg(pin_seg(x, y, params.lut_size))
            if out_comp is not None:
                comp_of_pin[(x, y, params.lut_size)] = out_comp
            blocks.append(
                ExtractedBlock((x, y), tt, use_ff, tuple(inputs), out_comp)
            )
        elif tname == "iob":
            out_en, in_en = decode_iob_config(params, logic)
            iob = fabric.block_types["iob"]
            from repro.arch.blocktype import IOB_PAD_PORTS

            for sub in range(iob.capacity):
                if out_en[sub]:
                    pin = iob.port(IOB_PAD_PORTS[sub]["o"]).macro_pin
                    comp = comp_of_seg(pin_seg(x, y, pin))
                    if comp is not None:
                        comp_of_pin[(x, y, pin)] = comp
                    pads.append(ExtractedPad((x, y), sub, True, comp))
                if in_en[sub]:
                    pin = iob.port(IOB_PAD_PORTS[sub]["i"]).macro_pin
                    comp = comp_of_seg(pin_seg(x, y, pin))
                    if comp is not None:
                        comp_of_pin[(x, y, pin)] = comp
                    pads.append(ExtractedPad((x, y), sub, False, comp))
        else:
            raise BitstreamError(f"unknown block type {tname} at ({x},{y})")

    return ExtractedCircuit(
        fabric, comp_of_pin, len(comp_ids), blocks, pads
    )
