"""Equivalence checking between a netlist and a fabric configuration.

Two levels of proof, used by the test-suite and the VBS feedback loop:

* **connectivity**: every post-packing net must map onto exactly one
  extracted electrical component, distinct nets onto distinct components,
  and no component may have two drivers;
* **functional**: random-vector simulation of the original netlist against
  the circuit extracted from the configuration (PIs/POs bound through the
  pad placement).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.arch.blocktype import IOB_PAD_PORTS
from repro.arch.fabric import FabricArch
from repro.bitstream.config import FabricConfig
from repro.cad.pack import PackedDesign
from repro.cad.place import Placement
from repro.errors import BitstreamError
from repro.fabric.extract import ExtractedCircuit, extract_circuit
from repro.netlist.model import Netlist
from repro.utils.rng import make_rng

Cell = Tuple[int, int]


def pin_site(
    design: PackedDesign,
    placement: Placement,
    fabric: FabricArch,
    inst: str,
    port: str,
) -> Tuple[int, int, int]:
    """(x, y, macro pin) of a packed instance's port."""
    x, y, sub = placement.site_of(inst)
    clbs = design.clb_by_name()
    if inst in clbs:
        pin = design.lut_size if port == "out" else int(port[2:])
    else:
        iob = fabric.block_types["iob"]
        pin = iob.port(IOB_PAD_PORTS[sub][port]).macro_pin
    return x, y, pin


def verify_connectivity(
    design: PackedDesign,
    placement: Placement,
    config: FabricConfig,
    fabric: FabricArch,
) -> ExtractedCircuit:
    """Prove the configuration realizes exactly the design's nets.

    Returns the extracted circuit on success; raises
    :class:`BitstreamError` describing the first violation otherwise.
    """
    extracted = extract_circuit(config, fabric)
    extracted.check_no_shorts()

    comp_of_net: Dict[str, int] = {}
    for name in sorted(design.nets):
        use = design.nets[name]
        pins = [use.driver] + use.sinks
        comps = []
        for inst, port in pins:
            site = pin_site(design, placement, fabric, inst, port)
            comp = extracted.comp_of_pin.get(site)
            if comp is None:
                raise BitstreamError(
                    f"net {name}: pin {inst}.{port} at {site} is unconnected"
                )
            comps.append(comp)
        if len(set(comps)) != 1:
            raise BitstreamError(
                f"net {name}: pins land on {len(set(comps))} different "
                f"components"
            )
        comp_of_net[name] = comps[0]

    seen: Dict[int, str] = {}
    for name, comp in comp_of_net.items():
        if comp in seen:
            raise BitstreamError(
                f"nets {seen[comp]} and {name} are shorted together "
                f"(component {comp})"
            )
        seen[comp] = name
    return extracted


def random_vectors(
    inputs: Sequence[str], count: int, seed: "int | str" = 0
) -> List[Dict[str, int]]:
    """Deterministic random stimulus for ``inputs``."""
    rng = make_rng(seed)
    return [{pi: rng.randrange(2) for pi in inputs} for _ in range(count)]


def verify_functional(
    netlist: Netlist,
    design: PackedDesign,
    placement: Placement,
    config: FabricConfig,
    fabric: FabricArch,
    vectors: Optional[List[Dict[str, int]]] = None,
    num_vectors: int = 24,
    seed: "int | str" = "equivalence",
) -> int:
    """Simulate netlist vs extracted configuration; return steps compared.

    Raises :class:`BitstreamError` on the first mismatching output.
    """
    if vectors is None:
        vectors = random_vectors(netlist.inputs, num_vectors, seed)

    extracted = extract_circuit(config, fabric)

    in_site: Dict[str, Tuple[Cell, int]] = {}
    out_site: Dict[str, Tuple[Cell, int]] = {}
    for pad in design.pads:
        x, y, sub = placement.site_of(pad.name)
        if pad.drives_fabric:
            in_site[pad.net] = ((x, y), sub)
        else:
            out_site[pad.net] = ((x, y), sub)

    fabric_vectors = [
        {in_site[pi]: vec[pi] for pi in netlist.inputs} for vec in vectors
    ]
    expected = netlist.simulate(vectors)
    actual = extracted.simulate(fabric_vectors)

    for step, (exp, act) in enumerate(zip(expected, actual)):
        for po in netlist.outputs:
            got = act.get(out_site[po])
            if got != exp[po]:
                raise BitstreamError(
                    f"functional mismatch at step {step}, output {po}: "
                    f"expected {exp[po]}, fabric produced {got}"
                )
    return len(vectors)
