"""Fabric-level functional tools: extraction, simulation, equivalence."""

from repro.fabric.extract import (
    ExtractedBlock,
    ExtractedCircuit,
    ExtractedPad,
    extract_circuit,
    switch_pair_table,
)
from repro.fabric.equivalence import (
    pin_site,
    random_vectors,
    verify_connectivity,
    verify_functional,
)

__all__ = [
    "ExtractedBlock",
    "ExtractedCircuit",
    "ExtractedPad",
    "extract_circuit",
    "switch_pair_table",
    "pin_site",
    "random_vectors",
    "verify_connectivity",
    "verify_functional",
]
