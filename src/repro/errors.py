"""Exception hierarchy for the repro library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class ArchitectureError(ReproError):
    """Inconsistent or unsupported architecture description."""


class NetlistError(ReproError):
    """Malformed netlist, BLIF input, or logic function."""


class PackError(ReproError):
    """Failure while packing primitives into logic blocks."""


class PlacementError(ReproError):
    """Failure while placing blocks on the fabric grid."""


class RoutingError(ReproError):
    """The router could not realize every net."""


class UnroutableError(RoutingError):
    """No feasible routing exists at the given channel width."""


class BitstreamError(ReproError):
    """Malformed or inconsistent configuration bitstream."""


class VbsError(ReproError):
    """Virtual Bit-Stream coding or decoding failure."""


class SharedDictUnresolvedError(VbsError):
    """A VERSION 4 container references a shared dictionary the caller
    cannot resolve.  Carries the id so tooling (e.g. ``repro vbs
    inspect``) can report the reference without parsing the payload."""

    def __init__(self, dict_id: int, message: str):
        super().__init__(message)
        self.dict_id = dict_id


class DevirtualizationError(VbsError):
    """The online de-virtualization router could not expand a macro."""


class RuntimeManagementError(ReproError):
    """Run-time controller or fabric manager misuse (collisions, bounds)."""
