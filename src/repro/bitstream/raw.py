"""Raw configuration bitstream: the uncompressed baseline of Figure 4.

A raw bitstream is the task's macro frames in raster order, each frame
being exactly ``Nraw`` bits laid out as ``[NLB logic][switch box][ChanX
CB][ChanY CB]`` (Eq. 1).  There is no header in the size accounting — this
is the "set of each bit determining the state of every configurable
element" the paper compares the Virtual Bit-Stream against.
"""

from __future__ import annotations

from typing import Tuple

from repro.arch.params import ArchParams
from repro.bitstream.config import FabricConfig
from repro.errors import BitstreamError
from repro.utils.bitarray import BitArray
from repro.utils.geometry import Rect


class RawBitstream:
    """Frame-addressed raw configuration of a ``w x h`` task rectangle."""

    def __init__(self, params: ArchParams, width: int, height: int, bits: BitArray):
        expected = width * height * params.nraw
        if len(bits) != expected:
            raise BitstreamError(
                f"raw bitstream must be {expected} bits for "
                f"{width}x{height} macros, got {len(bits)}"
            )
        self.params = params
        self.width = width
        self.height = height
        self.bits = bits

    # -- size accounting ---------------------------------------------------------

    @property
    def size_bits(self) -> int:
        """Total storage footprint in bits (the Figure 4 baseline)."""
        return len(self.bits)

    @classmethod
    def size_for(cls, params: ArchParams, width: int, height: int) -> int:
        """Raw size of a task without materializing it."""
        return width * height * params.nraw

    def digest(self) -> str:
        """Content digest of the frame payload (content addressing).

        Raw loads bypass the runtime decode cache (there is nothing to
        decode); this exists for external tooling that content-addresses
        generated baselines, mirroring :meth:`BitArray.digest`.
        """
        return self.bits.digest()

    # -- frame access ---------------------------------------------------------------

    def _frame_offset(self, x: int, y: int) -> int:
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise BitstreamError(
                f"frame ({x},{y}) outside {self.width}x{self.height} task"
            )
        return (y * self.width + x) * self.params.nraw

    def frame(self, x: int, y: int) -> BitArray:
        """The Nraw-bit frame of task-relative macro (x, y)."""
        return self.bits.slice(self._frame_offset(x, y), self.params.nraw)

    def set_frame(self, x: int, y: int, frame: BitArray) -> None:
        if len(frame) != self.params.nraw:
            raise BitstreamError(
                f"frame must be {self.params.nraw} bits, got {len(frame)}"
            )
        self.bits.overwrite(self._frame_offset(x, y), frame)

    # -- conversions ------------------------------------------------------------------

    @classmethod
    def from_config(cls, config: FabricConfig) -> "RawBitstream":
        """Serialize a :class:`FabricConfig` (frames in raster order)."""
        region = config.region
        params = config.params
        bits = BitArray(region.w * region.h * params.nraw)
        for j in range(region.h):
            for i in range(region.w):
                frame = config.macro_frame(region.x + i, region.y + j)
                bits.overwrite((j * region.w + i) * params.nraw, frame)
        return cls(params, region.w, region.h, bits)

    def to_config(self, origin: Tuple[int, int] = (0, 0)) -> FabricConfig:
        """Parse frames back into a :class:`FabricConfig` at ``origin``."""
        ox, oy = origin
        config = FabricConfig(
            self.params, Rect(ox, oy, self.width, self.height)
        )
        nlb = self.params.nlb
        routing_bits = self.params.routing_bits
        for j in range(self.height):
            for i in range(self.width):
                base = self._frame_offset(i, j)
                logic = self.bits.slice(base, nlb)
                if logic.count():
                    config.set_logic(ox + i, oy + j, logic)
                offsets = self.bits.slice(base + nlb, routing_bits).ones()
                if offsets:
                    config.close_switches(ox + i, oy + j, offsets)
        return config

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RawBitstream):
            return NotImplemented
        return (
            self.params == other.params
            and self.width == other.width
            and self.height == other.height
            and self.bits == other.bits
        )

    def __repr__(self) -> str:
        return (
            f"RawBitstream({self.width}x{self.height} macros, "
            f"{self.size_bits} bits)"
        )
