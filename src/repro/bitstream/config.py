"""FabricConfig: the junction-level configuration of a task region.

A ``FabricConfig`` is the common currency of the back-end: the expansion
step produces one from a routed design, the raw bitstream serializes it
bit-for-bit (Eq. 1 layout), the Virtual Bit-Stream decoder regenerates one
at run time, and the fabric functional simulator consumes one to recover
the electrical netlist.

Only non-default content is stored: macros with all-zero logic data and no
closed switches are implicitly empty (that sparsity is exactly what the VBS
macro list exploits).
"""

from __future__ import annotations

from typing import Dict, Iterable, Set, Tuple

from repro.arch.params import ArchParams
from repro.errors import BitstreamError
from repro.utils.bitarray import BitArray
from repro.utils.geometry import Rect

Cell = Tuple[int, int]


class FabricConfig:
    """Per-macro logic data and closed-switch sets over a task rectangle."""

    def __init__(self, params: ArchParams, region: Rect):
        self.params = params
        self.region = region
        self.logic: Dict[Cell, BitArray] = {}
        self.closed: Dict[Cell, Set[int]] = {}

    # -- mutation -------------------------------------------------------------

    def _check_cell(self, x: int, y: int) -> Cell:
        if not self.region.contains(x, y):
            raise BitstreamError(
                f"macro ({x},{y}) outside task region {self.region}"
            )
        return (x, y)

    def set_logic(self, x: int, y: int, bits: BitArray) -> None:
        """Install the NLB-bit logic frame section of macro (x, y)."""
        cell = self._check_cell(x, y)
        if len(bits) != self.params.nlb:
            raise BitstreamError(
                f"logic data must be {self.params.nlb} bits, got {len(bits)}"
            )
        self.logic[cell] = bits

    def close_switch(self, x: int, y: int, offset: int) -> None:
        """Close routing switch ``offset`` (0-based within the routing region)."""
        cell = self._check_cell(x, y)
        if not 0 <= offset < self.params.routing_bits:
            raise BitstreamError(
                f"switch offset {offset} outside routing region "
                f"[0, {self.params.routing_bits})"
            )
        self.closed.setdefault(cell, set()).add(offset)

    def close_switches(self, x: int, y: int, offsets: Iterable[int]) -> None:
        """Close a batch of switches in one call (one check, one set update)."""
        offs = offsets if isinstance(offsets, (list, tuple)) else list(offsets)
        if not offs:
            return
        if min(offs) < 0 or max(offs) >= self.params.routing_bits:
            # Reproduce the per-switch behavior exactly: earlier offsets
            # land before the first bad one raises.
            for off in offs:
                self.close_switch(x, y, off)
            return
        cell = self._check_cell(x, y)
        self.closed.setdefault(cell, set()).update(offs)

    # -- queries --------------------------------------------------------------

    def is_empty_macro(self, x: int, y: int) -> bool:
        cell = (x, y)
        logic = self.logic.get(cell)
        has_logic = logic is not None and logic.count() > 0
        return not has_logic and not self.closed.get(cell)

    def occupied_cells(self) -> Set[Cell]:
        """Cells with any non-default content."""
        cells = {c for c, bits in self.logic.items() if bits.count() > 0}
        cells.update(c for c, sw in self.closed.items() if sw)
        return cells

    def macro_frame(self, x: int, y: int) -> BitArray:
        """The full Nraw-bit raw frame of macro (x, y)."""
        self._check_cell(x, y)
        nlb = self.params.nlb
        frame = BitArray.from_ones(
            self.params.nraw,
            [nlb + off for off in self.closed.get((x, y), ())],
        )
        logic = self.logic.get((x, y))
        if logic is not None:
            frame.overwrite(0, logic)
        return frame

    def total_closed_switches(self) -> int:
        return sum(len(s) for s in self.closed.values())

    # -- transforms -----------------------------------------------------------

    def translated(self, dx: int, dy: int) -> "FabricConfig":
        """The same configuration relocated by (dx, dy) macros."""
        out = FabricConfig(self.params, self.region.translated(dx, dy))
        out.logic = {
            (x + dx, y + dy): bits.copy() for (x, y), bits in self.logic.items()
        }
        out.closed = {
            (x + dx, y + dy): set(sw) for (x, y), sw in self.closed.items()
        }
        return out

    def content_equal(self, other: "FabricConfig") -> bool:
        """Equality of effective content (ignores region placement)."""
        if self.params != other.params:
            return False
        dx = other.region.x - self.region.x
        dy = other.region.y - self.region.y
        if (self.region.w, self.region.h) != (other.region.w, other.region.h):
            return False
        mine = {
            (x + dx, y + dy): bits
            for (x, y), bits in self.logic.items()
            if bits.count() > 0
        }
        theirs = {c: b for c, b in other.logic.items() if b.count() > 0}
        if mine.keys() != theirs.keys():
            return False
        if any(mine[c] != theirs[c] for c in mine):
            return False
        mine_sw = {
            (x + dx, y + dy): sw for (x, y), sw in self.closed.items() if sw
        }
        theirs_sw = {c: sw for c, sw in other.closed.items() if sw}
        return mine_sw == theirs_sw

    def __repr__(self) -> str:
        return (
            f"FabricConfig({self.region.w}x{self.region.h} @ "
            f"({self.region.x},{self.region.y}), "
            f"{len(self.occupied_cells())} occupied macros, "
            f"{self.total_closed_switches()} closed switches)"
        )
