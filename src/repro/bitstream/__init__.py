"""Configuration bitstreams: junction-level config, expansion, raw format."""

from repro.bitstream.config import FabricConfig
from repro.bitstream.expand import (
    edge_junction_cell,
    expand_routing,
    wire_sb_cells,
)
from repro.bitstream.raw import RawBitstream

__all__ = [
    "FabricConfig",
    "expand_routing",
    "edge_junction_cell",
    "wire_sb_cells",
    "RawBitstream",
]
