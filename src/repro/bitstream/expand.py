"""Track-level routing -> junction-level configuration expansion.

The global router decides which whole wires each net uses; this module
derives the exact pass-transistor closures realizing those decisions — the
step a bitstream generator performs when it "serializes" place-and-route
data (Section III-B).  The procedure per net:

1. collect the net's *touch points* on every wire it occupies (the junctions
   where tree edges meet the wire, plus the block pin for terminal lines);
2. occupy the contiguous span of junction-separated segments between the
   extreme touch points of each wire;
3. at every junction where two or more occupied ends of the same net meet,
   close the minimal chain of pass transistors joining them.

Because every wire has capacity 1 in the router, segments are never claimed
by two nets and the chain closures can never short distinct nets — the
invariant the fabric extractor re-verifies from the finished bitstream.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.arch.blocktype import encode_clb_config, encode_iob_config
from repro.arch.macro import iter_macro_junctions, junction_pair_offset
from repro.arch.rrg import KIND_LINE, KIND_XTRK, KIND_YTRK, RoutingGraph
from repro.bitstream.config import FabricConfig
from repro.cad.pack import PackedDesign
from repro.cad.place import Placement
from repro.cad.route import RoutingResult
from repro.errors import BitstreamError
from repro.utils.bitarray import BitArray
from repro.utils.geometry import Rect

GlobalSeg = Tuple


def wire_sb_cells(rrg: RoutingGraph, node: int) -> List[Tuple[int, int]]:
    """The switch-box cells a wire's two ends reach (one for edge stubs)."""
    kind, _idx = rrg.node_kind(node)
    x, y = rrg.node_cell(node)
    if kind == KIND_XTRK:
        cells = [(x, y), (x + 1, y)]
    elif kind == KIND_YTRK:
        cells = [(x, y), (x, y + 1)]
    else:
        raise BitstreamError("pin lines have no switch-box ends")
    return [
        (cx, cy)
        for cx, cy in cells
        if 0 <= cx < rrg.fabric.width and 0 <= cy < rrg.fabric.height
    ]


def edge_junction_cell(rrg: RoutingGraph, a: int, b: int) -> Tuple[int, int]:
    """The macro whose junction realizes RRG edge (a, b)."""
    ka, _ = rrg.node_kind(a)
    kb, _ = rrg.node_kind(b)
    if ka == KIND_LINE:
        return rrg.node_cell(a)
    if kb == KIND_LINE:
        return rrg.node_cell(b)
    shared = set(wire_sb_cells(rrg, a)) & set(wire_sb_cells(rrg, b))
    if len(shared) != 1:
        raise BitstreamError(
            f"edge {rrg.node_str(a)}-{rrg.node_str(b)} has no unique "
            f"switch box (found {sorted(shared)})"
        )
    return shared.pop()


class _WireUse:
    """Touch positions of one net on one wire (see module docstring)."""

    __slots__ = ("positions",)

    def __init__(self) -> None:
        self.positions: Set[int] = set()


def _line_channel_index(rrg: RoutingGraph, pin: int) -> Tuple[str, int]:
    """('x'|'y', line index within its channel) for macro pin ``pin``."""
    params = rrg.fabric.params
    if pin in params.chanx_pins:
        return "x", params.chanx_pins.index(pin)
    return "y", params.chany_pins.index(pin)


def _touch_position(
    rrg: RoutingGraph, wire: int, other: int, junction: Tuple[int, int]
) -> int:
    """Position index of the junction along ``wire`` (module docstring)."""
    params = rrg.fabric.params
    nx = len(params.chanx_pins)
    ny = len(params.chany_pins)
    kind, idx = rrg.node_kind(wire)
    x, y = rrg.node_cell(wire)
    okind, oidx = rrg.node_kind(other)

    if kind == KIND_LINE:
        # Junction with a track: line position t + 1 (the pin itself is 0).
        if okind not in (KIND_XTRK, KIND_YTRK):
            raise BitstreamError("line-line junctions do not exist")
        return oidx + 1
    if okind == KIND_LINE:
        # Junction of this track with a pin line: track position i + 1.
        _chan, li = _line_channel_index(rrg, oidx)
        return li + 1
    # Track-track: a switch-box end.
    if kind == KIND_XTRK:
        return 0 if junction == (x, y) else nx + 1
    if kind == KIND_YTRK:
        return 0 if junction == (x, y) else ny + 1
    raise BitstreamError("unreachable wire kind")


def _occupied_segments(
    rrg: RoutingGraph, wire: int, positions: Set[int]
) -> List[GlobalSeg]:
    """Global segment keys of the span between extreme touch positions."""
    if len(positions) < 2:
        return []
    lo, hi = min(positions), max(positions)
    kind, idx = rrg.node_kind(wire)
    x, y = rrg.node_cell(wire)
    if kind == KIND_XTRK:
        return [("tx", x, y, idx, k) for k in range(lo, hi)]
    if kind == KIND_YTRK:
        return [("ty", x, y, idx, k) for k in range(lo, hi)]
    chan, li = _line_channel_index(rrg, idx)
    tag = "lx" if chan == "x" else "ly"
    return [(tag, x, y, li, s) for s in range(lo, hi)]


def expand_routing(
    design: PackedDesign,
    placement: Placement,
    routing: RoutingResult,
    rrg: RoutingGraph,
) -> FabricConfig:
    """Produce the junction-level :class:`FabricConfig` of a routed design."""
    fabric = placement.fabric
    params = fabric.params
    config = FabricConfig(params, Rect(0, 0, fabric.width, fabric.height))

    seg_owner: Dict[GlobalSeg, str] = {}
    nx = len(params.chanx_pins)
    ny = len(params.chany_pins)

    # Pass 1: touch points and segment occupancy per net.
    for net_name in sorted(routing.trees):
        tree = routing.trees[net_name]
        touches: Dict[int, _WireUse] = {}

        def use(node: int) -> _WireUse:
            w = touches.get(node)
            if w is None:
                w = touches[node] = _WireUse()
            return w

        for terminal in [tree.source] + tree.sinks:
            use(terminal).positions.add(0)  # the block pin
        for child, par in tree.parent.items():
            junction = edge_junction_cell(rrg, child, par)
            use(child).positions.add(
                _touch_position(rrg, child, par, junction)
            )
            use(par).positions.add(
                _touch_position(rrg, par, child, junction)
            )

        for wire, wu in touches.items():
            for seg in _occupied_segments(rrg, wire, wu.positions):
                prev = seg_owner.get(seg)
                if prev is not None and prev != net_name:
                    raise BitstreamError(
                        f"segment {seg} claimed by nets {prev} and {net_name}"
                    )
                seg_owner[seg] = net_name

    # Pass 2: chain-close junction switches wherever >= 2 ends of the same
    # net meet.  Only macros whose junctions can see occupied segments need
    # visiting: the segment's owner cell, plus the east/north neighbour for
    # the outermost track segments (they poke into the next switch box).
    active: Set[Tuple[int, int]] = set()
    for seg in seg_owner:
        tag, x, y = seg[0], seg[1], seg[2]
        active.add((x, y))
        if tag == "tx" and seg[4] == nx and x + 1 < fabric.width:
            active.add((x + 1, y))
        elif tag == "ty" and seg[4] == ny and y + 1 < fabric.height:
            active.add((x, y + 1))

    junction_layout = list(iter_macro_junctions(params))
    for (x, y) in sorted(active):
        cell_offsets: List[int] = []
        for offset, end_keys in junction_layout:
            ends_global = [
                fabric.global_segment(x, y, key) for key in end_keys
            ]
            by_net: Dict[str, List[int]] = {}
            for i, seg in enumerate(ends_global):
                owner = seg_owner.get(seg)
                if owner is not None:
                    by_net.setdefault(owner, []).append(i)
            n = len(end_keys)
            for _net, idxs in sorted(by_net.items()):
                if len(idxs) < 2:
                    continue
                idxs.sort()
                cell_offsets.extend(
                    offset + junction_pair_offset(n, a, b)
                    for a, b in zip(idxs, idxs[1:])
                )
        if cell_offsets:
            config.close_switches(x, y, cell_offsets)

    # Pass 3: logic data.
    _install_logic(design, placement, config)
    return config


def _install_logic(
    design: PackedDesign, placement: Placement, config: FabricConfig
) -> None:
    """Encode CLB truth tables and IOB pad enables into the config."""
    params = config.params
    for clb in design.clbs:
        x, y, _sub = placement.site_of(clb.name)
        config.set_logic(
            x, y, encode_clb_config(params, clb.truth_table, clb.use_ff)
        )
    pads_by_cell: Dict[Tuple[int, int], Dict[int, bool]] = {}
    for pad in design.pads:
        x, y, sub = placement.site_of(pad.name)
        pads_by_cell.setdefault((x, y), {})[sub] = pad.drives_fabric
    for (x, y), subs in pads_by_cell.items():
        out_en = (subs.get(0) is True, subs.get(1) is True)
        in_en = (subs.get(0) is False, subs.get(1) is False)
        config.set_logic(x, y, encode_iob_config(params, out_en, in_en))
