"""Trace-driven multi-task workload simulation over the runtime manager.

The paper's run-time system exists to amortize de-virtualization cost
across *repeated* task loads on a shared fabric — a behavior no single
``load_task`` call can exhibit.  This module supplies the missing
scenario layer: a seeded trace generator producing load/unload/migrate
arrival sequences under several mixes, and a simulator replaying a trace
through a :class:`~repro.runtime.manager.FabricManager`, accumulating the
cost model's cycle budgets and the decode cache's counters into a
structured, JSON-serializable report.

Everything is deterministic: the generator derives every choice from
``random.Random(f"{kind}:{seed}")``, the CAD flows behind the synthetic
task images are seeded, and the cost model is integer arithmetic — the
same seed always yields the identical report, which is what makes the
reports usable as regression goldens (``tests/runtime/test_workload.py``)
and as CI artifacts worth diffing.

Arrival mixes (:data:`TRACE_KINDS`):

* ``hot-set`` — a small hot set of tasks re-arrives with high
  probability over a cold tail; the decode cache's bread and butter.
* ``round-robin`` — every task cycles in order; exercises steady
  migration-free churn at a hit rate set by cache capacity vs task count.
* ``adversarial`` — distinct images are loaded and immediately unloaded
  in a cycle longer than the cache; with ``cache_capacity`` below the
  task count every lookup misses (LRU's worst case), pinning the
  thrashing floor.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import RuntimeManagementError
from repro.runtime.manager import FIRST_FIT, FabricManager

#: Supported arrival mixes of :func:`generate_trace`.
TRACE_KINDS = ("hot-set", "round-robin", "adversarial")

#: Version stamp of the report schema (bump on renames/removals; key
#: additions are compatible).
REPORT_VERSION = 1


@dataclass(frozen=True)
class TraceEvent:
    """One runtime-manager request: ``op`` in load/unload/migrate."""

    op: str
    task: str


@dataclass(frozen=True)
class WorkloadTrace:
    """A seeded, replayable sequence of task arrivals."""

    kind: str
    seed: int
    tasks: Tuple[str, ...]
    events: Tuple[TraceEvent, ...]

    def __len__(self) -> int:
        return len(self.events)


def generate_trace(
    kind: str,
    task_names: Sequence[str],
    length: int,
    seed: int = 0,
    hot_fraction: float = 0.25,
    hot_weight: float = 0.8,
    max_resident: int = 2,
) -> WorkloadTrace:
    """Generate a ``length``-event trace under the requested arrival mix.

    The generator tracks a symbolic resident set (bounded by
    ``max_resident``) so emitted sequences are always *replayable*: a
    load of a resident task is preceded by its unload (a task finishing
    and re-arriving — the cache's reuse case), and arrivals past the
    resident bound first unload the symbolically oldest task.  The
    simulator still tolerates infeasible events defensively, but traces
    from here never rely on that.
    """
    if kind not in TRACE_KINDS:
        raise RuntimeManagementError(
            f"unknown trace kind {kind!r}; known: {TRACE_KINDS}"
        )
    if not task_names:
        raise RuntimeManagementError("trace needs at least one task name")
    names = list(task_names)
    rng = random.Random(f"{kind}:{seed}")
    resident: List[str] = []  # symbolic, oldest first
    events: List[TraceEvent] = []

    n_hot = max(1, round(len(names) * hot_fraction))
    hot, cold = names[:n_hot], names[n_hot:]
    cursor = 0

    def arrive(task: str) -> None:
        """Emit the events of one task arrival (evict/reload as needed)."""
        if task in resident:
            resident.remove(task)
            events.append(TraceEvent("unload", task))
        while len(resident) >= max_resident:
            victim = resident.pop(0)
            events.append(TraceEvent("unload", victim))
        events.append(TraceEvent("load", task))
        resident.append(task)

    while len(events) < length:
        if kind == "hot-set":
            if cold and rng.random() >= hot_weight:
                task = rng.choice(cold)
            else:
                task = rng.choice(hot)
            if task in resident and rng.random() < 0.25:
                events.append(TraceEvent("migrate", task))
                continue
            arrive(task)
        elif kind == "round-robin":
            arrive(names[cursor % len(names)])
            cursor += 1
        else:  # adversarial cache-thrashing
            task = names[cursor % len(names)]
            cursor += 1
            events.append(TraceEvent("load", task))
            events.append(TraceEvent("unload", task))

    return WorkloadTrace(
        kind=kind,
        seed=seed,
        tasks=tuple(names),
        events=tuple(events[:length]),
    )


class WorkloadSimulator:
    """Replay a :class:`WorkloadTrace` through a :class:`FabricManager`.

    Every image the trace names must already be stored in the
    controller's external memory.  The simulator owns the arrival
    policy — evicting oldest-resident tasks to make room, skipping
    infeasible events — and charges every load/migrate with the cost
    model's cycle breakdown, so the report's latency numbers are exactly
    what the controller would have measured.
    """

    def __init__(self, manager: FabricManager):
        self.manager = manager

    # -- event handlers ---------------------------------------------------------

    def _expanded_bytes(self, image) -> int:
        from repro.runtime.costmodel import expanded_image_bytes

        nraw = self.manager.controller.fabric.params.nraw
        return expanded_image_bytes(image.width, image.height, nraw)

    def _charge(self, totals: Dict[str, int], cost) -> None:
        totals["fetch"] += cost.fetch_cycles
        totals["decode"] += cost.decode_cycles
        totals["write"] += cost.write_cycles
        totals["total"] += cost.total_cycles

    def run(self, trace: WorkloadTrace) -> dict:
        """Replay ``trace``; return the structured report (JSON-safe)."""
        mgr = self.manager
        ctrl = mgr.controller
        cache = ctrl.decode_cache
        base_hits = cache.stats.hits if cache else 0
        base_misses = cache.stats.misses if cache else 0
        base_evictions = cache.stats.evictions if cache else 0

        counts = {
            "loads": 0, "unloads": 0, "migrations": 0,
            "skipped": 0, "failed_loads": 0, "evictions_for_space": 0,
        }
        cycles = {"fetch": 0, "decode": 0, "write": 0, "total": 0}
        load_cache_hits = 0
        bytes_decoded = 0
        per_task: Dict[str, Dict[str, int]] = {
            name: {"loads": 0, "cache_hits": 0, "migrations": 0}
            for name in trace.tasks
        }

        for event in trace.events:
            name = event.task
            if event.op == "load":
                if name in ctrl.resident:
                    counts["skipped"] += 1
                    continue
                image = ctrl.memory.image(name)
                if image is None:
                    counts["failed_loads"] += 1
                    continue
                # The manager's own eviction policy (make_room returns []
                # when a region is already free), kept visible here only
                # because the report counts the victims.
                evicted = mgr.make_room(image.width, image.height)
                if evicted is None:
                    counts["failed_loads"] += 1
                    continue
                counts["evictions_for_space"] += len(evicted)
                counts["unloads"] += len(evicted)
                task = mgr.place_task(name)
                counts["loads"] += 1
                per_task[name]["loads"] += 1
                self._charge(cycles, task.load_cost)
                if task.load_cost.cache_hit:
                    load_cache_hits += 1
                    per_task[name]["cache_hits"] += 1
                elif image.kind == "vbs":
                    bytes_decoded += self._expanded_bytes(image)
            elif event.op == "unload":
                if name not in ctrl.resident:
                    counts["skipped"] += 1
                    continue
                ctrl.unload_task(name)
                counts["unloads"] += 1
            elif event.op == "migrate":
                resident = ctrl.resident.get(name)
                if resident is None:
                    counts["skipped"] += 1
                    continue
                region = resident.region
                target = mgr.find_origin(region.w, region.h, ignore=name)
                if target is None or target == (region.x, region.y):
                    counts["skipped"] += 1
                    continue
                moved = ctrl.migrate_task(name, target)
                counts["migrations"] += 1
                per_task[name]["migrations"] += 1
                self._charge(cycles, moved.load_cost)
                if moved.load_cost.cache_hit:
                    load_cache_hits += 1
                    per_task[name]["cache_hits"] += 1
                elif moved.image.kind == "vbs":
                    # A migration that misses the cache replays the
                    # decoder just like a load miss does.
                    bytes_decoded += self._expanded_bytes(moved.image)
            else:
                raise RuntimeManagementError(
                    f"unknown trace op {event.op!r}"
                )

        hits = (cache.stats.hits - base_hits) if cache else 0
        misses = (cache.stats.misses - base_misses) if cache else 0
        lookups = hits + misses
        report = {
            "report_version": REPORT_VERSION,
            "trace": {
                "kind": trace.kind,
                "seed": trace.seed,
                "length": len(trace.events),
                "tasks": list(trace.tasks),
            },
            "events": counts,
            "cache": {
                "enabled": cache is not None,
                "hits": hits,
                "misses": misses,
                "hit_rate": (hits / lookups) if lookups else 0.0,
                "evictions": (
                    (cache.stats.evictions - base_evictions) if cache else 0
                ),
                "entries": len(cache) if cache else 0,
                "bytes_in_cache": cache.total_bytes if cache else 0,
                "capacity": cache.capacity if cache else 0,
                "capacity_bytes": (
                    cache.capacity_bytes if cache else None
                ),
            },
            "cycles": cycles,
            "load_cache_hits": load_cache_hits,
            "bytes_decoded": bytes_decoded,
            "per_task": {name: per_task[name] for name in sorted(per_task)},
            "fabric": {
                "width": ctrl.fabric.width,
                "height": ctrl.fabric.height,
                "utilization": ctrl.utilization(),
                "resident_at_end": sorted(ctrl.resident),
            },
        }
        return report


# -- end-to-end scenario harness --------------------------------------------------


def synthesize_task_images(
    n_tasks: int = 3,
    channel_width: int = 8,
    cluster_size: int = 1,
    seed: int = 1,
    base_luts: int = 10,
    codecs: "str | Sequence[str] | None" = None,
) -> "List[Tuple[str, object]]":
    """Deterministic synthetic task set: (name, VirtualBitstream) pairs.

    Each task is a small generated circuit pushed through the full CAD
    flow and vbsgen — real containers with real decode cost, sized to
    stay interactive (a few seconds for the default three tasks).
    """
    from repro.arch.params import ArchParams
    from repro.bitstream.expand import expand_routing
    from repro.cad.flow import run_flow
    from repro.netlist import CircuitSpec, generate_circuit
    from repro.vbs.encode import encode_flow

    params = ArchParams(channel_width=channel_width)
    images = []
    for i in range(n_tasks):
        name = f"task{i}"
        spec = CircuitSpec(
            name,
            n_luts=base_luts + 3 * i,
            n_inputs=5 + (i % 3),
            n_outputs=4,
        )
        netlist = generate_circuit(spec)
        flow = run_flow(netlist, params, seed=seed + i)
        config = expand_routing(
            flow.design, flow.placement, flow.routing, flow.rrg
        )
        vbs = encode_flow(
            flow, config, cluster_size=cluster_size, codecs=codecs
        )
        images.append((name, vbs))
    return images


def run_scenario(
    kind: str = "hot-set",
    n_tasks: int = 3,
    length: int = 40,
    seed: int = 1,
    channel_width: int = 8,
    cluster_size: int = 1,
    cache_capacity: "int | None" = 16,
    cache_capacity_bytes: Optional[int] = None,
    memo_entries: Optional[int] = 4096,
    strategy: str = FIRST_FIT,
    codecs: "str | Sequence[str] | None" = None,
    cache_dir: "str | None" = None,
) -> dict:
    """Build a synthetic multi-task scenario and replay one trace.

    The one-call harness behind ``repro runtime simulate``, the eval
    runner and the benchmark smoke job: synthesizes ``n_tasks`` VBS
    images, sizes an all-CLB fabric with room for roughly one-and-a-half
    tasks (so eviction pressure is real), generates the ``kind`` trace
    and returns the simulator's report with the scenario parameters
    attached.  ``cache_dir`` warms the decode cache from a persisted
    directory before the replay and saves it back afterwards —
    cross-process reuse next to the eval results cache.
    """
    from repro.arch.fabric import FabricArch
    from repro.arch.params import ArchParams
    from repro.runtime.controller import ReconfigurationController
    from repro.runtime.memory import ExternalMemory

    images = synthesize_task_images(
        n_tasks=n_tasks,
        channel_width=channel_width,
        cluster_size=cluster_size,
        seed=seed,
        codecs=codecs,
    )
    max_w = max(vbs.layout.width for _name, vbs in images)
    max_h = max(vbs.layout.height for _name, vbs in images)
    fabric_w = max_w + max_w // 2 + 1
    fabric_h = max_h + 1
    params = ArchParams(channel_width=channel_width)
    fabric = FabricArch(
        params, fabric_w, fabric_h,
        {(x, y): "clb" for x in range(fabric_w) for y in range(fabric_h)},
    )
    ctrl = ReconfigurationController(
        fabric,
        ExternalMemory(),
        cache_capacity=cache_capacity,
        cache_capacity_bytes=cache_capacity_bytes,
        memo_entries=memo_entries,
    )
    restored = 0
    if cache_dir is not None and ctrl.decode_cache is not None:
        restored = ctrl.decode_cache.load(cache_dir)
    for name, vbs in images:
        ctrl.store_vbs(name, vbs)

    trace = generate_trace(kind, [name for name, _v in images], length,
                           seed=seed)
    manager = FabricManager(ctrl, strategy=strategy)
    report = WorkloadSimulator(manager).run(trace)
    report["scenario"] = {
        "n_tasks": n_tasks,
        "channel_width": channel_width,
        "cluster_size": cluster_size,
        "strategy": strategy,
        "memo_entries": memo_entries,
        "cache_entries_restored": restored,
        "image_bits": {
            name: vbs.container_bits for name, vbs in images
        },
    }
    if cache_dir is not None and ctrl.decode_cache is not None:
        ctrl.decode_cache.save(cache_dir)
    return report


def summarize_report(report: dict) -> str:
    """A terse human-readable digest of a simulation report."""
    ev, ca, cy = report["events"], report["cache"], report["cycles"]
    lines = [
        f"trace: {report['trace']['kind']} seed={report['trace']['seed']} "
        f"({report['trace']['length']} events, "
        f"{len(report['trace']['tasks'])} tasks)",
        f"events: {ev['loads']} loads, {ev['unloads']} unloads, "
        f"{ev['migrations']} migrations, {ev['skipped']} skipped, "
        f"{ev['evictions_for_space']} evictions for space",
        f"cache: {ca['hits']} hits / {ca['misses']} misses "
        f"(hit rate {ca['hit_rate']:.1%}), {ca['entries']} entries, "
        f"{ca['bytes_in_cache']} bytes resident",
        f"cycles: fetch {cy['fetch']}, decode {cy['decode']}, "
        f"write {cy['write']} — total {cy['total']}",
        f"bytes decoded: {report['bytes_decoded']}",
    ]
    return "\n".join(lines)
