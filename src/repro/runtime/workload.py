"""Trace-driven multi-task workload simulation over the runtime manager.

The paper's run-time system exists to amortize de-virtualization cost
across *repeated* task loads on a shared fabric — a behavior no single
``load_task`` call can exhibit.  This module supplies the missing
scenario layer: a seeded trace generator producing load/unload/migrate
arrival sequences under several mixes, and a simulator replaying a trace
through a :class:`~repro.runtime.manager.FabricManager`, accumulating the
cost model's cycle budgets and the decode cache's counters into a
structured, JSON-serializable report.

Everything is deterministic: the generator derives every choice from
``random.Random(f"{kind}:{seed}")``, the CAD flows behind the synthetic
task images are seeded, and the cost model is integer arithmetic — the
same seed always yields the identical report, which is what makes the
reports usable as regression goldens (``tests/runtime/test_workload.py``)
and as CI artifacts worth diffing.

Arrival mixes (:data:`TRACE_KINDS`):

* ``hot-set`` — a small hot set of tasks re-arrives with high
  probability over a cold tail; the decode cache's bread and butter.
* ``round-robin`` — every task cycles in order; exercises steady
  migration-free churn at a hit rate set by cache capacity vs task count.
* ``adversarial`` — distinct images are loaded and immediately unloaded
  in a cycle longer than the cache; with ``cache_capacity`` below the
  task count every lookup misses (LRU's worst case), pinning the
  thrashing floor.
* ``zipf`` — task popularity follows a Zipf(α) law over the task list
  order (rank 1 = first name); the skewed on-demand mix of an
  algorithm-on-demand co-processor, between hot-set's two-class split
  and round-robin's uniformity.

Closed loop versus open loop: by default a trace is a pure *sequence* —
the simulator replays one event after the other and reports summed cycle
budgets.  ``arrivals="poisson"`` turns the same mixes into an
**open-loop** trace: every request arrival is stamped with a virtual
timestamp drawn from a seeded Poisson process (exponential
inter-arrivals of mean ``mean_interarrival`` cycles, drawn from a
*separate* rng stream so the task mix of a seed is identical with and
without timestamps).  The simulator then runs a virtual clock — service
time from the cost model, FIFO queueing when requests arrive faster
than reconfiguration completes — and the report gains latency
percentiles (p50/p95/p99), queue depths and per-phase breakdowns; see
:class:`WorkloadSimulator`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import RuntimeManagementError
from repro.runtime.manager import FIRST_FIT, FabricManager

#: Supported arrival mixes of :func:`generate_trace`.
TRACE_KINDS = ("hot-set", "round-robin", "adversarial", "zipf")

#: Supported open-loop arrival processes (``None`` = closed loop).
ARRIVAL_KINDS = ("poisson",)

#: File name of the persisted controller :class:`~repro.vbs.devirt.DecodeMemo`
#: inside a ``cache_dir`` — deliberately outside the decode cache's
#: ``decode_*.pkl`` entry-file namespace (its loader globs that prefix).
MEMO_FILE_NAME = "devirt_memo.pkl"

#: Version stamp of the report schema (bump on renames/removals; key
#: additions are compatible).
REPORT_VERSION = 1


@dataclass(frozen=True)
class TraceEvent:
    """One runtime-manager request: ``op`` in load/unload/migrate.

    ``at`` is the open-loop arrival timestamp in controller cycles
    (``None`` in closed-loop traces).  Events emitted by one request
    arrival — the eviction unloads preceding a load — share its stamp.
    """

    op: str
    task: str
    at: Optional[int] = None


@dataclass(frozen=True)
class WorkloadTrace:
    """A seeded, replayable sequence of task arrivals.

    ``arrivals``/``mean_interarrival`` record the open-loop arrival
    process the events were stamped with (``None`` for closed-loop
    traces); ``zipf_alpha`` records the popularity skew of the ``zipf``
    mix.
    """

    kind: str
    seed: int
    tasks: Tuple[str, ...]
    events: Tuple[TraceEvent, ...]
    arrivals: Optional[str] = None
    mean_interarrival: Optional[int] = None
    zipf_alpha: Optional[float] = None

    def __len__(self) -> int:
        return len(self.events)

    @property
    def open_loop(self) -> bool:
        """True when the events carry arrival timestamps."""
        return self.arrivals is not None


def validate_trace_request(
    kind: str,
    arrivals: Optional[str] = None,
    mean_interarrival: int = 2000,
    zipf_alpha: float = 1.1,
    length: int = 1,
    max_resident: int = 1,
) -> None:
    """Reject unknown mixes/arrival processes and bad parameters.

    Shared by :func:`generate_trace` and the entry points that do
    expensive work *before* generating a trace (``run_scenario``
    synthesizes full CAD flows first) — a typo'd mix name must fail in
    milliseconds, not after seconds of placement and routing.

    ``length`` and ``max_resident`` must both be at least 1: a
    zero-length trace is a request for nothing (callers that need the
    degenerate empty report can hand-build a :class:`WorkloadTrace`),
    and ``max_resident=0`` used to escape as a bare ``IndexError`` from
    the generator's eviction loop — no task can ever become resident,
    so the symbolic victim pop underflowed.
    """
    if kind not in TRACE_KINDS:
        raise RuntimeManagementError(
            f"unknown trace kind {kind!r}; known: {TRACE_KINDS}"
        )
    if arrivals is not None and arrivals not in ARRIVAL_KINDS:
        raise RuntimeManagementError(
            f"unknown arrival process {arrivals!r}; known: {ARRIVAL_KINDS}"
        )
    if arrivals is not None and mean_interarrival < 1:
        raise RuntimeManagementError(
            "mean inter-arrival time must be at least one cycle"
        )
    if kind == "zipf" and zipf_alpha <= 0:
        raise RuntimeManagementError("zipf alpha must be positive")
    if length < 1:
        raise RuntimeManagementError(
            f"trace length must be at least one event (got {length})"
        )
    if max_resident < 1:
        raise RuntimeManagementError(
            f"max_resident must be at least one task (got {max_resident})"
        )


def generate_trace(
    kind: str,
    task_names: Sequence[str],
    length: int,
    seed: int = 0,
    hot_fraction: float = 0.25,
    hot_weight: float = 0.8,
    max_resident: int = 2,
    arrivals: Optional[str] = None,
    mean_interarrival: int = 2000,
    zipf_alpha: float = 1.1,
) -> WorkloadTrace:
    """Generate a ``length``-event trace under the requested arrival mix.

    The generator tracks a symbolic resident set (bounded by
    ``max_resident``) so emitted sequences are always *replayable*: a
    load of a resident task is preceded by its unload (a task finishing
    and re-arriving — the cache's reuse case), and arrivals past the
    resident bound first unload the symbolically oldest task.  The
    simulator still tolerates infeasible events defensively, but traces
    from here never rely on that.

    ``arrivals="poisson"`` stamps every request arrival with a virtual
    timestamp: inter-arrival gaps are exponential with mean
    ``mean_interarrival`` cycles (rounded to whole cycles, at least 1),
    drawn from a dedicated rng stream — the task mix of a given
    ``(kind, seed)`` is byte-identical with and without timestamps.
    ``zipf_alpha`` sets the popularity skew of the ``zipf`` mix (rank
    ``r`` in the task list arrives with probability proportional to
    ``r ** -alpha``).
    """
    validate_trace_request(
        kind, arrivals, mean_interarrival, zipf_alpha,
        length=length, max_resident=max_resident,
    )
    if not task_names:
        raise RuntimeManagementError("trace needs at least one task name")
    names = list(task_names)
    rng = random.Random(f"{kind}:{seed}")
    #: Arrival clock stream, independent of the task-choice stream: the
    #: open-loop variant of a seed replays the closed-loop task mix.
    rng_arrivals = random.Random(f"arrivals:{kind}:{seed}")
    now = 0
    resident: List[str] = []  # symbolic, oldest first
    events: List[TraceEvent] = []

    n_hot = max(1, round(len(names) * hot_fraction))
    hot, cold = names[:n_hot], names[n_hot:]
    zipf_weights = [
        (rank + 1) ** -zipf_alpha for rank in range(len(names))
    ]
    cursor = 0

    def emit(op: str, task: str) -> None:
        events.append(TraceEvent(
            op, task, at=now if arrivals is not None else None
        ))

    def arrive(task: str) -> None:
        """Emit the events of one task arrival (evict/reload as needed)."""
        if task in resident:
            resident.remove(task)
            emit("unload", task)
        while len(resident) >= max_resident:
            victim = resident.pop(0)
            emit("unload", victim)
        emit("load", task)
        resident.append(task)

    while len(events) < length:
        if arrivals is not None:
            now += max(
                1, round(rng_arrivals.expovariate(1.0 / mean_interarrival))
            )
        if kind == "hot-set":
            if cold and rng.random() >= hot_weight:
                task = rng.choice(cold)
            else:
                task = rng.choice(hot)
            if task in resident and rng.random() < 0.25:
                emit("migrate", task)
                continue
            arrive(task)
        elif kind == "zipf":
            arrive(rng.choices(names, weights=zipf_weights)[0])
        elif kind == "round-robin":
            arrive(names[cursor % len(names)])
            cursor += 1
        else:  # adversarial cache-thrashing
            task = names[cursor % len(names)]
            cursor += 1
            emit("load", task)
            emit("unload", task)

    return WorkloadTrace(
        kind=kind,
        seed=seed,
        tasks=tuple(names),
        events=tuple(events[:length]),
        arrivals=arrivals,
        mean_interarrival=mean_interarrival if arrivals is not None else None,
        zipf_alpha=zipf_alpha if kind == "zipf" else None,
    )


def _expanded_bytes(manager: FabricManager, image) -> int:
    from repro.runtime.costmodel import expanded_image_bytes

    nraw = manager.controller.fabric.params.nraw
    return expanded_image_bytes(image.width, image.height, nraw)


def _charge(totals: Dict[str, int], cost) -> None:
    totals["fetch"] += cost.fetch_cycles
    totals["decode"] += cost.decode_cycles
    totals["write"] += cost.write_cycles
    totals["total"] += cost.total_cycles


def new_sim_state(task_names: Sequence[str]) -> dict:
    """A fresh per-replay accumulator (one per shard in fleet runs)."""
    return {
        "counts": {
            "loads": 0, "unloads": 0, "migrations": 0,
            "skipped": 0, "failed_loads": 0, "evictions_for_space": 0,
        },
        "cycles": {"fetch": 0, "decode": 0, "write": 0, "total": 0},
        "load_cache_hits": 0,
        "bytes_decoded": 0,
        "per_task": {
            name: {"loads": 0, "cache_hits": 0, "migrations": 0}
            for name in task_names
        },
    }


def apply_trace_event(manager: FabricManager, event: TraceEvent, state: dict):
    """Process one trace event on ``manager``; returns the cost or None.

    The single definition of the simulator's arrival policy, shared by
    the one-fabric :class:`WorkloadSimulator` replay and the fleet's
    per-shard replay (:mod:`repro.runtime.fleet`).  The return value is
    the :class:`~repro.runtime.costmodel.LoadCost` of a reconfiguration
    request that actually executed (a load or a migration) — what the
    open-loop clock charges as service time.  Skipped, failed and unload
    events return None (an unload is a zero-service bookkeeping request
    in this model: clearing a region is not metered by the cost model).
    """
    mgr = manager
    ctrl = mgr.controller
    counts = state["counts"]
    per_task = state["per_task"]
    name = event.task
    if event.op == "load":
        if name in ctrl.resident:
            counts["skipped"] += 1
            return None
        image = ctrl.memory.image(name)
        if image is None:
            counts["failed_loads"] += 1
            return None
        # The manager's own eviction policy (make_room returns []
        # when a region is already free), kept visible here only
        # because the report counts the victims.
        evicted = mgr.make_room(image.width, image.height)
        if evicted is None:
            counts["failed_loads"] += 1
            return None
        counts["evictions_for_space"] += len(evicted)
        counts["unloads"] += len(evicted)
        task = mgr.place_task(name)
        counts["loads"] += 1
        per_task[name]["loads"] += 1
        _charge(state["cycles"], task.load_cost)
        if task.load_cost.cache_hit:
            state["load_cache_hits"] += 1
            per_task[name]["cache_hits"] += 1
        elif image.kind == "vbs":
            state["bytes_decoded"] += _expanded_bytes(mgr, image)
        return task.load_cost
    if event.op == "unload":
        if name not in ctrl.resident:
            counts["skipped"] += 1
            return None
        ctrl.unload_task(name)
        counts["unloads"] += 1
        return None
    if event.op == "migrate":
        resident = ctrl.resident.get(name)
        if resident is None:
            counts["skipped"] += 1
            return None
        region = resident.region
        target = mgr.find_origin(region.w, region.h, ignore=name)
        if target is None or target == (region.x, region.y):
            counts["skipped"] += 1
            return None
        moved = ctrl.migrate_task(name, target)
        counts["migrations"] += 1
        per_task[name]["migrations"] += 1
        _charge(state["cycles"], moved.load_cost)
        if moved.load_cost.cache_hit:
            state["load_cache_hits"] += 1
            per_task[name]["cache_hits"] += 1
        elif moved.image.kind == "vbs":
            # A migration that misses the cache replays the
            # decoder just like a load miss does.
            state["bytes_decoded"] += _expanded_bytes(mgr, moved.image)
        return moved.load_cost
    raise RuntimeManagementError(f"unknown trace op {event.op!r}")


def latency_section(
    latencies: List[int],
    queue_waits: List[int],
    phase_samples: Dict[str, List[int]],
) -> Optional[dict]:
    """The report's latency block, or None for zero serviced requests.

    A replay that serviced no reconfigurations has no latency
    distribution: the section is null (``percentile`` rejects empty
    samples), never a fabricated all-zero block.
    """
    from repro.runtime.costmodel import percentile

    if not latencies:
        return None
    return {
        "unit": "cycles",
        "requests": len(latencies),
        "p50": percentile(latencies, 50),
        "p95": percentile(latencies, 95),
        "p99": percentile(latencies, 99),
        "mean": sum(latencies) / len(latencies),
        "max": max(latencies),
        "queueing": {
            "p50": percentile(queue_waits, 50),
            "p95": percentile(queue_waits, 95),
            "p99": percentile(queue_waits, 99),
            "max": max(queue_waits),
            "total": sum(queue_waits),
        },
        "phases": {
            phase: {
                "p50": percentile(samples, 50),
                "p95": percentile(samples, 95),
                "p99": percentile(samples, 99),
            }
            for phase, samples in phase_samples.items()
        },
    }


def _request_subject(manager: FabricManager, events) -> Tuple[str, bool]:
    """The arriving task of one request group, and whether it is *hot*.

    A request group is the events sharing one arrival stamp: the
    eviction unloads preceding a load, then the load itself (or a lone
    migrate).  The subject is the task the arrival is *for* — the last
    load/migrate in the group — and it is hot when serving it is cheap:
    already fabric-resident, or its expansion sits warm in the decode
    cache (checked with :meth:`DecodeCache.peek`, which perturbs no
    hit/miss accounting).
    """
    subject = events[-1].task
    for event in events:
        if event.op in ("load", "migrate"):
            subject = event.task
    ctrl = manager.controller
    if subject in ctrl.resident:
        return subject, True
    cache = ctrl.decode_cache
    if cache is not None:
        from repro.runtime.costmodel import DecodeCache

        image = ctrl.memory.image(subject)
        if image is not None and image.kind == "vbs":
            if cache.peek(DecodeCache.key_for(image)) is not None:
                return subject, True
    return subject, False


class WorkloadSimulator:
    """Replay a :class:`WorkloadTrace` through a :class:`FabricManager`.

    Every image the trace names must already be stored in the
    controller's external memory.  The simulator owns the arrival
    policy — evicting oldest-resident tasks to make room, skipping
    infeasible events — and charges every load/migrate with the cost
    model's cycle breakdown, so the report's latency numbers are exactly
    what the controller would have measured.

    Open-loop traces (events stamped with arrival timestamps) are run
    through a virtual clock: the reconfiguration controller is a bank
    of ``servers`` parallel FIFO servers (default 1 — the historical
    single-server model, byte-identical reports), a request's *service
    time* is its cost-model cycle total, it starts at ``max(arrival,
    earliest server-free time)`` (the difference is its *queueing
    delay*), and its *latency* is ``finish - arrival``.  The report
    then carries p50/p95/p99 latency, queue depths sampled at every
    arrival, per-phase (fetch/decode/write) percentiles and the clock's
    makespan, with utilization normalized by the server count — the
    numbers a production deployment is sized by.  Closed-loop reports
    are unchanged (the open-loop keys are simply absent).

    ``policy`` arms admission control at the arrival door (a
    :data:`~repro.runtime.admission.POLICY_KINDS` name or an
    :class:`~repro.runtime.admission.AdmissionPolicy` instance;
    requires an open-loop trace): cold requests past the queue-depth
    threshold are dropped or deferred, or dispatched on a background
    lane under ``priority`` — see :mod:`repro.runtime.admission`.  The
    report gains an ``admission`` section with per-policy counters and
    the recorded-latency policy store's digest.  Dropped requests never
    reach the fabric manager (and the observer never sees their
    events).

    ``observer`` is called after every processed event with the
    :class:`TraceEvent` — the hook the lifecycle property tests use to
    assert invariants (e.g. shared-dictionary refcounts) at every
    intermediate state, not just at the end of the replay.

    ``fleet`` (instead of ``manager``) replays the trace across a
    sharded :class:`~repro.runtime.fleet.FleetManager` with one virtual
    reconfiguration server bank per shard; the report then carries
    per-shard *and* fleet-wide sections (see
    :mod:`repro.runtime.fleet`).  A fleet's server count lives on the
    :class:`FleetManager` itself, so ``servers``/``policy`` here apply
    to single-manager replays only.
    """

    def __init__(
        self,
        manager: "Optional[FabricManager]" = None,
        observer: "Optional[Callable[[TraceEvent], None]]" = None,
        fleet=None,
        servers: int = 1,
        policy=None,
        queue_threshold: int = 4,
    ):
        from repro.runtime.admission import make_policy

        if (manager is None) == (fleet is None):
            raise RuntimeManagementError(
                "WorkloadSimulator needs exactly one of manager= or fleet="
            )
        if servers < 1:
            raise RuntimeManagementError(
                f"server count must be at least 1 (got {servers})"
            )
        resolved = make_policy(policy, queue_threshold=queue_threshold)
        if fleet is not None and servers != 1:
            raise RuntimeManagementError(
                "a fleet's server count is set on the FleetManager "
                "(servers= here applies to single-manager replays)"
            )
        if fleet is not None and resolved is not None:
            raise RuntimeManagementError(
                "admission policies apply to single-manager replays "
                "(fleet admission is routed per shard, not at one door)"
            )
        self.manager = manager
        self.fleet = fleet
        self.observer = observer
        self.servers = servers
        self.policy = resolved

    # -- event handlers ---------------------------------------------------------

    def _apply_event(self, event: TraceEvent, state: dict):
        return apply_trace_event(self.manager, event, state)

    def run(self, trace: WorkloadTrace) -> dict:
        """Replay ``trace``; return the structured report (JSON-safe)."""
        import heapq
        from bisect import insort

        if self.fleet is not None:
            from repro.runtime.fleet import simulate_fleet

            return simulate_fleet(
                self.fleet, trace, observer=self.observer
            )

        mgr = self.manager
        ctrl = mgr.controller
        cache = ctrl.decode_cache
        policy = self.policy
        if policy is not None and not trace.open_loop:
            raise RuntimeManagementError(
                "admission policies need an open-loop trace "
                "(closed-loop replays have no arrival clock)"
            )
        base_hits = cache.stats.hits if cache else 0
        base_misses = cache.stats.misses if cache else 0
        base_evictions = cache.stats.evictions if cache else 0
        base_dict_faults = ctrl.shared_dict_faults
        base_dict_drops = ctrl.shared_dict_drops

        state = new_sim_state(trace.tasks)

        # Virtual clock of the open-loop model: a bank of ``servers``
        # FIFO reconfiguration servers (a min-heap of server-free
        # times), service times from the cost model.  Events sharing a
        # timestamp form one *request* (the generator stamps a load and
        # the eviction unloads preceding it with the arrival's time, and
        # distinct arrivals always get distinct stamps — gaps are >= 1
        # cycle), so queue depth and the arrival count are per-request;
        # a request's events run back-to-back on the one server it was
        # dispatched to.  With k > 1, requests finish out of arrival
        # order, so the in-flight finish times live in a sorted list
        # rather than the historical monotone deque.
        open_loop = trace.open_loop
        servers = self.servers
        server_free: List[int] = [0] * servers  # min-heap of free times
        busy_cycles = 0
        makespan = 0
        in_flight: List[int] = []  # request finish times, sorted
        latencies: List[int] = []
        queue_waits: List[int] = []
        phase_samples: Dict[str, List[int]] = {
            "fetch": [], "decode": [], "write": [],
        }
        depth_sum = 0
        max_depth = 0
        arrivals_seen = 0
        admitted = 0
        deferred = 0
        dropped = 0
        lane_counts = {"hot": 0, "cold": 0}
        max_resident_tables = len(ctrl.shared_dicts)

        def _apply(event: TraceEvent):
            nonlocal max_resident_tables
            cost = self._apply_event(event, state)
            max_resident_tables = max(
                max_resident_tables, len(ctrl.shared_dicts)
            )
            if self.observer is not None:
                self.observer(event)
            return cost

        # Deferred request groups awaiting re-admission:
        # (retry_at, seq, original arrival, events, attempts so far).
        pending: List[tuple] = []
        seq = 0

        def _dispatch(arrival: int, clock_at: int, events, defers: int):
            """Admit (or drop/defer) one request group arriving now.

            ``arrival`` is the group's original trace stamp — latency
            and queueing are measured against it, so deferral delay
            shows up as queueing, honestly.  ``clock_at`` is when the
            group is at the door (later than ``arrival`` for retries).
            """
            nonlocal seq, admitted, deferred, dropped, arrivals_seen
            nonlocal depth_sum, max_depth, busy_cycles, makespan
            while in_flight and in_flight[0] <= clock_at:
                in_flight.pop(0)
            door_depth = len(in_flight)
            hot = True
            if policy is not None:
                _subject, hot = _request_subject(mgr, events)
                decision = policy.decide(hot, door_depth)
                if decision == "drop":
                    # The request never reaches the fabric manager.
                    dropped += 1
                    return
                if decision == "defer" and defers < policy.max_defers:
                    deferred += 1
                    retry_at = max(clock_at + 1, server_free[0])
                    heapq.heappush(
                        pending,
                        (retry_at, seq, arrival, events, defers + 1),
                    )
                    seq += 1
                    return
                admitted += 1
                lane_counts["hot" if hot else "cold"] += 1
            # Priority's background lane: a cold request yields to every
            # server's queued work instead of taking the earliest-free
            # slot.  At k=1 both lanes are the same server — plain FIFO.
            background = (
                policy is not None
                and policy.kind == "priority"
                and not hot
            )
            if background:
                idx = max(
                    range(servers), key=lambda i: (server_free[i], -i)
                )
                cursor = max(clock_at, server_free[idx])
            else:
                cursor = max(clock_at, server_free[0])
            finish = cursor
            for event in events:
                cost = _apply(event)
                if event.at is None:
                    continue
                start = cursor
                service = cost.total_cycles if cost is not None else 0
                finish = start + service
                cursor = finish
                busy_cycles += service
                makespan = max(makespan, finish)
                if cost is not None:  # a reconfiguration was serviced
                    latency = finish - arrival
                    latencies.append(latency)
                    queue_waits.append(start - arrival)
                    phase_samples["fetch"].append(cost.fetch_cycles)
                    phase_samples["decode"].append(cost.decode_cycles)
                    phase_samples["write"].append(cost.write_cycles)
                    if policy is not None:
                        policy.store.record(hot, door_depth, latency)
            if background:
                server_free[idx] = finish
                heapq.heapify(server_free)
            else:
                heapq.heapreplace(server_free, finish)
            insort(in_flight, finish)
            arrivals_seen += 1
            depth = len(in_flight)  # unfinished requests incl. self
            depth_sum += depth
            max_depth = max(max_depth, depth)

        if not open_loop:
            for event in trace.events:
                _apply(event)
        else:
            # Group consecutive events sharing an arrival stamp into
            # request groups; untimed events ride with the group they
            # follow (applied off-clock, the historical behavior).
            groups: List[tuple] = []
            cur_at: Optional[int] = None
            for event in trace.events:
                if event.at is not None and event.at != cur_at:
                    cur_at = event.at
                    groups.append((cur_at, [event]))
                elif groups:
                    groups[-1][1].append(event)
                else:
                    groups.append((None, [event]))
            for at, events in groups:
                if at is None:
                    for event in events:
                        _apply(event)
                    continue
                while pending and pending[0][0] <= at:
                    retry_at, _s, orig_at, pev, pdefers = heapq.heappop(
                        pending
                    )
                    _dispatch(orig_at, retry_at, pev, pdefers)
                _dispatch(at, at, events, 0)
            while pending:
                retry_at, _s, orig_at, pev, pdefers = heapq.heappop(
                    pending
                )
                _dispatch(orig_at, retry_at, pev, pdefers)

        hits = (cache.stats.hits - base_hits) if cache else 0
        misses = (cache.stats.misses - base_misses) if cache else 0
        lookups = hits + misses
        report = {
            "report_version": REPORT_VERSION,
            "trace": {
                "kind": trace.kind,
                "seed": trace.seed,
                "length": len(trace.events),
                "tasks": list(trace.tasks),
            },
            "events": state["counts"],
            "cache": {
                "enabled": cache is not None,
                "hits": hits,
                "misses": misses,
                "hit_rate": (hits / lookups) if lookups else 0.0,
                "evictions": (
                    (cache.stats.evictions - base_evictions) if cache else 0
                ),
                "entries": len(cache) if cache else 0,
                "bytes_in_cache": cache.total_bytes if cache else 0,
                "capacity": cache.capacity if cache else 0,
                "capacity_bytes": (
                    cache.capacity_bytes if cache else None
                ),
            },
            "cycles": state["cycles"],
            "load_cache_hits": state["load_cache_hits"],
            "bytes_decoded": state["bytes_decoded"],
            "per_task": {
                name: state["per_task"][name]
                for name in sorted(state["per_task"])
            },
            "shared_dicts": {
                "resident_at_end": sorted(ctrl.shared_dicts),
                "max_resident": max_resident_tables,
                "faults": ctrl.shared_dict_faults - base_dict_faults,
                "drops": ctrl.shared_dict_drops - base_dict_drops,
            },
            "fabric": {
                "width": ctrl.fabric.width,
                "height": ctrl.fabric.height,
                "utilization": ctrl.utilization(),
                "resident_at_end": sorted(ctrl.resident),
            },
        }
        if open_loop:
            report["trace"]["arrivals"] = trace.arrivals
            report["trace"]["mean_interarrival"] = trace.mean_interarrival
            if trace.zipf_alpha is not None:
                report["trace"]["zipf_alpha"] = trace.zipf_alpha
            report["latency"] = latency_section(
                latencies, queue_waits, phase_samples
            )
            report["queue"] = {
                "arrivals": arrivals_seen,
                "max_depth": max_depth,
                "mean_depth": (
                    depth_sum / arrivals_seen if arrivals_seen else 0.0
                ),
            }
            report["clock"] = {
                "makespan": makespan,
                "busy_cycles": busy_cycles,
                "utilization": (
                    busy_cycles / (servers * makespan) if makespan else 0.0
                ),
            }
            if servers > 1:
                report["clock"]["servers"] = servers
            if policy is not None:
                report["admission"] = {
                    "policy": policy.kind,
                    "queue_threshold": policy.queue_threshold,
                    "admitted": admitted,
                    "deferred": deferred,
                    "dropped": dropped,
                    "lanes": dict(lane_counts),
                    "store": policy.store.snapshot(),
                }
        return report


# -- end-to-end scenario harness --------------------------------------------------


def synthesize_task_images(
    n_tasks: int = 3,
    channel_width: int = 8,
    cluster_size: int = 1,
    seed: int = 1,
    base_luts: int = 10,
    codecs: "str | Sequence[str] | None" = None,
    task_scope: bool = False,
    containers_per_task: int = 2,
):
    """Deterministic synthetic task set: (name, VirtualBitstream) pairs.

    Each task is a small generated circuit pushed through the full CAD
    flow and vbsgen — real containers with real decode cost, sized to
    stay interactive (a few seconds for the default three tasks).

    ``task_scope=True`` switches to the multi-container ``encode_task``
    mode and returns :func:`synthesize_task_scope_images`'s group list
    instead — ``n_tasks`` task groups of ``containers_per_task``
    containers each, every group sharing one external dictionary.
    """
    from repro.arch.params import ArchParams
    from repro.bitstream.expand import expand_routing
    from repro.cad.flow import run_flow
    from repro.netlist import CircuitSpec, generate_circuit
    from repro.vbs.encode import encode_flow

    if task_scope:
        return synthesize_task_scope_images(
            n_tasks=n_tasks,
            containers_per_task=containers_per_task,
            channel_width=channel_width,
            cluster_size=cluster_size,
            seed=seed,
            codecs=codecs if codecs is not None else "auto",
        )
    params = ArchParams(channel_width=channel_width)
    images = []
    for i in range(n_tasks):
        name = f"task{i}"
        spec = CircuitSpec(
            name,
            n_luts=base_luts + 3 * i,
            n_inputs=5 + (i % 3),
            n_outputs=4,
        )
        netlist = generate_circuit(spec)
        flow = run_flow(netlist, params, seed=seed + i)
        config = expand_routing(
            flow.design, flow.placement, flow.routing, flow.rrg
        )
        vbs = encode_flow(
            flow, config, cluster_size=cluster_size, codecs=codecs
        )
        images.append((name, vbs))
    return images


def synthesize_task_scope_images(
    n_tasks: int = 2,
    containers_per_task: int = 2,
    channel_width: int = 8,
    cluster_size: int = 1,
    seed: int = 1,
    base_luts: int = 24,
    codecs: "str | Sequence[str] | None" = "auto",
):
    """Deterministic multi-container task groups sharing dictionaries.

    Each of the ``n_tasks`` groups is one replicated-datapath circuit
    (a small truth-table vocabulary via ``CircuitSpec.pattern_pool``,
    the repetition structure the dictionary codec exploits) placed and
    routed ``containers_per_task`` times at different seeds — distinct
    container bytes over a shared logic vocabulary, so the task-scope
    ``encode_task`` keep-if-it-pays selection adopts one external table
    per group.  Returns ``[(names, TaskEncodeResult), ...]`` with
    container names ``task<g>.<c>`` and dictionary ids ``g + 1``;
    publish each group with
    :meth:`~repro.runtime.controller.ReconfigurationController.store_task`
    so traces over the container names drive the shared-dictionary
    refcount path under eviction pressure.
    """
    from repro.arch.params import ArchParams
    from repro.bitstream.expand import expand_routing
    from repro.cad.flow import run_flow
    from repro.netlist import CircuitSpec, generate_circuit
    from repro.vbs.encode import encode_task

    params = ArchParams(channel_width=channel_width)
    groups = []
    for g in range(n_tasks):
        spec = CircuitSpec(
            f"task{g}",
            n_luts=base_luts + 4 * g,
            n_inputs=6,
            n_outputs=4,
            pattern_pool=3,
        )
        netlist = generate_circuit(spec)
        jobs = []
        for c in range(containers_per_task):
            flow = run_flow(
                netlist, params, seed=seed + g * containers_per_task + c
            )
            config = expand_routing(
                flow.design, flow.placement, flow.routing, flow.rrg
            )
            jobs.append((flow, config))
        result = encode_task(
            jobs, dict_id=g + 1, cluster_size=cluster_size, codecs=codecs
        )
        names = [f"task{g}.{c}" for c in range(containers_per_task)]
        groups.append((names, result))
    return groups


def run_scenario(
    kind: str = "hot-set",
    n_tasks: int = 3,
    length: int = 40,
    seed: int = 1,
    channel_width: int = 8,
    cluster_size: int = 1,
    cache_capacity: "int | None" = 16,
    cache_capacity_bytes: Optional[int] = None,
    memo_entries: Optional[int] = 4096,
    strategy: str = FIRST_FIT,
    codecs: "str | Sequence[str] | None" = None,
    cache_dir: "str | None" = None,
    arrivals: Optional[str] = None,
    mean_interarrival: int = 2000,
    zipf_alpha: float = 1.1,
    task_scope: bool = False,
    containers_per_task: int = 2,
    shards: int = 1,
    router: str = "hash",
    migrate_backlog: Optional[int] = None,
    servers: int = 1,
    policy: "str | None" = None,
    queue_threshold: int = 4,
) -> dict:
    """Build a synthetic multi-task scenario and replay one trace.

    The one-call harness behind ``repro runtime simulate``, the eval
    runner and the benchmark smoke job: synthesizes ``n_tasks`` VBS
    images, sizes an all-CLB fabric with room for roughly one-and-a-half
    tasks (so eviction pressure is real), generates the ``kind`` trace
    and returns the simulator's report with the scenario parameters
    attached.  ``cache_dir`` warms the decode cache *and* the
    controller's :class:`~repro.vbs.devirt.DecodeMemo` from a persisted
    directory before the replay and saves both back afterwards —
    cross-process reuse next to the eval results cache.

    ``arrivals="poisson"`` runs the open-loop engine (latency
    percentiles, queue depths; see :class:`WorkloadSimulator`);
    ``task_scope=True`` synthesizes ``n_tasks`` multi-container task
    groups through ``encode_task`` instead of independent images, so the
    trace (over ``n_tasks * containers_per_task`` container names)
    exercises the VERSION 4 shared-dictionary refcount path under the
    fabric's eviction pressure.

    ``shards > 1`` replays the trace across a sharded fabric fleet
    (:mod:`repro.runtime.fleet`): every shard gets its own identically
    sized fabric, controller, decode cache and memo, all sharing one
    external memory where images and shared dictionaries are published
    once; ``router`` picks the placement policy and ``migrate_backlog``
    arms cross-shard saturation migration.  The ``shards == 1`` default
    is byte-identical to the historical single-fabric report.

    ``servers`` widens every fabric's reconfiguration controller to a
    bank of k parallel virtual servers (open-loop clock only), and
    ``policy``/``queue_threshold`` arm admission control at the arrival
    door (single-fabric open-loop runs; see
    :mod:`repro.runtime.admission`).
    """
    from repro.arch.fabric import FabricArch
    from repro.arch.params import ArchParams
    from repro.runtime.admission import (
        AdmissionPolicy,
        validate_policy_request,
    )
    from repro.runtime.controller import ReconfigurationController
    from repro.runtime.fleet import FleetManager, validate_fleet_request
    from repro.runtime.memory import ExternalMemory

    # Fail on a bad mix/arrival/fleet/policy request before expensive
    # synthesis.
    validate_trace_request(
        kind, arrivals, mean_interarrival, zipf_alpha, length=length
    )
    validate_fleet_request(shards, router)
    if servers < 1:
        raise RuntimeManagementError(
            f"server count must be at least 1 (got {servers})"
        )
    if isinstance(policy, AdmissionPolicy):
        # A pre-built policy instance (e.g. sharing one store across
        # replays) is always armed — even the base admit-everything
        # policy reports its admission section and records latencies.
        policy_armed = True
        policy_name = policy.kind
    else:
        policy_armed = policy is not None and policy != "none"
        policy_name = policy
        if policy is not None:
            validate_policy_request(policy, queue_threshold)
    if policy_armed and arrivals is None:
        raise RuntimeManagementError(
            "admission policies need an open-loop trace "
            "(pass arrivals='poisson')"
        )
    if policy_armed and shards > 1:
        raise RuntimeManagementError(
            "admission policies apply to single-fabric runs "
            "(fleet admission is routed per shard, not at one door)"
        )
    if migrate_backlog is not None and shards == 1:
        raise RuntimeManagementError(
            "migrate_backlog needs a fleet (shards >= 2) to migrate "
            "between"
        )
    if migrate_backlog is not None and arrivals is None:
        raise RuntimeManagementError(
            "migrate_backlog needs an open-loop trace "
            "(closed-loop replays have no backlog clock; "
            "pass arrivals='poisson')"
        )

    groups = []
    if task_scope:
        groups = synthesize_task_images(
            n_tasks=n_tasks,
            channel_width=channel_width,
            cluster_size=cluster_size,
            seed=seed,
            codecs=codecs,
            task_scope=True,
            containers_per_task=containers_per_task,
        )
        images = [
            (name, vbs)
            for names, result in groups
            for name, vbs in zip(names, result.containers)
        ]
    else:
        images = synthesize_task_images(
            n_tasks=n_tasks,
            channel_width=channel_width,
            cluster_size=cluster_size,
            seed=seed,
            codecs=codecs,
        )
    max_w = max(vbs.layout.width for _name, vbs in images)
    max_h = max(vbs.layout.height for _name, vbs in images)
    fabric_w = max_w + max_w // 2 + 1
    fabric_h = max_h + 1
    params = ArchParams(channel_width=channel_width)
    memory = ExternalMemory()

    def _build_fabric():
        return FabricArch(
            params, fabric_w, fabric_h,
            {(x, y): "clb"
             for x in range(fabric_w) for y in range(fabric_h)},
        )

    def _shard_cache_dir(index: int) -> "str | None":
        if cache_dir is None:
            return None
        # Single-fabric runs keep the historical flat layout; fleet
        # shards persist into per-shard subdirectories so every shard's
        # cache and memo stay isolated (and deterministic) across runs.
        if shards == 1:
            return str(cache_dir)
        return str(Path(cache_dir) / f"shard-{index}")

    restored = 0
    memo_restored = 0
    managers = []
    for index in range(shards):
        ctrl = ReconfigurationController(
            _build_fabric(),
            memory,
            cache_capacity=cache_capacity,
            cache_capacity_bytes=cache_capacity_bytes,
            memo_entries=memo_entries,
        )
        shard_dir = _shard_cache_dir(index)
        if shard_dir is not None:
            if ctrl.decode_cache is not None:
                restored += ctrl.decode_cache.load(shard_dir)
            if ctrl.decode_memo is not None:
                memo_restored += ctrl.decode_memo.load(
                    Path(shard_dir) / MEMO_FILE_NAME
                )
        managers.append(FabricManager(ctrl, strategy=strategy))

    # Images (and VERSION 4 shared tables) are published exactly once:
    # all shards resolve from the one shared external memory.
    publish = managers[0].controller
    if task_scope:
        for names, result in groups:
            publish.store_task(names, result)
    else:
        for name, vbs in images:
            publish.store_vbs(name, vbs)

    trace = generate_trace(
        kind, [name for name, _v in images], length, seed=seed,
        arrivals=arrivals, mean_interarrival=mean_interarrival,
        zipf_alpha=zipf_alpha,
    )
    if shards == 1:
        report = WorkloadSimulator(
            managers[0],
            servers=servers,
            policy=policy,
            queue_threshold=queue_threshold,
        ).run(trace)
    else:
        fleet = FleetManager(
            managers,
            router=router,
            migrate_backlog=migrate_backlog,
            servers=servers,
        )
        report = WorkloadSimulator(fleet=fleet).run(trace)
    report["scenario"] = {
        "n_tasks": n_tasks,
        "channel_width": channel_width,
        "cluster_size": cluster_size,
        "strategy": strategy,
        "memo_entries": memo_entries,
        "cache_entries_restored": restored,
        "memo_entries_restored": memo_restored,
        "arrivals": arrivals,
        "task_scope": task_scope,
        "image_bits": {
            name: vbs.container_bits for name, vbs in images
        },
    }
    if task_scope:
        report["scenario"]["containers_per_task"] = containers_per_task
        report["scenario"]["shared_dict_ids"] = sorted(
            result.dict_id for _names, result in groups if result.shared
        )
    if shards > 1:
        report["scenario"]["shards"] = shards
        report["scenario"]["router"] = router
        report["scenario"]["migrate_backlog"] = migrate_backlog
    if servers != 1:
        report["scenario"]["servers"] = servers
    if policy_armed:
        report["scenario"]["policy"] = policy_name
        report["scenario"]["queue_threshold"] = queue_threshold
    if cache_dir is not None:
        for index, manager in enumerate(managers):
            ctrl = manager.controller
            shard_dir = _shard_cache_dir(index)
            if ctrl.decode_cache is not None:
                ctrl.decode_cache.save(shard_dir)
            if ctrl.decode_memo is not None:
                ctrl.decode_memo.save(Path(shard_dir) / MEMO_FILE_NAME)
    return report


def sweep_arrival_rates(
    run_at: "Callable[[int], dict]",
    base_interarrival: int,
    factor: float = 2.0,
    steps: int = 5,
    knee_utilization: float = 0.95,
    knee_p99_factor: float = 3.0,
) -> dict:
    """Replay one workload at a geometric ladder of arrival rates.

    ``run_at(mean_interarrival)`` must produce an open-loop simulation
    report (fresh state per call — warm caches would let earlier,
    relaxed rates subsidize later, aggressive ones).  The ladder starts
    at ``base_interarrival`` and divides by ``factor`` each step,
    rounding to whole cycles and stopping early once the gap bottoms
    out; rows are therefore ordered relaxed-to-aggressive, which is
    what :func:`~repro.runtime.costmodel.locate_knee` expects.  The
    returned sweep report carries per-rate utilization/latency/queue
    rows and the located saturation knee (or ``None`` when the swept
    range never saturates).
    """
    from repro.runtime.costmodel import locate_knee

    if base_interarrival < 1:
        raise RuntimeManagementError(
            "sweep base inter-arrival must be at least one cycle"
        )
    if factor <= 1.0:
        raise RuntimeManagementError(
            "sweep factor must exceed 1 (each step must tighten the rate)"
        )
    if steps < 2:
        raise RuntimeManagementError(
            "a sweep needs at least two rates to locate a knee between"
        )
    ladder: List[int] = []
    for i in range(steps):
        gap = max(1, round(base_interarrival / factor ** i))
        if ladder and gap >= ladder[-1]:
            break  # rounding bottomed out; further steps repeat
        ladder.append(gap)
    rows: List[dict] = []
    for gap in ladder:
        report = run_at(gap)
        la = report.get("latency") or {}
        qu = report.get("queue") or {}
        ck = report.get("clock") or {}
        rows.append({
            "mean_interarrival": gap,
            "arrival_rate": 1.0 / gap,
            "utilization": ck.get("utilization", 0.0),
            "p50": la.get("p50"),
            "p99": la.get("p99"),
            "max_latency": la.get("max"),
            "requests": la.get("requests", 0),
            "max_depth": qu.get("max_depth", 0),
            "makespan": ck.get("makespan", 0),
        })
    return {
        "sweep_version": 1,
        "base_interarrival": base_interarrival,
        "factor": factor,
        "steps": len(rows),
        "rates": rows,
        "relaxed_p99": rows[0]["p99"] if rows else None,
        "knee": locate_knee(rows, knee_utilization, knee_p99_factor),
    }


def run_sweep_scenario(
    kind: str = "zipf",
    n_tasks: int = 4,
    length: int = 40,
    seed: int = 3,
    channel_width: int = 8,
    cluster_size: int = 1,
    cache_capacity: "int | None" = 16,
    memo_entries: Optional[int] = 4096,
    strategy: str = FIRST_FIT,
    codecs: "str | Sequence[str] | None" = None,
    base_interarrival: int = 2000,
    factor: float = 2.0,
    steps: int = 5,
    zipf_alpha: float = 1.1,
    servers: int = 1,
    policy: "str | None" = None,
    queue_threshold: int = 4,
    knee_utilization: float = 0.95,
    knee_p99_factor: float = 3.0,
) -> dict:
    """Synthesize one scenario and sweep it to its saturation knee.

    The harness behind ``repro runtime sweep``: task images are
    synthesized *once*, then every rate on the ladder gets a fresh
    fabric, controller, decode cache and memo over the shared external
    memory — so rates differ only in arrival pressure, never in cache
    warmth.  The trace's task mix is byte-identical across rates (the
    arrival clock draws from its own rng stream), making the knee a
    pure function of the scenario parameters.
    """
    from repro.arch.fabric import FabricArch
    from repro.arch.params import ArchParams
    from repro.runtime.admission import (
        AdmissionPolicy,
        validate_policy_request,
    )
    from repro.runtime.controller import ReconfigurationController
    from repro.runtime.memory import ExternalMemory

    validate_trace_request(
        kind, "poisson", base_interarrival, zipf_alpha, length=length
    )
    if servers < 1:
        raise RuntimeManagementError(
            f"server count must be at least 1 (got {servers})"
        )
    if isinstance(policy, AdmissionPolicy):
        policy_name = policy.kind
    else:
        policy_name = policy
        if policy is not None:
            validate_policy_request(policy, queue_threshold)

    images = synthesize_task_images(
        n_tasks=n_tasks,
        channel_width=channel_width,
        cluster_size=cluster_size,
        seed=seed,
        codecs=codecs,
    )
    names = [name for name, _v in images]
    max_w = max(vbs.layout.width for _name, vbs in images)
    max_h = max(vbs.layout.height for _name, vbs in images)
    fabric_w = max_w + max_w // 2 + 1
    fabric_h = max_h + 1
    params = ArchParams(channel_width=channel_width)
    memory = ExternalMemory()

    def _build_controller():
        fabric = FabricArch(
            params, fabric_w, fabric_h,
            {(x, y): "clb"
             for x in range(fabric_w) for y in range(fabric_h)},
        )
        return ReconfigurationController(
            fabric, memory,
            cache_capacity=cache_capacity,
            memo_entries=memo_entries,
        )

    publisher = _build_controller()
    for name, vbs in images:
        publisher.store_vbs(name, vbs)

    def run_at(gap: int) -> dict:
        manager = FabricManager(_build_controller(), strategy=strategy)
        trace = generate_trace(
            kind, names, length, seed=seed,
            arrivals="poisson", mean_interarrival=gap,
            zipf_alpha=zipf_alpha,
        )
        return WorkloadSimulator(
            manager,
            servers=servers,
            policy=policy,
            queue_threshold=queue_threshold,
        ).run(trace)

    sweep = sweep_arrival_rates(
        run_at, base_interarrival,
        factor=factor, steps=steps,
        knee_utilization=knee_utilization,
        knee_p99_factor=knee_p99_factor,
    )
    sweep["trace"] = {
        "kind": kind, "seed": seed, "length": length, "tasks": names,
    }
    sweep["servers"] = servers
    sweep["policy"] = (
        policy_name if policy_name not in (None, "none") else "none"
    )
    sweep["scenario"] = {
        "n_tasks": n_tasks,
        "channel_width": channel_width,
        "cluster_size": cluster_size,
        "strategy": strategy,
    }
    return sweep


def summarize_sweep(sweep: dict) -> str:
    """A terse human-readable digest of an arrival-rate sweep report."""
    tr = sweep.get("trace", {})
    lines = [
        f"sweep: {tr.get('kind', '?')} seed={tr.get('seed', '?')} "
        f"({tr.get('length', '?')} events) x {sweep['steps']} rates, "
        f"servers={sweep.get('servers', 1)}, "
        f"policy={sweep.get('policy', 'none')}",
    ]
    for row in sweep["rates"]:
        p99 = row["p99"] if row["p99"] is not None else "-"
        lines.append(
            f"  gap {row['mean_interarrival']}: "
            f"utilization {row['utilization']:.1%}, p99 {p99}, "
            f"max depth {row['max_depth']}"
        )
    knee = sweep.get("knee")
    if knee is None:
        lines.append("knee: not reached within the swept range")
    else:
        lines.append(
            f"knee: gap {knee['mean_interarrival']} "
            f"(utilization {knee['utilization']:.1%}, p99 {knee['p99']}, "
            f"{knee['p99_over_relaxed']:.1f}x relaxed)"
        )
    return "\n".join(lines)


def summarize_report(report: dict) -> str:
    """A terse human-readable digest of a simulation report.

    Tolerates reports from older schema generations: the open-loop
    (``latency``/``queue``/``clock``) and shared-dictionary sections are
    rendered only when present.
    """
    ev, ca, cy = report["events"], report["cache"], report["cycles"]
    lines = [
        f"trace: {report['trace']['kind']} seed={report['trace']['seed']} "
        f"({report['trace']['length']} events, "
        f"{len(report['trace']['tasks'])} tasks)",
        f"events: {ev['loads']} loads, {ev['unloads']} unloads, "
        f"{ev['migrations']} migrations, {ev['skipped']} skipped, "
        f"{ev['evictions_for_space']} evictions for space",
        f"cache: {ca['hits']} hits / {ca['misses']} misses "
        f"(hit rate {ca['hit_rate']:.1%}), {ca['entries']} entries, "
        f"{ca['bytes_in_cache']} bytes resident",
        f"cycles: fetch {cy['fetch']}, decode {cy['decode']}, "
        f"write {cy['write']} — total {cy['total']}",
        f"bytes decoded: {report['bytes_decoded']}",
    ]
    la = report.get("latency")
    if la is not None:
        qu = report.get("queue", {})
        ck = report.get("clock", {})
        lines.append(
            f"latency: p50 {la['p50']} / p95 {la['p95']} / p99 {la['p99']} "
            f"cycles over {la['requests']} requests (max {la['max']}, "
            f"queueing p95 {la['queueing']['p95']})"
        )
        bank = (
            f"{ck['servers']}-server utilization"
            if ck.get("servers", 1) > 1
            else "server utilization"
        )
        lines.append(
            f"queue: max depth {qu.get('max_depth', 0)}, "
            f"mean {qu.get('mean_depth', 0.0):.2f}; "
            f"{bank} {ck.get('utilization', 0.0):.1%} over "
            f"{ck.get('makespan', 0)} cycles"
        )
    ad = report.get("admission")
    if ad is not None:
        lanes = ad.get("lanes", {})
        lines.append(
            f"admission: {ad['policy']} "
            f"(threshold {ad['queue_threshold']}) — "
            f"{ad['admitted']} admitted "
            f"({lanes.get('hot', 0)} hot / {lanes.get('cold', 0)} cold), "
            f"{ad['deferred']} deferred, {ad['dropped']} dropped; "
            f"store holds {ad['store']['samples']} samples"
        )
    fleet = report.get("fleet")
    if fleet is not None:
        shard_p99 = [
            (
                str(shard["latency"]["p99"])
                if shard.get("latency") is not None
                else "-"
            )
            for shard in report.get("shards", [])
        ]
        line = (
            f"fleet: {fleet['shards']} shards via {fleet['router']} router, "
            f"{fleet['cross_migrations']} cross-shard migrations"
        )
        if any(p != "-" for p in shard_p99):
            line += f"; per-shard p99 [{', '.join(shard_p99)}]"
        lines.append(line)
    sd = report.get("shared_dicts")
    if sd is not None and (sd["faults"] or sd["drops"]):
        lines.append(
            f"shared dicts: {sd['faults']} faults, {sd['drops']} drops, "
            f"max {sd['max_resident']} resident, "
            f"{sd['resident_at_end']} at end"
        )
    return "\n".join(lines)
