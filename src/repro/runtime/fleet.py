"""Sharded fabric fleet behind a pluggable placement router.

One :class:`~repro.runtime.manager.FabricManager` is the scaling ceiling
of the paper's runtime: a single reconfiguration controller serializes
every decode-and-place.  The fleet tier fronts N independent fabric
shards — each its own controller, decode cache and decode memo — behind
a placement router, while VERSION 4 shared dictionaries stay *fleet
scope*: published once into the one :class:`ExternalMemory` all shards
share and resolved from any shard, with the shard-local refcounts
rolling up into a fleet-level view (a table is fleet-resident while at
least one shard references it).

Router policies (:data:`ROUTER_KINDS`):

* ``hash`` — consistent hashing on the task name (sha256 over a ring of
  virtual nodes; deterministic across processes, unlike Python's salted
  ``hash``).  A task's home shard never depends on arrival order, so a
  re-arriving task lands where its decode-cache entry already is.
* ``load`` — route to the least-loaded shard by the *recorded* state of
  the fleet: current server backlog (open-loop clock), resident task
  count, mean recorded latency, then serviced-request count, with the
  shard index as the deterministic tie-break.

When a shard saturates (its server backlog exceeds the coldest shard's
by ``migrate_backlog`` cycles), the fleet migrates the hot shard's
oldest resident task onto the coldest shard — the digest-keyed decode
cache entry travels with it, so the re-place is a warm hit, not a
replay.

:func:`simulate_fleet` replays one workload trace across the fleet with
one virtual FIFO reconfiguration server per shard (the open-loop model
of :class:`~repro.runtime.workload.WorkloadSimulator`, k-way); the
report carries both per-shard and fleet-wide latency/queue/utilization
sections.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_left
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import RuntimeManagementError
from repro.runtime.controller import ResidentTask
from repro.runtime.costmodel import DecodeCache
from repro.runtime.manager import FabricManager

#: Supported placement-router policies.
ROUTER_KINDS = ("hash", "load")


def validate_fleet_request(shards: int, router: str) -> None:
    """Reject bad fleet parameters before any expensive work.

    Shared by :func:`~repro.runtime.workload.run_scenario` and the CLI —
    a typo'd router name or a non-positive shard count must fail in
    milliseconds (exit 2 at the CLI), not after seconds of synthesis.
    """
    if shards < 1:
        raise RuntimeManagementError(
            f"shard count must be at least 1 (got {shards})"
        )
    if router not in ROUTER_KINDS:
        raise RuntimeManagementError(
            f"unknown placement router {router!r}; known: {ROUTER_KINDS}"
        )


def _hash_point(label: str) -> int:
    """A 64-bit ring position — sha256, never the salted built-in hash."""
    return int.from_bytes(
        hashlib.sha256(label.encode()).digest()[:8], "big"
    )


class ConsistentHashRouter:
    """Consistent hashing on the task name over a virtual-node ring.

    Each shard owns ``replicas`` points on a 64-bit ring; a task maps to
    the first point at or clockwise-after its own hash.  Adding a shard
    moves only the tasks falling into its new arcs — and, because the
    mapping ignores fleet state entirely, a task always re-arrives at
    the shard whose decode cache served it before.
    """

    name = "hash"

    def __init__(self, n_shards: int, replicas: int = 64):
        points: List[Tuple[int, int]] = []
        for shard in range(n_shards):
            for replica in range(replicas):
                points.append((_hash_point(f"shard{shard}:{replica}"), shard))
        points.sort()
        self._ring = points

    def choose(self, task: str, fleet: "FleetManager") -> int:
        point = _hash_point(task)
        idx = bisect_left(self._ring, (point, -1))
        if idx == len(self._ring):
            idx = 0  # wrap around the ring
        return self._ring[idx][1]


class LoadAwareRouter:
    """Route new placements to the least-loaded shard.

    Load is judged from *recorded* fleet state, coldest first.  When the
    fleet carries a policy store, shards whose cold-request latency was
    *measured* at their current queue depth
    (:meth:`PolicyStore.has_samples`) are trusted ahead of shards whose
    estimate is a pooled guess or the no-knowledge 0.0 — an unmeasured
    class must not look infinitely fast next to a measured-fast one.
    The full ordering is then (has-samples, predicted cold latency,
    server backlog in cycles, resident task count, mean recorded
    request latency, total serviced requests, shard index) — fully
    deterministic, so seeded replays stay reproducible.  A fleet
    without a store degenerates to the pre-store ordering (backlog
    first).
    """

    name = "load"

    def choose(self, task: str, fleet: "FleetManager") -> int:
        def coldness(shard: int):
            recorded = fleet.recorded[shard]
            store = fleet.policy_store
            depth = fleet.queue_depths[shard]
            if store is not None:
                measured = store.has_samples(False, depth)
                predicted = store.expected_latency(False, depth)
            else:
                measured, predicted = False, 0.0
            return (
                0 if measured else 1,
                predicted,
                fleet.backlog(shard),
                len(fleet.shards[shard].controller.resident),
                sum(recorded) / len(recorded) if recorded else 0.0,
                fleet.serviced[shard],
                shard,
            )

        return min(range(fleet.n_shards), key=coldness)


def make_router(router: "str | object", n_shards: int):
    """Resolve a router policy name (or pass a router object through)."""
    if not isinstance(router, str):
        return router
    validate_fleet_request(n_shards, router)
    if router == "hash":
        return ConsistentHashRouter(n_shards)
    return LoadAwareRouter()


class FleetManager:
    """N fabric shards sharing one external memory, behind a router.

    Every shard is a full :class:`FabricManager` stack (controller,
    decode cache, decode memo) over its own fabric; all shards must
    share one :class:`~repro.runtime.memory.ExternalMemory` — that store
    *is* the fleet-scope tier where task images and VERSION 4 shared
    dictionaries are published once and resolved from any shard.

    The fleet rolls the shard-local shared-dictionary refcounts up into
    fleet-level accounting: :meth:`resident_shared_dicts` is the union
    of the shards' resident tables, :meth:`shared_dict_refcounts` counts
    referencing shards per table, and the ``fleet_dict_faults`` /
    ``fleet_dict_drops`` counters tick exactly when a table becomes
    fleet-resident (first shard to reference it) or stops being
    fleet-resident (last shard releases it) — a table referenced by two
    shards survives either one dropping its copy.

    ``migrate_backlog`` arms cross-shard saturation migration during
    open-loop replays: when the hottest shard's server backlog exceeds
    the coldest's by at least that many cycles, the hot shard's oldest
    resident task is re-placed on the coldest shard (decode-cache entry
    copied along, so warmth survives the move).  ``None`` disables it.
    """

    def __init__(
        self,
        shards: Sequence[FabricManager],
        router: "str | object" = "hash",
        migrate_backlog: Optional[int] = None,
        servers: int = 1,
        policy_store=None,
    ):
        managers = list(shards)
        if not managers:
            raise RuntimeManagementError("a fleet needs at least one shard")
        memory = managers[0].controller.memory
        for mgr in managers[1:]:
            if mgr.controller.memory is not memory:
                raise RuntimeManagementError(
                    "fleet shards must share one external memory (the "
                    "fleet-scope image and dictionary store)"
                )
        if migrate_backlog is not None and migrate_backlog < 1:
            raise RuntimeManagementError(
                "migration backlog threshold must be at least one cycle"
            )
        if servers < 1:
            raise RuntimeManagementError(
                f"server count must be at least 1 (got {servers})"
            )
        self.shards = managers
        self.memory = memory
        self.router = make_router(router, len(managers))
        self.migrate_backlog = migrate_backlog
        #: Parallel reconfiguration servers per shard (the open-loop
        #: clock runs one min-heap of k server-free times per shard).
        self.servers = servers
        #: Optional :class:`~repro.runtime.admission.PolicyStore` the
        #: replay records every serviced request into (hot = cache hit)
        #: and the load-aware router reads predicted latencies from.
        self.policy_store = policy_store
        #: Last known home shard of every task the fleet ever placed —
        #: bookkeeping requests (unload/migrate) for a task not resident
        #: anywhere are routed (and counted) at its last home.
        self.task_shard: Dict[str, int] = {}
        #: Virtual-clock state recorded by the open-loop replay (and read
        #: back by the load-aware router): current time, per-shard server
        #: free times (a k-entry min-heap per shard), per-shard recorded
        #: latencies, serviced counts and last observed queue depths.
        self.now = 0
        self.server_free: List[List[int]] = [
            [0] * servers for _ in managers
        ]
        self.recorded: List[List[int]] = [[] for _ in managers]
        self.serviced = [0] * len(managers)
        self.queue_depths = [0] * len(managers)
        self.cross_migrations = 0
        #: Fleet-scope shared-dictionary lifecycle counters (see class
        #: docstring); updated by :meth:`sync_shared_dicts`.
        self.fleet_dict_faults = 0
        self.fleet_dict_drops = 0
        self._dict_resident: Set[int] = set()
        self.max_resident_tables = 0

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    def backlog(self, shard: int) -> int:
        """Cycles until ``shard``'s earliest server frees, at fleet time."""
        return max(0, min(self.server_free[shard]) - self.now)

    # -- fleet-scope publishing (the shared external memory) -----------------------

    def store_vbs(self, name, vbs):
        """Publish a VBS once, fleet-wide (every shard resolves it)."""
        return self.shards[0].controller.store_vbs(name, vbs)

    def store_task(self, names, result):
        """Publish a task-scope encode (containers + shared table) once."""
        return self.shards[0].controller.store_task(names, result)

    def store_raw(self, name, raw):
        """Publish a raw bitstream once, fleet-wide."""
        return self.shards[0].controller.store_raw(name, raw)

    # -- routing and task lifecycle ------------------------------------------------

    def shard_of(self, name: str) -> Optional[int]:
        """The shard where ``name`` is resident, or None."""
        for index, mgr in enumerate(self.shards):
            if name in mgr.controller.resident:
                return index
        return None

    def route(self, name: str) -> int:
        """The shard a request for ``name`` belongs on.

        A resident task is sticky to its shard; a new placement asks the
        router.
        """
        resident = self.shard_of(name)
        if resident is not None:
            return resident
        return self.router.choose(name, self)

    def place_task(
        self, name: str, evict: bool = True
    ) -> Tuple[int, ResidentTask]:
        """Route and place ``name``; returns ``(shard, resident task)``."""
        shard = self.route(name)
        task = self.shards[shard].place_task(name, evict=evict)
        self.task_shard[name] = shard
        self.sync_shared_dicts()
        return shard, task

    def unload_task(self, name: str) -> int:
        """Unload ``name`` from its shard; returns the shard index."""
        shard = self.shard_of(name)
        if shard is None:
            raise RuntimeManagementError(
                f"task {name!r} is not loaded on any shard"
            )
        self.shards[shard].controller.unload_task(name)
        self.sync_shared_dicts()
        return shard

    def can_host(self, shard: int, name: str) -> bool:
        """True when ``shard``'s fabric can hold ``name`` at all."""
        image = self.memory.image(name)
        if image is None:
            return False
        fabric = self.shards[shard].controller.fabric
        return image.width <= fabric.width and image.height <= fabric.height

    def migrate_across(self, name: str, dst: int) -> ResidentTask:
        """Re-place a resident task on shard ``dst``, keeping cache warmth.

        The digest-keyed decode-cache entry is copied from the source
        shard's cache into the destination's *before* the move, so the
        re-place is a warm hit (zero decode cycles) whenever the source
        still held the expansion.  The destination evicts its own oldest
        residents if it must make room.
        """
        src = self.shard_of(name)
        if src is None:
            raise RuntimeManagementError(
                f"task {name!r} is not loaded on any shard"
            )
        if not 0 <= dst < self.n_shards:
            raise RuntimeManagementError(f"no shard {dst} in this fleet")
        if src == dst:
            return self.shards[src].controller.resident[name]
        if not self.can_host(dst, name):
            raise RuntimeManagementError(
                f"task {name!r} cannot fit shard {dst}'s fabric"
            )
        src_ctrl = self.shards[src].controller
        dst_ctrl = self.shards[dst].controller
        image = src_ctrl.resident[name].image
        if (
            src_ctrl.decode_cache is not None
            and dst_ctrl.decode_cache is not None
        ):
            entry = src_ctrl.decode_cache.peek(DecodeCache.key_for(image))
            if entry is not None:
                dst_ctrl.decode_cache.put(DecodeCache.key_for(image), entry)
        src_ctrl.unload_task(name)
        # Feasibility was checked above, so evict=True cannot fail here.
        task = self.shards[dst].place_task(name, evict=True)
        self.task_shard[name] = dst
        self.cross_migrations += 1
        self.sync_shared_dicts()
        return task

    # -- fleet-scope shared-dictionary roll-up --------------------------------------

    def resident_shared_dicts(self) -> Set[int]:
        """Tables resident on at least one shard (the fleet-level view)."""
        resident: Set[int] = set()
        for mgr in self.shards:
            resident.update(mgr.controller.shared_dicts)
        return resident

    def shared_dict_refcounts(self) -> Dict[int, int]:
        """Referencing-shard count per fleet-resident table."""
        counts: Dict[int, int] = {}
        for mgr in self.shards:
            for dict_id in mgr.controller.shared_dicts:
                counts[dict_id] = counts.get(dict_id, 0) + 1
        return counts

    def sync_shared_dicts(self) -> None:
        """Fold the shards' table residency into the fleet counters.

        Called after every fleet-level mutation (and after every replay
        event): a table entering the union is one fleet fault, a table
        leaving it is one fleet drop — by construction a drop happens
        only when *no* shard references the table any more.
        """
        current = self.resident_shared_dicts()
        self.fleet_dict_faults += len(current - self._dict_resident)
        self.fleet_dict_drops += len(self._dict_resident - current)
        self._dict_resident = current
        self.max_resident_tables = max(
            self.max_resident_tables, len(current)
        )

    def utilization(self) -> List[float]:
        """Per-shard fabric utilization (fraction of covered macros)."""
        return [mgr.controller.utilization() for mgr in self.shards]


# -- fleet replay ------------------------------------------------------------------


def _route_event(fleet: FleetManager, event) -> int:
    """The shard an event is processed (and accounted) on."""
    resident = fleet.shard_of(event.task)
    if resident is not None:
        return resident
    if event.op == "load":
        return fleet.router.choose(event.task, fleet)
    # A bookkeeping request for a task resident nowhere: account it at
    # the task's last home (shard 0 for a task never placed).
    return fleet.task_shard.get(event.task, 0)


def _maybe_migrate(fleet: FleetManager, clocks: List[dict]) -> None:
    """One saturation-migration attempt at the current fleet time."""
    if fleet.migrate_backlog is None or fleet.n_shards < 2:
        return
    backlogs = [fleet.backlog(s) for s in range(fleet.n_shards)]
    hot = max(range(fleet.n_shards), key=lambda s: (backlogs[s], -s))
    cold = min(range(fleet.n_shards), key=lambda s: (backlogs[s], s))
    if hot == cold or backlogs[hot] - backlogs[cold] < fleet.migrate_backlog:
        return
    victim = next(
        (
            name
            for name in fleet.shards[hot].controller.resident
            if fleet.can_host(cold, name)
        ),
        None,
    )
    if victim is None:
        return
    import heapq
    from bisect import insort

    task = fleet.migrate_across(victim, cold)
    # The re-place is real reconfiguration work on the cold shard's
    # server: charge its cost there (usually a cache hit — the entry
    # travelled with the task — so fetch+write cycles, zero decode) AND
    # account it as a request in the cold shard's queue/latency
    # sections.  Charging the clock without the request bookkeeping
    # used to under-report queue depth, p99 and serviced counts exactly
    # when migrations fired.
    clock = clocks[cold]
    cost = task.load_cost
    free = fleet.server_free[cold]
    start = max(fleet.now, free[0])
    finish = start + cost.total_cycles
    heapq.heapreplace(free, finish)
    clock["busy"] += cost.total_cycles
    clock["makespan"] = max(clock["makespan"], finish)
    clock["state"]["counts"]["migrations"] += 1
    clock["state"]["per_task"][victim]["migrations"] += 1
    cycles = clock["state"]["cycles"]
    cycles["fetch"] += cost.fetch_cycles
    cycles["decode"] += cost.decode_cycles
    cycles["write"] += cost.write_cycles
    cycles["total"] += cost.total_cycles
    if cost.cache_hit:
        clock["state"]["load_cache_hits"] += 1
        clock["state"]["per_task"][victim]["cache_hits"] += 1
    # Request bookkeeping: the migration arrives at the current fleet
    # time and occupies one cold-shard server like any other request.
    in_flight = clock["in_flight"]
    while in_flight and in_flight[0] <= fleet.now:
        in_flight.pop(0)
    depth_at_door = len(in_flight)
    insort(in_flight, finish)
    clock["arrivals"] += 1
    depth = len(in_flight)
    clock["depth_sum"] += depth
    clock["max_depth"] = max(clock["max_depth"], depth)
    latency = finish - fleet.now
    clock["latencies"].append(latency)
    clock["queue_waits"].append(start - fleet.now)
    clock["phases"]["fetch"].append(cost.fetch_cycles)
    clock["phases"]["decode"].append(cost.decode_cycles)
    clock["phases"]["write"].append(cost.write_cycles)
    fleet.recorded[cold].append(latency)
    fleet.serviced[cold] += 1
    fleet.queue_depths[cold] = depth
    if fleet.policy_store is not None:
        fleet.policy_store.record(cost.cache_hit, depth_at_door, latency)


def simulate_fleet(
    fleet: FleetManager,
    trace,
    observer: "Optional[Callable]" = None,
) -> dict:
    """Replay ``trace`` across the fleet; return the structured report.

    Each shard is one virtual FIFO reconfiguration server (the open-loop
    model of the single-fabric simulator, k-way): an event routes to its
    shard, its service time is charged on that shard's clock, and events
    sharing an arrival stamp *on the same shard* form one request.  The
    report carries the familiar fleet-wide sections (events, cycles,
    cache, latency, queue, clock — aggregated) plus a ``fleet`` section
    (router, migrations, fleet-scope dictionary lifecycle) and a
    ``shards`` list with every shard's own report sections.
    """
    import heapq
    from bisect import bisect_left, insort

    from repro.runtime.workload import (
        REPORT_VERSION,
        apply_trace_event,
        latency_section,
        new_sim_state,
    )

    open_loop = trace.open_loop
    n = fleet.n_shards
    servers = fleet.servers
    if fleet.migrate_backlog is not None and not open_loop:
        raise RuntimeManagementError(
            "migrate_backlog needs an open-loop trace (closed-loop "
            "replays have no backlog clock, so saturation migration "
            "would silently never fire)"
        )
    fleet.sync_shared_dicts()  # baseline the roll-up before the replay
    base_faults = fleet.fleet_dict_faults
    base_drops = fleet.fleet_dict_drops
    cache_base = []
    for mgr in fleet.shards:
        cache = mgr.controller.decode_cache
        cache_base.append(
            (cache.stats.hits, cache.stats.misses, cache.stats.evictions)
            if cache
            else (0, 0, 0)
        )

    clocks: List[dict] = [
        {
            "state": new_sim_state(trace.tasks),
            "busy": 0,
            "makespan": 0,
            "in_flight": [],  # request finish times, sorted
            "latencies": [],
            "queue_waits": [],
            "phases": {"fetch": [], "decode": [], "write": []},
            "depth_sum": 0,
            "max_depth": 0,
            "arrivals": 0,
            "last_at": None,
            #: The running finish time of the shard's current request —
            #: later events of the same arrival chain on the same
            #: server, and the request's in-flight entry tracks its
            #: final finish.
            "cur_finish": 0,
            "door_depth": 0,
        }
        for _ in range(n)
    ]

    for event in trace.events:
        if open_loop and event.at is not None:
            fleet.now = event.at
        shard = _route_event(fleet, event)
        clock = clocks[shard]
        cost = apply_trace_event(fleet.shards[shard], event, clock["state"])
        if event.op == "load":
            fleet.task_shard[event.task] = shard
        if open_loop and event.at is not None:
            at = event.at
            new_request = at != clock["last_at"]
            clock["last_at"] = at
            in_flight = clock["in_flight"]
            free = fleet.server_free[shard]
            if new_request:
                while in_flight and in_flight[0] <= at:
                    in_flight.pop(0)
                clock["door_depth"] = len(in_flight)
                start = max(at, free[0])
                slot = 0
            else:
                # A later event of the same request runs back-to-back
                # on the server its first event was dispatched to —
                # unless a migration claimed that slot meanwhile, in
                # which case it chains behind the earliest-free server
                # (the historical scalar-clock behavior at k=1).
                prev = clock["cur_finish"]
                if prev in free:
                    slot = free.index(prev)
                    start = prev
                else:
                    slot = 0
                    start = max(prev, free[0])
            service = cost.total_cycles if cost is not None else 0
            finish = start + service
            clock["busy"] += service
            clock["makespan"] = max(clock["makespan"], finish)
            free[slot] = finish
            heapq.heapify(free)
            if new_request:
                insort(in_flight, finish)
                clock["arrivals"] += 1
                depth = len(in_flight)
                clock["depth_sum"] += depth
                clock["max_depth"] = max(clock["max_depth"], depth)
            else:
                prev = clock["cur_finish"]
                i = bisect_left(in_flight, prev)
                if i < len(in_flight) and in_flight[i] == prev:
                    in_flight.pop(i)
                insort(in_flight, finish)
            clock["cur_finish"] = finish
            fleet.queue_depths[shard] = len(in_flight)
            if cost is not None:
                latency = finish - at
                clock["latencies"].append(latency)
                clock["queue_waits"].append(start - at)
                clock["phases"]["fetch"].append(cost.fetch_cycles)
                clock["phases"]["decode"].append(cost.decode_cycles)
                clock["phases"]["write"].append(cost.write_cycles)
                fleet.recorded[shard].append(latency)
                fleet.serviced[shard] += 1
                if fleet.policy_store is not None:
                    fleet.policy_store.record(
                        cost.cache_hit, clock["door_depth"], latency
                    )
            _maybe_migrate(fleet, clocks)
        fleet.sync_shared_dicts()
        if observer is not None:
            observer(event)

    # -- report assembly ---------------------------------------------------------

    def summed(key: str) -> Dict[str, int]:
        totals: Dict[str, int] = {}
        for clock in clocks:
            for field, value in clock["state"][key].items():
                totals[field] = totals.get(field, 0) + value
        return totals

    shard_sections = []
    all_latencies: List[int] = []
    all_queue_waits: List[int] = []
    all_phases: Dict[str, List[int]] = {"fetch": [], "decode": [], "write": []}
    for index, (mgr, clock) in enumerate(zip(fleet.shards, clocks)):
        ctrl = mgr.controller
        cache = ctrl.decode_cache
        hits0, misses0, evictions0 = cache_base[index]
        hits = (cache.stats.hits - hits0) if cache else 0
        misses = (cache.stats.misses - misses0) if cache else 0
        lookups = hits + misses
        section = {
            "shard": index,
            "events": clock["state"]["counts"],
            "cycles": clock["state"]["cycles"],
            "load_cache_hits": clock["state"]["load_cache_hits"],
            "bytes_decoded": clock["state"]["bytes_decoded"],
            "cache": {
                "enabled": cache is not None,
                "hits": hits,
                "misses": misses,
                "hit_rate": (hits / lookups) if lookups else 0.0,
                "evictions": (
                    (cache.stats.evictions - evictions0) if cache else 0
                ),
                "entries": len(cache) if cache else 0,
                "bytes_in_cache": cache.total_bytes if cache else 0,
            },
            "shared_dicts": {
                "resident_at_end": sorted(ctrl.shared_dicts),
            },
            "fabric": {
                "width": ctrl.fabric.width,
                "height": ctrl.fabric.height,
                "utilization": ctrl.utilization(),
                "resident_at_end": sorted(ctrl.resident),
            },
        }
        if open_loop:
            section["latency"] = latency_section(
                clock["latencies"], clock["queue_waits"], clock["phases"]
            )
            section["queue"] = {
                "arrivals": clock["arrivals"],
                "max_depth": clock["max_depth"],
                "mean_depth": (
                    clock["depth_sum"] / clock["arrivals"]
                    if clock["arrivals"]
                    else 0.0
                ),
            }
            section["clock"] = {
                "makespan": clock["makespan"],
                "busy_cycles": clock["busy"],
                "utilization": (
                    clock["busy"] / (servers * clock["makespan"])
                    if clock["makespan"]
                    else 0.0
                ),
            }
            if servers > 1:
                section["clock"]["servers"] = servers
        shard_sections.append(section)
        all_latencies.extend(clock["latencies"])
        all_queue_waits.extend(clock["queue_waits"])
        for phase in all_phases:
            all_phases[phase].extend(clock["phases"][phase])

    agg_cache = {
        "enabled": any(s["cache"]["enabled"] for s in shard_sections),
        "hits": sum(s["cache"]["hits"] for s in shard_sections),
        "misses": sum(s["cache"]["misses"] for s in shard_sections),
        "evictions": sum(s["cache"]["evictions"] for s in shard_sections),
        "entries": sum(s["cache"]["entries"] for s in shard_sections),
        "bytes_in_cache": sum(
            s["cache"]["bytes_in_cache"] for s in shard_sections
        ),
    }
    lookups = agg_cache["hits"] + agg_cache["misses"]
    agg_cache["hit_rate"] = (
        agg_cache["hits"] / lookups if lookups else 0.0
    )

    per_task: Dict[str, Dict[str, int]] = {}
    for clock in clocks:
        for name, counters in clock["state"]["per_task"].items():
            merged = per_task.setdefault(
                name, {"loads": 0, "cache_hits": 0, "migrations": 0}
            )
            for field, value in counters.items():
                merged[field] += value

    refcounts = fleet.shared_dict_refcounts()
    report = {
        "report_version": REPORT_VERSION,
        "trace": {
            "kind": trace.kind,
            "seed": trace.seed,
            "length": len(trace.events),
            "tasks": list(trace.tasks),
        },
        "fleet": {
            "shards": n,
            "router": fleet.router.name,
            "cross_migrations": fleet.cross_migrations,
            "migrate_backlog": fleet.migrate_backlog,
            # Explicit, so a report can never silently claim migration
            # coverage a closed-loop replay would not have delivered.
            "migrations_armed": (
                fleet.migrate_backlog is not None and open_loop
            ),
            "shared_dicts": {
                "resident_at_end": sorted(fleet.resident_shared_dicts()),
                "max_resident": fleet.max_resident_tables,
                "faults": fleet.fleet_dict_faults - base_faults,
                "drops": fleet.fleet_dict_drops - base_drops,
                "referencing_shards": {
                    str(dict_id): refcounts[dict_id]
                    for dict_id in sorted(refcounts)
                },
            },
        },
        "events": summed("counts"),
        "cache": agg_cache,
        "cycles": summed("cycles"),
        "load_cache_hits": sum(
            clock["state"]["load_cache_hits"] for clock in clocks
        ),
        "bytes_decoded": sum(
            clock["state"]["bytes_decoded"] for clock in clocks
        ),
        "per_task": {name: per_task[name] for name in sorted(per_task)},
        "shared_dicts": {
            "resident_at_end": sorted(fleet.resident_shared_dicts()),
            "max_resident": fleet.max_resident_tables,
            "faults": fleet.fleet_dict_faults - base_faults,
            "drops": fleet.fleet_dict_drops - base_drops,
        },
        "fabric": {
            "width": fleet.shards[0].controller.fabric.width,
            "height": fleet.shards[0].controller.fabric.height,
            "utilization": (
                sum(fleet.utilization()) / n
            ),
            "resident_at_end": sorted(
                name
                for mgr in fleet.shards
                for name in mgr.controller.resident
            ),
        },
        "shards": shard_sections,
    }
    if open_loop:
        report["trace"]["arrivals"] = trace.arrivals
        report["trace"]["mean_interarrival"] = trace.mean_interarrival
        if trace.zipf_alpha is not None:
            report["trace"]["zipf_alpha"] = trace.zipf_alpha
        report["latency"] = latency_section(
            all_latencies, all_queue_waits, all_phases
        )
        arrivals = sum(clock["arrivals"] for clock in clocks)
        report["queue"] = {
            "arrivals": arrivals,
            "max_depth": max(clock["max_depth"] for clock in clocks),
            "mean_depth": (
                sum(clock["depth_sum"] for clock in clocks) / arrivals
                if arrivals
                else 0.0
            ),
        }
        makespan = max(clock["makespan"] for clock in clocks)
        busy = sum(clock["busy"] for clock in clocks)
        report["clock"] = {
            "makespan": makespan,
            "busy_cycles": busy,
            # n shards x k servers each: a fully-loaded fleet sits at 1.0.
            "utilization": (
                busy / (n * servers * makespan) if makespan else 0.0
            ),
        }
        if servers > 1:
            report["clock"]["servers"] = servers
    return report
