"""The run-time reconfiguration controller (Section II-C, Figure 2).

The controller owns the fabric's configuration layer.  It fetches task
images from external memory, de-virtualizes Virtual Bit-Streams at the
requested position ("decoded and finalized in real-time and at run-time
... to be placed at a given physical location"), writes the expanded
frames, tracks which region every task occupies, and supports unloading
and migration (re-decoding the same VBS at a new origin).

All operations return cycle costs from :mod:`repro.runtime.costmodel`, so
experiments can compare raw-versus-VBS load latency and decoder
parallelism.

Repeated and relocated loads of the same image are served from an LRU
:class:`~repro.runtime.costmodel.DecodeCache` (content-digest keyed,
origin-independent entries) and skip the de-virtualization replay
entirely; see ``docs/architecture.md`` for the cache contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.arch.fabric import FabricArch
from repro.bitstream.config import FabricConfig
from repro.bitstream.raw import RawBitstream
from repro.errors import RuntimeManagementError
from repro.runtime.costmodel import (
    CachedDecode,
    CostParams,
    DecodeCache,
    LoadCost,
    decode_cost,
    write_cost,
)
from repro.runtime.memory import ExternalMemory, StoredImage
from repro.utils.bitarray import BitArray
from repro.utils.geometry import Rect
from repro.vbs.decode import DecodeStats, decode_vbs
from repro.vbs.devirt import DecodeMemo
from repro.vbs.encode import VirtualBitstream


@dataclass
class ResidentTask:
    """A task currently configured on the fabric."""

    name: str
    region: Rect
    image: StoredImage
    load_cost: LoadCost
    decode_stats: Optional[DecodeStats]


class ReconfigurationController:
    """Decode-and-place engine over one fabric's configuration layer."""

    def __init__(
        self,
        fabric: FabricArch,
        memory: ExternalMemory,
        cost_params: Optional[CostParams] = None,
        decode_cache: "DecodeCache | None" = None,
        cache_capacity: "int | None" = 16,
        cache_capacity_bytes: Optional[int] = None,
        memo_entries: Optional[int] = 4096,
    ):
        self.fabric = fabric
        self.memory = memory
        self.cost_params = cost_params or CostParams(bus_bits=memory.bus_bits)
        #: The fabric-wide configuration layer (all macros, default zeros).
        self.config = FabricConfig(
            fabric.params, Rect(0, 0, fabric.width, fabric.height)
        )
        self.resident: Dict[str, ResidentTask] = {}
        #: Decode cache: repeated/relocated loads of the same image skip
        #: ClusterDecoder replay.  ``cache_capacity`` None or <=0 lifts
        #: the entry-count bound; ``cache_capacity_bytes`` adds an
        #: expanded-image byte budget (then the only bound).  With
        #: neither bound the cache is disabled entirely.
        if decode_cache is not None:
            self.decode_cache: Optional[DecodeCache] = decode_cache
        elif cache_capacity is None or cache_capacity <= 0:
            self.decode_cache = (
                DecodeCache(None, capacity_bytes=cache_capacity_bytes)
                if cache_capacity_bytes is not None
                else None
            )
        else:
            self.decode_cache = DecodeCache(
                cache_capacity, capacity_bytes=cache_capacity_bytes
            )
        #: Cross-task cluster-level result reuse (identical lists decode
        #: once even across different images sharing wiring patterns).
        #: Bounded, unlike an encoder-run memo: the controller lives for
        #: the whole serving session.  ``memo_entries=0`` or ``None``
        #: disables reuse entirely (every decode replays the router).
        self.decode_memo: Optional[DecodeMemo] = (
            DecodeMemo(max_entries=memo_entries) if memo_entries else None
        )

    # -- placement bookkeeping ----------------------------------------------------

    def region_free(self, region: Rect, ignore: Optional[str] = None) -> bool:
        """True when ``region`` is inside the fabric and collision-free.

        ``ignore`` names a resident task whose footprint does not count as
        a collision — the migration/defragmentation case, where a task may
        slide into a region overlapping its own current position.
        """
        if not self.fabric.bounds.contains_rect(region):
            return False
        return all(
            task.name == ignore or not task.region.overlaps(region)
            for task in self.resident.values()
        )

    def _claim_region(self, name: str, region: Rect) -> None:
        if not self.fabric.bounds.contains_rect(region):
            raise RuntimeManagementError(
                f"task {name}: region {region} exceeds fabric "
                f"{self.fabric.width}x{self.fabric.height}"
            )
        for other in self.resident.values():
            if other.region.overlaps(region):
                raise RuntimeManagementError(
                    f"task {name}: region {region} collides with resident "
                    f"task {other.name} at {other.region}"
                )

    # -- configuration writes --------------------------------------------------------

    def _write_config(self, task_config: FabricConfig) -> int:
        bits_written = 0
        nraw = self.fabric.params.nraw
        for cell in task_config.region.cells():
            x, y = cell
            logic = task_config.logic.get((x, y))
            closed = task_config.closed.get((x, y), set())
            if logic is not None:
                self.config.set_logic(x, y, logic.copy())
            for off in closed:
                self.config.close_switch(x, y, off)
            bits_written += nraw
        return bits_written

    def _clear_region(self, region: Rect) -> None:
        for cell in region.cells():
            self.config.logic.pop((cell.x, cell.y), None)
            self.config.closed.pop((cell.x, cell.y), None)

    # -- de-virtualization with caching ------------------------------------------

    def _decode_image(
        self, image: StoredImage, origin: Tuple[int, int]
    ) -> Tuple[FabricConfig, DecodeStats, bool]:
        """De-virtualize a VBS image at ``origin``, through the cache.

        Returns ``(config, stats, cache_hit)``.  The cache stores the
        origin-(0, 0) expansion — position abstraction makes one entry
        serve every placement — so a hit performs only a translation copy
        and zero router work.
        """
        if self.decode_cache is None:
            config, stats = decode_vbs(
                image.bits, origin=origin, memo=self.decode_memo
            )
            return config, stats, False
        key = DecodeCache.key_for(image)
        entry = self.decode_cache.get(key)
        if entry is not None:
            return entry.config_at(origin), entry.stats, True
        vbs = VirtualBitstream.from_bits(image.bits)
        base, stats = decode_vbs(vbs, origin=(0, 0), memo=self.decode_memo)
        entry = CachedDecode(
            config=base,
            stats=stats,
            codec_tags=tuple(sorted(vbs.codec_tags())),
            layout=(
                vbs.layout.width,
                vbs.layout.height,
                vbs.layout.cluster_size,
                vbs.layout.compact_logic,
            ),
        )
        self.decode_cache.put(key, entry)
        # Translate a copy even for origin (0, 0): the cached expansion
        # must never alias the configuration being written to the fabric.
        return entry.config_at(origin), stats, False

    # -- task lifecycle ---------------------------------------------------------------

    def load_task(self, name: str, origin: Tuple[int, int]) -> ResidentTask:
        """Fetch, decode (if virtual) and configure a task at ``origin``."""
        if name in self.resident:
            raise RuntimeManagementError(f"task {name!r} is already loaded")
        image, fetch_cycles = self.memory.fetch(name)
        region = Rect(origin[0], origin[1], image.width, image.height)
        self._claim_region(name, region)

        cost = LoadCost(fetch_cycles=fetch_cycles)
        stats: Optional[DecodeStats] = None
        if image.kind == "vbs":
            task_config, stats, cost.cache_hit = self._decode_image(
                image, origin
            )
            if not cost.cache_hit:
                cost.decode_cycles, cost.per_unit_cycles = decode_cost(
                    stats, self.cost_params
                )
        else:
            raw = RawBitstream(
                self.fabric.params, image.width, image.height, image.bits
            )
            task_config = raw.to_config(origin)
        bits_written = self._write_config(task_config)
        cost.write_cycles = write_cost(bits_written, self.cost_params)

        task = ResidentTask(name, region, image, cost, stats)
        self.resident[name] = task
        return task

    def unload_task(self, name: str) -> None:
        """Remove a task's configuration from the fabric."""
        task = self.resident.pop(name, None)
        if task is None:
            raise RuntimeManagementError(f"task {name!r} is not loaded")
        self._clear_region(task.region)

    def migrate_task(self, name: str, new_origin: Tuple[int, int]) -> ResidentTask:
        """Relocate a task: clear its region and re-decode at the new origin.

        This is the paper's "decoding the VBS on-the-fly during the task
        migration" — no position-specific bitstream was ever stored.
        """
        task = self.resident.get(name)
        if task is None:
            raise RuntimeManagementError(f"task {name!r} is not loaded")
        new_region = Rect(
            new_origin[0], new_origin[1], task.region.w, task.region.h
        )
        if not self.fabric.bounds.contains_rect(new_region):
            raise RuntimeManagementError(
                f"task {name}: migration target {new_region} exceeds fabric"
            )
        for other in self.resident.values():
            if other.name != name and other.region.overlaps(new_region):
                raise RuntimeManagementError(
                    f"task {name}: migration target collides with "
                    f"{other.name}"
                )
        self.unload_task(name)
        return self.load_task(name, new_origin)

    # -- convenience -------------------------------------------------------------------

    def store_vbs(self, name: str, vbs: VirtualBitstream) -> StoredImage:
        """Publish a Virtual Bit-Stream into external memory."""
        return self.memory.store(
            name, vbs.to_bits(), "vbs", vbs.layout.width, vbs.layout.height
        )

    def store_raw(self, name: str, raw: RawBitstream) -> StoredImage:
        """Publish a raw bitstream into external memory (baseline path)."""
        bits: BitArray = raw.bits
        return self.memory.store(name, bits, "raw", raw.width, raw.height)

    def utilization(self) -> float:
        """Fraction of fabric macros covered by resident task regions."""
        covered = sum(t.region.area for t in self.resident.values())
        return covered / self.fabric.bounds.area
