"""The run-time reconfiguration controller (Section II-C, Figure 2).

The controller owns the fabric's configuration layer.  It fetches task
images from external memory, de-virtualizes Virtual Bit-Streams at the
requested position ("decoded and finalized in real-time and at run-time
... to be placed at a given physical location"), writes the expanded
frames, tracks which region every task occupies, and supports unloading
and migration (re-decoding the same VBS at a new origin).

All operations return cycle costs from :mod:`repro.runtime.costmodel`, so
experiments can compare raw-versus-VBS load latency and decoder
parallelism.

Repeated and relocated loads of the same image are served from an LRU
:class:`~repro.runtime.costmodel.DecodeCache` (content-digest keyed,
origin-independent entries) and skip the de-virtualization replay
entirely; see ``docs/architecture.md`` for the cache contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.arch.fabric import FabricArch
from repro.bitstream.config import FabricConfig
from repro.bitstream.raw import RawBitstream
from repro.errors import RuntimeManagementError
from repro.runtime.costmodel import (
    CachedDecode,
    CostParams,
    DecodeCache,
    LoadCost,
    decode_cost,
    write_cost,
)
from repro.runtime.memory import ExternalMemory, StoredImage
from repro.utils.bitarray import BitArray
from repro.utils.geometry import Rect
from repro.vbs.decode import DecodeStats, decode_vbs
from repro.vbs.devirt import DecodeMemo
from repro.vbs.encode import VirtualBitstream

if TYPE_CHECKING:
    from repro.vbs.encode import TaskEncodeResult


@dataclass
class ResidentTask:
    """A task currently configured on the fabric."""

    name: str
    region: Rect
    image: StoredImage
    load_cost: LoadCost
    decode_stats: Optional[DecodeStats]
    #: VERSION 4 shared-dictionary id the image references (None for
    #: self-contained containers).  The controller refcounts resident
    #: tables by this field.
    shared_dict_id: Optional[int] = None


class ReconfigurationController:
    """Decode-and-place engine over one fabric's configuration layer."""

    def __init__(
        self,
        fabric: FabricArch,
        memory: ExternalMemory,
        cost_params: Optional[CostParams] = None,
        decode_cache: "DecodeCache | None" = None,
        cache_capacity: "int | None" = 16,
        cache_capacity_bytes: Optional[int] = None,
        memo_entries: Optional[int] = 4096,
    ):
        self.fabric = fabric
        self.memory = memory
        self.cost_params = cost_params or CostParams(bus_bits=memory.bus_bits)
        #: The fabric-wide configuration layer (all macros, default zeros).
        self.config = FabricConfig(
            fabric.params, Rect(0, 0, fabric.width, fabric.height)
        )
        self.resident: Dict[str, ResidentTask] = {}
        #: Decode cache: repeated/relocated loads of the same image skip
        #: ClusterDecoder replay.  ``cache_capacity`` None or <=0 lifts
        #: the entry-count bound; ``cache_capacity_bytes`` adds an
        #: expanded-image byte budget (then the only bound).  With
        #: neither bound the cache is disabled entirely.
        if decode_cache is not None:
            self.decode_cache: Optional[DecodeCache] = decode_cache
        elif cache_capacity is None or cache_capacity <= 0:
            self.decode_cache = (
                DecodeCache(None, capacity_bytes=cache_capacity_bytes)
                if cache_capacity_bytes is not None
                else None
            )
        else:
            self.decode_cache = DecodeCache(
                cache_capacity, capacity_bytes=cache_capacity_bytes
            )
        #: Cross-task cluster-level result reuse (identical lists decode
        #: once even across different images sharing wiring patterns).
        #: Bounded, unlike an encoder-run memo: the controller lives for
        #: the whole serving session.  ``memo_entries=0`` or ``None``
        #: disables reuse entirely (every decode replays the router).
        self.decode_memo: Optional[DecodeMemo] = (
            DecodeMemo(max_entries=memo_entries) if memo_entries else None
        )
        #: Resident shared-dictionary tables (VERSION 4 task tables),
        #: faulted in from external memory on first reference and held
        #: exactly while at least one resident task references them —
        #: the refcounts below drop a table the moment its last
        #: referencing container leaves the fabric.
        self.shared_dicts: Dict[int, Tuple["BitArray", ...]] = {}
        self._shared_dict_refs: Dict[int, int] = {}
        #: Lifecycle counters of the resident tables (the workload
        #: simulator reports them as per-run deltas): ``faults`` counts
        #: tables brought resident from external memory, ``drops`` counts
        #: tables released when their last referencing task unloaded.
        self.shared_dict_faults = 0
        self.shared_dict_drops = 0

    # -- placement bookkeeping ----------------------------------------------------

    def region_free(self, region: Rect, ignore: Optional[str] = None) -> bool:
        """True when ``region`` is inside the fabric and collision-free.

        ``ignore`` names a resident task whose footprint does not count as
        a collision — the migration/defragmentation case, where a task may
        slide into a region overlapping its own current position.
        """
        if not self.fabric.bounds.contains_rect(region):
            return False
        return all(
            task.name == ignore or not task.region.overlaps(region)
            for task in self.resident.values()
        )

    def _claim_region(self, name: str, region: Rect) -> None:
        if not self.fabric.bounds.contains_rect(region):
            raise RuntimeManagementError(
                f"task {name}: region {region} exceeds fabric "
                f"{self.fabric.width}x{self.fabric.height}"
            )
        for other in self.resident.values():
            if other.region.overlaps(region):
                raise RuntimeManagementError(
                    f"task {name}: region {region} collides with resident "
                    f"task {other.name} at {other.region}"
                )

    # -- configuration writes --------------------------------------------------------

    def _write_config(self, task_config: FabricConfig) -> int:
        region = task_config.region
        for (x, y), logic in task_config.logic.items():
            self.config.set_logic(x, y, logic.copy())
        for (x, y), closed in task_config.closed.items():
            if closed:
                self.config.close_switches(x, y, closed)
        # Every frame of the region is written, occupied or not (Eq. 1).
        return region.w * region.h * self.fabric.params.nraw

    def _clear_region(self, region: Rect) -> None:
        for cell in region.cells():
            self.config.logic.pop((cell.x, cell.y), None)
            self.config.closed.pop((cell.x, cell.y), None)

    # -- shared dictionaries (VERSION 4 task tables) ------------------------------

    def resolve_shared_dict(self, dict_id: int):
        """Shared-dictionary resolver handed to the container parser.

        Serves the resident table when one is held, faulting it in from
        external memory otherwise; returns None for an unknown id (the
        parser turns that into a loud :class:`~repro.errors.VbsError`).

        Republishing an id while resident tasks still reference its old
        table is refused loudly: decoding new containers against the
        stale resident copy (or evicted tasks' images against the new
        one) would silently fabricate logic fields — the caller must
        pick a fresh id or unload the referencing tasks first.
        """
        resident = self.shared_dicts.get(dict_id)
        stored = self.memory.shared_dict(dict_id)
        if resident is not None:
            if stored is not None and stored != resident:
                raise RuntimeManagementError(
                    f"shared dictionary {dict_id} was republished while "
                    f"{self._shared_dict_refs.get(dict_id, 0)} resident "
                    f"task(s) still reference the old table"
                )
            return resident
        return stored

    def _retain_shared_dict(self, dict_id: int) -> None:
        """Count one more resident container referencing ``dict_id``."""
        if dict_id not in self._shared_dict_refs:
            table = self.resolve_shared_dict(dict_id)
            if table is None:
                raise RuntimeManagementError(
                    f"no shared dictionary with id {dict_id} in memory"
                )
            self.shared_dicts[dict_id] = table
            self._shared_dict_refs[dict_id] = 0
            self.shared_dict_faults += 1
        self._shared_dict_refs[dict_id] += 1

    def _release_shared_dict(self, dict_id: int) -> None:
        """Drop the resident table when its last referencing task leaves."""
        refs = self._shared_dict_refs.get(dict_id)
        if refs is None:
            return
        if refs <= 1:
            del self._shared_dict_refs[dict_id]
            self.shared_dicts.pop(dict_id, None)
            self.shared_dict_drops += 1
        else:
            self._shared_dict_refs[dict_id] = refs - 1

    # -- de-virtualization with caching ------------------------------------------

    def _decode_image(
        self, image: StoredImage, origin: Tuple[int, int]
    ) -> Tuple[FabricConfig, DecodeStats, bool, Optional[int]]:
        """De-virtualize a VBS image at ``origin``, through the cache.

        Returns ``(config, stats, cache_hit, shared_dict_id)``.  The
        cache stores the origin-(0, 0) expansion — position abstraction
        makes one entry serve every placement — so a hit performs only a
        translation copy and zero router work (the entry remembers the
        shared-dictionary id so refcounting works without re-parsing).

        A shared-dict entry is validated against the *currently
        published* table before it is served: the container bytes digest
        only the 16-bit id, so a republished id would otherwise hit a
        stale expansion (including across processes via the persisted
        cache).  A stale or unresolvable entry counts as a miss and is
        re-decoded.
        """
        from repro.runtime.costmodel import shared_dict_digest

        def _entry_fresh(entry: CachedDecode) -> bool:
            if entry.shared_dict_id is None:
                return True
            table = self.resolve_shared_dict(entry.shared_dict_id)
            return (
                table is not None
                and shared_dict_digest(table) == entry.shared_dict_digest
            )

        if self.decode_cache is None:
            vbs = VirtualBitstream.from_bits(
                image.bits, shared_dicts=self.resolve_shared_dict
            )
            config, stats = decode_vbs(
                vbs, origin=origin, memo=self.decode_memo
            )
            return config, stats, False, vbs.layout.shared_dict_id
        key = DecodeCache.key_for(image)
        entry = self.decode_cache.get(key, validator=_entry_fresh)
        if entry is not None:
            return (
                entry.config_at(origin), entry.stats, True,
                entry.shared_dict_id,
            )
        vbs = VirtualBitstream.from_bits(
            image.bits, shared_dicts=self.resolve_shared_dict
        )
        base, stats = decode_vbs(vbs, origin=(0, 0), memo=self.decode_memo)
        entry = CachedDecode(
            config=base,
            stats=stats,
            codec_tags=tuple(sorted(vbs.codec_tags())),
            layout=(
                vbs.layout.width,
                vbs.layout.height,
                vbs.layout.cluster_size,
                vbs.layout.compact_logic,
            ),
            shared_dict_id=vbs.layout.shared_dict_id,
            shared_dict_digest=(
                shared_dict_digest(vbs.layout.dict_table)
                if vbs.layout.shared_dict_id is not None
                else None
            ),
        )
        self.decode_cache.put(key, entry)
        # Translate a copy even for origin (0, 0): the cached expansion
        # must never alias the configuration being written to the fabric.
        return entry.config_at(origin), stats, False, vbs.layout.shared_dict_id

    # -- task lifecycle ---------------------------------------------------------------

    def load_task(self, name: str, origin: Tuple[int, int]) -> ResidentTask:
        """Fetch, decode (if virtual) and configure a task at ``origin``."""
        if name in self.resident:
            raise RuntimeManagementError(f"task {name!r} is already loaded")
        image, fetch_cycles = self.memory.fetch(name)
        region = Rect(origin[0], origin[1], image.width, image.height)
        self._claim_region(name, region)

        cost = LoadCost(fetch_cycles=fetch_cycles)
        stats: Optional[DecodeStats] = None
        shared_dict_id: Optional[int] = None
        if image.kind == "vbs":
            task_config, stats, cost.cache_hit, shared_dict_id = (
                self._decode_image(image, origin)
            )
            if not cost.cache_hit:
                cost.decode_cycles, cost.per_unit_cycles = decode_cost(
                    stats, self.cost_params
                )
        else:
            raw = RawBitstream(
                self.fabric.params, image.width, image.height, image.bits
            )
            task_config = raw.to_config(origin)
        # Retain the shared table *before* any fabric/resident mutation:
        # a cache-hit load whose table has left external memory must fail
        # cleanly, not leave a half-registered task behind.
        if shared_dict_id is not None:
            self._retain_shared_dict(shared_dict_id)
        bits_written = self._write_config(task_config)
        cost.write_cycles = write_cost(bits_written, self.cost_params)

        task = ResidentTask(
            name, region, image, cost, stats,
            shared_dict_id=shared_dict_id,
        )
        self.resident[name] = task
        return task

    def unload_task(self, name: str) -> None:
        """Remove a task's configuration from the fabric.

        A task referencing a shared dictionary releases its reference;
        the resident table is dropped exactly when the last referencing
        task leaves (it stays available in external memory for later
        reloads).
        """
        task = self.resident.pop(name, None)
        if task is None:
            raise RuntimeManagementError(f"task {name!r} is not loaded")
        self._clear_region(task.region)
        if task.shared_dict_id is not None:
            self._release_shared_dict(task.shared_dict_id)

    def migrate_task(self, name: str, new_origin: Tuple[int, int]) -> ResidentTask:
        """Relocate a task: clear its region and re-decode at the new origin.

        This is the paper's "decoding the VBS on-the-fly during the task
        migration" — no position-specific bitstream was ever stored.
        """
        task = self.resident.get(name)
        if task is None:
            raise RuntimeManagementError(f"task {name!r} is not loaded")
        new_region = Rect(
            new_origin[0], new_origin[1], task.region.w, task.region.h
        )
        if not self.fabric.bounds.contains_rect(new_region):
            raise RuntimeManagementError(
                f"task {name}: migration target {new_region} exceeds fabric"
            )
        for other in self.resident.values():
            if other.name != name and other.region.overlaps(new_region):
                raise RuntimeManagementError(
                    f"task {name}: migration target collides with "
                    f"{other.name}"
                )
        if task.shared_dict_id is not None:
            # Validate the shared table *before* the unload, like every
            # other migrate precondition: a republished id (the resolver
            # raises) or a vanished table must fail while the task is
            # still resident, never lose it between unload and reload.
            if self.resolve_shared_dict(task.shared_dict_id) is None:
                raise RuntimeManagementError(
                    f"task {name}: shared dictionary "
                    f"{task.shared_dict_id} is no longer available"
                )
        self.unload_task(name)
        return self.load_task(name, new_origin)

    # -- convenience -------------------------------------------------------------------

    def store_vbs(self, name: str, vbs: VirtualBitstream) -> StoredImage:
        """Publish a Virtual Bit-Stream into external memory."""
        return self.memory.store(
            name, vbs.to_bits(), "vbs", vbs.layout.width, vbs.layout.height
        )

    def store_task(
        self, names: "Sequence[str]", result: "TaskEncodeResult"
    ) -> "list[StoredImage]":
        """Publish a task-scope encode: every container plus, when the
        task kept one, its shared dictionary table.

        The table is stored *before* the images so a load can never
        observe a container whose reference is unresolvable.
        """
        if len(names) != len(result.containers):
            raise RuntimeManagementError(
                f"{len(names)} names for {len(result.containers)} containers"
            )
        if result.shared:
            self.memory.store_shared_dict(result.dict_id, result.table)
        return [
            self.store_vbs(name, vbs)
            for name, vbs in zip(names, result.containers)
        ]

    def store_raw(self, name: str, raw: RawBitstream) -> StoredImage:
        """Publish a raw bitstream into external memory (baseline path)."""
        bits: BitArray = raw.bits
        return self.memory.store(name, bits, "raw", raw.width, raw.height)

    def utilization(self) -> float:
        """Fraction of fabric macros covered by resident task regions."""
        covered = sum(t.region.area for t in self.resident.values())
        return covered / self.fabric.bounds.area
