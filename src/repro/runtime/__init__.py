"""Run-time management: external memory, reconfiguration controller, manager."""

from repro.runtime.memory import ExternalMemory, StoredImage
from repro.runtime.costmodel import (
    CachedDecode,
    CostParams,
    DecodeCache,
    DecodeCacheStats,
    LoadCost,
    decode_cost,
    lpt_makespan,
    write_cost,
)
from repro.runtime.controller import ReconfigurationController, ResidentTask
from repro.runtime.manager import BEST_FIT, FIRST_FIT, FabricManager

__all__ = [
    "ExternalMemory",
    "StoredImage",
    "CachedDecode",
    "CostParams",
    "DecodeCache",
    "DecodeCacheStats",
    "LoadCost",
    "decode_cost",
    "lpt_makespan",
    "write_cost",
    "ReconfigurationController",
    "ResidentTask",
    "BEST_FIT",
    "FIRST_FIT",
    "FabricManager",
]
