"""Run-time management: external memory, reconfiguration controller, manager."""

from repro.runtime.memory import ExternalMemory, StoredImage
from repro.runtime.costmodel import (
    CachedDecode,
    CostParams,
    DecodeCache,
    DecodeCacheStats,
    LoadCost,
    decode_cost,
    lpt_makespan,
    write_cost,
)
from repro.runtime.controller import ReconfigurationController, ResidentTask
from repro.runtime.manager import BEST_FIT, FIRST_FIT, FabricManager
from repro.runtime.workload import (
    TRACE_KINDS,
    TraceEvent,
    WorkloadSimulator,
    WorkloadTrace,
    generate_trace,
    run_scenario,
    summarize_report,
    synthesize_task_images,
)

__all__ = [
    "ExternalMemory",
    "StoredImage",
    "CachedDecode",
    "CostParams",
    "DecodeCache",
    "DecodeCacheStats",
    "LoadCost",
    "decode_cost",
    "lpt_makespan",
    "write_cost",
    "ReconfigurationController",
    "ResidentTask",
    "BEST_FIT",
    "FIRST_FIT",
    "FabricManager",
    "TRACE_KINDS",
    "TraceEvent",
    "WorkloadSimulator",
    "WorkloadTrace",
    "generate_trace",
    "run_scenario",
    "summarize_report",
    "synthesize_task_images",
]
