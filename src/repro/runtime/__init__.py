"""Run-time management: external memory, reconfiguration controller, manager."""

from repro.runtime.memory import ExternalMemory, StoredImage
from repro.runtime.costmodel import (
    CachedDecode,
    CostParams,
    DecodeCache,
    DecodeCacheStats,
    LoadCost,
    decode_cost,
    lpt_makespan,
    percentile,
    write_cost,
)
from repro.runtime.controller import ReconfigurationController, ResidentTask
from repro.runtime.fleet import (
    ROUTER_KINDS,
    ConsistentHashRouter,
    FleetManager,
    LoadAwareRouter,
    make_router,
    simulate_fleet,
    validate_fleet_request,
)
from repro.runtime.manager import BEST_FIT, FIRST_FIT, FabricManager
from repro.runtime.workload import (
    ARRIVAL_KINDS,
    TRACE_KINDS,
    TraceEvent,
    WorkloadSimulator,
    WorkloadTrace,
    generate_trace,
    run_scenario,
    summarize_report,
    synthesize_task_images,
    synthesize_task_scope_images,
)

__all__ = [
    "ExternalMemory",
    "StoredImage",
    "CachedDecode",
    "CostParams",
    "DecodeCache",
    "DecodeCacheStats",
    "LoadCost",
    "decode_cost",
    "lpt_makespan",
    "percentile",
    "write_cost",
    "ReconfigurationController",
    "ResidentTask",
    "ROUTER_KINDS",
    "ConsistentHashRouter",
    "FleetManager",
    "LoadAwareRouter",
    "make_router",
    "simulate_fleet",
    "validate_fleet_request",
    "BEST_FIT",
    "FIRST_FIT",
    "FabricManager",
    "ARRIVAL_KINDS",
    "TRACE_KINDS",
    "TraceEvent",
    "WorkloadSimulator",
    "WorkloadTrace",
    "generate_trace",
    "run_scenario",
    "summarize_report",
    "synthesize_task_images",
    "synthesize_task_scope_images",
]
