"""External configuration memory (Figure 2 of the paper).

The run-time architecture keeps every task's Virtual Bit-Stream in an
external memory; the reconfiguration controller fetches a VBS, decodes it,
and writes the expanded frames into the fabric's configuration layer.  This
model tracks storage occupancy and fetch latency through a simple
bandwidth model (``bus_bits`` per cycle), which is what makes the
compressed-versus-raw load-time trade-off measurable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.errors import RuntimeManagementError
from repro.utils.bitarray import BitArray


@dataclass(frozen=True)
class StoredImage:
    """One task image resident in external memory."""

    name: str
    kind: str  # "vbs" or "raw"
    bits: BitArray
    width: int
    height: int

    @property
    def size_bits(self) -> int:
        return len(self.bits)

    def digest(self) -> str:
        """Content digest of the stored bits (decode-cache keying).

        Computed once and memoized: images are immutable after ``store``,
        and the decode cache keys every load by digest — re-hashing the
        whole payload per load would erase the cache's win.
        """
        cached = self.__dict__.get("_digest")
        if cached is None:
            cached = self.bits.digest()
            object.__setattr__(self, "_digest", cached)
        return cached


class ExternalMemory:
    """A name-addressed store with a per-cycle fetch bandwidth."""

    def __init__(self, bus_bits: int = 32):
        if bus_bits < 1:
            raise RuntimeManagementError("bus width must be at least 1 bit")
        self.bus_bits = bus_bits
        self._images: Dict[str, StoredImage] = {}
        #: Task-scope shared dictionaries (VERSION 4 containers reference
        #: them by id).  Stored once per task next to the task's images —
        #: the amortization the shared-dictionary design buys.
        self._shared_dicts: Dict[int, Tuple[BitArray, ...]] = {}

    def store(
        self, name: str, bits: BitArray, kind: str, width: int, height: int
    ) -> StoredImage:
        """Register a task image; replaces any previous image of that name."""
        if kind not in ("vbs", "raw"):
            raise RuntimeManagementError(f"unknown image kind {kind!r}")
        image = StoredImage(name, kind, bits, width, height)
        self._images[name] = image
        return image

    def fetch(self, name: str) -> Tuple[StoredImage, int]:
        """Return (image, fetch_cycles) — cycles follow the bus model."""
        image = self._images.get(name)
        if image is None:
            raise RuntimeManagementError(f"no image named {name!r} in memory")
        cycles = -(-image.size_bits // self.bus_bits)  # ceil division
        return image, cycles

    def remove(self, name: str) -> None:
        if name not in self._images:
            raise RuntimeManagementError(f"no image named {name!r} in memory")
        del self._images[name]

    def names(self) -> "list[str]":
        return sorted(self._images)

    @property
    def total_bits(self) -> int:
        """Aggregate footprint — the quantity VBS compression shrinks."""
        return sum(img.size_bits for img in self._images.values())

    def image(self, name: str) -> Optional[StoredImage]:
        return self._images.get(name)

    # -- shared dictionaries (VERSION 4 task tables) -----------------------------

    def store_shared_dict(
        self, dict_id: int, patterns: Sequence[BitArray]
    ) -> None:
        """Publish a task's shared pattern table under ``dict_id``.

        Replaces any previous table of that id — the caller owns id
        allocation (the encoder's ``encode_task`` takes the id as an
        argument precisely so the runtime can hand them out).
        """
        if dict_id < 1:
            raise RuntimeManagementError(
                f"shared dictionary id must be >= 1, got {dict_id}"
            )
        if not patterns:
            raise RuntimeManagementError(
                "a shared dictionary must hold at least one pattern"
            )
        self._shared_dicts[dict_id] = tuple(patterns)

    def shared_dict(self, dict_id: int) -> Optional[Tuple[BitArray, ...]]:
        """The stored table of ``dict_id``, or None."""
        return self._shared_dicts.get(dict_id)

    def remove_shared_dict(self, dict_id: int) -> None:
        if dict_id not in self._shared_dicts:
            raise RuntimeManagementError(
                f"no shared dictionary with id {dict_id} in memory"
            )
        del self._shared_dicts[dict_id]

    def shared_dict_ids(self) -> "list[int]":
        return sorted(self._shared_dicts)

    @property
    def shared_dict_bits(self) -> int:
        """Aggregate storage of every shared table (not in total_bits —
        the tables are a separate, task-amortized region)."""
        return sum(
            sum(len(p) for p in table)
            for table in self._shared_dicts.values()
        )
