"""External configuration memory (Figure 2 of the paper).

The run-time architecture keeps every task's Virtual Bit-Stream in an
external memory; the reconfiguration controller fetches a VBS, decodes it,
and writes the expanded frames into the fabric's configuration layer.  This
model tracks storage occupancy and fetch latency through a simple
bandwidth model (``bus_bits`` per cycle), which is what makes the
compressed-versus-raw load-time trade-off measurable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import RuntimeManagementError
from repro.utils.bitarray import BitArray


@dataclass(frozen=True)
class StoredImage:
    """One task image resident in external memory."""

    name: str
    kind: str  # "vbs" or "raw"
    bits: BitArray
    width: int
    height: int

    @property
    def size_bits(self) -> int:
        return len(self.bits)

    def digest(self) -> str:
        """Content digest of the stored bits (decode-cache keying).

        Computed once and memoized: images are immutable after ``store``,
        and the decode cache keys every load by digest — re-hashing the
        whole payload per load would erase the cache's win.
        """
        cached = self.__dict__.get("_digest")
        if cached is None:
            cached = self.bits.digest()
            object.__setattr__(self, "_digest", cached)
        return cached


class ExternalMemory:
    """A name-addressed store with a per-cycle fetch bandwidth."""

    def __init__(self, bus_bits: int = 32):
        if bus_bits < 1:
            raise RuntimeManagementError("bus width must be at least 1 bit")
        self.bus_bits = bus_bits
        self._images: Dict[str, StoredImage] = {}

    def store(
        self, name: str, bits: BitArray, kind: str, width: int, height: int
    ) -> StoredImage:
        """Register a task image; replaces any previous image of that name."""
        if kind not in ("vbs", "raw"):
            raise RuntimeManagementError(f"unknown image kind {kind!r}")
        image = StoredImage(name, kind, bits, width, height)
        self._images[name] = image
        return image

    def fetch(self, name: str) -> Tuple[StoredImage, int]:
        """Return (image, fetch_cycles) — cycles follow the bus model."""
        image = self._images.get(name)
        if image is None:
            raise RuntimeManagementError(f"no image named {name!r} in memory")
        cycles = -(-image.size_bits // self.bus_bits)  # ceil division
        return image, cycles

    def remove(self, name: str) -> None:
        if name not in self._images:
            raise RuntimeManagementError(f"no image named {name!r} in memory")
        del self._images[name]

    def names(self) -> "list[str]":
        return sorted(self._images)

    @property
    def total_bits(self) -> int:
        """Aggregate footprint — the quantity VBS compression shrinks."""
        return sum(img.size_bits for img in self._images.values())

    def image(self, name: str) -> Optional[StoredImage]:
        return self._images.get(name)
