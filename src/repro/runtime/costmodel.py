"""Cycle-cost model of the reconfiguration controller.

The paper evaluates its runtime qualitatively: de-virtualization is a
"simple router" cheap enough for on-line use, per-macro decoding "can be
easily parallelized to process multiple macros at once", and coarser
clusters "need higher computing power to decode".  This model turns those
statements into numbers:

* fetching an image costs ``ceil(bits / bus_bits)`` cycles (memory model);
* de-virtualizing a cluster costs ``work x cycles_per_bfs_step`` cycles,
  where ``work`` is the BFS dequeue count reported by the decoder;
* raw frames (raw images or raw-fallback clusters) are copied at
  ``bus_bits`` per cycle;
* with ``parallel_units`` decoders, per-cluster jobs are dispatched
  longest-first (LPT) and the decode time is the resulting makespan;
* writing frames into the configuration layer costs
  ``ceil(frame bits / config_port_bits)`` cycles;
* the controller's :class:`DecodeCache` (LRU, content-digest keyed) makes
  repeated or relocated loads of the same image skip de-virtualization
  entirely — a cache hit costs zero decode cycles, and
  :class:`DecodeCacheStats` surfaces the hit/miss counters.

The cache is bounded either by entry count (``capacity``) or by the byte
footprint of the cached expansions (``capacity_bytes``, entries weighted
by :attr:`CachedDecode.expanded_bytes`), and can be persisted to a
directory next to the ``eval`` results cache (``save``/``load``) so a
fresh process starts warm.
"""

from __future__ import annotations

import hashlib
import math
import os
import pickle
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.errors import RuntimeManagementError
from repro.vbs.decode import DecodeStats

if TYPE_CHECKING:
    from repro.bitstream.config import FabricConfig
    from repro.runtime.memory import StoredImage


@dataclass(frozen=True)
class CostParams:
    """Tunable constants of the controller model."""

    bus_bits: int = 32
    cycles_per_bfs_step: int = 1
    parallel_units: int = 1
    config_port_bits: int = 32


@dataclass
class LoadCost:
    """Cycle breakdown of one task load."""

    fetch_cycles: int = 0
    decode_cycles: int = 0
    write_cycles: int = 0
    per_unit_cycles: List[int] = field(default_factory=list)
    #: True when de-virtualization was skipped via the decode cache.
    cache_hit: bool = False

    @property
    def total_cycles(self) -> int:
        return self.fetch_cycles + self.decode_cycles + self.write_cycles


# -- the runtime decode cache ---------------------------------------------------


@dataclass
class DecodeCacheStats:
    """Hit/miss counters of the controller's decode cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    #: Entries restored from a persisted cache directory (``load``).
    restored: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


def expanded_image_bytes(width: int, height: int, nraw: int) -> int:
    """Raw-frame footprint of a ``width x height`` task, in bytes.

    The single definition behind both the cache's byte-budget weights
    and the workload report's decoded-byte accounting — what a hardware
    configuration store would hold for the expansion.
    """
    return -(-(width * height * nraw) // 8)


@dataclass
class CachedDecode:
    """One cached de-virtualization: origin-independent expansion + stats.

    ``config`` is decoded at origin (0, 0); position abstraction makes it
    valid for every placement of the task — consumers translate a copy to
    the target origin.  ``codec_tags`` and ``layout`` record which codings
    and coding geometry produced the entry (cache introspection; the
    digest key already pins them).
    """

    config: "FabricConfig"
    stats: DecodeStats
    codec_tags: Tuple[str, ...]
    layout: Tuple[int, int, int, bool]  # (width, height, cluster_size, compact)
    #: VERSION 4 shared-dictionary id the source container references
    #: (None for self-contained containers).  Kept in the entry so a
    #: cache hit can refcount resident task tables without re-parsing.
    shared_dict_id: Optional[int] = None
    #: Content digest of the resolved table the entry was decoded with.
    #: The cache key digests only the container *bytes*, which for a
    #: shared-dict container carry just the 16-bit id — the controller
    #: validates hits against the currently-published table so a
    #: republished id can never serve a stale expansion.
    shared_dict_digest: Optional[str] = None

    def config_at(self, origin: Tuple[int, int]) -> "FabricConfig":
        """A translated copy of the cached expansion at ``origin``."""
        return self.config.translated(origin[0], origin[1])

    @property
    def expanded_bytes(self) -> int:
        """Byte footprint of the expanded image this entry stands for.

        The raw-frame size of the task rectangle (``w * h * Nraw`` bits,
        rounded up to bytes): what a hardware configuration store would
        hold for the expansion, independent of Python object overhead —
        deterministic, so the byte-budget eviction is reproducible.
        """
        region = self.config.region
        return expanded_image_bytes(
            region.w, region.h, self.config.params.nraw
        )


def shared_dict_digest(patterns) -> str:
    """Content digest of a shared-dictionary table (order-sensitive)."""
    h = hashlib.sha256()
    for pattern in patterns:
        h.update(pattern.digest().encode())
    return h.hexdigest()


#: Cache key: (image digest, image kind, origin-independent dimensions).
CacheKey = Tuple[str, str, int, int]

#: Version stamp of the persisted entry-file format; files written by a
#: different format version are silently skipped on ``load``.  Format 2:
#: entries carry ``shared_dict_id`` (VERSION 4 container support).
CACHE_FILE_FORMAT = 2

#: Persisted entry-file prefix (``<prefix><keydigest>.pkl``).
_CACHE_FILE_PREFIX = "decode_"


def _entry_weight(entry: object) -> int:
    """Byte weight of a cache entry (0 for foreign test doubles)."""
    weight = getattr(entry, "expanded_bytes", 0)
    return weight if isinstance(weight, int) and weight > 0 else 0


class DecodeCache:
    """LRU cache of de-virtualized task images.

    Repeated or relocated loads of the same image skip the
    :class:`~repro.vbs.devirt.ClusterDecoder` replay entirely: the cached
    origin-(0,0) expansion is translated to the requested origin, so the
    second load of a task costs zero decode cycles.  Keys are content
    digests, so re-publishing a changed image under the same name can
    never serve stale frames.

    Bounds (at least one must be set):

    * ``capacity`` — maximum entry count (``None`` = unbounded count);
    * ``capacity_bytes`` — maximum summed :attr:`CachedDecode.expanded_bytes`
      of the resident entries.  Eviction is LRU under either bound, and an
      entry whose expansion alone exceeds the byte budget is never kept —
      after any operation sequence ``total_bytes <= capacity_bytes`` holds.

    ``save``/``load`` persist entries as individual version-stamped pickle
    files in a directory (conventionally next to the ``eval`` results
    cache), keyed by a digest of the cache key, so a fresh process — or a
    sweep worker — starts with a warm cache.  Corrupt, truncated or
    foreign files are skipped, never fatal.
    """

    def __init__(
        self,
        capacity: Optional[int] = 16,
        capacity_bytes: Optional[int] = None,
    ):
        if capacity is None and capacity_bytes is None:
            raise ValueError("decode cache needs a capacity or a byte budget")
        if capacity is not None and capacity < 1:
            raise ValueError("decode cache capacity must be >= 1")
        if capacity_bytes is not None and capacity_bytes < 1:
            raise ValueError("decode cache byte budget must be >= 1")
        self.capacity = capacity
        self.capacity_bytes = capacity_bytes
        self.stats = DecodeCacheStats()
        self._entries: "OrderedDict[CacheKey, CachedDecode]" = OrderedDict()
        self._total_bytes = 0

    @staticmethod
    def key_for(image: "StoredImage") -> CacheKey:
        """The cache key of a stored image (digest + kind + layout)."""
        return (image.digest(), image.kind, image.width, image.height)

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def total_bytes(self) -> int:
        """Summed expanded-image footprint of the resident entries."""
        return self._total_bytes

    def keys(self) -> "List[CacheKey]":
        """Resident keys in LRU-to-MRU order (introspection/tests)."""
        return list(self._entries)

    def get(self, key: CacheKey, validator=None) -> Optional[CachedDecode]:
        """Look up ``key``, counting the hit/miss and refreshing recency.

        ``validator`` (entry -> bool) guards hits whose validity depends
        on state outside the keyed bytes — a shared-dictionary entry is
        only as fresh as the external table it was decoded with.  A
        rejected entry is dropped and the lookup counts as a miss, so
        the caller re-decodes and ``put`` installs the fresh expansion.
        """
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        if validator is not None and not validator(entry):
            self._entries.pop(key)
            self._total_bytes -= _entry_weight(entry)
            self.stats.evictions += 1
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return entry

    def peek(self, key: CacheKey) -> Optional[CachedDecode]:
        """Look up ``key`` without counting stats or refreshing recency.

        The fleet's cross-shard migration uses this to copy a warm entry
        from the hot shard's cache into the destination shard's — an
        administrative transfer, not a decode lookup, so it must not
        perturb either cache's hit/miss accounting.
        """
        return self._entries.get(key)

    def _evict_over_budget(self) -> None:
        over_count = (
            self.capacity is not None and len(self._entries) > self.capacity
        )
        over_bytes = (
            self.capacity_bytes is not None
            and self._total_bytes > self.capacity_bytes
        )
        while self._entries and (over_count or over_bytes):
            _key, victim = self._entries.popitem(last=False)
            self._total_bytes -= _entry_weight(victim)
            self.stats.evictions += 1
            over_count = (
                self.capacity is not None
                and len(self._entries) > self.capacity
            )
            over_bytes = (
                self.capacity_bytes is not None
                and self._total_bytes > self.capacity_bytes
            )

    def _insert(self, key: CacheKey, entry: CachedDecode) -> None:
        """Insert/refresh without touching hit/miss counters."""
        weight = _entry_weight(entry)
        old = self._entries.pop(key, None)
        if old is not None:
            self._total_bytes -= _entry_weight(old)
        if self.capacity_bytes is not None and weight > self.capacity_bytes:
            # An expansion that can never fit is rejected up front — it
            # must not flush the resident working set on its way out.
            self.stats.evictions += 1
            return
        self._entries[key] = entry
        self._total_bytes += weight
        self._evict_over_budget()

    def put(self, key: CacheKey, entry: CachedDecode) -> None:
        """Insert (or refresh) an entry, evicting the least recently used.

        Under a byte budget an entry whose expansion alone exceeds
        ``capacity_bytes`` is rejected outright (counted as an eviction)
        without disturbing the resident entries — the budget is a hard
        invariant, not advisory.
        """
        self._insert(key, entry)

    def clear(self) -> None:
        self._entries.clear()
        self._total_bytes = 0

    # -- persistence -------------------------------------------------------------

    @staticmethod
    def _file_for(directory: Path, key: CacheKey) -> Path:
        tag = hashlib.sha256(repr(key).encode()).hexdigest()[:32]
        return directory / f"{_CACHE_FILE_PREFIX}{tag}.pkl"

    def save(self, directory: "Path | str") -> int:
        """Persist every resident entry into ``directory``; returns count.

        One version-stamped pickle file per entry, named by a digest of
        the cache key (content-addressed like the entries themselves, so
        concurrent savers of the same image write identical files).
        Files are written to a temporary name and atomically renamed.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        written = 0
        for key, entry in self._entries.items():
            payload = {
                "format": CACHE_FILE_FORMAT,
                "key": key,
                "entry": entry,
            }
            path = self._file_for(directory, key)
            tmp = path.with_suffix(f".tmp{os.getpid()}")
            tmp.write_bytes(pickle.dumps(payload))
            os.replace(tmp, path)
            written += 1
        return written

    def load(self, directory: "Path | str") -> int:
        """Restore persisted entries from ``directory``; returns count.

        Tolerant by construction: unreadable, truncated, wrongly-typed or
        version-mismatched files are skipped.  Restored entries respect
        both bounds (the budget invariant holds after a load) and do not
        disturb the hit/miss counters — ``stats.restored`` and the return
        value count only entries actually resident right after their own
        insert (a file whose entry immediately falls over the budget is
        not "restored").  Keys already resident are left untouched (the
        live entry is at least as fresh).
        """
        directory = Path(directory)
        if not directory.is_dir():
            return 0
        loaded = 0
        for path in sorted(directory.glob(f"{_CACHE_FILE_PREFIX}*.pkl")):
            try:
                payload = pickle.loads(path.read_bytes())
            except Exception:
                continue  # corrupt/truncated/foreign file: never fatal
            if (
                not isinstance(payload, dict)
                or payload.get("format") != CACHE_FILE_FORMAT
            ):
                continue
            key, entry = payload.get("key"), payload.get("entry")
            if (
                not isinstance(key, tuple)
                or len(key) != 4
                or not isinstance(entry, CachedDecode)
            ):
                continue
            if key in self._entries:
                continue
            self._insert(key, entry)
            if key in self._entries:  # survived the bounds
                self.stats.restored += 1
                loaded += 1
        return loaded


def percentile(values: "Sequence[int]", p: float) -> int:
    """Nearest-rank percentile of integer cycle samples.

    The open-loop workload reports are sized by latency percentiles; the
    nearest-rank definition (the smallest sample with at least ``p``
    percent of the distribution at or below it) keeps the result an
    actual observed sample — an integer cycle count, deterministic and
    JSON-stable, never an interpolated float.  An empty sample set has
    no percentiles — reporting a fabricated 0 would read as "zero
    latency", so it is rejected loudly; report builders emit ``null``
    latency sections for zero-request traces instead.
    """
    if not values:
        raise RuntimeManagementError(
            "percentile of an empty sample set is undefined"
        )
    ordered = sorted(values)
    rank = min(max(1, math.ceil(p / 100.0 * len(ordered))), len(ordered))
    return ordered[rank - 1]


def locate_knee(
    rows: "Sequence[dict]",
    utilization_floor: float = 0.95,
    p99_factor: float = 3.0,
) -> Optional[dict]:
    """The saturation knee of an arrival-rate sweep, or None.

    ``rows`` are per-rate measurements ordered relaxed-to-aggressive
    (decreasing ``mean_interarrival``), each carrying ``utilization``
    and ``p99`` (``None`` p99 = the rate serviced nothing).  The knee is
    the first rate where the server is effectively saturated
    (``utilization >= utilization_floor``) *and* the tail has blown up
    (``p99 >= p99_factor`` times the most relaxed rate's p99) — the
    operating point a deployment must stay below.  Deterministic: pure
    arithmetic over the rows, no fitting.
    """
    if not (0.0 < utilization_floor <= 1.0):
        raise RuntimeManagementError(
            "knee utilization floor must be in (0, 1]"
        )
    if p99_factor <= 1.0:
        raise RuntimeManagementError(
            "knee p99 factor must exceed 1 (the relaxed baseline)"
        )
    baseline = next(
        (row["p99"] for row in rows if row.get("p99") is not None), None
    )
    if baseline is None:
        return None
    for index, row in enumerate(rows):
        if row.get("p99") is None:
            continue
        if (
            row["utilization"] >= utilization_floor
            and row["p99"] >= p99_factor * baseline
        ):
            return {
                "index": index,
                "mean_interarrival": row["mean_interarrival"],
                "utilization": row["utilization"],
                "p99": row["p99"],
                "p99_over_relaxed": row["p99"] / baseline,
            }
    return None


def lpt_makespan(jobs: List[int], units: int) -> Tuple[int, List[int]]:
    """Longest-processing-time-first schedule; returns (makespan, loads)."""
    loads = [0] * max(1, units)
    for job in sorted(jobs, reverse=True):
        idx = loads.index(min(loads))
        loads[idx] += job
    return max(loads) if loads else 0, loads


def decode_cost(
    stats: DecodeStats, params: CostParams
) -> Tuple[int, List[int]]:
    """Decode cycles of a de-virtualization run under ``params``.

    Smart clusters cost their router work; raw clusters cost a bus-rate
    copy.  Jobs are balanced across the parallel decode units.
    """
    jobs: List[int] = [
        work * params.cycles_per_bfs_step
        for work in stats.per_cluster_work.values()
    ]
    if stats.raw_bits_copied:
        raw_jobs = stats.clusters_raw or 1
        per_raw = -(-stats.raw_bits_copied // raw_jobs)
        jobs.extend(
            -(-per_raw // params.bus_bits) for _ in range(raw_jobs)
        )
    return lpt_makespan(jobs, params.parallel_units)


def write_cost(total_frame_bits: int, params: CostParams) -> int:
    """Cycles to push expanded frames into the configuration layer."""
    return -(-total_frame_bits // params.config_port_bits)
