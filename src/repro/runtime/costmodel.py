"""Cycle-cost model of the reconfiguration controller.

The paper evaluates its runtime qualitatively: de-virtualization is a
"simple router" cheap enough for on-line use, per-macro decoding "can be
easily parallelized to process multiple macros at once", and coarser
clusters "need higher computing power to decode".  This model turns those
statements into numbers:

* fetching an image costs ``ceil(bits / bus_bits)`` cycles (memory model);
* de-virtualizing a cluster costs ``work x cycles_per_bfs_step`` cycles,
  where ``work`` is the BFS dequeue count reported by the decoder;
* raw frames (raw images or raw-fallback clusters) are copied at
  ``bus_bits`` per cycle;
* with ``parallel_units`` decoders, per-cluster jobs are dispatched
  longest-first (LPT) and the decode time is the resulting makespan;
* writing frames into the configuration layer costs
  ``ceil(frame bits / config_port_bits)`` cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.vbs.decode import DecodeStats


@dataclass(frozen=True)
class CostParams:
    """Tunable constants of the controller model."""

    bus_bits: int = 32
    cycles_per_bfs_step: int = 1
    parallel_units: int = 1
    config_port_bits: int = 32


@dataclass
class LoadCost:
    """Cycle breakdown of one task load."""

    fetch_cycles: int = 0
    decode_cycles: int = 0
    write_cycles: int = 0
    per_unit_cycles: List[int] = field(default_factory=list)

    @property
    def total_cycles(self) -> int:
        return self.fetch_cycles + self.decode_cycles + self.write_cycles


def lpt_makespan(jobs: List[int], units: int) -> Tuple[int, List[int]]:
    """Longest-processing-time-first schedule; returns (makespan, loads)."""
    loads = [0] * max(1, units)
    for job in sorted(jobs, reverse=True):
        idx = loads.index(min(loads))
        loads[idx] += job
    return max(loads) if loads else 0, loads


def decode_cost(
    stats: DecodeStats, params: CostParams
) -> Tuple[int, List[int]]:
    """Decode cycles of a de-virtualization run under ``params``.

    Smart clusters cost their router work; raw clusters cost a bus-rate
    copy.  Jobs are balanced across the parallel decode units.
    """
    jobs: List[int] = [
        work * params.cycles_per_bfs_step
        for work in stats.per_cluster_work.values()
    ]
    if stats.raw_bits_copied:
        raw_jobs = stats.clusters_raw or 1
        per_raw = -(-stats.raw_bits_copied // raw_jobs)
        jobs.extend(
            -(-per_raw // params.bus_bits) for _ in range(raw_jobs)
        )
    return lpt_makespan(jobs, params.parallel_units)


def write_cost(total_frame_bits: int, params: CostParams) -> int:
    """Cycles to push expanded frames into the configuration layer."""
    return -(-total_frame_bits // params.config_port_bits)
