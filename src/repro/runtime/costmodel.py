"""Cycle-cost model of the reconfiguration controller.

The paper evaluates its runtime qualitatively: de-virtualization is a
"simple router" cheap enough for on-line use, per-macro decoding "can be
easily parallelized to process multiple macros at once", and coarser
clusters "need higher computing power to decode".  This model turns those
statements into numbers:

* fetching an image costs ``ceil(bits / bus_bits)`` cycles (memory model);
* de-virtualizing a cluster costs ``work x cycles_per_bfs_step`` cycles,
  where ``work`` is the BFS dequeue count reported by the decoder;
* raw frames (raw images or raw-fallback clusters) are copied at
  ``bus_bits`` per cycle;
* with ``parallel_units`` decoders, per-cluster jobs are dispatched
  longest-first (LPT) and the decode time is the resulting makespan;
* writing frames into the configuration layer costs
  ``ceil(frame bits / config_port_bits)`` cycles;
* the controller's :class:`DecodeCache` (LRU, content-digest keyed) makes
  repeated or relocated loads of the same image skip de-virtualization
  entirely — a cache hit costs zero decode cycles, and
  :class:`DecodeCacheStats` surfaces the hit/miss counters.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.vbs.decode import DecodeStats

if TYPE_CHECKING:
    from repro.bitstream.config import FabricConfig
    from repro.runtime.memory import StoredImage


@dataclass(frozen=True)
class CostParams:
    """Tunable constants of the controller model."""

    bus_bits: int = 32
    cycles_per_bfs_step: int = 1
    parallel_units: int = 1
    config_port_bits: int = 32


@dataclass
class LoadCost:
    """Cycle breakdown of one task load."""

    fetch_cycles: int = 0
    decode_cycles: int = 0
    write_cycles: int = 0
    per_unit_cycles: List[int] = field(default_factory=list)
    #: True when de-virtualization was skipped via the decode cache.
    cache_hit: bool = False

    @property
    def total_cycles(self) -> int:
        return self.fetch_cycles + self.decode_cycles + self.write_cycles


# -- the runtime decode cache ---------------------------------------------------


@dataclass
class DecodeCacheStats:
    """Hit/miss counters of the controller's decode cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


@dataclass
class CachedDecode:
    """One cached de-virtualization: origin-independent expansion + stats.

    ``config`` is decoded at origin (0, 0); position abstraction makes it
    valid for every placement of the task — consumers translate a copy to
    the target origin.  ``codec_tags`` and ``layout`` record which codings
    and coding geometry produced the entry (cache introspection; the
    digest key already pins them).
    """

    config: "FabricConfig"
    stats: DecodeStats
    codec_tags: Tuple[str, ...]
    layout: Tuple[int, int, int, bool]  # (width, height, cluster_size, compact)

    def config_at(self, origin: Tuple[int, int]) -> "FabricConfig":
        """A translated copy of the cached expansion at ``origin``."""
        return self.config.translated(origin[0], origin[1])


#: Cache key: (image digest, image kind, origin-independent dimensions).
CacheKey = Tuple[str, str, int, int]


class DecodeCache:
    """LRU cache of de-virtualized task images.

    Repeated or relocated loads of the same image skip the
    :class:`~repro.vbs.devirt.ClusterDecoder` replay entirely: the cached
    origin-(0,0) expansion is translated to the requested origin, so the
    second load of a task costs zero decode cycles.  Keys are content
    digests, so re-publishing a changed image under the same name can
    never serve stale frames.
    """

    def __init__(self, capacity: int = 16):
        if capacity < 1:
            raise ValueError("decode cache capacity must be >= 1")
        self.capacity = capacity
        self.stats = DecodeCacheStats()
        self._entries: "OrderedDict[CacheKey, CachedDecode]" = OrderedDict()

    @staticmethod
    def key_for(image: "StoredImage") -> CacheKey:
        """The cache key of a stored image (digest + kind + layout)."""
        return (image.digest(), image.kind, image.width, image.height)

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: CacheKey) -> Optional[CachedDecode]:
        """Look up ``key``, counting the hit/miss and refreshing recency."""
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return entry

    def put(self, key: CacheKey, entry: CachedDecode) -> None:
        """Insert (or refresh) an entry, evicting the least recently used."""
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def clear(self) -> None:
        self._entries.clear()


def lpt_makespan(jobs: List[int], units: int) -> Tuple[int, List[int]]:
    """Longest-processing-time-first schedule; returns (makespan, loads)."""
    loads = [0] * max(1, units)
    for job in sorted(jobs, reverse=True):
        idx = loads.index(min(loads))
        loads[idx] += job
    return max(loads) if loads else 0, loads


def decode_cost(
    stats: DecodeStats, params: CostParams
) -> Tuple[int, List[int]]:
    """Decode cycles of a de-virtualization run under ``params``.

    Smart clusters cost their router work; raw clusters cost a bus-rate
    copy.  Jobs are balanced across the parallel decode units.
    """
    jobs: List[int] = [
        work * params.cycles_per_bfs_step
        for work in stats.per_cluster_work.values()
    ]
    if stats.raw_bits_copied:
        raw_jobs = stats.clusters_raw or 1
        per_raw = -(-stats.raw_bits_copied // raw_jobs)
        jobs.extend(
            -(-per_raw // params.bus_bits) for _ in range(raw_jobs)
        )
    return lpt_makespan(jobs, params.parallel_units)


def write_cost(total_frame_bits: int, params: CostParams) -> int:
    """Cycles to push expanded frames into the configuration layer."""
    return -(-total_frame_bits // params.config_port_bits)
