"""Fabric manager: on-line placement of relocatable tasks.

The point of position-abstracted bitstreams is that the run-time system
chooses where a task lands.  The manager implements that choice: it scans
the fabric for a free rectangle (first-fit or best-fit over the candidate
origins), asks the controller to decode the task there, and can
defragment by migrating resident tasks toward the origin corner.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import RuntimeManagementError
from repro.runtime.controller import ReconfigurationController, ResidentTask
from repro.utils.geometry import Rect

#: Supported placement strategies.
FIRST_FIT = "first-fit"
BEST_FIT = "best-fit"


class FabricManager:
    """Placement policy layered over a :class:`ReconfigurationController`."""

    def __init__(
        self,
        controller: ReconfigurationController,
        strategy: str = FIRST_FIT,
    ):
        if strategy not in (FIRST_FIT, BEST_FIT):
            raise RuntimeManagementError(f"unknown strategy {strategy!r}")
        self.controller = controller
        self.strategy = strategy

    # -- free-region search ---------------------------------------------------------

    def _candidate_origins(self, w: int, h: int) -> List[Tuple[int, int]]:
        fabric = self.controller.fabric
        return [
            (x, y)
            for y in range(fabric.height - h + 1)
            for x in range(fabric.width - w + 1)
        ]

    def find_origin(self, w: int, h: int) -> Optional[Tuple[int, int]]:
        """An origin where a ``w x h`` task fits, or None.

        First-fit returns the raster-first free origin; best-fit minimizes
        the remaining bounding-box slack around resident tasks (a simple
        fragmentation-avoidance heuristic).
        """
        best: Optional[Tuple[int, int]] = None
        best_score: Optional[int] = None
        for (x, y) in self._candidate_origins(w, h):
            region = Rect(x, y, w, h)
            if not self.controller.region_free(region):
                continue
            if self.strategy == FIRST_FIT:
                return (x, y)
            # Best-fit: prefer origins hugging the fabric corner and other
            # tasks (minimize x + y plus free-perimeter estimate).
            score = x + y
            if best_score is None or score < best_score:
                best, best_score = (x, y), score
        return best

    # -- high-level operations ----------------------------------------------------------

    def place_task(self, name: str) -> ResidentTask:
        """Load ``name`` from external memory at an automatically chosen spot."""
        image = self.controller.memory.image(name)
        if image is None:
            raise RuntimeManagementError(f"no image named {name!r} in memory")
        origin = self.find_origin(image.width, image.height)
        if origin is None:
            raise RuntimeManagementError(
                f"no free {image.width}x{image.height} region for task {name!r}"
            )
        return self.controller.load_task(name, origin)

    def defragment(self) -> int:
        """Pack resident tasks toward the origin corner; return migrations.

        Tasks are revisited in raster order of their current origin and
        migrated to the first free origin (which can only be at or before
        their current position), so the loop terminates in one pass.
        """
        moved = 0
        order = sorted(
            self.controller.resident.values(),
            key=lambda t: (t.region.y, t.region.x),
        )
        for task in order:
            current = task.region
            target = self.find_origin(current.w, current.h)
            if target is None:
                continue
            if target == (current.x, current.y):
                continue
            if target[1] * self.controller.fabric.width + target[0] < (
                current.y * self.controller.fabric.width + current.x
            ):
                self.controller.migrate_task(task.name, target)
                moved += 1
        return moved
