"""Fabric manager: on-line placement of relocatable tasks.

The point of position-abstracted bitstreams is that the run-time system
chooses where a task lands.  The manager implements that choice: it scans
the fabric for a free rectangle (first-fit or best-fit over the candidate
origins), asks the controller to decode the task there, and can
defragment by migrating resident tasks toward the origin corner.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import RuntimeManagementError
from repro.runtime.controller import ReconfigurationController, ResidentTask
from repro.runtime.costmodel import DecodeCacheStats
from repro.utils.geometry import Rect

#: Supported placement strategies.
FIRST_FIT = "first-fit"
BEST_FIT = "best-fit"


class FabricManager:
    """Placement policy layered over a :class:`ReconfigurationController`."""

    def __init__(
        self,
        controller: ReconfigurationController,
        strategy: str = FIRST_FIT,
    ):
        if strategy not in (FIRST_FIT, BEST_FIT):
            raise RuntimeManagementError(f"unknown strategy {strategy!r}")
        self.controller = controller
        self.strategy = strategy

    # -- free-region search ---------------------------------------------------------

    def _candidate_origins(self, w: int, h: int) -> List[Tuple[int, int]]:
        fabric = self.controller.fabric
        return [
            (x, y)
            for y in range(fabric.height - h + 1)
            for x in range(fabric.width - w + 1)
        ]

    def _free_perimeter(
        self, region: Rect, ignore: Optional[str] = None
    ) -> int:
        """Free cells on the one-cell ring around ``region``.

        The adjacency-aware best-fit score: cells of the surrounding ring
        that are outside the fabric or covered by a resident task count as
        *contact* (good — the placement hugs an edge or a neighbour);
        whatever remains is free perimeter whose fragmentation potential
        best-fit minimizes.
        """
        bounds = self.controller.fabric.bounds
        occupied = [
            t.region
            for t in self.controller.resident.values()
            if t.name != ignore
        ]
        free = 0
        ring = (
            [(x, region.y - 1) for x in range(region.x, region.x2)]
            + [(x, region.y2) for x in range(region.x, region.x2)]
            + [(region.x - 1, y) for y in range(region.y, region.y2)]
            + [(region.x2, y) for y in range(region.y, region.y2)]
        )
        for (x, y) in ring:
            if not bounds.contains(x, y):
                continue  # fabric edge: contact
            if any(r.contains(x, y) for r in occupied):
                continue  # neighbouring task: contact
            free += 1
        return free

    def find_origin(
        self, w: int, h: int, ignore: Optional[str] = None
    ) -> Optional[Tuple[int, int]]:
        """An origin where a ``w x h`` task fits, or None.

        First-fit returns the raster-first free origin; best-fit minimizes
        the free perimeter around the placed rectangle (adjacency-aware
        fragmentation avoidance), breaking ties toward the origin corner
        and then raster order.

        ``ignore`` excludes one resident task from collision and scoring —
        pass the migrating task's own name so it may slide into a region
        overlapping its current footprint.
        """
        best: Optional[Tuple[int, int]] = None
        best_score: Optional[Tuple[int, int]] = None
        for (x, y) in self._candidate_origins(w, h):
            region = Rect(x, y, w, h)
            if not self.controller.region_free(region, ignore=ignore):
                continue
            if self.strategy == FIRST_FIT:
                return (x, y)
            score = (self._free_perimeter(region, ignore=ignore), x + y)
            if best_score is None or score < best_score:
                best, best_score = (x, y), score
        return best

    # -- high-level operations ----------------------------------------------------------

    def make_room(self, w: int, h: int) -> Optional[List[str]]:
        """Unload oldest-resident tasks until a ``w x h`` origin exists.

        Victims are chosen in placement order (the controller's resident
        dict preserves insertion order; a migration re-registers a task,
        so "oldest" means oldest *placement*).  Returns the evicted task
        names — possibly empty when a region is already free — or None
        when even an empty fabric cannot host ``w x h``.
        """
        fabric = self.controller.fabric
        if w > fabric.width or h > fabric.height:
            return None  # infeasible even empty: evict nothing
        evicted: List[str] = []
        while self.find_origin(w, h) is None:
            victim = next(iter(self.controller.resident), None)
            if victim is None:
                return None  # unreachable given the bounds check above
            self.controller.unload_task(victim)
            evicted.append(victim)
        return evicted

    def place_task(self, name: str, evict: bool = False) -> ResidentTask:
        """Load ``name`` from external memory at an automatically chosen spot.

        ``evict=True`` makes room by unloading oldest-resident tasks when
        no free region exists (the workload simulator's arrival policy);
        the default keeps the historical fail-fast behavior.
        """
        image = self.controller.memory.image(name)
        if image is None:
            raise RuntimeManagementError(f"no image named {name!r} in memory")
        if name in self.controller.resident:
            # Re-placing a resident task: release its own region first so
            # the search can reuse it.  Without this the stale footprint
            # blocks the search and ``evict=True`` unloads unrelated
            # victims before load_task rejects the duplicate anyway.  The
            # freed region always fits the image (it held it), so the
            # re-place below cannot fail and the task is never lost.
            self.controller.unload_task(name)
        origin = self.find_origin(image.width, image.height)
        if origin is None and evict:
            if self.make_room(image.width, image.height) is not None:
                origin = self.find_origin(image.width, image.height)
        if origin is None:
            raise RuntimeManagementError(
                f"no free {image.width}x{image.height} region for task {name!r}"
            )
        return self.controller.load_task(name, origin)

    def defragment(self) -> int:
        """Pack resident tasks toward the origin corner; return migrations.

        Tasks are revisited in raster order of their current origin and
        migrated to the first free origin (which can only be at or before
        their current position), so the loop terminates in one pass.  The
        search ignores the migrating task's own footprint, so a task can
        slide into a region overlapping its current one — without that, a
        task bordered by its own cells could never move and trivial
        fragmentation would survive.
        """
        moved = 0
        order = sorted(
            self.controller.resident.values(),
            key=lambda t: (t.region.y, t.region.x),
        )
        for task in order:
            current = task.region
            target = self.find_origin(current.w, current.h, ignore=task.name)
            if target is None:
                continue
            if target == (current.x, current.y):
                continue
            if target[1] * self.controller.fabric.width + target[0] < (
                current.y * self.controller.fabric.width + current.x
            ):
                self.controller.migrate_task(task.name, target)
                moved += 1
        return moved

    # -- introspection -----------------------------------------------------------------

    @property
    def cache_stats(self) -> Optional[DecodeCacheStats]:
        """Decode-cache hit/miss counters (None when caching is disabled)."""
        cache = self.controller.decode_cache
        return cache.stats if cache is not None else None

    @property
    def shared_dict_ids(self) -> List[int]:
        """Resident task-table ids (VERSION 4 shared dictionaries).

        A table appears here exactly while at least one resident task
        references it — eviction of the last referencing task drops it
        (the controller's refcount contract).
        """
        return sorted(self.controller.shared_dicts)
