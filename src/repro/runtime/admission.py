"""Admission control and the recorded-latency policy store.

The open-loop simulator models the reconfiguration controller as k
parallel FIFO servers; past the saturation knee a FIFO queue grows
without bound and every request — including the cheap cache-warm
re-arrivals the runtime exists to serve — pays the full backlog.  This
module supplies the QoS layer that decides *at the door* what happens
to a request when the queue is deep, plus the knowledge base those
decisions (and the fleet's load-aware router) read.

Policies (:data:`POLICY_KINDS`):

* ``none`` — every request is admitted; the pre-policy FIFO behavior.
* ``drop-cold`` — a *cold* request (its task neither fabric-resident
  nor decode-cache warm) arriving while the queue depth is at or past
  ``queue_threshold`` is rejected outright: its events never reach the
  fabric manager.  Hot requests always pass.
* ``defer-cold`` — same trigger, but the cold request is re-enqueued to
  retry once a server frees (bounded by ``max_defers`` attempts, after
  which it is admitted regardless — deferral must shed load, never
  livelock).
* ``priority`` — nothing is dropped or deferred; instead requests are
  dispatched on two lanes.  Hot requests take the earliest-free server
  (the FIFO behavior); cold requests run in the background lane — they
  start only once *every* server has drained its current backlog, so
  queued hot work is never stuck behind a cold decode.

Every policy carries a :class:`PolicyStore` — a small recorded-latency
knowledge base keyed on (task temperature, queue-depth bucket), the
runtime idiom of Zhou et al. 2022 (PAPERS.md): record what each class
of request actually cost under each observed load, and let schedulers
read the distribution back instead of guessing.  The simulator records
every serviced request into the store;
:class:`~repro.runtime.fleet.LoadAwareRouter` folds the store's
expected cold-request latency into its shard ordering whenever its
fleet carries one, and admission thresholds can be tuned from
:meth:`PolicyStore.tail_latency`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import RuntimeManagementError

#: Supported admission policies of the open-loop virtual clock.
POLICY_KINDS = ("none", "drop-cold", "defer-cold", "priority")


def validate_policy_request(policy: str, queue_threshold: int = 4) -> None:
    """Reject unknown policy names and bad thresholds.

    Shared by :func:`make_policy` and the entry points that do expensive
    work before the replay (``run_scenario`` synthesizes full CAD flows
    first) — a typo'd policy name must fail in milliseconds, exit 2 at
    the CLI.
    """
    if policy not in POLICY_KINDS:
        raise RuntimeManagementError(
            f"unknown admission policy {policy!r}; known: {POLICY_KINDS}"
        )
    if queue_threshold < 1:
        raise RuntimeManagementError(
            "admission queue threshold must be at least one request"
        )


class PolicyStore:
    """Recorded request latencies keyed on (temperature, depth bucket).

    The Zhou-style knowledge base behind policy decisions: every
    serviced request is filed under whether it was *hot* (fabric
    resident or decode-cache warm — the cheap class) and the queue
    depth observed at its admission, bucketed to the powers of two in
    :data:`BUCKETS` so a handful of cells cover any load level.  Readers
    ask for the expected (mean) or tail latency of a class under a
    load; an empty cell falls back to the temperature's pooled samples,
    so a cautious answer exists as soon as anything was recorded.
    """

    #: Queue-depth bucket lower bounds (a depth files under the largest
    #: bound at or below it).
    BUCKETS = (0, 1, 2, 4, 8, 16)

    def __init__(self) -> None:
        self._samples: Dict[Tuple[bool, int], List[int]] = {}

    @classmethod
    def bucket(cls, depth: int) -> int:
        """The store cell a queue depth files under."""
        return max(b for b in cls.BUCKETS if b <= max(0, depth))

    def __len__(self) -> int:
        return sum(len(s) for s in self._samples.values())

    def record(self, hot: bool, depth: int, latency: int) -> None:
        """File one serviced request's end-to-end latency."""
        key = (bool(hot), self.bucket(depth))
        self._samples.setdefault(key, []).append(latency)

    def _pooled(self, hot: bool) -> List[int]:
        return [
            latency
            for (h, _b), samples in self._samples.items()
            if h == bool(hot)
            for latency in samples
        ]

    def has_samples(self, hot: bool, depth: int) -> bool:
        """Whether the exact (temperature, depth bucket) cell was measured.

        :meth:`expected_latency` answers *something* for any class as
        soon as one sample of the temperature exists (pooled fallback)
        and 0.0 before that — readers comparing classes must be able to
        tell a measured prediction from a pooled guess or the
        no-knowledge zero, or a never-measured class looks infinitely
        fast (the load-aware router bug this method fixes).
        """
        return bool(self._samples.get((bool(hot), self.bucket(depth))))

    def expected_latency(self, hot: bool, depth: int) -> float:
        """Mean recorded latency of a (temperature, load) class.

        Falls back to the temperature's pooled mean when the exact
        bucket is empty, and to 0.0 when nothing was recorded at all —
        a reader with no knowledge must not prefer any shard or
        threshold over another.  Use :meth:`has_samples` to distinguish
        a measured answer from those fallbacks.
        """
        samples = self._samples.get((bool(hot), self.bucket(depth)))
        if not samples:
            samples = self._pooled(hot)
        if not samples:
            return 0.0
        return sum(samples) / len(samples)

    def tail_latency(self, hot: bool, depth: int, p: float = 99) -> Optional[int]:
        """Recorded p-th percentile latency of a class, or None."""
        from repro.runtime.costmodel import percentile

        samples = self._samples.get((bool(hot), self.bucket(depth)))
        if not samples:
            samples = self._pooled(hot)
        if not samples:
            return None
        return percentile(samples, p)

    def snapshot(self) -> dict:
        """A JSON-safe digest of the store (per-cell count/mean/p99)."""
        from repro.runtime.costmodel import percentile

        cells = {}
        for (hot, bucket), samples in self._samples.items():
            label = f"{'hot' if hot else 'cold'}@{bucket}"
            cells[label] = {
                "count": len(samples),
                "mean": sum(samples) / len(samples),
                "p99": percentile(samples, 99),
            }
        return {
            "samples": len(self),
            "cells": {label: cells[label] for label in sorted(cells)},
        }


class AdmissionPolicy:
    """Base admission policy: admit everything (the ``none`` behavior).

    Subclasses override :meth:`decide`, returning one of ``"admit"``,
    ``"drop"`` or ``"defer"`` for a request observed at the door with a
    temperature (``hot``) and the current queue depth.  ``store`` is
    the policy's :class:`PolicyStore` (a fresh one unless shared
    explicitly); the simulator records every serviced request into it.
    """

    kind = "none"

    def __init__(
        self,
        queue_threshold: int = 4,
        store: Optional[PolicyStore] = None,
        max_defers: int = 8,
    ) -> None:
        validate_policy_request(self.kind, queue_threshold)
        if max_defers < 1:
            raise RuntimeManagementError(
                "deferral bound must be at least one attempt"
            )
        self.queue_threshold = queue_threshold
        self.store = store if store is not None else PolicyStore()
        self.max_defers = max_defers

    def decide(self, hot: bool, depth: int) -> str:
        return "admit"


class DropColdPolicy(AdmissionPolicy):
    """Reject cold requests past the queue-depth threshold."""

    kind = "drop-cold"

    def decide(self, hot: bool, depth: int) -> str:
        if not hot and depth >= self.queue_threshold:
            return "drop"
        return "admit"


class DeferColdPolicy(AdmissionPolicy):
    """Re-enqueue cold requests past the threshold (bounded retries)."""

    kind = "defer-cold"

    def decide(self, hot: bool, depth: int) -> str:
        if not hot and depth >= self.queue_threshold:
            return "defer"
        return "admit"


class PriorityPolicy(AdmissionPolicy):
    """Two dispatch lanes: hot takes the earliest-free server, cold
    yields to all queued work (background lane).  Never drops."""

    kind = "priority"

    def decide(self, hot: bool, depth: int) -> str:
        return "admit"


_POLICY_CLASSES = {
    "drop-cold": DropColdPolicy,
    "defer-cold": DeferColdPolicy,
    "priority": PriorityPolicy,
}


def make_policy(
    policy: "str | AdmissionPolicy | None",
    queue_threshold: int = 4,
    store: Optional[PolicyStore] = None,
) -> Optional[AdmissionPolicy]:
    """Resolve a policy name to an instance (None for none/``"none"``).

    A pre-built :class:`AdmissionPolicy` passes through untouched, so
    callers can share one store across replays.
    """
    if policy is None:
        return None
    if isinstance(policy, AdmissionPolicy):
        return policy
    validate_policy_request(policy, queue_threshold)
    if policy == "none":
        return None
    cls = _POLICY_CLASSES[policy]
    return cls(queue_threshold=queue_threshold, store=store)
