"""Connection-list ordering strategies for the encoder feedback loop.

"Because of the stateful nature of the decoding algorithm, the order of the
connections in the connection list of each macro has an important impact on
the success of finding a valid routing online.  As such, if a generated VBS
is proven non-routable by the feedback loop, the connections are re-ordered
to find a non ambiguous order." (Section III-B)

The encoder tries the orders produced here one after another until the
de-virtualization router succeeds; exhausting them triggers the raw-coding
fallback.  Heuristics are ordered from most to least likely to succeed on
congested clusters:

1. the natural source-to-sink DFS order of extraction;
2. through-routes first (boundary-to-boundary connections are the most
   constrained: both endpoints are pinned wire stubs);
3. longest connections first (geometric distance between endpoints);
4. shortest first;
5. rotations of the DFS order;
6. bounded deterministic shuffles.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple

from repro.arch.macro import ClusterModel
from repro.utils.rng import make_rng

Pair = Tuple[int, int]


def _io_position(model: ClusterModel, io: int) -> Tuple[float, float]:
    """Approximate planar position of an I/O for distance heuristics."""
    c, W, L = model.c, model.W, model.L
    side = c * W
    span = float(max(1, c))
    if io < side:  # WEST
        return (0.0, (io // W) + 0.5)
    io -= side
    if io < side:  # EAST
        return (span, (io // W) + 0.5)
    io -= side
    if io < side:  # SOUTH
        return ((io // W) + 0.5, 0.0)
    io -= side
    if io < side:  # NORTH
        return ((io // W) + 0.5, span)
    io -= side
    cell = io // L
    j, i = divmod(cell, c)
    return (i + 0.5, j + 0.5)


def _is_boundary(model: ClusterModel, io: int) -> bool:
    return io < 4 * model.c * model.W


def pair_distance(model: ClusterModel, pair: Pair) -> float:
    ax, ay = _io_position(model, pair[0])
    bx, by = _io_position(model, pair[1])
    return abs(ax - bx) + abs(ay - by)


def candidate_orders(
    pairs: Sequence[Pair],
    model: ClusterModel,
    max_orders: int = 12,
    seed: int = 0,
) -> Iterator[List[Pair]]:
    """Yield up to ``max_orders`` distinct orderings of ``pairs``."""
    if max_orders < 1:
        return
    base = list(pairs)
    emitted = 0
    seen = set()

    def emit(order: List[Pair]) -> Iterator[List[Pair]]:
        nonlocal emitted
        key = tuple(order)
        if key not in seen and emitted < max_orders:
            seen.add(key)
            emitted += 1
            yield order

    yield from emit(base)

    def boundary_rank(pair: Pair) -> Tuple[int, float]:
        both = _is_boundary(model, pair[0]) and _is_boundary(model, pair[1])
        one = _is_boundary(model, pair[0]) or _is_boundary(model, pair[1])
        rank = 0 if both else (1 if one else 2)
        return (rank, -pair_distance(model, pair))

    def pin_rank(pair: Pair) -> Tuple[int, float]:
        # Pin-touching connections first: their lines are the scarcest
        # resource a stray dogleg can steal.
        pins = sum(0 if _is_boundary(model, io) else 1 for io in pair)
        return (-pins, -pair_distance(model, pair))

    yield from emit(sorted(base, key=lambda p: (pin_rank(p), p)))
    yield from emit(sorted(base, key=lambda p: (boundary_rank(p), p)))
    yield from emit(
        sorted(base, key=lambda p: (-pair_distance(model, p), p))
    )
    yield from emit(sorted(base, key=lambda p: (pair_distance(model, p), p)))

    for shift in range(1, len(base)):
        if emitted >= max_orders:
            return
        yield from emit(base[shift:] + base[:shift])

    rng = make_rng(seed, salt=len(base))
    while emitted < max_orders:
        shuffled = base[:]
        rng.shuffle(shuffled)
        before = emitted
        yield from emit(shuffled)
        if emitted == before:  # duplicate shuffle; avoid spinning forever
            break
