"""Run-time de-virtualization: VBS -> positioned raw configuration.

"At runtime, the VBS requires an additional decoding step in order to
generate a raw configuration bit-stream compatible with the target
reconfigurable fabric" (Section II-C).  ``decode_vbs`` performs that step at
an arbitrary target origin — position abstraction is the whole point of the
format: the same VBS decodes to any (x, y) of the fabric, which is what
gives the run-time manager its fast relocation capability.

Decoding is per-cluster and embarrassingly parallel; :class:`DecodeStats`
exposes both the total router effort and the per-cluster maximum (the
critical path of a parallel hardware decoder), feeding the run-time cost
model of ``repro.runtime``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.arch.macro import get_cluster_model
from repro.arch.params import ArchParams
from repro.bitstream.config import FabricConfig
from repro.errors import DevirtualizationError, VbsError
from repro.utils.bitarray import BitArray
from repro.utils.geometry import Rect
from repro.vbs.devirt import ClusterDecoder, DecodeMemo
from repro.vbs.encode import VirtualBitstream


@dataclass
class DecodeStats:
    """Effort counters of one de-virtualization run."""

    clusters_decoded: int = 0
    clusters_raw: int = 0
    clusters_reused: int = 0      # identical lists replayed from the memo
    connections_routed: int = 0
    connections_skipped: int = 0
    router_work: int = 0          # total BFS dequeues (sequential decoder)
    max_cluster_work: int = 0     # worst single cluster (parallel critical path)
    raw_bits_copied: int = 0
    per_cluster_work: Dict[Tuple[int, int], int] = field(default_factory=dict)
    #: Record count per codec name — how the VERSION 3 family mix reaches
    #: the run-time layer (surfaced by ``eval.run_all`` and the cost
    #: benchmarks).  Stateful and dictionary records arrive normalized
    #: from the container parse, so decoding effort here is identical
    #: across smart codecs; the split is observability, not cost.
    clusters_by_codec: Dict[str, int] = field(default_factory=dict)


def decode_vbs(
    vbs: "VirtualBitstream | BitArray",
    origin: Tuple[int, int] = (0, 0),
    params: Optional[ArchParams] = None,
    memo: Optional[DecodeMemo] = None,
    shared_dicts=None,
) -> Tuple[FabricConfig, DecodeStats]:
    """De-virtualize ``vbs`` into a :class:`FabricConfig` at ``origin``.

    ``vbs`` may be a parsed :class:`VirtualBitstream` or a raw container
    :class:`BitArray` (as fetched from external memory).

    ``memo`` enables result reuse: clusters with identical connection
    lists and member masks replay the first decode's closures instead of
    re-running the router (their router work is reported as zero — no BFS
    executes).  Pass a shared :class:`DecodeMemo` to extend reuse across
    several decodes of related tasks.

    ``shared_dicts`` resolves a VERSION 4 shared-dictionary reference
    when ``vbs`` arrives as raw container bits (see
    :meth:`VirtualBitstream.from_bits`); parsed streams already carry
    their resolved table.
    """
    if isinstance(vbs, BitArray):
        vbs = VirtualBitstream.from_bits(
            vbs, params=params, shared_dicts=shared_dicts
        )
    layout = vbs.layout
    arch = layout.params
    c = layout.cluster_size
    ox, oy = origin
    model = get_cluster_model(arch, c)

    config = FabricConfig(arch, Rect(ox, oy, layout.width, layout.height))
    stats = DecodeStats()
    nlb, nraw = arch.nlb, arch.nraw

    for rec in vbs.records:
        cx, cy = rec.pos
        members = layout.valid_members(cx, cy)
        codec_name = rec.codec_name(layout)
        stats.clusters_by_codec[codec_name] = (
            stats.clusters_by_codec.get(codec_name, 0) + 1
        )
        if rec.raw:
            stats.clusters_raw += 1
            stats.raw_bits_copied += layout.raw_bits_per_cluster
            for (i, j) in members:
                base = (j * c + i) * nraw
                gx, gy = ox + cx * c + i, oy + cy * c + j
                logic = rec.raw_frames.slice(base, nlb)
                if logic.count():
                    config.set_logic(gx, gy, logic)
                offsets = rec.raw_frames.slice(
                    base + nlb, arch.routing_bits
                ).ones()
                if offsets:
                    config.close_switches(gx, gy, offsets)
            continue

        stats.clusters_decoded += 1
        try:
            if memo is not None:
                result, reused = memo.decode(model, rec.pairs or [],
                                             set(members))
            else:
                decoder = ClusterDecoder(model, valid_macros=set(members))
                result = decoder.decode(rec.pairs or [])
                reused = False
        except DevirtualizationError as exc:
            raise VbsError(
                f"cluster {rec.pos}: online de-virtualization failed — the "
                f"offline feedback loop should have prevented this: {exc}"
            ) from exc
        stats.connections_routed += result.connections_routed
        stats.connections_skipped += result.connections_skipped
        if reused:
            stats.clusters_reused += 1
            stats.per_cluster_work[rec.pos] = 0
        else:
            stats.router_work += result.work
            stats.per_cluster_work[rec.pos] = result.work
            stats.max_cluster_work = max(stats.max_cluster_work, result.work)

        for (i, j), offsets in result.closed.items():
            gx, gy = ox + cx * c + i, oy + cy * c + j
            config.close_switches(gx, gy, offsets)
        for (i, j) in members:
            base = (j * c + i) * nlb
            if rec.logic.get_field(base, nlb):
                config.set_logic(
                    ox + cx * c + i, oy + cy * c + j,
                    rec.logic.slice(base, nlb),
                )

    return config, stats


def decode_at(
    vbs: "VirtualBitstream | BitArray",
    x: int,
    y: int,
    params: Optional[ArchParams] = None,
) -> FabricConfig:
    """Relocation shorthand: decode with the task origin at macro (x, y)."""
    config, _stats = decode_vbs(vbs, origin=(x, y), params=params)
    return config
