"""The raw-coding fallback (Section III-B; legacy VERSION 1 body).

The record body keeps the all-ones route-count sentinel of the VERSION 1
layout ahead of the frames even though the codec tag already identifies
the coding — the legacy body round-trips bit-identically, and the
break-even accounting between raw and list records stays framing-neutral.
"""

from __future__ import annotations

from typing import Tuple

from repro.errors import VbsError
from repro.utils.bitarray import BitReader, BitWriter
from repro.vbs.codecs.base import ClusterCodec
from repro.vbs.format import ClusterRecord, VbsLayout


class RawFallbackCodec(ClusterCodec):
    """Verbatim ``c^2 * Nraw`` macro frames in raster order."""

    name = "raw"
    tag = 1
    codes_raw = True

    def encode_record(self, w: BitWriter, rec, layout, state=None) -> None:
        w.write(layout.raw_sentinel, layout.route_count_bits)
        w.write_bits(rec.raw_frames)

    def decode_record(
        self, r: BitReader, pos: Tuple[int, int], layout: VbsLayout,
        state=None,
    ) -> ClusterRecord:
        if r.read(layout.route_count_bits) != layout.raw_sentinel:
            raise VbsError(
                f"raw record at {pos}: route-count field is not the sentinel"
            )
        frames = r.read_bits(layout.raw_bits_per_cluster)
        return ClusterRecord(pos, raw=True, raw_frames=frames, codec=self.name)

    def record_bits(
        self, rec: ClusterRecord, layout: VbsLayout, state=None
    ) -> int:
        return layout.raw_record_bits
