"""Delta coding of the logic field against the raster-previous cluster.

Neighbouring clusters of a real task often carry similar truth tables
(repeated logic patterns tiled across the fabric), so the XOR residue
``logic ^ prev_logic`` is much sparser than the field itself.  The delta
codec codes that residue with the same Elias-gamma gap coding the
``eliasg`` codec uses for the plain field: a set-bit count followed by
gap codes.

The reference is the container's :class:`~repro.vbs.format.CodecState`:
the normalized logic field of the nearest preceding *smart* record in
raster order (raw records are skipped — their frames never produce a
logic field), or all-zeros at the start of the container, in which case
delta degenerates to exactly the ``eliasg`` coding.  Encoder, size
accounting, and decoder all thread the same state through the same
record walk, so the residue reference is always reproducible; the codec
is ``stateful`` and therefore only assigned by the encoder's sequential
family pass and only carried by VERSION 3 containers.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.utils.bitarray import BitArray, BitReader, BitWriter
from repro.vbs.codecs.base import ClusterCodec
from repro.vbs.codecs.varint import (
    gamma_field_len,
    read_gamma_field,
    write_gamma_field,
)
from repro.vbs.format import ClusterRecord, CodecState, VbsLayout


class DeltaLogicCodec(ClusterCodec):
    """Route count, gap-coded XOR residue vs. the previous cluster, pairs."""

    name = "delta"
    tag = 5
    stateful = True

    def _reference(
        self, layout: VbsLayout, state: Optional[CodecState]
    ) -> BitArray:
        if state is not None and state.prev_logic is not None:
            return state.prev_logic
        return BitArray(layout.logic_bits_per_cluster)

    def _residue(self, rec, layout, state) -> BitArray:
        return rec.logic ^ self._reference(layout, state)

    def encode_record(self, w, rec, layout, state=None) -> None:
        w.write(len(rec.pairs), layout.route_count_bits)
        write_gamma_field(w, self._residue(rec, layout, state))
        w.write_fields(
            [m for pair in rec.pairs for m in pair], layout.m_bits
        )

    def decode_record(
        self,
        r: BitReader,
        pos: Tuple[int, int],
        layout: VbsLayout,
        state: Optional[CodecState] = None,
    ) -> ClusterRecord:
        rc = r.read(layout.route_count_bits)
        residue = read_gamma_field(r, layout.logic_bits_per_cluster)
        logic = residue ^ self._reference(layout, state)
        pairs = r.read_pairs(rc, layout.m_bits)
        return ClusterRecord(
            pos, raw=False, logic=logic, pairs=pairs, codec=self.name
        )

    def record_bits(self, rec, layout, state=None) -> int:
        return (
            layout.record_overhead_bits
            + layout.route_count_bits
            + gamma_field_len(self._residue(rec, layout, state))
            + len(rec.pairs or []) * 2 * layout.m_bits
        )
