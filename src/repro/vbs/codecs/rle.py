"""Zero-skip run-length coding of the logic field (registry addition).

The compact-logic coding of Section V skips *whole member macros* whose
logic slice is all-zero, but still pays the full NLB bits for a macro
holding a single-minterm LUT.  This codec subdivides the ``c^2 * NLB``
logic field into fixed ``CHUNK_BITS``-bit chunks: one presence flag per
chunk, literal bits only for non-zero chunks.  Sparse truth tables (the
common case for small logic functions mapped onto K-input LUTs) shrink
far below both the strict Table I field and the compact-logic field; the
cost picker selects it per cluster whenever it wins.

The route-count and connection-pair fields are identical to the
connection-list coding, so the codec composes with the same
de-virtualization path.
"""

from __future__ import annotations

from typing import Tuple

from repro.utils.bitarray import BitArray, BitReader, BitWriter
from repro.vbs.codecs.base import ClusterCodec
from repro.vbs.format import ClusterRecord, VbsLayout

#: Zero-skip granularity over the logic field.
CHUNK_BITS = 8


class RunLengthLogicCodec(ClusterCodec):
    """Route count, chunked zero-skip logic field, (In, Out) pairs."""

    name = "rle"
    tag = 3

    def _chunks(self, layout: VbsLayout):
        total = layout.logic_bits_per_cluster
        offset = 0
        while offset < total:
            yield offset, min(CHUNK_BITS, total - offset)
            offset += CHUNK_BITS

    def encode_record(self, w: BitWriter, rec, layout, state=None) -> None:
        w.write(len(rec.pairs), layout.route_count_bits)
        logic = rec.logic
        for offset, width in self._chunks(layout):
            # An MSB-first field holds exactly the chunk's bits, so a
            # field write emits the same stream as the old slice copy.
            chunk = logic.get_field(offset, width)
            if chunk:
                w.write(1, 1)
                w.write(chunk, width)
            else:
                w.write(0, 1)
        w.write_fields(
            [m for pair in rec.pairs for m in pair], layout.m_bits
        )

    def decode_record(
        self, r: BitReader, pos: Tuple[int, int], layout: VbsLayout,
        state=None,
    ) -> ClusterRecord:
        rc = r.read(layout.route_count_bits)
        logic = BitArray(layout.logic_bits_per_cluster)
        for offset, width in self._chunks(layout):
            if r.read(1):
                logic.set_field(offset, width, r.read(width))
        pairs = r.read_pairs(rc, layout.m_bits)
        return ClusterRecord(
            pos, raw=False, logic=logic, pairs=pairs, codec=self.name
        )

    def record_bits(
        self, rec: ClusterRecord, layout: VbsLayout, state=None
    ) -> int:
        logic_bits = 0
        for offset, width in self._chunks(layout):
            logic_bits += 1
            if rec.logic.get_field(offset, width):
                logic_bits += width
        return (
            layout.record_overhead_bits
            + layout.route_count_bits
            + logic_bits
            + len(rec.pairs or []) * 2 * layout.m_bits
        )
