"""Raw-frame delta coding (VERSION 4 family).

Raw-fallback clusters are where the family pass has historically given
up: the ``raw`` codec stores the verbatim ``c^2 * Nraw`` frames no
matter how repetitive they are.  Yet the clusters that *fall back* to
raw tend to come in look-alike groups — the same congested tile
repeated across a datapath, the same unroutable macro stamped down a
column — so consecutive raw records are often near-identical.
``raw-delta`` XOR-codes a raw record's frames against the frames of the
nearest preceding raw record (:attr:`CodecState.prev_raw`; all-zeros at
the first raw record, where the coding degenerates to a gamma-gap
coding of the plain frames) and writes the residue with the shared
gamma-gap frame of ``varint``.

Decoded records are normalized raw records (full-length ``raw_frames``,
``raw=True``), so downstream consumers never see the residue.  The
reference chain is a pure function of the raster-order record walk —
raw records advance ``prev_raw``, smart records never do — computed
identically by the encoder's family selection, the size accounting, and
the decoder.  The codec needs no route-count sentinel: its wire tag
(11, VERSION 4 wide field) already names the coding.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.utils.bitarray import BitArray, BitReader, BitWriter
from repro.vbs.codecs.base import ClusterCodec
from repro.vbs.codecs.varint import (
    gamma_field_len,
    read_gamma_field,
    write_gamma_field,
)
from repro.vbs.format import ClusterRecord, CodecState, VbsLayout


class RawDeltaCodec(ClusterCodec):
    """Gap-coded XOR residue vs. the previous raw record's frames."""

    name = "raw-delta"
    tag = 11
    codes_raw = True
    stateful = True

    def _reference(
        self, layout: VbsLayout, state: Optional[CodecState]
    ) -> BitArray:
        if state is not None and state.prev_raw is not None:
            return state.prev_raw
        return BitArray(layout.raw_bits_per_cluster)

    def encode_record(self, w: BitWriter, rec, layout, state=None) -> None:
        write_gamma_field(
            w, rec.raw_frames ^ self._reference(layout, state)
        )

    def decode_record(
        self,
        r: BitReader,
        pos: Tuple[int, int],
        layout: VbsLayout,
        state: Optional[CodecState] = None,
    ) -> ClusterRecord:
        residue = read_gamma_field(r, layout.raw_bits_per_cluster)
        frames = residue ^ self._reference(layout, state)
        return ClusterRecord(
            pos, raw=True, raw_frames=frames, codec=self.name
        )

    def record_bits(self, rec, layout, state=None) -> int:
        return (
            layout.record_overhead_bits
            + gamma_field_len(rec.raw_frames ^ self._reference(layout, state))
        )
