"""The per-cluster codec protocol.

A :class:`ClusterCodec` owns the *record body* of one coding of Table I —
everything after the position and codec-tag fields of a cluster record.
The container serializer (``VirtualBitstream.to_bits``/``from_bits``)
writes the framing and dispatches the body through the registry, so a new
coding is one subclass plus one ``register_codec`` call; the container
format itself never changes again.

Contract:

* ``encode_record``/``decode_record`` must be exact inverses for every
  record the codec accepts (``encodable`` true), *under the same
  container state* — the optional ``state`` argument carries the
  raster-order :class:`~repro.vbs.format.CodecState` that stateful
  codecs (``stateful = True``) code against; stateless codecs ignore it;
* ``record_bits`` must equal the number of bits ``encode_record`` emits
  plus the record framing (``layout.record_overhead_bits``) — the size
  accounting of the paper's figures is computed from it without
  serializing — again for the same ``state``;
* decoding must reconstruct a *normalized* record: full-length ``logic``
  and ``raw_frames`` fields, so downstream consumers (the
  de-virtualization router, the functional verifier) never see
  codec-specific representations.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional, Tuple

from repro.utils.bitarray import BitReader, BitWriter
from repro.vbs.format import (
    MAX_V3_TAG,
    WIDE_CODEC_TAG_BITS,
    ClusterRecord,
    CodecState,
    VbsLayout,
)


class ClusterCodec(ABC):
    """One way of coding a cluster record body."""

    #: Registry name (stable, user-facing; also ``ClusterRecord.codec``).
    name: str
    #: Wire tag written after the position fields (``CODEC_TAG_BITS`` wide).
    tag: int
    #: True when decoded records are raw-fallback records (``raw_frames``).
    codes_raw: bool = False
    #: True when the record body depends on :class:`CodecState` (the
    #: raster-previous record).  Stateful codecs cannot be picked inside
    #: the parallel per-cluster pipeline; the encoder assigns them in its
    #: sequential family pass, and containers using them are VERSION 3.
    stateful: bool = False
    #: True when the codec references the container's shared dictionary
    #: table (``layout.dict_table``) — also a VERSION 3 feature, assigned
    #: by the encoder's two-pass family selection.
    needs_dict: bool = False

    @property
    def wide_tag(self) -> bool:
        """True when the wire tag needs the VERSION 4 wide tag field."""
        return self.tag > MAX_V3_TAG

    @property
    def container_scoped(self) -> bool:
        """True when choosing this codec is a whole-container decision.

        Stateful and dictionary codecs depend on container state; wide-tag
        codecs force the VERSION 4 framing (+2 tag bits on *every*
        record).  None of them can be picked inside the parallel
        per-cluster pipeline — the encoder's sequential family pass owns
        them, so their container-level costs are weighed explicitly.
        """
        return self.stateful or self.needs_dict or self.wide_tag

    @abstractmethod
    def encode_record(
        self,
        w: BitWriter,
        rec: ClusterRecord,
        layout: VbsLayout,
        state: Optional[CodecState] = None,
    ) -> None:
        """Append the record body (everything after pos + tag) to ``w``."""

    @abstractmethod
    def decode_record(
        self,
        r: BitReader,
        pos: Tuple[int, int],
        layout: VbsLayout,
        state: Optional[CodecState] = None,
    ) -> ClusterRecord:
        """Parse one record body; the returned record has ``codec=name``."""

    @abstractmethod
    def record_bits(
        self,
        rec: ClusterRecord,
        layout: VbsLayout,
        state: Optional[CodecState] = None,
    ) -> int:
        """Total record size in bits, framing included."""

    def encodable(self, rec: ClusterRecord, layout: VbsLayout) -> bool:
        """Whether this codec can represent ``rec`` (cost-picker filter)."""
        if self.wide_tag and layout.tag_bits < WIDE_CODEC_TAG_BITS:
            return False  # the tag does not fit a VERSION <= 3 container
        if self.codes_raw:
            return rec.raw and rec.raw_frames is not None
        return (
            not rec.raw
            and rec.logic is not None
            and rec.pairs is not None
            and len(rec.pairs) <= layout.max_routes
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r}, tag={self.tag})"
