"""Adaptive Golomb-Rice coding of the logic field (VERSION 4 family).

The ``golomb`` codec commits to one Rice parameter per record, chosen by
exhaustive scan — optimal for uniformly distributed set-bit gaps, but a
real logic field often mixes regimes (a dense LUT block followed by a
long empty stretch; a partially-used LUT whose truth table is periodic).
``rice-a`` instead *context-models* the parameter over the gap run: the
record transmits only a 3-bit seed ``k0`` for the first gap, and every
later gap is coded at a ``k`` stepped by the quotient-driven
:func:`~repro.vbs.codecs.varint.advance_adaptive_k` rule after each
coded gap.  The walk is purely backward-driven, so the decoder
reproduces the exact parameter sequence from the gaps it has already
read — no side information beyond the seed.

The wire tag (8) is the first to need the VERSION 4 wide tag field, so
the codec is *container-scoped*: the encoder's sequential family pass
only assigns it when the per-record savings beat the +2 tag bits every
record of the container pays for the wide framing.

Route-count and connection-pair fields are identical to the
connection-list coding, so the codec composes with the same
de-virtualization path and decode memo as the rest of the family.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.errors import VbsError
from repro.utils.bitarray import BitReader, BitWriter, bits_for
from repro.vbs.codecs.base import ClusterCodec
from repro.vbs.codecs.varint import (
    RICE_K_BITS,
    adaptive_cost,
    advance_adaptive_k,
    best_adaptive_k0,
    from_ones_gaps,
    ones_gaps,
    read_rice,
    write_rice,
)
from repro.vbs.format import ClusterRecord, CodecState, VbsLayout


def _count_bits(layout: VbsLayout) -> int:
    """Set-bit count field: codes 0..N inclusive for the N-bit field."""
    return bits_for(layout.logic_bits_per_cluster + 1)


class AdaptiveRiceLogicCodec(ClusterCodec):
    """Route count, seed ``k0``, context-adaptive Rice gaps, pairs."""

    name = "rice-a"
    tag = 8

    def encode_record(self, w, rec, layout, state=None) -> None:
        w.write(len(rec.pairs), layout.route_count_bits)
        gaps = ones_gaps(rec.logic)
        w.write(len(gaps), _count_bits(layout))
        if gaps:
            values = [g - 1 for g in gaps]
            k = best_adaptive_k0(values)
            w.write(k, RICE_K_BITS)
            for value in values:
                write_rice(w, value, k)
                k = advance_adaptive_k(k, value)
        w.write_fields(
            [m for pair in rec.pairs for m in pair], layout.m_bits
        )

    def decode_record(
        self,
        r: BitReader,
        pos: Tuple[int, int],
        layout: VbsLayout,
        state: Optional[CodecState] = None,
    ) -> ClusterRecord:
        rc = r.read(layout.route_count_bits)
        n_gaps = r.read(_count_bits(layout))
        if n_gaps > layout.logic_bits_per_cluster:
            raise VbsError(
                f"record at {pos}: {n_gaps} set bits claimed for a "
                f"{layout.logic_bits_per_cluster}-bit logic field"
            )
        gaps = []
        if n_gaps:
            k = r.read(RICE_K_BITS)
            for _ in range(n_gaps):
                value = read_rice(r, k)
                gaps.append(value + 1)
                k = advance_adaptive_k(k, value)
        logic = from_ones_gaps(iter(gaps), layout.logic_bits_per_cluster)
        pairs = r.read_pairs(rc, layout.m_bits)
        return ClusterRecord(
            pos, raw=False, logic=logic, pairs=pairs, codec=self.name
        )

    def record_bits(self, rec, layout, state=None) -> int:
        gaps = ones_gaps(rec.logic)
        logic_bits = _count_bits(layout)
        if gaps:
            values = [g - 1 for g in gaps]
            logic_bits += RICE_K_BITS + adaptive_cost(
                values, best_adaptive_k0(values)
            )
        return (
            layout.record_overhead_bits
            + layout.route_count_bits
            + logic_bits
            + len(rec.pairs or []) * 2 * layout.m_bits
        )
