"""The strict Table I connection-list coding (legacy VERSION 1 body)."""

from __future__ import annotations

from typing import Tuple

from repro.utils.bitarray import BitReader, BitWriter
from repro.vbs.codecs.base import ClusterCodec
from repro.vbs.format import ClusterRecord, VbsLayout


class ConnectionListCodec(ClusterCodec):
    """Route count, unconditional ``c^2 * NLB`` logic field, (In, Out) pairs."""

    name = "list"
    tag = 0

    def encode_record(self, w: BitWriter, rec, layout, state=None) -> None:
        w.write(len(rec.pairs), layout.route_count_bits)
        w.write_bits(rec.logic)
        w.write_fields(
            [m for pair in rec.pairs for m in pair], layout.m_bits
        )

    def decode_record(
        self, r: BitReader, pos: Tuple[int, int], layout: VbsLayout,
        state=None,
    ) -> ClusterRecord:
        rc = r.read(layout.route_count_bits)
        logic = r.read_bits(layout.logic_bits_per_cluster)
        pairs = r.read_pairs(rc, layout.m_bits)
        return ClusterRecord(
            pos, raw=False, logic=logic, pairs=pairs, codec=self.name
        )

    def record_bits(
        self, rec: ClusterRecord, layout: VbsLayout, state=None
    ) -> int:
        return (
            layout.record_overhead_bits
            + layout.route_count_bits
            + layout.logic_bits_per_cluster
            + len(rec.pairs or []) * 2 * layout.m_bits
        )
