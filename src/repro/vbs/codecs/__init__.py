"""Pluggable cluster-codec registry.

The container serializer dispatches every cluster record body through a
codec looked up by wire tag (decode) or by name (encode).  Codecs register
here; the built-in set reproduces the paper's Table I codings (connection
list + raw fallback), the Section V compact-logic variant, and adds a
zero-skip run-length coding of the logic field.

``pick_codec`` is the cost-driven selector of the encode pipeline: among
an allowed set of codecs it returns the one whose ``record_bits`` is
smallest for a concrete record, with the wire tag as a deterministic
tie-break.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.errors import VbsError
from repro.vbs.codecs.base import ClusterCodec
from repro.vbs.codecs.compact import CompactLogicCodec
from repro.vbs.codecs.delta import DeltaLogicCodec
from repro.vbs.codecs.delta_bestk import DeltaBestKCodec
from repro.vbs.codecs.dict_delta import DictDeltaCodec
from repro.vbs.codecs.dictionary import DictionaryLogicCodec
from repro.vbs.codecs.golomb import EliasGammaLogicCodec, GolombRiceLogicCodec
from repro.vbs.codecs.listing import ConnectionListCodec
from repro.vbs.codecs.raw_delta import RawDeltaCodec
from repro.vbs.codecs.rawfallback import RawFallbackCodec
from repro.vbs.codecs.rice_adaptive import AdaptiveRiceLogicCodec
from repro.vbs.codecs.rle import RunLengthLogicCodec
from repro.vbs.format import (
    MAX_V3_TAG,
    WIDE_CODEC_TAG_BITS,
    ClusterRecord,
    CodecState,
    VbsLayout,
)

_BY_NAME: Dict[str, ClusterCodec] = {}
_BY_TAG: Dict[int, ClusterCodec] = {}

#: Name sets the encoder understands (``codecs=`` argument / CLI flag).
AUTO = "auto"


def register_codec(codec: ClusterCodec) -> ClusterCodec:
    """Add ``codec`` to the registry; name and tag must both be free.

    Tags up to ``MAX_V3_TAG`` fit the legacy 3-bit tag field; higher
    tags are valid but force the containers that carry them to the
    VERSION 4 wide tag field (``ClusterCodec.wide_tag``).
    """
    if not (0 <= codec.tag < (1 << WIDE_CODEC_TAG_BITS)):
        raise VbsError(
            f"codec {codec.name!r}: tag {codec.tag} outside the "
            f"{WIDE_CODEC_TAG_BITS}-bit tag space"
        )
    if codec.name in _BY_NAME:
        raise VbsError(f"codec name {codec.name!r} already registered")
    if codec.tag in _BY_TAG:
        raise VbsError(
            f"codec tag {codec.tag} already taken by "
            f"{_BY_TAG[codec.tag].name!r}"
        )
    _BY_NAME[codec.name] = codec
    _BY_TAG[codec.tag] = codec
    return codec


def codec_by_name(name: str) -> ClusterCodec:
    try:
        return _BY_NAME[name]
    except KeyError:
        raise VbsError(
            f"unknown codec {name!r}; registered: {sorted(_BY_NAME)}"
        ) from None


def codec_by_tag(tag: int) -> ClusterCodec:
    try:
        return _BY_TAG[tag]
    except KeyError:
        raise VbsError(f"unknown codec tag {tag} in container") from None


def registered_codecs() -> List[ClusterCodec]:
    """Every registered codec, in tag order."""
    return [_BY_TAG[t] for t in sorted(_BY_TAG)]


def resolve_codecs(
    names: "str | Sequence[str] | None",
) -> Optional[List[ClusterCodec]]:
    """Map a user codec selection to codec objects.

    ``None`` means "legacy default" (the caller decides); ``"auto"`` means
    every registered codec; otherwise an explicit name sequence.
    """
    if names is None:
        return None
    if isinstance(names, str):
        if names == AUTO:
            return registered_codecs()
        names = [names]
    return [codec_by_name(n) for n in names]


def pick_codec(
    rec: ClusterRecord,
    layout: VbsLayout,
    allowed: Iterable[ClusterCodec],
) -> ClusterCodec:
    """The cheapest applicable codec for ``rec`` (tag as tie-break).

    Costs are evaluated without container state, which is exact for
    stateless codecs — the per-cluster pipeline's use case.  Stateful
    codecs are assigned by the encoder's sequential family pass
    (``repro.vbs.encode._family_selection``), which threads the real
    raster-order state.
    """
    best: Optional[ClusterCodec] = None
    best_key = None
    for codec in allowed:
        if not codec.encodable(rec, layout):
            continue
        key = (codec.record_bits(rec, layout), codec.tag)
        if best_key is None or key < best_key:
            best, best_key = codec, key
    if best is None:
        raise VbsError(
            f"no registered codec can encode the record at {rec.pos}"
        )
    return best


# Built-in codings.  Tags 0-3 mirror the legacy wire semantics and are
# the complete VERSION 2 set (MAX_V2_TAG); tags 4-7 are the VERSION 3
# follow-on family (the full 3-bit space, MAX_V3_TAG); tags 8+ need the
# VERSION 4 wide tag field and are only assigned when the whole
# container shrinks despite the wider framing.
register_codec(ConnectionListCodec())
register_codec(RawFallbackCodec())
register_codec(CompactLogicCodec())
register_codec(RunLengthLogicCodec())
register_codec(DictionaryLogicCodec())
register_codec(DeltaLogicCodec())
register_codec(GolombRiceLogicCodec())
register_codec(EliasGammaLogicCodec())
register_codec(AdaptiveRiceLogicCodec())
register_codec(DeltaBestKCodec())
register_codec(DictDeltaCodec())
register_codec(RawDeltaCodec())

#: The complete VERSION <= 3 codec name set (tags 0..MAX_V3_TAG) — the
#: baseline the VERSION 4 family must beat (eval rows, monotone tests).
V3_CODECS = tuple(
    c.name for c in registered_codecs() if c.tag <= MAX_V3_TAG
)

__all__ = [
    "AUTO",
    "AdaptiveRiceLogicCodec",
    "ClusterCodec",
    "CodecState",
    "CompactLogicCodec",
    "ConnectionListCodec",
    "DeltaBestKCodec",
    "DeltaLogicCodec",
    "DictDeltaCodec",
    "DictionaryLogicCodec",
    "EliasGammaLogicCodec",
    "GolombRiceLogicCodec",
    "RawDeltaCodec",
    "RawFallbackCodec",
    "RunLengthLogicCodec",
    "V3_CODECS",
    "codec_by_name",
    "codec_by_tag",
    "pick_codec",
    "register_codec",
    "registered_codecs",
    "resolve_codecs",
]
