"""Variable-length integer codes for run-length codecs.

The fixed 8-bit chunking of the ``rle`` codec pays one flag per chunk no
matter how the set bits cluster.  The Golomb/Elias family instead codes
the *positions* of set bits as gaps between consecutive ones — the
classic run-length view of a sparse bit field — using self-delimiting
integer codes:

* **Elias gamma** codes ``v >= 1`` as ``len(v) - 1`` zeros followed by
  the ``len(v)`` binary digits of ``v`` (the leading one doubles as the
  terminator): 1 -> ``1``, 2 -> ``010``, 5 -> ``00101``.
* **Golomb-Rice** with parameter ``k`` codes ``v >= 0`` as the unary
  quotient ``v >> k`` (that many ones and a zero) followed by the ``k``
  low bits.  ``k = 0`` degenerates to plain unary.

Both are exact-inverse pairs with closed-form lengths, so ``record_bits``
never serializes.
"""

from __future__ import annotations

from typing import Iterator, List

from repro.errors import VbsError
from repro.utils.bitarray import BitArray, BitReader, BitWriter, bits_for

#: Width of the per-record Rice parameter field (k in 0..7).
RICE_K_BITS = 3
MAX_RICE_K = (1 << RICE_K_BITS) - 1


def elias_gamma_len(value: int) -> int:
    """Bits taken by the Elias gamma code of ``value`` (>= 1)."""
    if value < 1:
        raise ValueError(f"Elias gamma codes positive integers, got {value}")
    return 2 * value.bit_length() - 1


def write_elias_gamma(w: BitWriter, value: int) -> None:
    if value < 1:
        raise ValueError(f"Elias gamma codes positive integers, got {value}")
    nbits = value.bit_length()
    w.write(0, nbits - 1)
    w.write(value, nbits)


def read_elias_gamma(r: BitReader) -> int:
    zeros = r.read_unary_zeros()
    return (1 << zeros) | r.read(zeros)


def rice_len(value: int, k: int) -> int:
    """Bits taken by the Golomb-Rice code of ``value`` (>= 0) at ``k``."""
    if value < 0:
        raise ValueError(f"Rice codes non-negative integers, got {value}")
    return (value >> k) + 1 + k


def write_rice(w: BitWriter, value: int, k: int) -> None:
    if value < 0:
        raise ValueError(f"Rice codes non-negative integers, got {value}")
    q = value >> k
    if q:
        w.write((1 << q) - 1, q)
    w.write(0, 1)
    if k:
        w.write(value & ((1 << k) - 1), k)


def read_rice(r: BitReader, k: int) -> int:
    q = r.read_unary_ones()
    rem = r.read(k) if k else 0
    return (q << k) | rem


def ones_gaps(bits: BitArray) -> List[int]:
    """Gaps between consecutive set bits (first gap from position -1).

    Every gap is >= 1 and their prefix sums recover the set-bit
    positions, which is all a run-length decoder needs alongside the
    total field width and the set-bit count.
    """
    gaps: List[int] = []
    prev = -1
    for i in bits.ones():
        gaps.append(i - prev)
        prev = i
    return gaps


def from_ones_gaps(gaps: Iterator[int], width: int) -> BitArray:
    """Rebuild a bit field of ``width`` bits from its set-bit gaps.

    A corrupted container can claim gap sums past the end of the field;
    that is a wire-format error (:class:`VbsError`), not an internal
    index fault — the decoders surface it like every other malformed
    record body.
    """
    positions: List[int] = []
    pos = -1
    for gap in gaps:
        pos += gap
        if pos >= width:
            # Raise before pulling further gaps off a lazy decoder — the
            # reader position at the fault is part of the error contract.
            raise VbsError(
                f"run-length gap sum {pos} overruns the {width}-bit field "
                f"(corrupted container?)"
            )
        positions.append(pos)
    return BitArray.from_ones(width, positions)


def gamma_field_len(bits: BitArray) -> int:
    """Bits taken by :func:`write_gamma_field` for ``bits``."""
    return bits_for(len(bits) + 1) + sum(
        elias_gamma_len(g) for g in ones_gaps(bits)
    )


def write_gamma_field(w: BitWriter, bits: BitArray) -> None:
    """The shared gamma-gap field frame: set-bit count (``bits_for(N+1)``
    wide for an ``N``-bit field) followed by Elias-gamma gap codes.  Used
    by the ``eliasg`` codec on the plain logic field and by ``delta`` on
    the XOR residue — one frame definition, two codecs."""
    gaps = ones_gaps(bits)
    w.write(len(gaps), bits_for(len(bits) + 1))
    for gap in gaps:
        write_elias_gamma(w, gap)


def read_gamma_field(r: BitReader, width: int) -> BitArray:
    """Exact inverse of :func:`write_gamma_field` for a ``width``-bit
    field; corrupted counts and gap overruns raise :class:`VbsError`."""
    count = r.read(bits_for(width + 1))
    if count > width:
        raise VbsError(
            f"{count} set bits claimed for a {width}-bit field "
            f"(corrupted container?)"
        )
    return from_ones_gaps(
        (read_elias_gamma(r) for _ in range(count)), width
    )


def advance_adaptive_k(k: int, value: int) -> int:
    """The context-modeled Rice parameter after coding ``value`` at ``k``.

    Quotient-driven, in the spirit of the MELCODE/FLAC run coders: a
    unary quotient above 1 means the parameter is too small for the
    local gap regime (every excess quotient bit was wasted), so ``k``
    steps up; a zero quotient whose value would still fit one bit lower
    steps ``k`` down.  Single steps keep the walk stable on mixed-density
    fields, and the rule is purely backward-driven — the decoder
    reproduces the exact parameter sequence from the values it has
    already read.
    """
    quotient = value >> k
    if quotient > 1:
        return min(MAX_RICE_K, k + 1)
    if quotient == 0 and k > 0 and value < (1 << (k - 1)):
        return k - 1
    return k


def adaptive_ks(values: List[int], k0: int) -> List[int]:
    """Per-value Rice parameters of the context-adaptive gap coder:
    the transmitted seed ``k0`` for the first value, then
    :func:`advance_adaptive_k` steps after every coded value."""
    ks: List[int] = []
    k = k0
    for value in values:
        ks.append(k)
        k = advance_adaptive_k(k, value)
    return ks


def adaptive_cost(values: List[int], k0: int) -> int:
    """Total Rice bits of ``values`` under the adaptive parameter walk."""
    return sum(rice_len(v, k) for v, k in zip(values, adaptive_ks(values, k0)))


def best_adaptive_k0(values: List[int]) -> int:
    """The seed ``k0`` minimizing the adaptive total (ties -> smaller).

    The step rule anchors the whole parameter walk to its seed, so the
    exhaustive scan matters; it is as cheap as the ``golomb`` codec's
    fixed-k scan.
    """
    if not values:
        return 0
    best_k, best_cost = 0, None
    for k0 in range(MAX_RICE_K + 1):
        cost = adaptive_cost(values, k0)
        if best_cost is None or cost < best_cost:
            best_k, best_cost = k0, cost
    return best_k


def best_rice_k(gaps: List[int]) -> int:
    """The ``k`` minimizing the total Rice cost of ``gaps - 1`` values.

    Deterministic: ties break toward the smaller ``k``.  An empty gap
    list returns 0 (the parameter field is skipped entirely then).
    """
    if not gaps:
        return 0
    best_k, best_cost = 0, None
    for k in range(MAX_RICE_K + 1):
        cost = sum(rice_len(g - 1, k) for g in gaps)
        if best_cost is None or cost < best_cost:
            best_k, best_cost = k, cost
    return best_k
