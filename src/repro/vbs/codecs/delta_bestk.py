"""Best-of-k delta coding of the logic field (VERSION 4 family).

The ``delta`` codec always references the raster-previous smart record —
the right choice when a pattern tiles row-wise, the wrong one when the
repetition period is longer (a datapath column repeating every few
clusters, interleaved task regions).  ``delta-k`` keeps the last
``DELTA_REFS`` smart logic fields in the :class:`CodecState` history and
codes, per record, a ``DELTA_REF_BITS``-bit index naming which of them
the XOR residue is taken against (missing history entries are all-zero
references, so index 1+ at the start of a container degenerates to the
``eliasg`` coding of the plain field).  The encoder scans all candidate
references and keeps the one with the cheapest gamma-coded residue,
breaking ties toward the most recent.

Like every stateful codec the reference set is a pure function of the
raster-order record walk, computed identically by the encoder, the size
accounting, and the decoder.  The wire tag (9) needs the VERSION 4 wide
tag field, so assignment happens in the encoder's sequential family
pass, which weighs the +2-bits-per-record cost of the wide framing.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.utils.bitarray import BitArray, BitReader, BitWriter
from repro.vbs.codecs.base import ClusterCodec
from repro.vbs.codecs.varint import (
    gamma_field_len,
    read_gamma_field,
    write_gamma_field,
)
from repro.vbs.format import (
    DELTA_REF_BITS,
    DELTA_REFS,
    ClusterRecord,
    CodecState,
    VbsLayout,
)


class DeltaBestKCodec(ClusterCodec):
    """Route count, 2-bit reference index, gap-coded XOR residue, pairs."""

    name = "delta-k"
    tag = 9
    stateful = True

    def _references(
        self, layout: VbsLayout, state: Optional[CodecState]
    ) -> List[BitArray]:
        """The ``DELTA_REFS`` candidate references, newest first.

        Slots beyond the recorded history are all-zero references — the
        same degenerate reference the plain delta codec uses at the start
        of a container.
        """
        history = tuple(state.history) if state is not None else ()
        refs = list(history[:DELTA_REFS])
        zeros = BitArray(layout.logic_bits_per_cluster)
        while len(refs) < DELTA_REFS:
            refs.append(zeros)
        return refs

    def _best_reference(
        self, rec: ClusterRecord, layout: VbsLayout,
        state: Optional[CodecState],
    ) -> Tuple[int, BitArray, int]:
        """(index, residue, residue bits) of the cheapest reference."""
        best: Optional[Tuple[int, BitArray, int]] = None
        for index, ref in enumerate(self._references(layout, state)):
            residue = rec.logic ^ ref
            cost = gamma_field_len(residue)
            if best is None or cost < best[2]:
                best = (index, residue, cost)
        assert best is not None  # DELTA_REFS >= 1
        return best

    def encode_record(self, w, rec, layout, state=None) -> None:
        w.write(len(rec.pairs), layout.route_count_bits)
        index, residue, _cost = self._best_reference(rec, layout, state)
        w.write(index, DELTA_REF_BITS)
        write_gamma_field(w, residue)
        w.write_fields(
            [m for pair in rec.pairs for m in pair], layout.m_bits
        )

    def decode_record(
        self,
        r: BitReader,
        pos: Tuple[int, int],
        layout: VbsLayout,
        state: Optional[CodecState] = None,
    ) -> ClusterRecord:
        rc = r.read(layout.route_count_bits)
        index = r.read(DELTA_REF_BITS)
        residue = read_gamma_field(r, layout.logic_bits_per_cluster)
        logic = residue ^ self._references(layout, state)[index]
        pairs = r.read_pairs(rc, layout.m_bits)
        return ClusterRecord(
            pos, raw=False, logic=logic, pairs=pairs, codec=self.name
        )

    def record_bits(self, rec, layout, state=None) -> int:
        _index, _residue, cost = self._best_reference(rec, layout, state)
        return (
            layout.record_overhead_bits
            + layout.route_count_bits
            + DELTA_REF_BITS
            + cost
            + len(rec.pairs or []) * 2 * layout.m_bits
        )
