"""Golomb/Elias run-length codings of the logic field (VERSION 3 family).

Where the ``rle`` codec spends one presence flag per fixed 8-bit chunk,
these codecs code the logic field as a *run-length sequence*: a set-bit
count (``bits_for(N + 1)`` wide for the ``N``-bit field) followed by the
gaps between consecutive set bits in a self-delimiting integer code
(``repro.vbs.codecs.varint``).  Sparse truth tables collapse to a few
short gap codes; the all-zero field costs just the count field.

Two variants are registered:

* ``golomb`` — Golomb-Rice gaps with a per-record 3-bit parameter ``k``,
  chosen by exhaustive scan to minimize the record (skipped when the
  field has no set bits).  Rice adapts to dense fields (large ``k``
  flattens the unary quotient), which gamma cannot.
* ``eliasg`` — parameter-free Elias gamma gaps; one bit per gap of 1, so
  an all-ones field costs ``N`` bits plus the count field.

Route-count and connection-pair fields are identical to the
connection-list coding, so both compose with the same de-virtualization
path and the decode memo.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.errors import VbsError
from repro.utils.bitarray import BitReader, BitWriter, bits_for
from repro.vbs.codecs.base import ClusterCodec
from repro.vbs.codecs.varint import (
    RICE_K_BITS,
    best_rice_k,
    from_ones_gaps,
    gamma_field_len,
    ones_gaps,
    read_gamma_field,
    read_rice,
    rice_len,
    write_gamma_field,
    write_rice,
)
from repro.vbs.format import ClusterRecord, CodecState, VbsLayout


def _count_bits(layout: VbsLayout) -> int:
    """Set-bit count field: codes 0..N inclusive for the N-bit field."""
    return bits_for(layout.logic_bits_per_cluster + 1)


class GolombRiceLogicCodec(ClusterCodec):
    """Route count, Rice-coded set-bit gaps (per-record ``k``), pairs."""

    name = "golomb"
    tag = 6

    def encode_record(self, w, rec, layout, state=None) -> None:
        w.write(len(rec.pairs), layout.route_count_bits)
        gaps = ones_gaps(rec.logic)
        w.write(len(gaps), _count_bits(layout))
        if gaps:
            k = best_rice_k(gaps)
            w.write(k, RICE_K_BITS)
            for gap in gaps:
                write_rice(w, gap - 1, k)
        w.write_fields(
            [m for pair in rec.pairs for m in pair], layout.m_bits
        )

    def decode_record(
        self,
        r: BitReader,
        pos: Tuple[int, int],
        layout: VbsLayout,
        state: Optional[CodecState] = None,
    ) -> ClusterRecord:
        rc = r.read(layout.route_count_bits)
        count = r.read(_count_bits(layout))
        if count > layout.logic_bits_per_cluster:
            raise VbsError(
                f"record at {pos}: {count} set bits claimed for a "
                f"{layout.logic_bits_per_cluster}-bit logic field"
            )
        if count:
            k = r.read(RICE_K_BITS)
            gaps = (read_rice(r, k) + 1 for _ in range(count))
        else:
            gaps = iter(())
        logic = from_ones_gaps(gaps, layout.logic_bits_per_cluster)
        pairs = r.read_pairs(rc, layout.m_bits)
        return ClusterRecord(
            pos, raw=False, logic=logic, pairs=pairs, codec=self.name
        )

    def record_bits(self, rec, layout, state=None) -> int:
        gaps = ones_gaps(rec.logic)
        logic_bits = _count_bits(layout)
        if gaps:
            k = best_rice_k(gaps)
            logic_bits += RICE_K_BITS + sum(rice_len(g - 1, k) for g in gaps)
        return (
            layout.record_overhead_bits
            + layout.route_count_bits
            + logic_bits
            + len(rec.pairs or []) * 2 * layout.m_bits
        )


class EliasGammaLogicCodec(ClusterCodec):
    """Route count, Elias-gamma-coded set-bit gaps, pairs."""

    name = "eliasg"
    tag = 7

    def encode_record(self, w, rec, layout, state=None) -> None:
        w.write(len(rec.pairs), layout.route_count_bits)
        write_gamma_field(w, rec.logic)
        w.write_fields(
            [m for pair in rec.pairs for m in pair], layout.m_bits
        )

    def decode_record(
        self,
        r: BitReader,
        pos: Tuple[int, int],
        layout: VbsLayout,
        state: Optional[CodecState] = None,
    ) -> ClusterRecord:
        rc = r.read(layout.route_count_bits)
        logic = read_gamma_field(r, layout.logic_bits_per_cluster)
        pairs = r.read_pairs(rc, layout.m_bits)
        return ClusterRecord(
            pos, raw=False, logic=logic, pairs=pairs, codec=self.name
        )

    def record_bits(self, rec, layout, state=None) -> int:
        return (
            layout.record_overhead_bits
            + layout.route_count_bits
            + gamma_field_len(rec.logic)
            + len(rec.pairs or []) * 2 * layout.m_bits
        )
