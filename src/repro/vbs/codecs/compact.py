"""The Section V compact-logic coding (legacy VERSION 1 body).

One presence flag per member macro slot; NLB logic bits only where the
slice is non-zero — "smarter coding of the VBS to gain ... in size".
"""

from __future__ import annotations

from typing import Tuple

from repro.utils.bitarray import BitArray, BitReader, BitWriter
from repro.vbs.codecs.base import ClusterCodec
from repro.vbs.format import ClusterRecord, VbsLayout


class CompactLogicCodec(ClusterCodec):
    """Route count, presence-flagged logic field, (In, Out) pairs."""

    name = "compact"
    tag = 2

    def encode_record(self, w: BitWriter, rec, layout, state=None) -> None:
        w.write(len(rec.pairs), layout.route_count_bits)
        nlb = layout.params.nlb
        logic = rec.logic
        for k in range(layout.cluster_size * layout.cluster_size):
            if logic.get_field(k * nlb, nlb):
                w.write(1, 1)
                w.write_bits(logic.slice(k * nlb, nlb))
            else:
                w.write(0, 1)
        w.write_fields(
            [m for pair in rec.pairs for m in pair], layout.m_bits
        )

    def decode_record(
        self, r: BitReader, pos: Tuple[int, int], layout: VbsLayout,
        state=None,
    ) -> ClusterRecord:
        rc = r.read(layout.route_count_bits)
        nlb = layout.params.nlb
        logic = BitArray(layout.logic_bits_per_cluster)
        for k in range(layout.cluster_size * layout.cluster_size):
            if r.read(1):
                logic.overwrite(k * nlb, r.read_bits(nlb))
        pairs = r.read_pairs(rc, layout.m_bits)
        return ClusterRecord(
            pos, raw=False, logic=logic, pairs=pairs, codec=self.name
        )

    def record_bits(
        self, rec: ClusterRecord, layout: VbsLayout, state=None
    ) -> int:
        n = layout.cluster_size * layout.cluster_size
        return (
            layout.record_overhead_bits
            + layout.route_count_bits
            + n
            + rec.present_macros(layout) * layout.params.nlb
            + len(rec.pairs or []) * 2 * layout.m_bits
        )
