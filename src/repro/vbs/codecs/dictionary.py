"""Dictionary coding over a shared logic-pattern table (VERSION 3 family).

Real tasks tile the same small set of truth tables across many clusters
(an adder column, a register file slice, replicated datapath cells —
the LZ-style redundancy the configuration-compression literature
exploits).  The dictionary codec lifts those repeated ``c^2 * NLB``
logic fields into a shared table written once in the container's
VERSION 3 dictionary section; each record body then carries only a
``layout.dict_index_bits``-wide table reference next to the usual route
count and connection pairs.

The codec itself is a pure table lookup — the intelligence lives in the
encoder's two-pass family selection (``repro.vbs.encode``), which builds
the table from pattern frequencies and only keeps it when the summed
per-record savings beat the section cost (each pattern's storage plus
the ``DICT_COUNT_BITS`` count field), so a dictionary container is never
larger than the best table-free coding.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.errors import VbsError
from repro.utils.bitarray import BitReader, BitWriter
from repro.vbs.codecs.base import ClusterCodec
from repro.vbs.format import ClusterRecord, CodecState, VbsLayout


class DictionaryLogicCodec(ClusterCodec):
    """Route count, shared-table pattern index, (In, Out) pairs."""

    name = "dict"
    tag = 4
    needs_dict = True

    def encodable(self, rec: ClusterRecord, layout: VbsLayout) -> bool:
        return (
            super().encodable(rec, layout)
            and layout.dict_index(rec.logic) is not None
        )

    def encode_record(self, w, rec, layout, state=None) -> None:
        index = layout.dict_index(rec.logic)
        if index is None:
            raise VbsError(
                f"record at {rec.pos}: logic pattern not in the "
                f"container dictionary table"
            )
        w.write(len(rec.pairs), layout.route_count_bits)
        w.write(index, layout.dict_index_bits)
        w.write_fields(
            [m for pair in rec.pairs for m in pair], layout.m_bits
        )

    def decode_record(
        self,
        r: BitReader,
        pos: Tuple[int, int],
        layout: VbsLayout,
        state: Optional[CodecState] = None,
    ) -> ClusterRecord:
        rc = r.read(layout.route_count_bits)
        index = r.read(layout.dict_index_bits)
        if index >= len(layout.dict_table):
            raise VbsError(
                f"record at {pos}: dictionary reference {index} outside "
                f"the {len(layout.dict_table)}-pattern table"
            )
        logic = layout.dict_table[index].copy()
        pairs = r.read_pairs(rc, layout.m_bits)
        return ClusterRecord(
            pos, raw=False, logic=logic, pairs=pairs, codec=self.name
        )

    def record_bits(self, rec, layout, state=None) -> int:
        return (
            layout.record_overhead_bits
            + layout.route_count_bits
            + layout.dict_index_bits
            + len(rec.pairs or []) * 2 * layout.m_bits
        )
