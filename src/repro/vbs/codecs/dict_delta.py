"""Dictionary+delta hybrid coding (VERSION 4 family).

The plain ``dict`` codec only fires on an *exact* table hit, so a
cluster one LUT away from a popular pattern pays for its whole logic
field even though the table already stores 99% of it.  ``dict-delta``
closes that gap: the record body references the *nearest* table pattern
(cheapest gamma-coded XOR residue, ties toward the lower index) and
carries only the residue next to the usual route count and connection
pairs.  An exact hit degenerates to the ``dict`` coding plus an empty
residue frame, so the codec strictly extends the table's reach to
near-miss clusters — replicated datapath tiles that differ in one macro
slot, counter columns off by a constant, and the like.

The nearest-pattern scan is deterministic (cost, then index), computed
identically by ``encode_record`` and ``record_bits``; the decoder just
reads the index back.  Like ``dict`` the codec is only applicable under
a layout with a non-empty pattern table — embedded or task-scope shared
— and like every wide-tag codec (tag > ``MAX_V3_TAG``) it is assigned
by the encoder's sequential family pass, which weighs the VERSION 4
framing cost.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.errors import VbsError
from repro.utils.bitarray import BitArray, BitReader, BitWriter
from repro.vbs.codecs.base import ClusterCodec
from repro.vbs.codecs.varint import (
    gamma_field_len,
    read_gamma_field,
    write_gamma_field,
)
from repro.vbs.format import ClusterRecord, CodecState, VbsLayout


class DictDeltaCodec(ClusterCodec):
    """Route count, nearest-pattern index, gap-coded XOR residue, pairs."""

    name = "dict-delta"
    tag = 10
    needs_dict = True

    def encodable(self, rec: ClusterRecord, layout: VbsLayout) -> bool:
        # Any non-empty table works — unlike ``dict`` no exact hit is
        # required; the residue absorbs the distance.
        return super().encodable(rec, layout) and bool(layout.dict_table)

    def _nearest(
        self, rec: ClusterRecord, layout: VbsLayout
    ) -> Tuple[int, BitArray, int]:
        """(index, residue, residue bits) of the nearest table pattern."""
        best: Optional[Tuple[int, BitArray, int]] = None
        for index, pattern in enumerate(layout.dict_table):
            residue = rec.logic ^ pattern
            cost = gamma_field_len(residue)
            if best is None or cost < best[2]:
                best = (index, residue, cost)
        if best is None:
            raise VbsError(
                f"record at {rec.pos}: dict-delta needs a non-empty "
                f"dictionary table"
            )
        return best

    def encode_record(self, w: BitWriter, rec, layout, state=None) -> None:
        index, residue, _cost = self._nearest(rec, layout)
        w.write(len(rec.pairs), layout.route_count_bits)
        w.write(index, layout.dict_index_bits)
        write_gamma_field(w, residue)
        w.write_fields(
            [m for pair in rec.pairs for m in pair], layout.m_bits
        )

    def decode_record(
        self,
        r: BitReader,
        pos: Tuple[int, int],
        layout: VbsLayout,
        state: Optional[CodecState] = None,
    ) -> ClusterRecord:
        rc = r.read(layout.route_count_bits)
        index = r.read(layout.dict_index_bits)
        if index >= len(layout.dict_table):
            raise VbsError(
                f"record at {pos}: dictionary reference {index} outside "
                f"the {len(layout.dict_table)}-pattern table"
            )
        residue = read_gamma_field(r, layout.logic_bits_per_cluster)
        logic = residue ^ layout.dict_table[index]
        pairs = r.read_pairs(rc, layout.m_bits)
        return ClusterRecord(
            pos, raw=False, logic=logic, pairs=pairs, codec=self.name
        )

    def record_bits(self, rec, layout, state=None) -> int:
        _index, _residue, cost = self._nearest(rec, layout)
        return (
            layout.record_overhead_bits
            + layout.route_count_bits
            + layout.dict_index_bits
            + cost
            + len(rec.pairs or []) * 2 * layout.m_bits
        )
