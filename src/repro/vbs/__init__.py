"""The Virtual Bit-Stream: format, vbsgen encoder, run-time decoder.

This package is the paper's primary contribution: position-abstracted,
compressed FPGA configurations (Section II), the generation backend with
its offline/online feedback loop (Section III-B), and the de-virtualization
router the run-time controller executes (Section II-C), at any clustering
granularity (Section IV-B).
"""

from repro.vbs.format import (
    CODEC_TAG_BITS,
    DELTA_REF_BITS,
    DELTA_REFS,
    DICT_COUNT_BITS,
    MAX_V2_TAG,
    MAX_V3_TAG,
    SHARED_DICT_ID_BITS,
    SUPPORTED_VERSIONS,
    WIDE_CODEC_TAG_BITS,
    ClusterRecord,
    CodecState,
    VbsLayout,
    PRELUDE_BITS,
    tag_bits_for_version,
)
from repro.vbs.codecs import (
    ClusterCodec,
    V3_CODECS,
    codec_by_name,
    codec_by_tag,
    pick_codec,
    register_codec,
    registered_codecs,
)
from repro.vbs.extract import Component, crossing_ios, extract_components, pin_io
from repro.vbs.devirt import ClusterDecoder, DecodeMemo, DevirtResult
from repro.vbs.order import candidate_orders, pair_distance
from repro.vbs.encode import (
    EncodeStats,
    TaskEncodeResult,
    VirtualBitstream,
    encode_design,
    encode_flow,
    encode_task,
)
from repro.vbs.decode import DecodeStats, decode_at, decode_vbs
from repro.vbs.predictor import CodecPredictor, cluster_key, pool_entropy_bucket

__all__ = [
    "CODEC_TAG_BITS",
    "DELTA_REF_BITS",
    "DELTA_REFS",
    "DICT_COUNT_BITS",
    "MAX_V2_TAG",
    "MAX_V3_TAG",
    "SHARED_DICT_ID_BITS",
    "SUPPORTED_VERSIONS",
    "TaskEncodeResult",
    "V3_CODECS",
    "WIDE_CODEC_TAG_BITS",
    "encode_task",
    "tag_bits_for_version",
    "ClusterCodec",
    "ClusterRecord",
    "CodecState",
    "DecodeMemo",
    "VbsLayout",
    "PRELUDE_BITS",
    "codec_by_name",
    "codec_by_tag",
    "pick_codec",
    "register_codec",
    "registered_codecs",
    "Component",
    "crossing_ios",
    "extract_components",
    "pin_io",
    "ClusterDecoder",
    "DevirtResult",
    "candidate_orders",
    "pair_distance",
    "EncodeStats",
    "VirtualBitstream",
    "encode_design",
    "encode_flow",
    "DecodeStats",
    "decode_at",
    "decode_vbs",
    "CodecPredictor",
    "cluster_key",
    "pool_entropy_bucket",
]
