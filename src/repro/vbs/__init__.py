"""The Virtual Bit-Stream: format, vbsgen encoder, run-time decoder.

This package is the paper's primary contribution: position-abstracted,
compressed FPGA configurations (Section II), the generation backend with
its offline/online feedback loop (Section III-B), and the de-virtualization
router the run-time controller executes (Section II-C), at any clustering
granularity (Section IV-B).
"""

from repro.vbs.format import (
    CODEC_TAG_BITS,
    DICT_COUNT_BITS,
    MAX_V2_TAG,
    SUPPORTED_VERSIONS,
    ClusterRecord,
    CodecState,
    VbsLayout,
    PRELUDE_BITS,
)
from repro.vbs.codecs import (
    ClusterCodec,
    codec_by_name,
    codec_by_tag,
    pick_codec,
    register_codec,
    registered_codecs,
)
from repro.vbs.extract import Component, crossing_ios, extract_components, pin_io
from repro.vbs.devirt import ClusterDecoder, DecodeMemo, DevirtResult
from repro.vbs.order import candidate_orders, pair_distance
from repro.vbs.encode import (
    EncodeStats,
    VirtualBitstream,
    encode_design,
    encode_flow,
)
from repro.vbs.decode import DecodeStats, decode_at, decode_vbs

__all__ = [
    "CODEC_TAG_BITS",
    "DICT_COUNT_BITS",
    "MAX_V2_TAG",
    "SUPPORTED_VERSIONS",
    "ClusterCodec",
    "ClusterRecord",
    "CodecState",
    "DecodeMemo",
    "VbsLayout",
    "PRELUDE_BITS",
    "codec_by_name",
    "codec_by_tag",
    "pick_codec",
    "register_codec",
    "registered_codecs",
    "Component",
    "crossing_ios",
    "extract_components",
    "pin_io",
    "ClusterDecoder",
    "DevirtResult",
    "candidate_orders",
    "pair_distance",
    "EncodeStats",
    "VirtualBitstream",
    "encode_design",
    "encode_flow",
    "DecodeStats",
    "decode_at",
    "decode_vbs",
]
