"""The Virtual Bit-Stream binary format (Table I of the paper).

Payload layout (all fields big-endian unsigned, sizes per Table I)::

    header:
        task width - 1        ceil(log2(max(w, h))) bits
        task height - 1       ceil(log2(max(w, h))) bits
        cluster count         ceil(log2(n_cluster_cells + 1)) bits
    per listed cluster (raster order; empty clusters are omitted):
        position X            ceil(log2(max(cgw, cgh))) bits
        position Y            same
        route count           route-count field (see below)
        if route count == RAW sentinel:
            c^2 * Nraw raw frame bits (cluster macros in raster order)
        else:
            c^2 * NLB logic-data bits
            route count x (In, Out) connection pairs, M bits each endpoint

with ``M = ceil(log2(4cW + c^2 L + 1))`` (Section II-B; M = 5 for the
paper's W = 5, L = 7 single-macro example).

Deviations from Table I, both documented in DESIGN.md: the route-count
field precedes the logic data so the raw-fallback escape (all-ones
sentinel, Section III-B's "raw coding ... instead of the smart connection
list") is decodable, and a fixed 63-bit container prelude carries the
architecture parameters and task dimensions so a VBS file is
self-describing.  ``size_bits`` everywhere reports the Table I payload
accounting used in the paper's figures, excluding the prelude.

Since container VERSION 2 every cluster record carries an explicit
``CODEC_TAG_BITS``-bit codec tag after its position fields, and the record
body is read and written by the codec registered under that tag
(``repro.vbs.codecs``).  The three legacy codings — connection list, raw
fallback, and the Section V compact-logic variant — keep their VERSION 1
record-body bit layouts exactly; the tag merely makes the choice explicit
per record instead of implicit in the raw sentinel and the layout-wide
compact flag, which is what lets new codecs (e.g. the zero-skip
run-length coding) join without another container bump.

Container VERSION 3 adds two things on top of VERSION 2, both gated so
old readers *safely reject* at the version field instead of mis-parsing:

* a **dictionary section** between the prelude and the Table I header —
  a ``DICT_COUNT_BITS`` pattern count followed by that many verbatim
  ``c^2 * NLB`` logic patterns.  Records coded by the dictionary codec
  reference these patterns by index instead of carrying a logic field;
* **stateful codecs**: the container walk threads a :class:`CodecState`
  through every record in raster order, so the delta codec can XOR-code
  a record's logic field against the nearest preceding smart record.

A container is written as VERSION 3 exactly when it needs either feature
(a non-empty dictionary table, or any record coded with a tag above
``MAX_V2_TAG``); everything else still serializes as VERSION 2, and the
legacy VERSION 1 layout remains both readable and writable for archival
round-trips (``to_bits(version=1)``).

Container VERSION 4 widens the per-record codec tag from
``CODEC_TAG_BITS`` (3) to ``WIDE_CODEC_TAG_BITS`` (5) — the 3-bit space
was saturated by the VERSION 3 family — and adds an optional **shared
dictionary reference**: a ``SHARED_DICT_ID_BITS`` id field right after
the prelude (0 = none).  A non-zero id means the container's pattern
table is *not* embedded; it lives in the run-time manager's external
memory under that id and is shared by every container of the same task,
so the table's storage is paid once per task instead of once per
container.  When the id is zero the embedded dictionary section follows
exactly as in VERSION 3.  The tag width is version-gated: VERSION 1-3
streams keep their byte-exact layouts, and a stream is only written as
VERSION 4 when it uses a wide-tag codec (tag above ``MAX_V3_TAG``) or a
shared dictionary reference — the encoder's family pass upgrades a
container only when the wider framing pays for itself.

Compact logic mode (the paper's future-work "smarter coding of the VBS to
gain ... in size", Section V) replaces the unconditional ``c^2 * NLB``
logic field by one presence bit per member macro followed by NLB bits for
present macros only — a large win for clusters covering sparse fabric.
It is off by default so the headline experiments use strict Table I
accounting.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.arch.params import ArchParams
from repro.errors import VbsError
from repro.utils.bitarray import BitArray, bits_for

#: Container prelude field widths (not part of Table I accounting).
MAGIC = 0xB5
MAGIC_BITS = 8
#: Latest container version this build writes (streams that need no
#: VERSION 4/3 feature still serialize at the lowest version able to
#: carry them — see ``VirtualBitstream.wire_version``).
VERSION = 4
VERSION_BITS = 4
#: Every container version this build can parse.
SUPPORTED_VERSIONS = (1, 2, 3, VERSION)
#: Per-record codec selector of VERSION 2/3 containers; room for eight
#: codecs — saturated by the VERSION 3 family.
CODEC_TAG_BITS = 3
#: Per-record codec selector of VERSION 4 containers (32 tags).
WIDE_CODEC_TAG_BITS = 5
#: Highest codec tag a VERSION 2 container may carry (the PR-1 codec
#: set); any higher tag forces VERSION 3 so old readers reject cleanly.
MAX_V2_TAG = 3
#: Highest codec tag a VERSION <= 3 container can physically carry (the
#: 3-bit field tops out at 7); any higher tag needs the VERSION 4 wide
#: tag field, mirroring the VERSION 2 gate above.
MAX_V3_TAG = 7
#: Dictionary-section pattern count field (VERSION 3).
DICT_COUNT_BITS = 10
#: Shared-dictionary reference field of a VERSION 4 container: 0 means
#: "no shared table", any other value names a task-scope pattern table
#: owned by the run-time manager's external memory.
SHARED_DICT_ID_BITS = 16
#: Reference-index field of the best-of-k delta codec, and the number of
#: preceding smart records the :class:`CodecState` history retains.
DELTA_REF_BITS = 2
DELTA_REFS = 1 << DELTA_REF_BITS


def tag_bits_for_version(version: int) -> int:
    """Width of the per-record codec tag field at ``version``."""
    return WIDE_CODEC_TAG_BITS if version >= 4 else CODEC_TAG_BITS


@dataclass(frozen=True)
class PreludeFields:
    """The fixed 63-bit container prelude, parsed.

    The single owner of the prelude bit layout: the container parser and
    any prelude-only peek (e.g. ``repro vbs inspect`` reporting on a
    container whose shared table is unavailable) read through here, so
    the wire knowledge cannot drift between them.
    """

    version: int
    cluster_size: int
    channel_width: int
    lut_size: int
    compact_logic: bool
    width: int
    height: int


def read_prelude(r) -> PreludeFields:
    """Parse the container prelude from a :class:`BitReader`.

    Validates the magic; the caller owns the version gate (different
    consumers accept different version sets).
    """
    if r.read(MAGIC_BITS) != MAGIC:
        raise VbsError("bad magic: not a Virtual Bit-Stream container")
    return PreludeFields(
        version=r.read(VERSION_BITS),
        cluster_size=r.read(CLUSTER_BITS),
        channel_width=r.read(CHANNEL_BITS),
        lut_size=r.read(LUT_BITS),
        compact_logic=bool(r.read(COMPACT_BITS)),
        width=r.read(DIM_BITS),
        height=r.read(DIM_BITS),
    )
CLUSTER_BITS = 6
CHANNEL_BITS = 8
LUT_BITS = 4
COMPACT_BITS = 1
DIM_BITS = 16
PRELUDE_BITS = (
    MAGIC_BITS + VERSION_BITS + CLUSTER_BITS + CHANNEL_BITS + LUT_BITS
    + COMPACT_BITS + 2 * DIM_BITS
)


@dataclass(frozen=True)
class VbsLayout:
    """Derived field widths for a task of ``width x height`` macros."""

    params: ArchParams
    cluster_size: int
    width: int
    height: int
    compact_logic: bool = False
    #: Shared logic-pattern table of a VERSION 3/4 container (empty on
    #: VERSION <= 2 layouts).  Entries are full ``c^2 * NLB`` fields in
    #: first-use raster order; the dictionary codec references them by
    #: index.  On a layout with :attr:`shared_dict_id` set this holds the
    #: *external* table's patterns (resolved at parse/encode time) — the
    #: container then serializes only the id, never the patterns.
    dict_table: Tuple[BitArray, ...] = ()
    #: Per-record codec-tag field width used by the size accounting:
    #: ``CODEC_TAG_BITS`` for VERSION <= 3 containers,
    #: ``WIDE_CODEC_TAG_BITS`` for VERSION 4.
    tag_bits: int = CODEC_TAG_BITS
    #: Task-scope shared-dictionary id of a VERSION 4 container, or None
    #: (no shared table; ``dict_table`` is embedded when non-empty).
    shared_dict_id: Optional[int] = None

    def __post_init__(self) -> None:
        if self.width < 1 or self.height < 1:
            raise VbsError("task must be at least 1x1 macros")
        if self.cluster_size < 1:
            raise VbsError("cluster size must be >= 1")
        if self.width >= (1 << DIM_BITS) or self.height >= (1 << DIM_BITS):
            raise VbsError("task dimensions exceed the container prelude range")
        if self.tag_bits not in (CODEC_TAG_BITS, WIDE_CODEC_TAG_BITS):
            raise VbsError(
                f"codec tag field must be {CODEC_TAG_BITS} or "
                f"{WIDE_CODEC_TAG_BITS} bits, got {self.tag_bits}"
            )
        if self.shared_dict_id is not None:
            if not (1 <= self.shared_dict_id < (1 << SHARED_DICT_ID_BITS)):
                raise VbsError(
                    f"shared dictionary id {self.shared_dict_id} outside "
                    f"[1, {1 << SHARED_DICT_ID_BITS})"
                )
            if self.tag_bits != WIDE_CODEC_TAG_BITS:
                raise VbsError(
                    "a shared dictionary reference is a VERSION 4 feature; "
                    "the layout must use the wide codec tag field"
                )
        if len(self.dict_table) >= (1 << DICT_COUNT_BITS):
            raise VbsError(
                f"dictionary table of {len(self.dict_table)} patterns "
                f"exceeds the {DICT_COUNT_BITS}-bit count field"
            )
        for i, pattern in enumerate(self.dict_table):
            if len(pattern) != self.logic_bits_per_cluster:
                raise VbsError(
                    f"dictionary pattern {i} is {len(pattern)} bits, "
                    f"expected {self.logic_bits_per_cluster}"
                )

    # -- cluster grid ------------------------------------------------------------

    @property
    def cluster_grid(self) -> Tuple[int, int]:
        """(columns, rows) of the cluster tiling (edge clusters may be partial)."""
        c = self.cluster_size
        return (math.ceil(self.width / c), math.ceil(self.height / c))

    @property
    def num_cluster_cells(self) -> int:
        cgw, cgh = self.cluster_grid
        return cgw * cgh

    def cluster_of_cell(self, x: int, y: int) -> Tuple[int, int]:
        return (x // self.cluster_size, y // self.cluster_size)

    def valid_members(self, cx: int, cy: int) -> List[Tuple[int, int]]:
        """Cluster-local (i, j) of member macros inside the task rectangle."""
        c = self.cluster_size
        out = []
        for j in range(c):
            for i in range(c):
                if cx * c + i < self.width and cy * c + j < self.height:
                    out.append((i, j))
        return out

    # -- field widths --------------------------------------------------------------

    @property
    def dim_bits(self) -> int:
        """Task width/height fields: ``ceil(log2(max(w, h)))`` (Table I)."""
        return bits_for(max(self.width, self.height))

    @property
    def count_bits(self) -> int:
        """Cluster-count field, able to code 0..num_cluster_cells inclusive."""
        return bits_for(self.num_cluster_cells + 1)

    @property
    def pos_bits(self) -> int:
        """Per-cluster position field (one coordinate)."""
        cgw, cgh = self.cluster_grid
        return bits_for(max(cgw, cgh))

    @property
    def m_bits(self) -> int:
        """Connection endpoint field: ``M = ceil(log2(4cW + c^2 L + 1))``."""
        return self.params.io_code_bits(self.cluster_size)

    @property
    def route_count_bits(self) -> int:
        return self.params.route_count_bits(self.cluster_size)

    @property
    def raw_sentinel(self) -> int:
        """Route-count value flagging a raw-coded cluster."""
        return (1 << self.route_count_bits) - 1

    @property
    def max_routes(self) -> int:
        """Largest encodable route count (sentinel excluded)."""
        return self.raw_sentinel - 1

    @property
    def logic_bits_per_cluster(self) -> int:
        return self.cluster_size * self.cluster_size * self.params.nlb

    @property
    def raw_bits_per_cluster(self) -> int:
        return self.cluster_size * self.cluster_size * self.params.nraw

    # -- dictionary section (VERSION 3/4) ----------------------------------------

    def with_dict_table(self, patterns: "Tuple[BitArray, ...]") -> "VbsLayout":
        """This layout with a (possibly empty) embedded pattern table."""
        import dataclasses

        return dataclasses.replace(self, dict_table=tuple(patterns))

    def with_wide_tags(self) -> "VbsLayout":
        """This layout under VERSION 4 accounting (5-bit codec tags)."""
        import dataclasses

        return dataclasses.replace(self, tag_bits=WIDE_CODEC_TAG_BITS)

    def with_shared_dict(
        self, dict_id: int, patterns: "Tuple[BitArray, ...]"
    ) -> "VbsLayout":
        """This layout referencing an external task-scope pattern table.

        Implies VERSION 4 (wide tags).  ``patterns`` is the resolved
        content of the external table — needed for encoding and decoding
        alike — but the container serializes only ``dict_id``.
        """
        import dataclasses

        return dataclasses.replace(
            self,
            tag_bits=WIDE_CODEC_TAG_BITS,
            shared_dict_id=dict_id,
            dict_table=tuple(patterns),
        )

    @property
    def dict_index_bits(self) -> int:
        """Width of a dictionary-reference field (table must be non-empty)."""
        if not self.dict_table:
            raise VbsError("layout has no dictionary table")
        return bits_for(len(self.dict_table))

    def dict_index(self, logic: BitArray) -> Optional[int]:
        """Table index of an exact-match logic pattern, or None."""
        if not self.dict_table:
            return None
        lookup = getattr(self, "_dict_lookup", None)
        if lookup is None:
            lookup = {
                pattern: i for i, pattern in enumerate(self.dict_table)
            }
            object.__setattr__(self, "_dict_lookup", lookup)
        return lookup.get(logic)

    @property
    def dict_section_bits(self) -> int:
        """Container cost of the pattern table.

        A shared table costs the container only its
        ``SHARED_DICT_ID_BITS`` reference — the patterns live once in
        external memory, amortized over every container of the task.  An
        embedded table costs its count field plus the verbatim patterns;
        an empty table costs 0 (the container then serializes without a
        section at all, as VERSION 2 when nothing else needs more).
        """
        if self.shared_dict_id is not None:
            return SHARED_DICT_ID_BITS
        if not self.dict_table:
            return 0
        return DICT_COUNT_BITS + len(self.dict_table) * self.logic_bits_per_cluster

    # -- size accounting --------------------------------------------------------------

    @property
    def header_bits(self) -> int:
        return 2 * self.dim_bits + self.count_bits

    @property
    def record_overhead_bits(self) -> int:
        """Per-record framing: position fields plus the codec tag."""
        return 2 * self.pos_bits + self.tag_bits

    def smart_record_bits(
        self, num_pairs: int, present_macros: Optional[int] = None
    ) -> int:
        """Payload bits of a connection-list cluster record.

        In compact-logic mode ``present_macros`` (macros with non-zero
        logic data) determines the logic-field cost: one presence flag per
        member slot plus NLB bits per present macro.
        """
        if self.compact_logic:
            n = self.cluster_size * self.cluster_size
            present = n if present_macros is None else present_macros
            logic_bits = n + present * self.params.nlb
        else:
            logic_bits = self.logic_bits_per_cluster
        return (
            self.record_overhead_bits
            + self.route_count_bits
            + logic_bits
            + num_pairs * 2 * self.m_bits
        )

    @property
    def raw_record_bits(self) -> int:
        """Payload bits of a raw-fallback cluster record."""
        return (
            self.record_overhead_bits
            + self.route_count_bits
            + self.raw_bits_per_cluster
        )

    def record_break_even_pairs(self) -> int:
        """Pairs at which a smart record stops beating the raw record."""
        budget = self.raw_bits_per_cluster - self.logic_bits_per_cluster
        return budget // (2 * self.m_bits)


@dataclass
class CodecState:
    """Inter-record state threaded through a container walk in raster order.

    ``prev_logic`` is the normalized logic field of the nearest preceding
    *smart* (non-raw) record, or ``None`` at the start of the container.
    ``history`` extends the same rule to the ``DELTA_REFS`` most recent
    smart records (newest first) — the candidate reference set of the
    best-of-k delta codec.  ``prev_raw`` mirrors the rule on the raw
    side: the frames of the nearest preceding *raw* record, the
    reference of the ``raw-delta`` codec.  Raw records never touch the
    logic-side state and smart records never touch ``prev_raw`` — the
    two reference chains are independent, and both rules must be
    computable identically by the encoder, the size accounting, and the
    decoder, which all walk the same record sequence.  Stateless codecs
    ignore the state entirely; the delta codec XOR-codes against
    ``prev_logic`` (treated as all-zeros when ``None``), ``delta-k``
    against the history entry its 2-bit reference index names (missing
    entries are all-zeros references), ``raw-delta`` against
    ``prev_raw`` (all-zeros when ``None``).
    """

    prev_logic: Optional[BitArray] = None
    history: Tuple[BitArray, ...] = ()
    prev_raw: Optional[BitArray] = None

    def __post_init__(self) -> None:
        if self.prev_logic is not None and not self.history:
            self.history = (self.prev_logic,)

    def observe(self, rec: "ClusterRecord") -> None:
        """Advance the state past ``rec`` (call after coding its body)."""
        if not rec.raw and rec.logic is not None:
            self.prev_logic = rec.logic
            self.history = (rec.logic,) + self.history[: DELTA_REFS - 1]
        elif rec.raw and rec.raw_frames is not None:
            self.prev_raw = rec.raw_frames


@dataclass
class ClusterRecord:
    """One listed cluster of a Virtual Bit-Stream."""

    pos: Tuple[int, int]
    raw: bool
    logic: Optional[BitArray] = None        # c^2 * NLB bits (smart records)
    pairs: Optional[List[Tuple[int, int]]] = None
    raw_frames: Optional[BitArray] = None   # c^2 * Nraw bits (raw records)
    orders_tried: int = 1
    #: Registered codec name; ``None`` falls back to the legacy choice
    #: implied by ``raw`` and the layout-wide compact flag.
    codec: Optional[str] = None

    def codec_name(self, layout: VbsLayout) -> str:
        """The registry name of the codec coding this record."""
        if self.codec is not None:
            return self.codec
        if self.raw:
            return "raw"
        return "compact" if layout.compact_logic else "list"

    def validate(self, layout: VbsLayout) -> None:
        cgw, cgh = layout.cluster_grid
        cx, cy = self.pos
        if not (0 <= cx < cgw and 0 <= cy < cgh):
            raise VbsError(f"cluster position {self.pos} outside grid {cgw}x{cgh}")
        if self.codec is not None:
            from repro.vbs.codecs import codec_by_name

            codec = codec_by_name(self.codec)
            if codec.codes_raw != self.raw:
                raise VbsError(
                    f"record at {self.pos}: codec {self.codec!r} disagrees "
                    f"with raw={self.raw}"
                )
            if codec.tag > MAX_V3_TAG and layout.tag_bits < WIDE_CODEC_TAG_BITS:
                raise VbsError(
                    f"record at {self.pos}: codec {self.codec!r} (tag "
                    f"{codec.tag}) does not fit the {layout.tag_bits}-bit "
                    f"tag field; it needs a VERSION 4 wide-tag layout"
                )
            if not codec.encodable(self, layout):
                raise VbsError(
                    f"record at {self.pos}: codec {self.codec!r} cannot "
                    f"represent this record under the container layout"
                )
        if self.raw:
            if self.raw_frames is None or len(self.raw_frames) != layout.raw_bits_per_cluster:
                raise VbsError(f"raw record at {self.pos} has wrong frame size")
        else:
            if self.logic is None or len(self.logic) != layout.logic_bits_per_cluster:
                raise VbsError(f"record at {self.pos} has wrong logic size")
            if self.pairs is None:
                raise VbsError(f"record at {self.pos} missing connection list")
            if len(self.pairs) > layout.max_routes:
                raise VbsError(
                    f"record at {self.pos}: {len(self.pairs)} routes exceed "
                    f"the {layout.max_routes}-route field"
                )
            io_limit = layout.params.cluster_io_count(layout.cluster_size)
            for a, b in self.pairs:
                if not (0 <= a < io_limit and 0 <= b < io_limit):
                    raise VbsError(
                        f"record at {self.pos}: endpoint ({a},{b}) outside "
                        f"I/O space [0,{io_limit})"
                    )

    def present_macros(self, layout: VbsLayout) -> int:
        """Member macros whose logic-data slice is non-zero."""
        if self.logic is None:
            return 0
        nlb = layout.params.nlb
        n = layout.cluster_size * layout.cluster_size
        return sum(
            1 for k in range(n) if self.logic.slice(k * nlb, nlb).count()
        )

    def size_bits(
        self, layout: VbsLayout, state: "Optional[CodecState]" = None
    ) -> int:
        from repro.vbs.codecs import codec_by_name

        return codec_by_name(self.codec_name(layout)).record_bits(
            self, layout, state=state
        )
