"""The de-virtualization router (Section II-C).

Expands a cluster's connection list into concrete pass-transistor closures.
The algorithm is the paper's "simple router", deliberately cheap enough for
a run-time reconfiguration controller, and *stateful*: connections are
processed in list order over a persistent occupancy map, which is exactly
why the offline encoder replays this same code in its feedback loop and
re-orders lists that fail (Section III-B).

Routing rules:

* a connection ``(in, out)`` whose endpoints already belong to the same
  in-progress net is a no-op;
* if either endpoint belongs to an existing net, the router extends that
  net's tree to the other endpoint (breadth-first, so shortest in segment
  count);
* otherwise a new net is opened and routed endpoint-to-endpoint;
* segments occupied by other nets are blocked; *terminal* segments
  (cluster-boundary crossings and block pins) are blocked unless they are
  an endpoint of the current connection — passing through one would leak
  the net into a neighbouring macro or onto a block pin;
* the decoder pre-scans its connection list and *protects* the pin lines of
  every listed block pin: a block pin is reachable only through its own
  line's segments, so letting an earlier connection dogleg through them
  would strand the pin.  Protected segments are avoided in a first
  breadth-first pass and only considered in a second pass when no
  unprotected path exists;
* when both passes fail, the router performs a bounded, deterministic
  *rip-up*: a discovery search ignoring other nets identifies the blocking
  nets, those nets are torn down, the stuck connection is routed, and the
  victims' connections re-enter the queue.  Every connection may be
  retried a fixed number of times and the total rip-up budget is linear in
  the list length, so decoding always terminates; exhausting the budget
  raises :class:`DevirtualizationError`, which the offline encoder answers
  with re-ordering and ultimately the raw-coding fallback.

``work`` counts BFS dequeues: the decode-effort metric behind the paper's
observation that coarser clusters need "higher computing power to decode".
Both the offline feedback loop and the run-time controller execute this
exact code, so offline success guarantees online success.
"""

from __future__ import annotations

import os
import pickle
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.arch.macro import ClusterModel
from repro.errors import DevirtualizationError

Pair = Tuple[int, int]

#: Maximum times one connection may be re-attempted after rip-ups.
MAX_TRIES_PER_CONNECTION = 4

#: Version stamp of the persisted memo file; files written by a different
#: format version are silently ignored on ``load`` (mirrors the decode
#: cache's ``CACHE_FILE_FORMAT`` convention).
MEMO_FILE_FORMAT = 1


class DecodeMemo:
    """Result reuse across identical cluster decodes.

    Two clusters with the same connection list (same order) and the same
    valid-member mask de-virtualize to identical closures — the router is
    deterministic.  Both the offline feedback loop (which replays many
    clusters and candidate orders) and the run-time decoder (tasks are
    full of repeated wiring patterns) hit the same keys over and over;
    the memo returns the first run's :class:`DevirtResult` instead of
    re-running the router.  Failed decodes are memoized too, so the
    encoder's order search never retries a known-bad order.

    Callers must treat returned results as immutable (they are shared).
    Counter updates are approximate under concurrent encoding workers;
    the decoded output never is.

    ``max_entries`` bounds the memo for long-lived owners (the runtime
    controller, a sweep-shared encoder memo): insertion past the bound
    evicts the least recently *used* entry — hits refresh recency, so a
    hot wiring pattern survives a sweep over many containers.  The
    default is unbounded, which suits one-shot encoder runs.
    """

    def __init__(self, max_entries: Optional[int] = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("memo bound must be >= 1")
        self.max_entries = max_entries
        #: (params, cluster size, connection order, member mask) ->
        #: (result, None) on success or (None, error message) on failure.
        #: Insertion-ordered; hits re-insert, so iteration order is LRU.
        self._entries: Dict[
            tuple,
            Tuple[Optional[DevirtResult], Optional[str]],
        ] = {}
        #: Guards entry mutations only: the bound is a hard invariant
        #: even under concurrent thread-pool workers.  Lookups and the
        #: hit/miss counters stay lock-free (counters are approximate by
        #: contract; two workers may still both decode a missed key, in
        #: which case the second insert just overwrites the identical
        #: deterministic result).
        import threading

        self._mutate = threading.Lock()
        self.hits = 0
        self.misses = 0
        #: Entries restored from a persisted memo file (``load``).
        self.restored = 0

    def _insert(
        self,
        key: tuple,
        value: Tuple[Optional[DevirtResult], Optional[str]],
    ) -> None:
        with self._mutate:
            while (
                self.max_entries is not None
                and key not in self._entries
                and len(self._entries) >= self.max_entries
            ):
                victim = next(iter(self._entries), None)
                if victim is None:
                    break
                self._entries.pop(victim, None)
            self._entries[key] = value

    def _refresh(self, key: tuple) -> None:
        """Move ``key`` to the recent end (bounded memos evict LRU-first).

        Tolerant of the key vanishing between the caller's ``get`` and
        this pop — concurrent thread-pool workers share one memo, and a
        racing eviction must cost at most a lost recency refresh, never
        a crash.
        """
        if self.max_entries is not None:
            with self._mutate:
                value = self._entries.pop(key, None)
                if value is not None:
                    self._entries[key] = value

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        """Drop every entry (counters are kept — they describe history)."""
        self._entries.clear()

    # -- persistence -------------------------------------------------------------

    def save(self, path: "Path | str") -> int:
        """Persist every entry into one version-stamped file; returns count.

        The memo is the cross-run complement of the decode cache's
        per-entry files: one pickle holding the whole LRU-ordered entry
        map (keys embed the architecture parameters, so one file can mix
        entries from different archs safely).  Written to a temporary
        name and atomically renamed, like the cache files, so concurrent
        savers never expose a torn file.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with self._mutate:
            entries = list(self._entries.items())
        payload = {"format": MEMO_FILE_FORMAT, "entries": entries}
        tmp = path.with_suffix(path.suffix + f".tmp{os.getpid()}")
        tmp.write_bytes(pickle.dumps(payload))
        os.replace(tmp, path)
        return len(entries)

    def load(self, path: "Path | str", run_id: Optional[str] = None) -> int:
        """Restore persisted entries from ``path``; returns count.

        Tolerant by construction: a missing, corrupt, truncated,
        wrongly-typed or version-mismatched file restores nothing and is
        never fatal.  Live entries are never displaced: keys already
        resident are left untouched (the live entry is at least as
        fresh) and a bounded memo only restores into its *free room*,
        preferring the file's most-recently-used tail (the file is
        LRU-to-MRU ordered).  The hit/miss counters are not disturbed —
        ``restored`` counts entries that became resident.

        ``run_id`` restricts the load to delta files stamped by that
        pool run (:meth:`dump_delta`): a file carrying a different stamp
        — or none, like a stale delta left behind by a crashed run —
        restores nothing.  ``None`` accepts any file (the regular
        persisted-memo case).
        """
        try:
            payload = pickle.loads(Path(path).read_bytes())
        except Exception:
            return 0  # corrupt/truncated/missing file: never fatal
        if (
            not isinstance(payload, dict)
            or payload.get("format") != MEMO_FILE_FORMAT
            or not isinstance(payload.get("entries"), list)
        ):
            return 0
        if run_id is not None and payload.get("run") != run_id:
            return 0  # foreign/stale delta: never merged
        fresh: List[tuple] = []
        for item in payload["entries"]:
            if not (isinstance(item, tuple) and len(item) == 2):
                continue
            key, value = item
            if not (isinstance(key, tuple) and len(key) == 4):
                continue
            if not (isinstance(value, tuple) and len(value) == 2):
                continue
            if key in self._entries:
                continue
            fresh.append((key, value))
        if self.max_entries is not None:
            room = self.max_entries - len(self._entries)
            if room <= 0:
                return 0
            fresh = fresh[-room:]
        for key, value in fresh:
            self._insert(key, value)
        self.restored += len(fresh)
        return len(fresh)

    def snapshot_keys(self) -> frozenset:
        """The keys currently resident — a baseline for :meth:`dump_delta`."""
        with self._mutate:
            return frozenset(self._entries)

    def dump_delta(
        self,
        path: "Path | str",
        baseline: frozenset,
        run_id: Optional[str] = None,
    ) -> int:
        """Persist only the entries gained since ``baseline``; returns count.

        Same file format as :meth:`save` (so :meth:`load` folds a delta
        file like any other memo file), same atomic rename.  Process-pool
        workers use this at exit: each dumps what it discovered beyond
        its warm start into a private per-worker file, and the parent
        merges the deltas into the shared persisted memo.  Writes nothing
        when there is nothing new.

        ``run_id`` stamps the payload with the pool run that produced it;
        the parent merges with ``load(path, run_id=...)`` so a stale
        delta left behind by a crashed or killed run can never be folded
        into a later run's memo.
        """
        with self._mutate:
            entries = [
                (key, value)
                for key, value in self._entries.items()
                if key not in baseline
            ]
        if not entries:
            return 0
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"format": MEMO_FILE_FORMAT, "entries": entries}
        if run_id is not None:
            payload["run"] = run_id
        tmp = path.with_suffix(path.suffix + f".tmp{os.getpid()}")
        tmp.write_bytes(pickle.dumps(payload))
        os.replace(tmp, path)
        return len(entries)

    def decode(
        self,
        model: ClusterModel,
        pairs: Sequence[Pair],
        valid_macros: Optional[Set[Tuple[int, int]]] = None,
    ) -> Tuple[DevirtResult, bool]:
        """Decode (or replay) one list; returns ``(result, was_reused)``."""
        # The model belongs in the key: a shared memo sees decodes of
        # containers with different arch params or cluster sizes, whose
        # identical-looking lists expand to different switch offsets.
        key = (
            model.params,
            model.c,
            tuple(pairs),
            None if valid_macros is None else frozenset(valid_macros),
        )
        entry = self._entries.get(key)
        if entry is not None:
            self.hits += 1
            self._refresh(key)
            result, error = entry
            if error is not None:
                raise DevirtualizationError(error)
            return result, True
        self.misses += 1
        decoder = ClusterDecoder(model, valid_macros=valid_macros)
        try:
            result = decoder.decode(list(pairs))
        except DevirtualizationError as exc:
            self._insert(key, (None, str(exc)))
            raise
        self._insert(key, (result, None))
        return result, False


@dataclass
class DevirtResult:
    """Switch closures (per cluster-local macro) plus effort counters."""

    closed: Dict[Tuple[int, int], Set[int]] = field(default_factory=dict)
    work: int = 0
    connections_routed: int = 0
    connections_skipped: int = 0
    ripups: int = 0

    def close(self, macro: Tuple[int, int], offset: int) -> None:
        self.closed.setdefault(macro, set()).add(offset)

    def open(self, macro: Tuple[int, int], offset: int) -> None:
        self.closed.get(macro, set()).discard(offset)


class ClusterDecoder:
    """Stateful de-virtualization of one cluster's connection list."""

    def __init__(
        self,
        model: ClusterModel,
        valid_macros: Optional[Set[Tuple[int, int]]] = None,
    ):
        self.model = model
        nsegs = model.num_segments
        #: Net id per segment (None = free).  Flat per-segment arrays keep
        #: the BFS inner loop to plain list indexing — no hashing.
        self._seg_net: List[Optional[int]] = [None] * nsegs
        self._net_segs: Dict[int, List[int]] = {}
        self._net_switches: Dict[int, List[Tuple[Tuple[int, int], int]]] = {}
        self._net_pairs: Dict[int, List[Pair]] = {}
        self._net_of_io: Dict[int, int] = {}
        self._next_net = 0
        self._result = DevirtResult()
        #: Protecting pin I/O per segment (None = unprotected).
        self._protected: List[Optional[int]] = [None] * nsegs
        self._own_mask: Dict[int, int] = {}
        #: Generation-stamped visited/predecessor arrays reused across BFS
        #: runs: bumping ``_gen`` invalidates every stamp at once, so no
        #: per-search allocation or clearing.
        self._stamp = [0] * nsegs
        self._prev = [0] * nsegs
        self._via = [0] * nsegs
        self._gen = 0
        #: Segments outside the task rectangle are unusable (partial edge
        #: clusters); both encoder and decoder derive the same mask from the
        #: task dimensions, keeping the feedback-loop contract exact.
        if valid_macros is None:
            self._blocked_cells: Optional[Set[Tuple[int, int]]] = None
        else:
            all_cells = {
                (i, j) for i in range(model.c) for j in range(model.c)
            }
            self._blocked_cells = all_cells - set(valid_macros)
        if not self._blocked_cells:
            usable = [True] * nsegs
            clear_mask = model.clear_mask_full
        else:
            blocked = self._blocked_cells
            usable = [True] * nsegs
            clear_mask = model.clear_mask_full
            for seg, key in enumerate(model.seg_keys):
                if (key[0], key[1]) in blocked:
                    usable[seg] = False
                    clear_mask &= ~(1 << seg)
        self._usable = usable
        #: Bit s set iff segment s is usable AND not endpoint-only — the
        #: static part of the BFS pass/skip decision for a non-target
        #: neighbour.
        self._clear_mask = clear_mask
        #: ``_clear_mask`` AND currently unoccupied, maintained by claim/
        #: rip-up.  Valid as the whole non-target filter because every
        #: segment of the searching net is a BFS seed (already visited), so
        #: an unvisited neighbour is either free or owned by another net.
        self._free_mask = clear_mask
        #: ``_free_mask`` AND not pin-protected; kept in lockstep so the
        #: protection-pass BFS starts from one value.
        self._free_unprot_mask = clear_mask

    # -- helpers -----------------------------------------------------------------

    def _seg_usable(self, seg: int) -> bool:
        return self._usable[seg]

    def _io_seg(self, io: int) -> int:
        try:
            seg = self.model.io_to_seg[io]
        except IndexError:
            raise DevirtualizationError(
                f"I/O number {io} outside space [0,{self.model.io_count})"
            )
        if not self._seg_usable(seg):
            raise DevirtualizationError(
                f"I/O {self.model.io_name(io)} lies outside the task rectangle"
            )
        return seg

    def _claim(self, seg: int, net: int) -> None:
        self._seg_net[seg] = net
        bit = ~(1 << seg)
        self._free_mask &= bit
        self._free_unprot_mask &= bit
        self._net_segs[net].append(seg)

    def _new_net(self) -> int:
        net = self._next_net
        self._next_net += 1
        self._net_segs[net] = []
        self._net_switches[net] = []
        self._net_pairs[net] = []
        return net

    def protect_pins(self, connections: Sequence[Pair]) -> None:
        """Pre-scan the list and protect the pin lines of listed block pins."""
        model = self.model
        pin_io_base = model.pin_io_base
        io_count = model.io_count
        pin_line_segments = model.pin_line_segments
        protected: List[Optional[int]] = [None] * model.num_segments
        own_mask: Dict[int, int] = {}
        prot_mask = 0
        for pair in connections:
            for io in pair:
                if pin_io_base <= io < io_count and io not in own_mask:
                    owned = 0
                    for seg in pin_line_segments(io):
                        if protected[seg] is None:
                            protected[seg] = io
                            owned |= 1 << seg
                    own_mask[io] = owned
                    prot_mask |= owned
        self._protected = protected
        #: Per pin I/O: bitmask of the pin-line segments it protects (first
        #: listed pin wins a contested segment) — the BFS re-allows these
        #: with two mask ops instead of walking the line.
        self._own_mask = own_mask
        self._free_unprot_mask = self._free_mask & ~prot_mask

    # -- single connection ---------------------------------------------------------

    def _commit_path(self, path: List[Tuple[int, int]], net: int) -> None:
        switch_cells = self.model.switch_cells
        closed = self._result.closed
        net_switches = self._net_switches[net]
        net_segs = self._net_segs[net]
        seg_net = self._seg_net
        for seg, switch_id in path[1:]:
            macro, offset = switch_cells[switch_id]
            members = closed.get(macro)
            if members is None:
                members = closed[macro] = set()
            members.add(offset)
            net_switches.append((macro, offset))
            if seg_net[seg] is None:
                seg_net[seg] = net
                bit = ~(1 << seg)
                self._free_mask &= bit
                self._free_unprot_mask &= bit
                net_segs.append(seg)

    def _route_pair(self, in_io: int, out_io: int) -> "Optional[List[int]]":
        """Route one pair.

        Returns ``None`` on success and the sorted list of blocking net ids
        when a rip-up is required.  Raises when the pair is unroutable even
        through occupied fabric.
        """
        model = self.model
        a = self._io_seg(in_io)
        b = self._io_seg(out_io)
        net_a = self._seg_net[a]
        net_b = self._seg_net[b]

        if net_a is not None and net_a == net_b:
            self._result.connections_skipped += 1
            self._net_pairs[net_a].append((in_io, out_io))
            return None
        if net_a is not None and net_b is not None:
            raise DevirtualizationError(
                f"connection ({model.io_name(in_io)} -> "
                f"{model.io_name(out_io)}) would merge two distinct nets"
            )

        if net_a is not None:
            net, target = net_a, b
        elif net_b is not None:
            net, target = net_b, a
        else:
            net = self._new_net()
            self._claim(a, net)
            self._net_of_io[in_io] = net
            target = b

        sources = self._net_segs[net]
        pin_io_base = model.pin_io_base
        allowed = {
            io
            for io in (in_io, out_io)
            if pin_io_base <= io < model.io_count
        }
        path = self._bfs(sources, target, net, allowed, protection=True)
        if path is None:
            path = self._bfs(sources, target, net, allowed, protection=False)
        if path is None:
            blockers = self._find_blockers(sources, target, net, allowed)
            if blockers is None:
                raise DevirtualizationError(
                    f"no path for connection ({model.io_name(in_io)} -> "
                    f"{model.io_name(out_io)}), even through occupied fabric"
                )
            # Undo the tentative net creation before reporting the conflict.
            if net_a is None and net_b is None:
                self._rip_up(net, keep_pairs=False)
            return blockers
        self._commit_path(path, net)
        self._net_of_io[out_io] = net
        self._net_of_io[in_io] = net
        self._net_pairs[net].append((in_io, out_io))
        self._result.connections_routed += 1
        return None

    # -- searches ---------------------------------------------------------------------

    def _bfs(
        self,
        sources: Sequence[int],
        target: int,
        net: int,
        allowed_pin_ios: Set[int],
        protection: bool,
        through_others: bool = False,
    ) -> "Optional[List[Tuple[int, int]]]":
        """Deterministic BFS; ``[(seed, -1), (seg, switch), ...]`` or None."""
        model = self.model
        adjacency = model.adjacency
        prev = self._prev
        via = self._via
        queue = sorted(sources)
        push = queue.append
        head = 0
        found = False

        if through_others:
            # Discovery pass (rare): the original predicate chain, verbatim,
            # with the generation-stamped visited set.
            stamp = self._stamp
            self._gen += 1
            gen = self._gen
            for seed in queue:
                stamp[seed] = gen
                prev[seed] = -1
                via[seed] = -1
            seg_net = self._seg_net
            terminal = model.terminal_mask
            protected = self._protected
            usable = self._usable
            while head < len(queue):
                seg = queue[head]
                head += 1
                if seg == target:
                    found = True
                    break
                for nbr, switch_id in adjacency[seg]:
                    if stamp[nbr] == gen:
                        continue
                    if nbr != target and terminal[nbr]:
                        continue  # endpoint-only segments
                    if protection:
                        owner = protected[nbr]
                        if owner is not None and owner not in allowed_pin_ios:
                            continue  # reserved for a listed block pin
                    if not usable[nbr]:
                        continue
                    stamp[nbr] = gen
                    prev[nbr] = seg
                    via[nbr] = switch_id
                    push(nbr)
        else:
            # The common passes fold every accept/reject predicate into one
            # per-search bitmask: bit s of ``ok`` is set iff s may still be
            # pushed.  Exact because (a) an unvisited neighbour is never
            # own-net occupied — every own-net segment is a seed; (b) the
            # target is always free, usable, and (when protection is on)
            # protected only by a pin of this very connection, so its bit is
            # forced on; (c) clearing bits on push doubles as the visited
            # set; (d) ascending bit order equals the sorted adjacency
            # order, and ``switch_to`` keeps the first switch of a pair just
            # as the first visit would.
            if protection:
                ok = self._free_unprot_mask
                free = self._free_mask
                own_mask = self._own_mask
                for io in allowed_pin_ios:
                    owned = own_mask.get(io)
                    if owned:
                        ok |= free & owned
            else:
                ok = self._free_mask
            for seed in queue:
                ok &= ~(1 << seed)
                prev[seed] = -1
                via[seed] = -1
            ok |= 1 << target
            nbr_masks = model.nbr_masks
            switch_to = model.switch_to
            while head < len(queue):
                seg = queue[head]
                head += 1
                if seg == target:
                    found = True
                    break
                cand = nbr_masks[seg] & ok
                if cand:
                    ok ^= cand
                    first_sw = switch_to[seg]
                    while cand:
                        bit = cand & -cand
                        cand ^= bit
                        nbr = bit.bit_length() - 1
                        prev[nbr] = seg
                        via[nbr] = first_sw[nbr]
                        push(nbr)

        self._result.work += head
        if not found:
            return None
        path = []
        seg = target
        while seg != -1:
            path.append((seg, via[seg]))
            seg = prev[seg]
        path.reverse()
        return path

    def _find_blockers(
        self,
        sources: Sequence[int],
        target: int,
        net: int,
        allowed: Set[int],
    ) -> "Optional[List[int]]":
        """Nets obstructing the only available corridors (discovery pass)."""
        path = self._bfs(
            sources, target, net, allowed, protection=False, through_others=True
        )
        if path is None:
            return None
        seg_net = self._seg_net
        blockers = {
            seg_net[seg]
            for seg, _sw in path
            if seg_net[seg] is not None and seg_net[seg] != net
        }
        return sorted(blockers)

    # -- rip-up ------------------------------------------------------------------------

    def _rip_up(self, net: int, keep_pairs: bool = True) -> List[Pair]:
        """Tear a net down; return its processed pairs for re-queueing."""
        for seg in self._net_segs.pop(net, []):
            self._seg_net[seg] = None
            free_bit = self._clear_mask & (1 << seg)
            self._free_mask |= free_bit
            if self._protected[seg] is None:
                self._free_unprot_mask |= free_bit
        for macro, offset in self._net_switches.pop(net, []):
            self._result.open(macro, offset)
        pairs = self._net_pairs.pop(net, [])
        for io in [io for io, owner in self._net_of_io.items() if owner == net]:
            del self._net_of_io[io]
        return pairs if keep_pairs else []

    # -- the full list -------------------------------------------------------------------

    def decode(self, connections: Sequence[Pair]) -> DevirtResult:
        """Route the whole list in order; return closures and counters."""
        self.protect_pins(connections)
        queue = deque((pair, 0) for pair in connections)
        ripup_budget = max(16, 3 * len(connections))
        while queue:
            (in_io, out_io), tries = queue.popleft()
            blockers = self._route_pair(in_io, out_io)
            if blockers is None:
                continue
            if tries + 1 >= MAX_TRIES_PER_CONNECTION or ripup_budget <= 0:
                raise DevirtualizationError(
                    f"connection ({self.model.io_name(in_io)} -> "
                    f"{self.model.io_name(out_io)}) unroutable after "
                    f"{tries + 1} attempts and {self._result.ripups} rip-ups"
                )
            requeued: List[Tuple[Pair, int]] = []
            for victim in blockers:
                for pair in self._rip_up(victim):
                    requeued.append((pair, tries + 1))
                self._result.ripups += 1
                ripup_budget -= 1
            # The stuck connection routes first, then the victims retry.
            queue.appendleft(((in_io, out_io), tries + 1))
            for item in reversed(requeued):
                queue.insert(1, item)
        return self._result

    # Backwards-compatible single-connection entry point (tests, examples).
    def route_connection(self, in_io: int, out_io: int) -> None:
        blockers = self._route_pair(in_io, out_io)
        if blockers is not None:
            raise DevirtualizationError(
                f"connection ({self.model.io_name(in_io)} -> "
                f"{self.model.io_name(out_io)}) blocked by nets {blockers}"
            )
