"""Connection-list extraction: routed nets -> per-cluster (In, Out) pairs.

This is the virtualization step of Section II-B: the routed tree of every
net is walked from its source, and each time it crosses a cluster boundary
the crossing is recorded as an *exit* from one cluster and an *entry* into
the next, both expressed as black-box I/O numbers.  Inside a cluster the
net's presence is a *component*: one entry endpoint plus every exit/pin
endpoint reached from it, in DFS order — the connection list the run-time
de-virtualization router expands.

A single RRG edge can produce two crossings (a route turning inside a
switch box passes through the junction macro without using any of its
wires), which is why crossings are derived per *leg* of each edge:
``owner(u) -> junction macro -> owner(v)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.arch.rrg import KIND_LINE, RoutingGraph
from repro.bitstream.expand import edge_junction_cell
from repro.cad.pack import PackedDesign
from repro.cad.place import Placement
from repro.cad.route import RoutingResult
from repro.errors import VbsError
from repro.vbs.format import VbsLayout

Cell = Tuple[int, int]


@dataclass
class Component:
    """One connected presence of a net inside one cluster."""

    net: str
    cluster: Cell
    entry: int
    exits: List[int] = field(default_factory=list)

    def pairs(self) -> List[Tuple[int, int]]:
        """The (In, Out) connection pairs of Table I, anchored at the entry."""
        return [(self.entry, out) for out in self.exits]


def crossing_ios(
    layout: VbsLayout, cell_from: Cell, cell_to: Cell, track: int
) -> Tuple[int, int]:
    """(exit io in from-cluster, entry io in to-cluster) for a crossing.

    The two cells must be grid neighbours in different clusters; the wire
    crosses on routing track ``track``.
    """
    c = layout.cluster_size
    W = layout.params.channel_width
    (fx, fy), (tx, ty) = cell_from, cell_to
    west, east, south, north = 0, c * W, 2 * c * W, 3 * c * W
    if (tx, ty) == (fx + 1, fy):
        return east + (fy % c) * W + track, west + (ty % c) * W + track
    if (tx, ty) == (fx - 1, fy):
        return west + (fy % c) * W + track, east + (ty % c) * W + track
    if (tx, ty) == (fx, fy + 1):
        return north + (fx % c) * W + track, south + (tx % c) * W + track
    if (tx, ty) == (fx, fy - 1):
        return south + (fx % c) * W + track, north + (tx % c) * W + track
    raise VbsError(f"cells {cell_from} and {cell_to} are not neighbours")


def pin_io(layout: VbsLayout, x: int, y: int, pin: int) -> int:
    """Black-box I/O number of block pin ``pin`` of macro (x, y)."""
    c = layout.cluster_size
    W = layout.params.channel_width
    L = layout.params.num_lb_pins
    i, j = x % c, y % c
    return 4 * c * W + (j * c + i) * L + pin


def extract_components(
    design: PackedDesign,
    placement: Placement,
    routing: RoutingResult,
    rrg: RoutingGraph,
    layout: VbsLayout,
) -> Dict[Cell, List[Component]]:
    """Walk every routed net; return components grouped by cluster.

    Components appear per cluster in deterministic order: nets sorted by
    name, then DFS discovery order within each net.
    """
    by_cluster: Dict[Cell, List[Component]] = {}

    for net_name in sorted(routing.trees):
        tree = routing.trees[net_name]
        children = tree.children_map()
        sink_set = set(tree.sinks)

        src_kind, src_pin = rrg.node_kind(tree.source)
        if src_kind != KIND_LINE:
            raise VbsError(f"net {net_name}: source is not a pin line")
        sx, sy = rrg.node_cell(tree.source)
        src_cluster = layout.cluster_of_cell(sx, sy)
        root_comp = Component(
            net_name, src_cluster, pin_io(layout, sx, sy, src_pin)
        )
        by_cluster.setdefault(src_cluster, []).append(root_comp)

        # Iterative DFS carrying the active component.
        stack: List[Tuple[int, Component]] = [(tree.source, root_comp)]
        while stack:
            node, comp = stack.pop()
            kind, idx = rrg.node_kind(node)
            if node != tree.source and node in sink_set and kind == KIND_LINE:
                x, y = rrg.node_cell(node)
                comp.exits.append(pin_io(layout, x, y, idx))
            for child in reversed(children.get(node, [])):
                child_comp = self_comp = comp
                junction = edge_junction_cell(rrg, node, child)
                # Leg 1: owner(node) -> junction macro.
                owner_u = rrg.node_cell(node)
                if layout.cluster_of_cell(*owner_u) != layout.cluster_of_cell(
                    *junction
                ):
                    _ukind, utrack = rrg.node_kind(node)
                    exit_io, entry_io = crossing_ios(
                        layout, owner_u, junction, utrack
                    )
                    self_comp.exits.append(exit_io)
                    child_comp = Component(
                        net_name,
                        layout.cluster_of_cell(*junction),
                        entry_io,
                    )
                    by_cluster.setdefault(child_comp.cluster, []).append(
                        child_comp
                    )
                # Leg 2: junction macro -> owner(child).
                owner_v = rrg.node_cell(child)
                if layout.cluster_of_cell(*junction) != layout.cluster_of_cell(
                    *owner_v
                ):
                    _vkind, vtrack = rrg.node_kind(child)
                    exit_io, entry_io = crossing_ios(
                        layout, junction, owner_v, vtrack
                    )
                    child_comp.exits.append(exit_io)
                    child_comp = Component(
                        net_name,
                        layout.cluster_of_cell(*owner_v),
                        entry_io,
                    )
                    by_cluster.setdefault(child_comp.cluster, []).append(
                        child_comp
                    )
                stack.append((child, child_comp))

    # Components with no exits carry no information (a net entering and
    # stopping on a wire stub cannot happen for valid routes, but a source
    # whose every sink lies in another cluster leaves the root with only
    # crossing exits — keep anything with >= 1 exit).
    for cluster in list(by_cluster):
        by_cluster[cluster] = [
            comp for comp in by_cluster[cluster] if comp.exits
        ]
        if not by_cluster[cluster]:
            del by_cluster[cluster]
    return by_cluster
