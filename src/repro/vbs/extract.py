"""Connection-list extraction: routed nets -> per-cluster (In, Out) pairs.

This is the virtualization step of Section II-B: the routed tree of every
net is walked from its source, and each time it crosses a cluster boundary
the crossing is recorded as an *exit* from one cluster and an *entry* into
the next, both expressed as black-box I/O numbers.  Inside a cluster the
net's presence is a *component*: one entry endpoint plus every exit/pin
endpoint reached from it, in DFS order — the connection list the run-time
de-virtualization router expands.

A single RRG edge can produce two crossings (a route turning inside a
switch box passes through the junction macro without using any of its
wires), which is why crossings are derived per *leg* of each edge:
``owner(u) -> junction macro -> owner(v)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.arch.rrg import RoutingGraph
from repro.bitstream.expand import edge_junction_cell
from repro.cad.pack import PackedDesign
from repro.cad.place import Placement
from repro.cad.route import RoutingResult
from repro.errors import VbsError
from repro.vbs.format import VbsLayout

Cell = Tuple[int, int]


@dataclass
class Component:
    """One connected presence of a net inside one cluster."""

    net: str
    cluster: Cell
    entry: int
    exits: List[int] = field(default_factory=list)

    def pairs(self) -> List[Tuple[int, int]]:
        """The (In, Out) connection pairs of Table I, anchored at the entry."""
        return [(self.entry, out) for out in self.exits]


def crossing_ios(
    layout: VbsLayout, cell_from: Cell, cell_to: Cell, track: int
) -> Tuple[int, int]:
    """(exit io in from-cluster, entry io in to-cluster) for a crossing.

    The two cells must be grid neighbours in different clusters; the wire
    crosses on routing track ``track``.
    """
    c = layout.cluster_size
    W = layout.params.channel_width
    (fx, fy), (tx, ty) = cell_from, cell_to
    west, east, south, north = 0, c * W, 2 * c * W, 3 * c * W
    if (tx, ty) == (fx + 1, fy):
        return east + (fy % c) * W + track, west + (ty % c) * W + track
    if (tx, ty) == (fx - 1, fy):
        return west + (fy % c) * W + track, east + (ty % c) * W + track
    if (tx, ty) == (fx, fy + 1):
        return north + (fx % c) * W + track, south + (tx % c) * W + track
    if (tx, ty) == (fx, fy - 1):
        return south + (fx % c) * W + track, north + (tx % c) * W + track
    raise VbsError(f"cells {cell_from} and {cell_to} are not neighbours")


def pin_io(layout: VbsLayout, x: int, y: int, pin: int) -> int:
    """Black-box I/O number of block pin ``pin`` of macro (x, y)."""
    c = layout.cluster_size
    W = layout.params.channel_width
    L = layout.params.num_lb_pins
    i, j = x % c, y % c
    return 4 * c * W + (j * c + i) * L + pin


def extract_components(
    design: PackedDesign,
    placement: Placement,
    routing: RoutingResult,
    rrg: RoutingGraph,
    layout: VbsLayout,
) -> Dict[Cell, List[Component]]:
    """Walk every routed net; return components grouped by cluster.

    Components appear per cluster in deterministic order: nets sorted by
    name, then DFS discovery order within each net.
    """
    by_cluster: Dict[Cell, List[Component]] = {}

    # Node decoding, junction lookup and I/O numbering are inlined integer
    # arithmetic here (see repro.arch.rrg for the node id layout): the walk
    # visits every routed edge and the tiny helpers dominate its runtime.
    per_cell = rrg.per_cell
    fw = rrg.fabric.width
    fh = rrg.fabric.height
    W = rrg.W
    W2 = 2 * W
    c = layout.cluster_size
    L = layout.params.num_lb_pins
    pin_base = 4 * c * W
    west, east, south, north = 0, c * W, 2 * c * W, 3 * c * W

    def cross(fx: int, fy: int, tx: int, ty: int, track: int):
        # Inline of crossing_ios over pre-localized layout constants.
        if tx == fx + 1 and ty == fy:
            return east + (fy % c) * W + track, west + (ty % c) * W + track
        if tx == fx - 1 and ty == fy:
            return west + (fy % c) * W + track, east + (ty % c) * W + track
        if tx == fx and ty == fy + 1:
            return north + (fx % c) * W + track, south + (tx % c) * W + track
        if tx == fx and ty == fy - 1:
            return south + (fx % c) * W + track, north + (tx % c) * W + track
        raise VbsError(f"cells {(fx, fy)} and {(tx, ty)} are not neighbours")

    for net_name in sorted(routing.trees):
        tree = routing.trees[net_name]
        children = tree.children_map()
        sink_set = set(tree.sinks)
        source = tree.source

        cell, k = divmod(source, per_cell)
        if k < W2:
            raise VbsError(f"net {net_name}: source is not a pin line")
        sy, sx = divmod(cell, fw)
        src_cluster = (sx // c, sy // c)
        root_comp = Component(
            net_name,
            src_cluster,
            pin_base + ((sy % c) * c + sx % c) * L + (k - W2),
        )
        by_cluster.setdefault(src_cluster, []).append(root_comp)

        # Iterative DFS carrying the active component.
        stack: List[Tuple[int, Component]] = [(source, root_comp)]
        while stack:
            node, comp = stack.pop()
            ncell, nk = divmod(node, per_cell)
            ny, nx = divmod(ncell, fw)
            if node != source and nk >= W2 and node in sink_set:
                comp.exits.append(
                    pin_base + ((ny % c) * c + nx % c) * L + (nk - W2)
                )
            kids = children.get(node)
            if not kids:
                continue
            for child in reversed(kids):
                child_comp = comp
                ccell, ck = divmod(child, per_cell)
                cy, cx = divmod(ccell, fw)
                # Junction macro of edge (node, child): a pin line's own
                # cell, else the unique shared switch-box cell of the two
                # track wires (each track reaches its own cell plus the
                # east/north neighbour when in bounds).
                if nk >= W2:
                    jx, jy = nx, ny
                elif ck >= W2:
                    jx, jy = cx, cy
                else:
                    if nk < W:
                        u2x, u2y = nx + 1, ny
                    else:
                        u2x, u2y = nx, ny + 1
                    if ck < W:
                        v2x, v2y = cx + 1, cy
                    else:
                        v2x, v2y = cx, cy + 1
                    v2_ok = v2x < fw and v2y < fh
                    m1 = (nx == cx and ny == cy) or (
                        v2_ok and nx == v2x and ny == v2y
                    )
                    m2 = (u2x < fw and u2y < fh) and (
                        (u2x == cx and u2y == cy)
                        or (v2_ok and u2x == v2x and u2y == v2y)
                    )
                    if m1 and not m2:
                        jx, jy = nx, ny
                    elif m2 and not m1:
                        jx, jy = u2x, u2y
                    else:
                        # Zero or ambiguous matches: defer to the slow
                        # helper for its exact diagnostics.
                        jx, jy = edge_junction_cell(rrg, node, child)
                jcx, jcy = jx // c, jy // c
                # Leg 1: owner(node) -> junction macro.
                if nx // c != jcx or ny // c != jcy:
                    utrack = nk if nk < W else nk - W if nk < W2 else nk - W2
                    exit_io, entry_io = cross(nx, ny, jx, jy, utrack)
                    comp.exits.append(exit_io)
                    child_comp = Component(net_name, (jcx, jcy), entry_io)
                    by_cluster.setdefault((jcx, jcy), []).append(child_comp)
                # Leg 2: junction macro -> owner(child).
                ccx, ccy = cx // c, cy // c
                if jcx != ccx or jcy != ccy:
                    vtrack = ck if ck < W else ck - W if ck < W2 else ck - W2
                    exit_io, entry_io = cross(jx, jy, cx, cy, vtrack)
                    child_comp.exits.append(exit_io)
                    child_comp = Component(net_name, (ccx, ccy), entry_io)
                    by_cluster.setdefault((ccx, ccy), []).append(child_comp)
                stack.append((child, child_comp))

    # Components with no exits carry no information (a net entering and
    # stopping on a wire stub cannot happen for valid routes, but a source
    # whose every sink lies in another cluster leaves the root with only
    # crossing exits — keep anything with >= 1 exit).
    for cluster in list(by_cluster):
        by_cluster[cluster] = [
            comp for comp in by_cluster[cluster] if comp.exits
        ]
        if not by_cluster[cluster]:
            del by_cluster[cluster]
    return by_cluster
