"""The feature→codec predictor of the family pass (knowledge-base idiom).

``codecs="auto"`` settles every container with an exhaustive per-record
trial: ten-plus ``record_bits`` evaluations per record, repeated under
every trial layout (no-table vs. table, narrow vs. wide tags).  That is
the right thing to do exactly once per *kind* of cluster — the winning
codec is a stable function of a few cheap cluster features, so the
fleet/sweep workloads re-derive the same answers millions of times.

:class:`CodecPredictor` is the encode-time twin of the runtime
``PolicyStore`` (the recorded-knowledge idiom of Zhou et al. 2022,
PAPERS.md): a persistable store mapping a quantized **feature key** to
the codecs that have ever won a full trial under it, with win counts.
The family pass (``repro.vbs.encode._family_selection``) consults it to
shortlist candidates instead of costing the whole family:

* **cold key** → the full trial runs and its winner is recorded; the
  predictor never guesses without evidence.  Warmth is judged against
  the store as it stood when the encode *began*
  (:meth:`CodecPredictor.begin_session`): wins recorded during an
  encode teach the next session, never the current one, so an encode
  under a cold store is the exhaustive pass, bit for bit.
* **warm key** → only the shortlist (every recorded winner for the key),
  plus the record's current per-cluster pick and the guaranteed raw
  fallback, is costed.  Because the shortlist contains *every* codec
  that has ever won under the key, replaying a corpus the store was
  warmed on costs the true winner again — the output is byte-identical
  to the exhaustive pass.
* **verify-and-fallback** → after the shortlist is costed, the store's
  top-ranked pick must win it by at least ``margin_bits`` against the
  runner-up; when it loses by more, the full trial re-runs and the real
  winner is recorded.  With the default margin of 0 any shortlist upset
  triggers the full trial, so drifting workloads re-teach the store
  instead of locking in stale picks.

Keys quantize backend-deterministic features (pure ``BitArray`` bit
counting — identical under ``REPRO_NO_NUMPY=1``): set-bit density, run
structure (contiguous one-blocks), connection-pair count, distance to
the nearest dictionary pattern, a container-level pattern-pool entropy
proxy, and the tag-width regime.  Everything that changes a record's
cost landscape is either in the key or explicitly re-verified.

The store serializes to JSON (``save``/``load``; loads are tolerant — a
missing or corrupt file leaves the store cold) and is wired through
``encode_design(..., predictor=...)`` / ``repro vbsgen
--predictor-store``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.utils.bitarray import BitArray
from repro.vbs.format import (
    WIDE_CODEC_TAG_BITS,
    ClusterRecord,
    VbsLayout,
)

#: Store schema version; a mismatching file restores nothing.
STORE_VERSION = 1


def _bucket(value: int) -> int:
    """Log2 bucket of a non-negative count (0 -> 0, 1 -> 1, 2-3 -> 2...)."""
    return value.bit_length()


def _one_blocks(field: BitArray) -> int:
    """Number of contiguous runs of set bits (the run-structure proxy)."""
    blocks = 0
    prev = -2
    for i in field.ones():
        if i != prev + 1:
            blocks += 1
        prev = i
    return blocks


def pool_entropy_bucket(records: Sequence[ClusterRecord]) -> int:
    """Container-level pattern-pool entropy proxy, bucketed 0..8.

    The ratio of distinct logic patterns to smart records: 0 means one
    pattern tiles the whole container (dictionary territory), 8 means
    every cluster is unique (delta/Rice territory).  Deterministic and
    cheap — ``BitArray`` hashing over fields already in memory.
    """
    logics = [
        rec.logic for rec in records
        if not rec.raw and rec.logic is not None
    ]
    if not logics:
        return 0
    return (len(set(logics)) * 8) // len(logics)


def cluster_key(
    rec: ClusterRecord,
    layout: VbsLayout,
    pool_bucket: int,
    has_frames: bool = False,
) -> str:
    """The quantized feature key of one record under one trial layout.

    Pure function of (record, layout, container pool bucket): set-bit
    density in sixteenths, log2 buckets of the one-block count and the
    pair count, the popcount distance to the nearest dictionary pattern
    (15 = no table), the tag-width regime, and whether the raw fallback
    frames are on the table for this record.  Raw records key on their
    frames under an ``r`` prefix — a disjoint feature space from smart
    records' ``s``.
    """
    if rec.raw and rec.raw_frames is not None:
        field = rec.raw_frames
        kind = "r"
    else:
        field = rec.logic
        kind = "s"
    n = len(field) if field is not None else 0
    density = (field.count() * 16) // n if field is not None and n else 0
    blocks = _bucket(_one_blocks(field)) if field is not None else 0
    pairs = _bucket(len(rec.pairs or []))
    if not rec.raw and rec.logic is not None and layout.dict_table:
        dist = min(
            (rec.logic ^ pattern).count() for pattern in layout.dict_table
        )
        dict_hit = min(15, _bucket(dist))
    else:
        dict_hit = 15
    wide = 1 if layout.tag_bits == WIDE_CODEC_TAG_BITS else 0
    raw_opt = 1 if (rec.raw or has_frames) else 0
    return (
        f"{kind}{density}.{blocks}.{pairs}.{dict_hit}."
        f"{pool_bucket}.{wide}{raw_opt}"
    )


class CodecPredictor:
    """Persistable (feature key -> winning codec) store with win counts."""

    def __init__(self, margin_bits: int = 0) -> None:
        if margin_bits < 0:
            raise ValueError("verify margin must be >= 0 bits")
        #: Verify-and-fallback tolerance: the store's top pick may lose
        #: the shortlist by up to this many bits before the full trial
        #: re-runs.  0 = any upset re-trials (the safe default).
        self.margin_bits = margin_bits
        self._cells: Dict[str, Dict[str, int]] = {}
        #: The consultation snapshot (see :meth:`begin_session`); None
        #: means reads see the live cells.
        self._frozen: Optional[Dict[str, Dict[str, int]]] = None
        #: Session counters (not persisted): shortlist hits, cold
        #: misses, and verify-and-fallback full re-trials.
        self.hits = 0
        self.misses = 0
        self.fallbacks = 0

    def __len__(self) -> int:
        return len(self._cells)

    @property
    def samples(self) -> int:
        """Total recorded wins across every cell."""
        return sum(sum(c.values()) for c in self._cells.values())

    def begin_session(self) -> None:
        """Freeze the consultation view at the current store content.

        The feature key is deliberately lossy, so two records sharing a
        key can have different true winners.  If shortlists were read
        from the *live* cells, a win recorded earlier in the same encode
        would hide a later same-key record's better codec without the
        verify-and-fallback check ever seeing it — and a cold store
        would stop being byte-identical to the exhaustive pass halfway
        through its own first container.  ``encode_design``/
        ``encode_task`` therefore freeze the store at entry: every
        consultation during the encode sees the pre-encode state (cold
        keys stay cold for the whole session → full trials everywhere),
        while :meth:`record` keeps teaching the live cells for the
        *next* session.
        """
        self._frozen = {
            key: dict(cell) for key, cell in self._cells.items()
        }

    def shortlist(self, key: str) -> Optional[List[str]]:
        """Every codec that ever won under ``key``, most wins first
        (name as the deterministic tie-break); None when cold.

        Inside an encode session (:meth:`begin_session`) the answer
        comes from the frozen snapshot, not the live cells.
        """
        cells = self._frozen if self._frozen is not None else self._cells
        cell = cells.get(key)
        if not cell:
            return None
        return sorted(cell, key=lambda name: (-cell[name], name))

    def predict(self, key: str) -> Optional[str]:
        """The store's top-ranked codec for ``key``, or None when cold."""
        ranked = self.shortlist(key)
        return ranked[0] if ranked else None

    def record(self, key: str, winner: str) -> None:
        """File one full-trial (or verified shortlist) win."""
        cell = self._cells.setdefault(key, {})
        cell[winner] = cell.get(winner, 0) + 1

    # -- persistence -----------------------------------------------------------

    def save(self, path: "str | Path") -> None:
        """Write the store as JSON (schema-versioned, sorted keys)."""
        payload = {
            "version": STORE_VERSION,
            "margin_bits": self.margin_bits,
            "cells": {
                key: dict(sorted(cell.items()))
                for key, cell in sorted(self._cells.items())
            },
        }
        Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True))

    def load(self, path: "str | Path") -> int:
        """Merge a saved store into this one; returns cells restored.

        Tolerant like :meth:`DecodeMemo.load`: a missing, corrupt or
        schema-mismatched file restores nothing — the predictor is an
        accelerator, never a correctness dependency.
        """
        try:
            payload = json.loads(Path(path).read_text())
        except (OSError, ValueError):
            return 0
        if (
            not isinstance(payload, dict)
            or payload.get("version") != STORE_VERSION
            or not isinstance(payload.get("cells"), dict)
        ):
            return 0
        restored = 0
        for key, cell in payload["cells"].items():
            if not isinstance(cell, dict):
                continue
            target = self._cells.setdefault(str(key), {})
            for name, wins in cell.items():
                if isinstance(wins, int) and wins > 0:
                    target[str(name)] = target.get(str(name), 0) + wins
            restored += 1
        return restored

    def snapshot(self) -> dict:
        """A JSON-safe digest (cell/sample counts + session counters)."""
        return {
            "cells": len(self),
            "samples": self.samples,
            "hits": self.hits,
            "misses": self.misses,
            "fallbacks": self.fallbacks,
        }

    def __repr__(self) -> str:
        return (
            f"CodecPredictor({len(self)} cells, {self.samples} wins, "
            f"margin={self.margin_bits})"
        )
