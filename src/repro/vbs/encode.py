"""vbsgen: the Virtual Bit-Stream generation backend (Section III-B).

``encode_design`` consumes the outputs of the CAD flow (packed design,
placement, routing, and the expanded junction-level configuration) and
produces a :class:`VirtualBitstream`:

* connection lists are extracted per cluster (``repro.vbs.extract``);
* every cluster's list is replayed through the *online* de-virtualization
  router — the offline/online feedback loop of the paper — re-ordering on
  failure (``repro.vbs.order``);
* clusters whose lists cannot be decoded in any tried order, or whose route
  count exceeds the count field, fall back to raw coding, "which can induce
  lesser compression gains but guarantees that the hardware task will be
  handled correctly in all cases";
* empty clusters are omitted entirely (the macro list of Table I carries
  positions, so the decoder zero-fills unlisted fabric).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.arch.macro import get_cluster_model
from repro.arch.params import ArchParams
from repro.bitstream.config import FabricConfig
from repro.bitstream.raw import RawBitstream
from repro.cad.flow import FlowResult
from repro.cad.pack import PackedDesign
from repro.cad.place import Placement
from repro.cad.route import RoutingResult
from repro.arch.rrg import RoutingGraph
from repro.errors import DevirtualizationError, VbsError
from repro.utils.bitarray import BitArray, BitReader, BitWriter
from repro.vbs.devirt import ClusterDecoder
from repro.vbs.extract import extract_components
from repro.vbs.format import (
    CHANNEL_BITS,
    CLUSTER_BITS,
    COMPACT_BITS,
    DIM_BITS,
    LUT_BITS,
    MAGIC,
    MAGIC_BITS,
    VERSION,
    VERSION_BITS,
    ClusterRecord,
    VbsLayout,
)

Pair = Tuple[int, int]


@dataclass
class EncodeStats:
    """Bookkeeping of one vbsgen run."""

    clusters_listed: int = 0
    clusters_raw: int = 0
    pairs_total: int = 0
    orders_tried: int = 0
    offline_decode_work: int = 0
    fallback_reasons: Dict[Tuple[int, int], str] = field(default_factory=dict)


class VirtualBitstream:
    """An encoded task: Table I payload plus the container prelude."""

    def __init__(
        self,
        layout: VbsLayout,
        records: List[ClusterRecord],
        stats: Optional[EncodeStats] = None,
    ):
        self.layout = layout
        self.records = records
        self.stats = stats or EncodeStats()
        for rec in records:
            rec.validate(layout)

    # -- size accounting -------------------------------------------------------

    @property
    def size_bits(self) -> int:
        """Table I payload size — the quantity plotted in Figures 4 and 5."""
        return self.layout.header_bits + sum(
            rec.size_bits(self.layout) for rec in self.records
        )

    @property
    def container_bits(self) -> int:
        from repro.vbs.format import PRELUDE_BITS

        return PRELUDE_BITS + self.size_bits

    def raw_equivalent_bits(self) -> int:
        """Size of the raw bitstream of the same task (the BS of Figure 4)."""
        return RawBitstream.size_for(
            self.layout.params, self.layout.width, self.layout.height
        )

    def compression_ratio(self) -> float:
        """VBS size as a fraction of raw size (paper reports ~0.41 at c=1)."""
        return self.size_bits / self.raw_equivalent_bits()

    # -- serialization ------------------------------------------------------------

    def to_bits(self) -> BitArray:
        """Assemble the container binary."""
        lay = self.layout
        w = BitWriter()
        w.write(MAGIC, MAGIC_BITS)
        w.write(VERSION, VERSION_BITS)
        w.write(lay.cluster_size, CLUSTER_BITS)
        w.write(lay.params.channel_width, CHANNEL_BITS)
        w.write(lay.params.lut_size, LUT_BITS)
        w.write(1 if lay.compact_logic else 0, COMPACT_BITS)
        w.write(lay.width, DIM_BITS)
        w.write(lay.height, DIM_BITS)

        w.write(lay.width - 1, lay.dim_bits)
        w.write(lay.height - 1, lay.dim_bits)
        w.write(len(self.records), lay.count_bits)
        nlb = lay.params.nlb
        members = lay.cluster_size * lay.cluster_size
        for rec in self.records:
            w.write(rec.pos[0], lay.pos_bits)
            w.write(rec.pos[1], lay.pos_bits)
            if rec.raw:
                w.write(lay.raw_sentinel, lay.route_count_bits)
                w.write_bits(rec.raw_frames)
            else:
                w.write(len(rec.pairs), lay.route_count_bits)
                if lay.compact_logic:
                    # Future-work coding (Section V): presence flag per
                    # member slot, logic data only where non-zero.
                    for k in range(members):
                        piece = rec.logic.slice(k * nlb, nlb)
                        if piece.count():
                            w.write(1, 1)
                            w.write_bits(piece)
                        else:
                            w.write(0, 1)
                else:
                    w.write_bits(rec.logic)
                for a, b in rec.pairs:
                    w.write(a, lay.m_bits)
                    w.write(b, lay.m_bits)
        return w.finish()

    @classmethod
    def from_bits(
        cls, bits: BitArray, params: Optional[ArchParams] = None
    ) -> "VirtualBitstream":
        """Parse a container binary back into records."""
        r = BitReader(bits)
        if r.read(MAGIC_BITS) != MAGIC:
            raise VbsError("bad magic: not a Virtual Bit-Stream container")
        if r.read(VERSION_BITS) != VERSION:
            raise VbsError("unsupported VBS container version")
        cluster_size = r.read(CLUSTER_BITS)
        channel_width = r.read(CHANNEL_BITS)
        lut_size = r.read(LUT_BITS)
        compact = bool(r.read(COMPACT_BITS))
        width = r.read(DIM_BITS)
        height = r.read(DIM_BITS)
        if params is None:
            params = ArchParams(channel_width=channel_width, lut_size=lut_size)
        elif (
            params.channel_width != channel_width
            or params.lut_size != lut_size
        ):
            raise VbsError(
                "architecture parameters do not match the VBS prelude"
            )
        lay = VbsLayout(params, cluster_size, width, height,
                        compact_logic=compact)

        if r.read(lay.dim_bits) != width - 1:
            raise VbsError("payload width disagrees with prelude")
        if r.read(lay.dim_bits) != height - 1:
            raise VbsError("payload height disagrees with prelude")
        count = r.read(lay.count_bits)
        records: List[ClusterRecord] = []
        for _ in range(count):
            cx = r.read(lay.pos_bits)
            cy = r.read(lay.pos_bits)
            rc = r.read(lay.route_count_bits)
            if rc == lay.raw_sentinel:
                frames = r.read_bits(lay.raw_bits_per_cluster)
                records.append(
                    ClusterRecord((cx, cy), raw=True, raw_frames=frames)
                )
            else:
                if lay.compact_logic:
                    logic = BitArray(lay.logic_bits_per_cluster)
                    nlb = lay.params.nlb
                    for k in range(lay.cluster_size * lay.cluster_size):
                        if r.read(1):
                            logic.overwrite(k * nlb, r.read_bits(nlb))
                else:
                    logic = r.read_bits(lay.logic_bits_per_cluster)
                pairs = [
                    (r.read(lay.m_bits), r.read(lay.m_bits)) for _ in range(rc)
                ]
                records.append(
                    ClusterRecord((cx, cy), raw=False, logic=logic, pairs=pairs)
                )
        return cls(lay, records)

    def __repr__(self) -> str:
        return (
            f"VirtualBitstream({self.layout.width}x{self.layout.height} task, "
            f"c={self.layout.cluster_size}, {len(self.records)} clusters, "
            f"{self.size_bits} bits = {self.compression_ratio():.1%} of raw)"
        )


# -- encoding -------------------------------------------------------------------


def _cluster_logic(
    layout: VbsLayout, config: FabricConfig, cx: int, cy: int
) -> BitArray:
    """The c^2 * NLB logic field of one cluster (raster, zeros when absent)."""
    c = layout.cluster_size
    nlb = layout.params.nlb
    out = BitArray(layout.logic_bits_per_cluster)
    for j in range(c):
        for i in range(c):
            x, y = cx * c + i, cy * c + j
            logic = config.logic.get((x, y))
            if logic is not None:
                out.overwrite((j * c + i) * nlb, logic)
    return out


def _cluster_raw_frames(
    layout: VbsLayout, config: FabricConfig, cx: int, cy: int
) -> BitArray:
    """The c^2 * Nraw raw-fallback field (frames in raster order)."""
    c = layout.cluster_size
    nraw = layout.params.nraw
    out = BitArray(layout.raw_bits_per_cluster)
    for j in range(c):
        for i in range(c):
            x, y = cx * c + i, cy * c + j
            if config.region.contains(x, y):
                out.overwrite((j * c + i) * nraw, config.macro_frame(x, y))
    return out


def encode_design(
    design: PackedDesign,
    placement: Placement,
    routing: RoutingResult,
    rrg: RoutingGraph,
    config: FabricConfig,
    cluster_size: int = 1,
    max_orders: int = 12,
    order_seed: int = 0,
    compact_logic: bool = False,
) -> VirtualBitstream:
    """Run vbsgen over a routed design at the given coding granularity.

    ``compact_logic`` enables the future-work coding of Section V (logic
    data only for macros that carry any); the default is the strict
    Table I layout used in the paper's figures.
    """
    from repro.vbs.order import candidate_orders

    fabric = placement.fabric
    params = fabric.params
    layout = VbsLayout(params, cluster_size, fabric.width, fabric.height,
                       compact_logic=compact_logic)
    model = get_cluster_model(params, cluster_size)
    components = extract_components(design, placement, routing, rrg, layout)

    stats = EncodeStats()
    records: List[ClusterRecord] = []
    cgw, cgh = layout.cluster_grid

    for cy in range(cgh):
        for cx in range(cgw):
            comps = components.get((cx, cy), [])
            logic = _cluster_logic(layout, config, cx, cy)
            if not comps and logic.count() == 0:
                continue  # empty cluster: omitted from the macro list
            stats.clusters_listed += 1
            pairs: List[Pair] = [p for comp in comps for p in comp.pairs()]
            stats.pairs_total += len(pairs)

            record = None
            if len(pairs) <= layout.max_routes:
                valid = set(layout.valid_members(cx, cy))
                tried_here = 0
                for order in candidate_orders(
                    pairs, model, max_orders=max_orders, seed=order_seed
                ):
                    tried_here += 1
                    stats.orders_tried += 1
                    decoder = ClusterDecoder(model, valid_macros=valid)
                    try:
                        result = decoder.decode(order)
                    except DevirtualizationError:
                        continue
                    stats.offline_decode_work += result.work
                    record = ClusterRecord(
                        (cx, cy),
                        raw=False,
                        logic=logic,
                        pairs=list(order),
                        orders_tried=tried_here,
                    )
                    break
                else:
                    stats.fallback_reasons[(cx, cy)] = "no decodable order"
            else:
                stats.fallback_reasons[(cx, cy)] = (
                    f"{len(pairs)} routes exceed the count field"
                )

            if record is None:
                stats.clusters_raw += 1
                record = ClusterRecord(
                    (cx, cy),
                    raw=True,
                    raw_frames=_cluster_raw_frames(layout, config, cx, cy),
                )
            records.append(record)

    return VirtualBitstream(layout, records, stats)


def encode_flow(
    flow: FlowResult,
    config: FabricConfig,
    cluster_size: int = 1,
    **kwargs,
) -> VirtualBitstream:
    """Convenience wrapper over :func:`encode_design` for a FlowResult."""
    return encode_design(
        flow.design,
        flow.placement,
        flow.routing,
        flow.rrg,
        config,
        cluster_size=cluster_size,
        **kwargs,
    )
