"""vbsgen: the Virtual Bit-Stream generation backend (Section III-B).

``encode_design`` consumes the outputs of the CAD flow (packed design,
placement, routing, and the expanded junction-level configuration) and
produces a :class:`VirtualBitstream`:

* connection lists are extracted per cluster (``repro.vbs.extract``);
* every cluster's list is replayed through the *online* de-virtualization
  router — the offline/online feedback loop of the paper — re-ordering on
  failure (``repro.vbs.order``);
* clusters whose lists cannot be decoded in any tried order, or whose route
  count exceeds the count field, fall back to raw coding, "which can induce
  lesser compression gains but guarantees that the hardware task will be
  handled correctly in all cases";
* empty clusters are omitted entirely (the macro list of Table I carries
  positions, so the decoder zero-fills unlisted fabric).

The encoder is a *batched pipeline*: each non-empty cluster is an
independent work item (logic extraction, order search, record encoding,
codec selection) driven either serially or through a
``concurrent.futures`` worker pool (``workers=``), with output record
ordering deterministic (raster) either way.  Identical cluster decodes
are replayed from a shared :class:`~repro.vbs.devirt.DecodeMemo` instead
of re-running the router.

Record bodies are written and parsed by the pluggable codec registry
(``repro.vbs.codecs``); ``codecs="auto"`` (or an explicit name list)
enables the cost-driven per-cluster codec picker, while the default keeps
the paper's strict Table I behavior (connection list + raw fallback,
or the Section V compact-logic coding when ``compact_logic=True``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.arch.macro import get_cluster_model
from repro.arch.params import ArchParams
from repro.bitstream.config import FabricConfig
from repro.bitstream.raw import RawBitstream
from repro.cad.flow import FlowResult
from repro.cad.pack import PackedDesign
from repro.cad.place import Placement
from repro.cad.route import RoutingResult
from repro.arch.rrg import RoutingGraph
from repro.errors import DevirtualizationError, VbsError
from repro.utils.bitarray import BitArray, BitReader, BitWriter
from repro.vbs.devirt import DecodeMemo
from repro.vbs.extract import extract_components
from repro.vbs.format import (
    CHANNEL_BITS,
    CLUSTER_BITS,
    CODEC_TAG_BITS,
    COMPACT_BITS,
    DIM_BITS,
    LUT_BITS,
    MAGIC,
    MAGIC_BITS,
    VERSION,
    VERSION_BITS,
    ClusterRecord,
    VbsLayout,
)

Pair = Tuple[int, int]


@dataclass
class EncodeStats:
    """Bookkeeping of one vbsgen run."""

    clusters_listed: int = 0
    clusters_raw: int = 0
    pairs_total: int = 0
    orders_tried: int = 0
    offline_decode_work: int = 0
    decode_reuse_hits: int = 0
    fallback_reasons: Dict[Tuple[int, int], str] = field(default_factory=dict)
    codec_counts: Dict[str, int] = field(default_factory=dict)


class VirtualBitstream:
    """An encoded task: Table I payload plus the container prelude."""

    def __init__(
        self,
        layout: VbsLayout,
        records: List[ClusterRecord],
        stats: Optional[EncodeStats] = None,
    ):
        self.layout = layout
        self.records = records
        self.stats = stats or EncodeStats()
        for rec in records:
            rec.validate(layout)

    # -- size accounting -------------------------------------------------------

    @property
    def size_bits(self) -> int:
        """Table I payload size — the quantity plotted in Figures 4 and 5."""
        return self.layout.header_bits + sum(
            rec.size_bits(self.layout) for rec in self.records
        )

    @property
    def container_bits(self) -> int:
        from repro.vbs.format import PRELUDE_BITS

        return PRELUDE_BITS + self.size_bits

    def raw_equivalent_bits(self) -> int:
        """Size of the raw bitstream of the same task (the BS of Figure 4)."""
        return RawBitstream.size_for(
            self.layout.params, self.layout.width, self.layout.height
        )

    def compression_ratio(self) -> float:
        """VBS size as a fraction of raw size (paper reports ~0.41 at c=1)."""
        return self.size_bits / self.raw_equivalent_bits()

    def codec_tags(self) -> Dict[str, int]:
        """Record count per codec name (registry introspection)."""
        counts: Dict[str, int] = {}
        for rec in self.records:
            name = rec.codec_name(self.layout)
            counts[name] = counts.get(name, 0) + 1
        return counts

    # -- serialization ------------------------------------------------------------

    def to_bits(self) -> BitArray:
        """Assemble the container binary (record bodies via the registry)."""
        from repro.vbs.codecs import codec_by_name

        lay = self.layout
        w = BitWriter()
        w.write(MAGIC, MAGIC_BITS)
        w.write(VERSION, VERSION_BITS)
        w.write(lay.cluster_size, CLUSTER_BITS)
        w.write(lay.params.channel_width, CHANNEL_BITS)
        w.write(lay.params.lut_size, LUT_BITS)
        w.write(1 if lay.compact_logic else 0, COMPACT_BITS)
        w.write(lay.width, DIM_BITS)
        w.write(lay.height, DIM_BITS)

        w.write(lay.width - 1, lay.dim_bits)
        w.write(lay.height - 1, lay.dim_bits)
        w.write(len(self.records), lay.count_bits)
        for rec in self.records:
            codec = codec_by_name(rec.codec_name(lay))
            w.write(rec.pos[0], lay.pos_bits)
            w.write(rec.pos[1], lay.pos_bits)
            w.write(codec.tag, CODEC_TAG_BITS)
            codec.encode_record(w, rec, lay)
        return w.finish()

    @classmethod
    def from_bits(
        cls, bits: BitArray, params: Optional[ArchParams] = None
    ) -> "VirtualBitstream":
        """Parse a container binary back into records."""
        from repro.vbs.codecs import codec_by_tag

        r = BitReader(bits)
        if r.read(MAGIC_BITS) != MAGIC:
            raise VbsError("bad magic: not a Virtual Bit-Stream container")
        version = r.read(VERSION_BITS)
        if version != VERSION:
            raise VbsError(
                f"unsupported VBS container version {version} "
                f"(this build reads version {VERSION}; version 1 predates "
                f"the per-record codec registry — re-encode the task)"
            )
        cluster_size = r.read(CLUSTER_BITS)
        channel_width = r.read(CHANNEL_BITS)
        lut_size = r.read(LUT_BITS)
        compact = bool(r.read(COMPACT_BITS))
        width = r.read(DIM_BITS)
        height = r.read(DIM_BITS)
        if params is None:
            params = ArchParams(channel_width=channel_width, lut_size=lut_size)
        elif (
            params.channel_width != channel_width
            or params.lut_size != lut_size
        ):
            raise VbsError(
                "architecture parameters do not match the VBS prelude"
            )
        lay = VbsLayout(params, cluster_size, width, height,
                        compact_logic=compact)

        if r.read(lay.dim_bits) != width - 1:
            raise VbsError("payload width disagrees with prelude")
        if r.read(lay.dim_bits) != height - 1:
            raise VbsError("payload height disagrees with prelude")
        count = r.read(lay.count_bits)
        records: List[ClusterRecord] = []
        for _ in range(count):
            cx = r.read(lay.pos_bits)
            cy = r.read(lay.pos_bits)
            codec = codec_by_tag(r.read(CODEC_TAG_BITS))
            records.append(codec.decode_record(r, (cx, cy), lay))
        return cls(lay, records)

    def __repr__(self) -> str:
        return (
            f"VirtualBitstream({self.layout.width}x{self.layout.height} task, "
            f"c={self.layout.cluster_size}, {len(self.records)} clusters, "
            f"{self.size_bits} bits = {self.compression_ratio():.1%} of raw)"
        )


# -- encoding -------------------------------------------------------------------


def _cluster_logic(
    layout: VbsLayout, config: FabricConfig, cx: int, cy: int
) -> BitArray:
    """The c^2 * NLB logic field of one cluster (raster, zeros when absent)."""
    c = layout.cluster_size
    nlb = layout.params.nlb
    out = BitArray(layout.logic_bits_per_cluster)
    for j in range(c):
        for i in range(c):
            x, y = cx * c + i, cy * c + j
            logic = config.logic.get((x, y))
            if logic is not None:
                out.overwrite((j * c + i) * nlb, logic)
    return out


def _cluster_raw_frames(
    layout: VbsLayout, config: FabricConfig, cx: int, cy: int
) -> BitArray:
    """The c^2 * Nraw raw-fallback field (frames in raster order)."""
    c = layout.cluster_size
    nraw = layout.params.nraw
    out = BitArray(layout.raw_bits_per_cluster)
    for j in range(c):
        for i in range(c):
            x, y = cx * c + i, cy * c + j
            if config.region.contains(x, y):
                out.overwrite((j * c + i) * nraw, config.macro_frame(x, y))
    return out


@dataclass
class _ClusterOutcome:
    """One pipeline work item's result, merged into EncodeStats in order."""

    record: ClusterRecord
    pairs_total: int = 0
    orders_tried: int = 0
    offline_decode_work: int = 0
    reuse_hits: int = 0
    fallback_reason: Optional[str] = None


def encode_design(
    design: PackedDesign,
    placement: Placement,
    routing: RoutingResult,
    rrg: RoutingGraph,
    config: FabricConfig,
    cluster_size: int = 1,
    max_orders: int = 12,
    order_seed: int = 0,
    compact_logic: bool = False,
    codecs: "str | Sequence[str] | None" = None,
    workers: Optional[int] = None,
) -> VirtualBitstream:
    """Run vbsgen over a routed design at the given coding granularity.

    ``compact_logic`` enables the future-work coding of Section V (logic
    data only for macros that carry any); the default is the strict
    Table I layout used in the paper's figures.

    ``codecs`` opts into the cost-driven codec picker: ``"auto"`` lets it
    choose the smallest registered coding per cluster, an explicit name
    sequence restricts the choice.  The raw coding is always available as
    the guaranteed fallback — a cluster with no decodable order is coded
    raw even when ``"raw"`` is not in the selection (Section III-B's
    correctness guarantee), and a raw-only selection codes every cluster
    raw.  ``workers`` > 1 drives the per-cluster work items through a
    thread pool; records come back in raster order and the emitted
    container is byte-identical to a serial run.
    """
    from repro.vbs.codecs import codec_by_name, pick_codec, resolve_codecs
    from repro.vbs.order import candidate_orders

    fabric = placement.fabric
    params = fabric.params
    layout = VbsLayout(params, cluster_size, fabric.width, fabric.height,
                       compact_logic=compact_logic)
    model = get_cluster_model(params, cluster_size)
    components = extract_components(design, placement, routing, rrg, layout)
    allowed = resolve_codecs(codecs)
    memo = DecodeMemo()

    def encode_one(pos: Tuple[int, int]) -> Optional[_ClusterOutcome]:
        cx, cy = pos
        comps = components.get((cx, cy), [])
        logic = _cluster_logic(layout, config, cx, cy)
        if not comps and logic.count() == 0:
            return None  # empty cluster: omitted from the macro list
        pairs: List[Pair] = [p for comp in comps for p in comp.pairs()]
        outcome = _ClusterOutcome(record=None, pairs_total=len(pairs))

        record: Optional[ClusterRecord] = None
        if len(pairs) <= layout.max_routes:
            valid = set(layout.valid_members(cx, cy))
            for order in candidate_orders(
                pairs, model, max_orders=max_orders, seed=order_seed
            ):
                outcome.orders_tried += 1
                try:
                    result, reused = memo.decode(model, order, valid)
                except DevirtualizationError:
                    continue
                if reused:
                    outcome.reuse_hits += 1
                else:
                    outcome.offline_decode_work += result.work
                record = ClusterRecord(
                    (cx, cy),
                    raw=False,
                    logic=logic,
                    pairs=list(order),
                    orders_tried=outcome.orders_tried,
                )
                break
            else:
                outcome.fallback_reason = "no decodable order"
        else:
            outcome.fallback_reason = (
                f"{len(pairs)} routes exceed the count field"
            )

        if record is not None and allowed is not None:
            smart = [c for c in allowed if not c.codes_raw]
            if not smart:
                record = None  # raw-only selection: code every cluster raw
            else:
                best = pick_codec(record, layout, smart)
                record.codec = best.name
                # Raw competes on size too, but its record size is a layout
                # constant — only materialize the frames when it wins.
                if (
                    any(c.codes_raw for c in allowed)
                    and layout.raw_record_bits < record.size_bits(layout)
                ):
                    record = None
        if record is None:
            record = ClusterRecord(
                (cx, cy),
                raw=True,
                raw_frames=_cluster_raw_frames(layout, config, cx, cy),
                codec="raw",
            )
        outcome.record = record
        return outcome

    cgw, cgh = layout.cluster_grid
    positions = [(cx, cy) for cy in range(cgh) for cx in range(cgw)]
    if workers is not None and workers > 1:
        from concurrent.futures import ThreadPoolExecutor

        with ThreadPoolExecutor(max_workers=workers) as pool:
            outcomes = list(pool.map(encode_one, positions))
    else:
        outcomes = [encode_one(pos) for pos in positions]

    # Deterministic merge in raster order.
    stats = EncodeStats()
    records: List[ClusterRecord] = []
    for outcome in outcomes:
        if outcome is None:
            continue
        rec = outcome.record
        stats.clusters_listed += 1
        stats.pairs_total += outcome.pairs_total
        stats.orders_tried += outcome.orders_tried
        stats.offline_decode_work += outcome.offline_decode_work
        stats.decode_reuse_hits += outcome.reuse_hits
        if outcome.fallback_reason is not None:
            stats.fallback_reasons[rec.pos] = outcome.fallback_reason
        if rec.raw:
            stats.clusters_raw += 1
        name = rec.codec_name(layout)
        stats.codec_counts[name] = stats.codec_counts.get(name, 0) + 1
        # Fail fast on a codec that cannot carry its record.
        codec_by_name(name)
        records.append(rec)

    return VirtualBitstream(layout, records, stats)


def encode_flow(
    flow: FlowResult,
    config: FabricConfig,
    cluster_size: int = 1,
    **kwargs,
) -> VirtualBitstream:
    """Convenience wrapper over :func:`encode_design` for a FlowResult."""
    return encode_design(
        flow.design,
        flow.placement,
        flow.routing,
        flow.rrg,
        config,
        cluster_size=cluster_size,
        **kwargs,
    )
