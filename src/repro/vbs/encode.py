"""vbsgen: the Virtual Bit-Stream generation backend (Section III-B).

``encode_design`` consumes the outputs of the CAD flow (packed design,
placement, routing, and the expanded junction-level configuration) and
produces a :class:`VirtualBitstream`:

* connection lists are extracted per cluster (``repro.vbs.extract``);
* every cluster's list is replayed through the *online* de-virtualization
  router — the offline/online feedback loop of the paper — re-ordering on
  failure (``repro.vbs.order``);
* clusters whose lists cannot be decoded in any tried order, or whose route
  count exceeds the count field, fall back to raw coding, "which can induce
  lesser compression gains but guarantees that the hardware task will be
  handled correctly in all cases";
* empty clusters are omitted entirely (the macro list of Table I carries
  positions, so the decoder zero-fills unlisted fabric).

The encoder is a *batched pipeline*: each non-empty cluster is an
independent work item (logic extraction, order search, record encoding,
codec selection) driven either serially or through a
``concurrent.futures`` worker pool (``workers=``), with output record
ordering deterministic (raster) either way.  Identical cluster decodes
are replayed from a shared :class:`~repro.vbs.devirt.DecodeMemo` instead
of re-running the router.

Record bodies are written and parsed by the pluggable codec registry
(``repro.vbs.codecs``); ``codecs="auto"`` (or an explicit name list)
enables the cost-driven per-cluster codec picker, while the default keeps
the paper's strict Table I behavior (connection list + raw fallback,
or the Section V compact-logic coding when ``compact_logic=True``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.arch.macro import get_cluster_model
from repro.arch.params import ArchParams
from repro.bitstream.config import FabricConfig
from repro.bitstream.raw import RawBitstream
from repro.cad.flow import FlowResult
from repro.cad.pack import PackedDesign
from repro.cad.place import Placement
from repro.cad.route import RoutingResult
from repro.arch.rrg import RoutingGraph
from repro.errors import DevirtualizationError, VbsError
from repro.utils.bitarray import BitArray, BitReader, BitWriter
from repro.vbs.devirt import DecodeMemo
from repro.vbs.extract import extract_components
from repro.vbs.format import (
    CHANNEL_BITS,
    CLUSTER_BITS,
    CODEC_TAG_BITS,
    COMPACT_BITS,
    DICT_COUNT_BITS,
    DIM_BITS,
    LUT_BITS,
    MAGIC,
    MAGIC_BITS,
    MAX_V2_TAG,
    SUPPORTED_VERSIONS,
    VERSION_BITS,
    ClusterRecord,
    CodecState,
    VbsLayout,
)

Pair = Tuple[int, int]


@dataclass
class EncodeStats:
    """Bookkeeping of one vbsgen run."""

    clusters_listed: int = 0
    clusters_raw: int = 0
    pairs_total: int = 0
    orders_tried: int = 0
    offline_decode_work: int = 0
    decode_reuse_hits: int = 0
    fallback_reasons: Dict[Tuple[int, int], str] = field(default_factory=dict)
    codec_counts: Dict[str, int] = field(default_factory=dict)


class VirtualBitstream:
    """An encoded task: Table I payload plus the container prelude."""

    def __init__(
        self,
        layout: VbsLayout,
        records: List[ClusterRecord],
        stats: Optional[EncodeStats] = None,
    ):
        self.layout = layout
        self.records = records
        self.stats = stats or EncodeStats()
        #: Container version this object was parsed from (``from_bits``),
        #: or None for freshly encoded streams (which serialize at
        #: ``wire_version``).
        self.source_version: Optional[int] = None
        for rec in records:
            rec.validate(layout)

    # -- size accounting -------------------------------------------------------

    @property
    def wire_version(self) -> int:
        """The container version ``to_bits()`` emits by default.

        VERSION 3 exactly when the stream needs a VERSION 3 feature (a
        dictionary section, or any record coded with a tag above
        ``MAX_V2_TAG``); plain VERSION 2 otherwise, so containers using
        only the legacy codec set stay readable by older builds.
        """
        from repro.vbs.codecs import codec_by_name
        from repro.vbs.format import VERSION

        if self.layout.dict_table:
            return VERSION
        for rec in self.records:
            if codec_by_name(rec.codec_name(self.layout)).tag > MAX_V2_TAG:
                return VERSION
        return 2

    @property
    def size_bits(self) -> int:
        """Table I payload size — the quantity plotted in Figures 4 and 5.

        The walk threads the raster-order :class:`CodecState` so stateful
        records cost exactly what ``to_bits`` emits, and it includes the
        VERSION 3 dictionary section (the shared table is real payload —
        the compression figures must pay for it).
        """
        from repro.vbs.codecs import codec_by_name

        state = CodecState()
        total = self.layout.header_bits + self.layout.dict_section_bits
        for rec in self.records:
            codec = codec_by_name(rec.codec_name(self.layout))
            total += codec.record_bits(rec, self.layout, state=state)
            state.observe(rec)
        return total

    @property
    def container_bits(self) -> int:
        """Exact bit length of ``to_bits()`` at the default version.

        A VERSION 3 container always carries the dictionary-section count
        field; when the table is empty those ``DICT_COUNT_BITS`` are pure
        container framing (like the prelude) and excluded from the
        Table I ``size_bits`` accounting.
        """
        from repro.vbs.format import PRELUDE_BITS

        extra = (
            DICT_COUNT_BITS
            if self.wire_version >= 3 and not self.layout.dict_table
            else 0
        )
        return PRELUDE_BITS + self.size_bits + extra

    def raw_equivalent_bits(self) -> int:
        """Size of the raw bitstream of the same task (the BS of Figure 4)."""
        return RawBitstream.size_for(
            self.layout.params, self.layout.width, self.layout.height
        )

    def compression_ratio(self) -> float:
        """VBS size as a fraction of raw size (paper reports ~0.41 at c=1)."""
        return self.size_bits / self.raw_equivalent_bits()

    def codec_tags(self) -> Dict[str, int]:
        """Record count per codec name (registry introspection)."""
        counts: Dict[str, int] = {}
        for rec in self.records:
            name = rec.codec_name(self.layout)
            counts[name] = counts.get(name, 0) + 1
        return counts

    # -- serialization ------------------------------------------------------------

    def _require_version(self, version: int, needed: int) -> None:
        """Reject a ``to_bits(version=...)`` the stream cannot satisfy."""
        if version not in SUPPORTED_VERSIONS:
            raise VbsError(
                f"cannot write container version {version}; supported: "
                f"{SUPPORTED_VERSIONS}"
            )
        if version == 1:
            lay = self.layout
            for rec in self.records:
                name = rec.codec_name(lay)
                legacy = "raw" if rec.raw else (
                    "compact" if lay.compact_logic else "list"
                )
                if name != legacy:
                    raise VbsError(
                        f"record at {rec.pos} uses codec {name!r}; a "
                        f"VERSION 1 container can only carry the implicit "
                        f"{legacy!r} coding"
                    )
        elif version < needed:
            raise VbsError(
                f"stream needs container version {needed} "
                f"(dictionary section or codec tags above {MAX_V2_TAG}); "
                f"cannot write version {version}"
            )

    def to_bits(self, version: Optional[int] = None) -> BitArray:
        """Assemble the container binary (record bodies via the registry).

        ``version`` defaults to :attr:`wire_version` (the minimal version
        able to carry the stream, never 1); pass 1 or 2 explicitly to
        write a legacy container, which fails loudly when the stream uses
        features that version cannot express.  VERSION 1 containers have
        no codec tags, so their byte size is smaller than
        ``container_bits`` (which reports tagged Table I accounting).
        """
        from repro.vbs.codecs import codec_by_name

        needed = self.wire_version  # one O(records) walk per serialization
        if version is None:
            version = needed
        self._require_version(version, needed)
        lay = self.layout
        w = BitWriter()
        w.write(MAGIC, MAGIC_BITS)
        w.write(version, VERSION_BITS)
        w.write(lay.cluster_size, CLUSTER_BITS)
        w.write(lay.params.channel_width, CHANNEL_BITS)
        w.write(lay.params.lut_size, LUT_BITS)
        w.write(1 if lay.compact_logic else 0, COMPACT_BITS)
        w.write(lay.width, DIM_BITS)
        w.write(lay.height, DIM_BITS)

        if version >= 3:
            w.write(len(lay.dict_table), DICT_COUNT_BITS)
            for pattern in lay.dict_table:
                w.write_bits(pattern)

        w.write(lay.width - 1, lay.dim_bits)
        w.write(lay.height - 1, lay.dim_bits)
        w.write(len(self.records), lay.count_bits)
        state = CodecState()
        for rec in self.records:
            codec = codec_by_name(rec.codec_name(lay))
            w.write(rec.pos[0], lay.pos_bits)
            w.write(rec.pos[1], lay.pos_bits)
            if version >= 2:
                w.write(codec.tag, CODEC_TAG_BITS)
            codec.encode_record(w, rec, lay, state=state)
            state.observe(rec)
        return w.finish()

    @classmethod
    def from_bits(
        cls, bits: BitArray, params: Optional[ArchParams] = None
    ) -> "VirtualBitstream":
        """Parse a container binary back into records.

        Reads every supported version: the legacy tag-less VERSION 1
        layout, the tagged VERSION 2 layout, and VERSION 3 with its
        dictionary section and stateful-codec record walk.  Unknown
        versions (a future format this build predates) are rejected at
        the version field, before any payload is touched.
        """
        from repro.vbs.codecs import codec_by_name, codec_by_tag

        r = BitReader(bits)
        if r.read(MAGIC_BITS) != MAGIC:
            raise VbsError("bad magic: not a Virtual Bit-Stream container")
        version = r.read(VERSION_BITS)
        if version not in SUPPORTED_VERSIONS:
            raise VbsError(
                f"unsupported VBS container version {version} (this build "
                f"reads versions {SUPPORTED_VERSIONS}) — refusing to parse "
                f"a future format"
            )
        cluster_size = r.read(CLUSTER_BITS)
        channel_width = r.read(CHANNEL_BITS)
        lut_size = r.read(LUT_BITS)
        compact = bool(r.read(COMPACT_BITS))
        width = r.read(DIM_BITS)
        height = r.read(DIM_BITS)
        if params is None:
            params = ArchParams(channel_width=channel_width, lut_size=lut_size)
        elif (
            params.channel_width != channel_width
            or params.lut_size != lut_size
        ):
            raise VbsError(
                "architecture parameters do not match the VBS prelude"
            )
        lay = VbsLayout(params, cluster_size, width, height,
                        compact_logic=compact)

        if version >= 3:
            n_patterns = r.read(DICT_COUNT_BITS)
            patterns = tuple(
                r.read_bits(lay.logic_bits_per_cluster)
                for _ in range(n_patterns)
            )
            if patterns:
                lay = lay.with_dict_table(patterns)

        if r.read(lay.dim_bits) != width - 1:
            raise VbsError("payload width disagrees with prelude")
        if r.read(lay.dim_bits) != height - 1:
            raise VbsError("payload height disagrees with prelude")
        count = r.read(lay.count_bits)
        records: List[ClusterRecord] = []
        state = CodecState()
        for _ in range(count):
            cx = r.read(lay.pos_bits)
            cy = r.read(lay.pos_bits)
            if version == 1:
                # Tag-less layout: the route-count field doubles as the
                # codec selector (raw sentinel vs. the layout-wide
                # compact flag), so peek it and rewind.
                mark = r.position
                rc = r.read(lay.route_count_bits)
                r.seek(mark)
                name = "raw" if rc == lay.raw_sentinel else (
                    "compact" if lay.compact_logic else "list"
                )
                codec = codec_by_name(name)
            else:
                codec = codec_by_tag(r.read(CODEC_TAG_BITS))
                if version == 2 and codec.tag > MAX_V2_TAG:
                    raise VbsError(
                        f"codec {codec.name!r} (tag {codec.tag}) requires "
                        f"a VERSION 3 container, found VERSION 2"
                    )
            rec = codec.decode_record(r, (cx, cy), lay, state=state)
            state.observe(rec)
            records.append(rec)
        vbs = cls(lay, records)
        vbs.source_version = version
        return vbs

    def __repr__(self) -> str:
        return (
            f"VirtualBitstream({self.layout.width}x{self.layout.height} task, "
            f"c={self.layout.cluster_size}, {len(self.records)} clusters, "
            f"{self.size_bits} bits = {self.compression_ratio():.1%} of raw)"
        )


# -- encoding -------------------------------------------------------------------


def _cluster_logic(
    layout: VbsLayout, config: FabricConfig, cx: int, cy: int
) -> BitArray:
    """The c^2 * NLB logic field of one cluster (raster, zeros when absent)."""
    c = layout.cluster_size
    nlb = layout.params.nlb
    out = BitArray(layout.logic_bits_per_cluster)
    for j in range(c):
        for i in range(c):
            x, y = cx * c + i, cy * c + j
            logic = config.logic.get((x, y))
            if logic is not None:
                out.overwrite((j * c + i) * nlb, logic)
    return out


def _cluster_raw_frames(
    layout: VbsLayout, config: FabricConfig, cx: int, cy: int
) -> BitArray:
    """The c^2 * Nraw raw-fallback field (frames in raster order)."""
    c = layout.cluster_size
    nraw = layout.params.nraw
    out = BitArray(layout.raw_bits_per_cluster)
    for j in range(c):
        for i in range(c):
            x, y = cx * c + i, cy * c + j
            if config.region.contains(x, y):
                out.overwrite((j * c + i) * nraw, config.macro_frame(x, y))
    return out


@dataclass(frozen=True)
class ClusterWorkItem:
    """One picklable encode-pipeline work item (a non-empty cluster).

    Everything a worker needs that is *specific to this cluster*: the
    shared per-run inputs (layout, codec selection, order-search knobs)
    travel once per worker in an :class:`EncodeContext`.  Raw frames are
    deliberately absent — workers never see the full ``FabricConfig``;
    the merge step materializes frames in the parent for outcomes that
    need them, so process workers ship kilobytes, not the whole design.
    """

    pos: Tuple[int, int]
    pairs: Tuple[Pair, ...]
    logic: BitArray
    valid_members: Tuple[Tuple[int, int], ...]


@dataclass(frozen=True)
class EncodeContext:
    """Per-run shared inputs of the encode pipeline (picklable).

    Sent once per worker process (pool initializer) instead of once per
    item; the thread/serial drivers pass it by reference.  Codecs travel
    by *name* — registry objects are process-local.
    """

    layout: VbsLayout
    #: The caller's ``codecs`` selection verbatim (``"auto"``, a name
    #: tuple, or None) — resolved against the registry worker-side.
    codec_names: "str | Tuple[str, ...] | None"
    max_orders: int
    order_seed: int


@dataclass
class _ClusterOutcome:
    """One pipeline work item's result, merged into EncodeStats in order.

    ``record`` is None when the cluster must be raw-coded — the parent
    owns the configuration and materializes the frames during the merge
    (workers cannot, and raw frames would bloat process-pool results).
    """

    pos: Tuple[int, int]
    record: Optional[ClusterRecord]
    pairs_total: int = 0
    orders_tried: int = 0
    offline_decode_work: int = 0
    reuse_hits: int = 0
    fallback_reason: Optional[str] = None
    #: Raw frames requested for the sequential family pass: set when the
    #: codec selection contains container-level codecs (dictionary /
    #: stateful), so the provisional record may still lose to the
    #: guaranteed raw coding once the family costs are known.  The parent
    #: fills the frames in during the raster-order merge.
    needs_raw_frames: bool = False


def _encode_cluster(
    item: ClusterWorkItem,
    ctx: EncodeContext,
    memo: Optional[DecodeMemo],
) -> _ClusterOutcome:
    """Encode one cluster work item (order search + codec selection).

    Pure with respect to the run: identical items and context produce
    identical outcomes regardless of which backend executes them, which
    is what makes the emitted container byte-identical across serial,
    thread-pool and process-pool drivers.
    """
    from repro.vbs.codecs import pick_codec, resolve_codecs
    from repro.vbs.order import candidate_orders

    layout = ctx.layout
    allowed = resolve_codecs(ctx.codec_names)
    model = get_cluster_model(layout.params, layout.cluster_size)
    cx, cy = item.pos
    pairs = list(item.pairs)
    outcome = _ClusterOutcome(
        pos=item.pos, record=None, pairs_total=len(pairs)
    )

    record: Optional[ClusterRecord] = None
    if len(pairs) <= layout.max_routes:
        valid = set(item.valid_members)
        for order in candidate_orders(
            pairs, model, max_orders=ctx.max_orders, seed=ctx.order_seed
        ):
            outcome.orders_tried += 1
            try:
                if memo is not None:
                    result, reused = memo.decode(model, order, valid)
                else:
                    from repro.vbs.devirt import ClusterDecoder

                    result = ClusterDecoder(
                        model, valid_macros=valid
                    ).decode(list(order))
                    reused = False
            except DevirtualizationError:
                continue
            if reused:
                outcome.reuse_hits += 1
            else:
                outcome.offline_decode_work += result.work
            record = ClusterRecord(
                (cx, cy),
                raw=False,
                logic=item.logic,
                pairs=list(order),
                orders_tried=outcome.orders_tried,
            )
            break
        else:
            outcome.fallback_reason = "no decodable order"
    else:
        outcome.fallback_reason = (
            f"{len(pairs)} routes exceed the count field"
        )

    if record is not None and allowed is not None:
        stateless = [
            c for c in allowed
            if not c.codes_raw and not c.stateful and not c.needs_dict
        ]
        family = [
            c for c in allowed
            if not c.codes_raw and (c.stateful or c.needs_dict)
        ]
        if stateless:
            best = pick_codec(record, layout, stateless)
            record.codec = best.name
            # Raw competes on size too, but its record size is a layout
            # constant — only materialize the frames when it wins.
            if (
                any(c.codes_raw for c in allowed)
                and layout.raw_record_bits < record.size_bits(layout)
            ):
                if family:
                    # A family codec may still undercut raw (a delta
                    # residue on a dense-but-repetitive cluster, a
                    # dictionary reference) — keep the smart record
                    # and let the sequential pass settle raw-vs-rest
                    # with the frames held back.
                    outcome.needs_raw_frames = True
                else:
                    record = None
        elif family:
            # Only container-level codecs selected: keep the record
            # provisional (codec unassigned) and hold the raw frames
            # back for the sequential family pass, which owns the
            # raw-versus-family decision.
            outcome.needs_raw_frames = True
        else:
            record = None  # raw-only selection: code every cluster raw
    outcome.record = record
    return outcome


# -- process-pool worker plumbing -----------------------------------------------
#
# ``fork``-safe and ``spawn``-safe: the context is shipped through the
# pool initializer exactly once per worker, and each worker keeps its own
# DecodeMemo for the lifetime of the pool (cross-item reuse without
# cross-process coordination; determinism is unaffected — the router is
# deterministic, the memo only skips replays).

_WORKER_CTX: Optional[EncodeContext] = None
_WORKER_MEMO: Optional[DecodeMemo] = None


def _process_worker_init(ctx: EncodeContext) -> None:
    global _WORKER_CTX, _WORKER_MEMO
    _WORKER_CTX = ctx
    _WORKER_MEMO = DecodeMemo()


def _process_encode_cluster(item: ClusterWorkItem) -> _ClusterOutcome:
    assert _WORKER_CTX is not None, "pool initializer did not run"
    return _encode_cluster(item, _WORKER_CTX, _WORKER_MEMO)


def _build_dict_table(
    records: List[ClusterRecord],
    layout: VbsLayout,
    min_occurrences: int = 2,
) -> Tuple[BitArray, ...]:
    """Candidate shared logic-pattern table for the dictionary codec.

    Patterns are collected from smart records in first-use raster order
    and kept only while their summed per-record savings (current coding
    vs. a dictionary reference) exceed the pattern's own table storage.
    Dropping a pattern shrinks the reference field, so the selection is
    re-evaluated until it is stable; the final table must also beat the
    ``DICT_COUNT_BITS`` section framing or it is dropped entirely.  The
    estimate is validated by the caller, which keeps the table only when
    the fully state-threaded container actually gets smaller.
    """
    from repro.vbs.codecs import codec_by_name

    dict_codec = codec_by_name("dict")
    occurrences: Dict[BitArray, List[ClusterRecord]] = {}
    order: List[BitArray] = []
    for rec in records:
        if rec.raw:
            continue
        if rec.logic not in occurrences:
            occurrences[rec.logic] = []
            order.append(rec.logic)
        occurrences[rec.logic].append(rec)
    candidates = [p for p in order if len(occurrences[p]) >= min_occurrences]
    max_patterns = (1 << DICT_COUNT_BITS) - 1
    if len(candidates) > max_patterns:
        candidates = sorted(
            candidates, key=lambda p: -len(occurrences[p])
        )[:max_patterns]
        candidates.sort(key=order.index)
    while candidates:
        trial = layout.with_dict_table(tuple(candidates))
        keep: List[BitArray] = []
        total_gain = 0
        for pattern in candidates:
            gain = -layout.logic_bits_per_cluster
            for rec in occurrences[pattern]:
                current = rec.size_bits(layout)
                as_dict = dict_codec.record_bits(rec, trial)
                if as_dict < current:
                    gain += current - as_dict
            if gain > 0:
                keep.append(pattern)
                total_gain += gain
        if len(keep) == len(candidates):
            if total_gain <= DICT_COUNT_BITS:
                return ()
            return tuple(keep)
        candidates = keep
    return ()


def _family_selection(
    records: List[ClusterRecord],
    layout: VbsLayout,
    family: List["object"],
    raw_allowed: bool,
    raw_frames: Dict[Tuple[int, int], BitArray],
) -> Tuple[int, List[str]]:
    """Sequential (raster-order) codec assignment over the whole container.

    For every smart record the candidates are its current per-cluster
    pick (absent for provisional records), every applicable family codec
    costed against the threaded :class:`CodecState`, and — for
    provisional records whose frames were held back — the guaranteed raw
    coding.  Returns the total payload bits (header + dictionary section
    + records) and the chosen codec name per record; nothing is mutated,
    so the caller can compare selections under different layouts.
    """
    from repro.vbs.codecs import codec_by_name

    raw_codec = codec_by_name("raw")
    state = CodecState()
    total = layout.header_bits + layout.dict_section_bits
    assigns: List[str] = []
    for rec in records:
        if rec.raw:
            total += rec.size_bits(layout)
            assigns.append("raw")
            continue
        candidates = []
        if rec.codec is not None:
            current = codec_by_name(rec.codec)
            candidates.append(
                (current.record_bits(rec, layout, state=state),
                 current.tag, current)
            )
        for codec in family:
            if codec.encodable(rec, layout):
                candidates.append(
                    (codec.record_bits(rec, layout, state=state),
                     codec.tag, codec)
                )
        frames = raw_frames.get(rec.pos)
        if frames is not None and (raw_allowed or not candidates):
            candidates.append(
                (layout.raw_record_bits, raw_codec.tag, raw_codec)
            )
        if not candidates:
            raise VbsError(
                f"no selected codec can encode the record at {rec.pos}"
            )
        bits, _tag, chosen = min(candidates, key=lambda c: (c[0], c[1]))
        total += bits
        assigns.append(chosen.name)
        if not chosen.codes_raw:
            # Only records that stay smart advance the delta reference —
            # mirror of the decoder's state walk.
            state.observe(rec)
    return total, assigns


def _apply_family_assignment(
    records: List[ClusterRecord],
    assigns: List[str],
    raw_frames: Dict[Tuple[int, int], BitArray],
) -> List[ClusterRecord]:
    out: List[ClusterRecord] = []
    for rec, name in zip(records, assigns):
        if not rec.raw and name == "raw":
            rec = ClusterRecord(
                rec.pos, raw=True, raw_frames=raw_frames[rec.pos],
                codec="raw",
            )
        elif not rec.raw:
            rec.codec = name
        out.append(rec)
    return out


def _family_pass(
    records: List[ClusterRecord],
    layout: VbsLayout,
    allowed: List["object"],
    raw_frames: Dict[Tuple[int, int], BitArray],
) -> Tuple[VbsLayout, List[ClusterRecord]]:
    """The sequential second pass of the two-pass family encode.

    Runs the container-level selection without a dictionary table, and —
    when the dictionary codec is allowed — again with the candidate
    table; keeps the table only when the full container (section
    included) gets strictly smaller, which guarantees the family never
    emits a larger stream than the per-cluster pick alone.
    """
    family = [
        c for c in allowed
        if not c.codes_raw and (c.stateful or c.needs_dict)
    ]
    if not family:
        return layout, records
    raw_allowed = any(c.codes_raw for c in allowed)
    best_total, best_assigns = _family_selection(
        records, layout, family, raw_allowed, raw_frames
    )
    best_layout = layout
    if any(c.needs_dict for c in family):
        table = _build_dict_table(records, layout)
        if table:
            trial = layout.with_dict_table(table)
            total, assigns = _family_selection(
                records, trial, family, raw_allowed, raw_frames
            )
            if total < best_total:
                best_total, best_assigns, best_layout = total, assigns, trial
    return best_layout, _apply_family_assignment(
        records, best_assigns, raw_frames
    )


def encode_design(
    design: PackedDesign,
    placement: Placement,
    routing: RoutingResult,
    rrg: RoutingGraph,
    config: FabricConfig,
    cluster_size: int = 1,
    max_orders: int = 12,
    order_seed: int = 0,
    compact_logic: bool = False,
    codecs: "str | Sequence[str] | None" = None,
    workers: Optional[int] = None,
    backend: str = "thread",
    memo: Optional[DecodeMemo] = None,
) -> VirtualBitstream:
    """Run vbsgen over a routed design at the given coding granularity.

    ``compact_logic`` enables the future-work coding of Section V (logic
    data only for macros that carry any); the default is the strict
    Table I layout used in the paper's figures.

    ``codecs`` opts into the cost-driven codec picker: ``"auto"`` lets it
    choose the smallest registered coding per cluster, an explicit name
    sequence restricts the choice.  The raw coding is always available as
    the guaranteed fallback — a cluster with no decodable order is coded
    raw even when ``"raw"`` is not in the selection (Section III-B's
    correctness guarantee), and a raw-only selection codes every cluster
    raw.  ``workers`` > 1 drives the per-cluster work items through a
    worker pool; records come back in raster order and the emitted
    container is byte-identical to a serial run.

    ``backend`` selects the pool flavor: ``"thread"`` (default; shares
    the run's :class:`DecodeMemo`, GIL-bound for the pure-Python router)
    or ``"process"``, which ships picklable :class:`ClusterWorkItem`\\ s
    to a ``ProcessPoolExecutor`` — real parallelism for the router-heavy
    order search.  Process workers keep a private per-process memo; the
    caller-supplied ``memo`` is not consulted at all on that path
    (memos do not cross process boundaries).

    ``memo`` shares a :class:`DecodeMemo` *across* encode invocations —
    a cluster-size or codec sweep over the same design replays identical
    (order, mask) decodes from the first run instead of re-routing.
    Ignored as a work-item cache under ``backend="process"`` (memos do
    not cross process boundaries); pass it for serial/thread sweeps.

    Container-level codecs (the dictionary codec's shared pattern table,
    the stateful delta codec) are assigned by a *sequential second pass*
    over the merged raster-order records — they cannot be chosen inside
    the parallel pipeline because their cost depends on the whole
    container.  The pass only ever switches a record to a strictly
    smaller coding and only keeps a dictionary table that pays for its
    own section, so ``codecs="auto"`` output is monotone: never larger
    than the stateless codec set alone, and still byte-identical across
    worker counts.  Containers that end up using a VERSION 3 feature
    serialize as VERSION 3; all others remain VERSION 2.
    """
    from repro.vbs.codecs import codec_by_name, resolve_codecs

    if backend not in ("thread", "process"):
        raise VbsError(
            f"unknown encode backend {backend!r}; use 'thread' or 'process'"
        )

    fabric = placement.fabric
    params = fabric.params
    layout = VbsLayout(params, cluster_size, fabric.width, fabric.height,
                       compact_logic=compact_logic)
    components = extract_components(design, placement, routing, rrg, layout)
    if codecs is None or isinstance(codecs, str):
        codec_selection: "str | Tuple[str, ...] | None" = codecs
    else:
        codec_selection = tuple(codecs)
    allowed = resolve_codecs(codec_selection)
    ctx = EncodeContext(
        layout=layout,
        codec_names=codec_selection,
        max_orders=max_orders,
        order_seed=order_seed,
    )
    if memo is None:
        memo = DecodeMemo()

    # Work-item construction is serial and cheap (bit extraction); the
    # expensive order-search/router replay is what the pool runs.
    cgw, cgh = layout.cluster_grid
    items: List[ClusterWorkItem] = []
    for cy in range(cgh):
        for cx in range(cgw):
            comps = components.get((cx, cy), [])
            logic = _cluster_logic(layout, config, cx, cy)
            if not comps and logic.count() == 0:
                continue  # empty cluster: omitted from the macro list
            items.append(ClusterWorkItem(
                pos=(cx, cy),
                pairs=tuple(p for comp in comps for p in comp.pairs()),
                logic=logic,
                valid_members=tuple(layout.valid_members(cx, cy)),
            ))

    if workers is not None and workers > 1 and backend == "process":
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=_process_worker_init,
            initargs=(ctx,),
        ) as pool:
            outcomes = list(pool.map(_process_encode_cluster, items))
    elif workers is not None and workers > 1:
        from concurrent.futures import ThreadPoolExecutor

        with ThreadPoolExecutor(max_workers=workers) as pool:
            outcomes = list(
                pool.map(lambda item: _encode_cluster(item, ctx, memo), items)
            )
    else:
        outcomes = [_encode_cluster(item, ctx, memo) for item in items]

    # Deterministic merge in raster order; raw frames are materialized
    # here (the parent owns the configuration) for outcomes that fell
    # back to raw coding or held frames back for the family pass.
    stats = EncodeStats()
    records: List[ClusterRecord] = []
    raw_frames: Dict[Tuple[int, int], BitArray] = {}
    for outcome in outcomes:
        cx, cy = outcome.pos
        rec = outcome.record
        if rec is None:
            rec = ClusterRecord(
                (cx, cy),
                raw=True,
                raw_frames=_cluster_raw_frames(layout, config, cx, cy),
                codec="raw",
            )
        stats.clusters_listed += 1
        stats.pairs_total += outcome.pairs_total
        stats.orders_tried += outcome.orders_tried
        stats.offline_decode_work += outcome.offline_decode_work
        stats.decode_reuse_hits += outcome.reuse_hits
        if outcome.fallback_reason is not None:
            stats.fallback_reasons[rec.pos] = outcome.fallback_reason
        if outcome.needs_raw_frames:
            raw_frames[rec.pos] = _cluster_raw_frames(layout, config, cx, cy)
        records.append(rec)

    # Sequential second pass: container-level codecs (dictionary table,
    # delta state) are assigned over the merged raster-order record list.
    if allowed is not None:
        layout, records = _family_pass(records, layout, allowed, raw_frames)

    for rec in records:
        if rec.raw:
            stats.clusters_raw += 1
        name = rec.codec_name(layout)
        stats.codec_counts[name] = stats.codec_counts.get(name, 0) + 1
        # Fail fast on a codec that cannot carry its record.
        codec_by_name(name)

    return VirtualBitstream(layout, records, stats)


def encode_flow(
    flow: FlowResult,
    config: FabricConfig,
    cluster_size: int = 1,
    **kwargs,
) -> VirtualBitstream:
    """Convenience wrapper over :func:`encode_design` for a FlowResult."""
    return encode_design(
        flow.design,
        flow.placement,
        flow.routing,
        flow.rrg,
        config,
        cluster_size=cluster_size,
        **kwargs,
    )
