"""vbsgen: the Virtual Bit-Stream generation backend (Section III-B).

``encode_design`` consumes the outputs of the CAD flow (packed design,
placement, routing, and the expanded junction-level configuration) and
produces a :class:`VirtualBitstream`:

* connection lists are extracted per cluster (``repro.vbs.extract``);
* every cluster's list is replayed through the *online* de-virtualization
  router — the offline/online feedback loop of the paper — re-ordering on
  failure (``repro.vbs.order``);
* clusters whose lists cannot be decoded in any tried order, or whose route
  count exceeds the count field, fall back to raw coding, "which can induce
  lesser compression gains but guarantees that the hardware task will be
  handled correctly in all cases";
* empty clusters are omitted entirely (the macro list of Table I carries
  positions, so the decoder zero-fills unlisted fabric).

The encoder is a *batched pipeline*: each non-empty cluster is an
independent work item (logic extraction, order search, record encoding,
codec selection) driven either serially or through a
``concurrent.futures`` worker pool (``workers=``), with output record
ordering deterministic (raster) either way.  Identical cluster decodes
are replayed from a shared :class:`~repro.vbs.devirt.DecodeMemo` instead
of re-running the router.

Record bodies are written and parsed by the pluggable codec registry
(``repro.vbs.codecs``); ``codecs="auto"`` (or an explicit name list)
enables the cost-driven per-cluster codec picker, while the default keeps
the paper's strict Table I behavior (connection list + raw fallback,
or the Section V compact-logic coding when ``compact_logic=True``).
"""

from __future__ import annotations

import uuid
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.arch.macro import get_cluster_model
from repro.arch.params import ArchParams
from repro.bitstream.config import FabricConfig
from repro.bitstream.raw import RawBitstream
from repro.cad.flow import FlowResult
from repro.cad.pack import PackedDesign
from repro.cad.place import Placement
from repro.cad.route import RoutingResult
from repro.arch.rrg import RoutingGraph
from repro.errors import DevirtualizationError, VbsError
from repro.utils.bitarray import BitArray, BitReader, BitWriter
from repro.vbs.devirt import DecodeMemo
from repro.vbs.extract import extract_components
from repro.vbs.format import (
    CHANNEL_BITS,
    CLUSTER_BITS,
    CODEC_TAG_BITS,
    COMPACT_BITS,
    DICT_COUNT_BITS,
    DIM_BITS,
    LUT_BITS,
    MAGIC,
    MAGIC_BITS,
    MAX_V2_TAG,
    MAX_V3_TAG,
    SHARED_DICT_ID_BITS,
    SUPPORTED_VERSIONS,
    VERSION_BITS,
    WIDE_CODEC_TAG_BITS,
    ClusterRecord,
    CodecState,
    VbsLayout,
    tag_bits_for_version,
)

Pair = Tuple[int, int]

#: How a VERSION 4 shared-dictionary id resolves to its pattern table: a
#: mapping, a callable ``id -> patterns``, or None (no shared tables).
SharedDictResolver = (
    "Mapping[int, Sequence[BitArray]] | "
    "Callable[[int], Optional[Sequence[BitArray]]] | None"
)


def _resolve_shared_dict(
    shared_dicts: "SharedDictResolver", dict_id: int
) -> Tuple[BitArray, ...]:
    """Resolve a shared-dictionary reference or fail loudly."""
    from repro.errors import SharedDictUnresolvedError

    if shared_dicts is None:
        raise SharedDictUnresolvedError(
            dict_id,
            f"container references shared dictionary id {dict_id} but no "
            f"shared_dicts resolver was provided",
        )
    if callable(shared_dicts):
        table = shared_dicts(dict_id)
    else:
        table = shared_dicts.get(dict_id)
    if table is None:
        raise SharedDictUnresolvedError(
            dict_id,
            f"shared dictionary id {dict_id} is unknown to the resolver",
        )
    return tuple(table)


@dataclass
class EncodeStats:
    """Bookkeeping of one vbsgen run."""

    clusters_listed: int = 0
    clusters_raw: int = 0
    pairs_total: int = 0
    orders_tried: int = 0
    offline_decode_work: int = 0
    decode_reuse_hits: int = 0
    fallback_reasons: Dict[Tuple[int, int], str] = field(default_factory=dict)
    codec_counts: Dict[str, int] = field(default_factory=dict)
    #: Codec cost evaluations performed by the sequential family pass
    #: (every ``record_bits`` trial, across every trial layout), and the
    #: evaluations a warm :class:`~repro.vbs.predictor.CodecPredictor`
    #: shortlist avoided.  ``family_trials`` alone measures the
    #: exhaustive pass; their sum is what it would have cost.
    family_trials: int = 0
    family_trials_skipped: int = 0


class VirtualBitstream:
    """An encoded task: Table I payload plus the container prelude."""

    def __init__(
        self,
        layout: VbsLayout,
        records: List[ClusterRecord],
        stats: Optional[EncodeStats] = None,
    ):
        self.layout = layout
        self.records = records
        self.stats = stats or EncodeStats()
        #: Container version this object was parsed from (``from_bits``),
        #: or None for freshly encoded streams (which serialize at
        #: ``wire_version``).
        self.source_version: Optional[int] = None
        for rec in records:
            rec.validate(layout)

    # -- size accounting -------------------------------------------------------

    @property
    def wire_version(self) -> int:
        """The container version ``to_bits()`` emits by default.

        The lowest version able to carry the stream: VERSION 4 when it
        uses the wide tag field or a shared dictionary reference,
        VERSION 3 when it needs an embedded dictionary section or any
        record coded with a tag above ``MAX_V2_TAG``, plain VERSION 2
        otherwise — so containers using only older codec sets stay
        readable by older builds.
        """
        from repro.vbs.codecs import codec_by_name

        if (
            self.layout.shared_dict_id is not None
            or self.layout.tag_bits == WIDE_CODEC_TAG_BITS
        ):
            return 4
        if self.layout.dict_table:
            return 3
        for rec in self.records:
            if codec_by_name(rec.codec_name(self.layout)).tag > MAX_V2_TAG:
                return 3
        return 2

    @property
    def size_bits(self) -> int:
        """Table I payload size — the quantity plotted in Figures 4 and 5.

        The walk threads the raster-order :class:`CodecState` so stateful
        records cost exactly what ``to_bits`` emits, and it includes the
        VERSION 3 dictionary section (the shared table is real payload —
        the compression figures must pay for it).
        """
        from repro.vbs.codecs import codec_by_name

        state = CodecState()
        total = self.layout.header_bits + self.layout.dict_section_bits
        for rec in self.records:
            codec = codec_by_name(rec.codec_name(self.layout))
            total += codec.record_bits(rec, self.layout, state=state)
            state.observe(rec)
        return total

    @property
    def container_bits(self) -> int:
        """Exact bit length of ``to_bits()`` at the default version.

        Fields that carry no payload information are container framing,
        excluded from the Table I ``size_bits`` accounting like the
        prelude: a VERSION 3/4 container's empty-table count field, and
        a VERSION 4 container's all-zero shared-dictionary id.  A
        *non-zero* id is real payload (``layout.dict_section_bits``) —
        it is what buys the container its external table.
        """
        from repro.vbs.format import PRELUDE_BITS

        version = self.wire_version
        extra = 0
        if version >= 4:
            if self.layout.shared_dict_id is None:
                extra += SHARED_DICT_ID_BITS
                if not self.layout.dict_table:
                    extra += DICT_COUNT_BITS
        elif version == 3 and not self.layout.dict_table:
            extra += DICT_COUNT_BITS
        return PRELUDE_BITS + self.size_bits + extra

    def raw_equivalent_bits(self) -> int:
        """Size of the raw bitstream of the same task (the BS of Figure 4)."""
        return RawBitstream.size_for(
            self.layout.params, self.layout.width, self.layout.height
        )

    def compression_ratio(self) -> float:
        """VBS size as a fraction of raw size (paper reports ~0.41 at c=1)."""
        return self.size_bits / self.raw_equivalent_bits()

    def codec_tags(self) -> Dict[str, int]:
        """Record count per codec name (registry introspection)."""
        counts: Dict[str, int] = {}
        for rec in self.records:
            name = rec.codec_name(self.layout)
            counts[name] = counts.get(name, 0) + 1
        return counts

    # -- serialization ------------------------------------------------------------

    def _require_version(self, version: int, needed: int) -> None:
        """Reject a ``to_bits(version=...)`` the stream cannot satisfy."""
        if version not in SUPPORTED_VERSIONS:
            raise VbsError(
                f"cannot write container version {version}; supported: "
                f"{SUPPORTED_VERSIONS}"
            )
        if version == 1:
            lay = self.layout
            for rec in self.records:
                name = rec.codec_name(lay)
                legacy = "raw" if rec.raw else (
                    "compact" if lay.compact_logic else "list"
                )
                if name != legacy:
                    raise VbsError(
                        f"record at {rec.pos} uses codec {name!r}; a "
                        f"VERSION 1 container can only carry the implicit "
                        f"{legacy!r} coding"
                    )
        elif version < needed:
            reason = (
                f"wide codec tags above {MAX_V3_TAG} or a shared "
                f"dictionary reference"
                if needed >= 4
                else f"dictionary section or codec tags above {MAX_V2_TAG}"
            )
            raise VbsError(
                f"stream needs container version {needed} ({reason}); "
                f"cannot write version {version}"
            )

    def to_bits(self, version: Optional[int] = None) -> BitArray:
        """Assemble the container binary (record bodies via the registry).

        ``version`` defaults to :attr:`wire_version` (the minimal version
        able to carry the stream, never 1); pass 1 or 2 explicitly to
        write a legacy container, which fails loudly when the stream uses
        features that version cannot express.  VERSION 1 containers have
        no codec tags, so their byte size is smaller than
        ``container_bits`` (which reports tagged Table I accounting);
        conversely any stream may be *up-converted* by passing a higher
        supported version — e.g. ``version=4`` writes a legacy stream
        with wide tags, costing 2 extra bits per record.
        """
        from repro.vbs.codecs import codec_by_name

        needed = self.wire_version  # one O(records) walk per serialization
        if version is None:
            version = needed
        self._require_version(version, needed)
        lay = self.layout
        tag_bits = tag_bits_for_version(version)
        w = BitWriter()
        w.write(MAGIC, MAGIC_BITS)
        w.write(version, VERSION_BITS)
        w.write(lay.cluster_size, CLUSTER_BITS)
        w.write(lay.params.channel_width, CHANNEL_BITS)
        w.write(lay.params.lut_size, LUT_BITS)
        w.write(1 if lay.compact_logic else 0, COMPACT_BITS)
        w.write(lay.width, DIM_BITS)
        w.write(lay.height, DIM_BITS)

        if version >= 4:
            w.write(lay.shared_dict_id or 0, SHARED_DICT_ID_BITS)
            if lay.shared_dict_id is None:
                # Embedded dictionary section, exactly as VERSION 3; a
                # shared table writes only the id above.
                w.write(len(lay.dict_table), DICT_COUNT_BITS)
                for pattern in lay.dict_table:
                    w.write_bits(pattern)
        elif version == 3:
            w.write(len(lay.dict_table), DICT_COUNT_BITS)
            for pattern in lay.dict_table:
                w.write_bits(pattern)

        w.write(lay.width - 1, lay.dim_bits)
        w.write(lay.height - 1, lay.dim_bits)
        w.write(len(self.records), lay.count_bits)
        state = CodecState()
        for rec in self.records:
            codec = codec_by_name(rec.codec_name(lay))
            w.write(rec.pos[0], lay.pos_bits)
            w.write(rec.pos[1], lay.pos_bits)
            if version >= 2:
                w.write(codec.tag, tag_bits)
            codec.encode_record(w, rec, lay, state=state)
            state.observe(rec)
        return w.finish()

    @classmethod
    def from_bits(
        cls,
        bits: BitArray,
        params: Optional[ArchParams] = None,
        shared_dicts: "SharedDictResolver" = None,
    ) -> "VirtualBitstream":
        """Parse a container binary back into records.

        Reads every supported version: the legacy tag-less VERSION 1
        layout, the tagged VERSION 2 layout, VERSION 3 with its
        dictionary section and stateful-codec record walk, and VERSION 4
        with wide codec tags and the shared-dictionary reference.
        Unknown versions (a future format this build predates) are
        rejected at the version field, before any payload is touched.

        ``shared_dicts`` resolves a VERSION 4 shared-dictionary id to its
        pattern table — a mapping or a callable ``id -> patterns`` (the
        run-time controller passes its task-table store).  A container
        that references a shared table fails loudly when no resolver is
        given or the id is unknown: decoding without the table would
        fabricate logic fields.
        """
        from repro.vbs.codecs import codec_by_name, codec_by_tag

        from repro.vbs.format import read_prelude

        r = BitReader(bits)
        prelude = read_prelude(r)
        version = prelude.version
        if version not in SUPPORTED_VERSIONS:
            raise VbsError(
                f"unsupported VBS container version {version} (this build "
                f"reads versions {SUPPORTED_VERSIONS}) — refusing to parse "
                f"a future format"
            )
        width, height = prelude.width, prelude.height
        if params is None:
            params = ArchParams(channel_width=prelude.channel_width,
                                lut_size=prelude.lut_size)
        elif (
            params.channel_width != prelude.channel_width
            or params.lut_size != prelude.lut_size
        ):
            raise VbsError(
                "architecture parameters do not match the VBS prelude"
            )
        lay = VbsLayout(params, prelude.cluster_size, width, height,
                        compact_logic=prelude.compact_logic)

        if version >= 4:
            shared_id = r.read(SHARED_DICT_ID_BITS)
            if shared_id:
                lay = lay.with_shared_dict(
                    shared_id, _resolve_shared_dict(shared_dicts, shared_id)
                )
            else:
                n_patterns = r.read(DICT_COUNT_BITS)
                patterns = tuple(
                    r.read_bits(lay.logic_bits_per_cluster)
                    for _ in range(n_patterns)
                )
                lay = lay.with_wide_tags()
                if patterns:
                    lay = lay.with_dict_table(patterns)
        elif version == 3:
            n_patterns = r.read(DICT_COUNT_BITS)
            patterns = tuple(
                r.read_bits(lay.logic_bits_per_cluster)
                for _ in range(n_patterns)
            )
            if patterns:
                lay = lay.with_dict_table(patterns)

        if r.read(lay.dim_bits) != width - 1:
            raise VbsError("payload width disagrees with prelude")
        if r.read(lay.dim_bits) != height - 1:
            raise VbsError("payload height disagrees with prelude")
        count = r.read(lay.count_bits)
        records: List[ClusterRecord] = []
        state = CodecState()
        for _ in range(count):
            cx = r.read(lay.pos_bits)
            cy = r.read(lay.pos_bits)
            if version == 1:
                # Tag-less layout: the route-count field doubles as the
                # codec selector (raw sentinel vs. the layout-wide
                # compact flag), so peek it and rewind.
                mark = r.position
                rc = r.read(lay.route_count_bits)
                r.seek(mark)
                name = "raw" if rc == lay.raw_sentinel else (
                    "compact" if lay.compact_logic else "list"
                )
                codec = codec_by_name(name)
            else:
                codec = codec_by_tag(r.read(tag_bits_for_version(version)))
                if version == 2 and codec.tag > MAX_V2_TAG:
                    raise VbsError(
                        f"codec {codec.name!r} (tag {codec.tag}) requires "
                        f"a VERSION 3 container, found VERSION 2"
                    )
                if version == 3 and codec.tag > MAX_V3_TAG:
                    # Unreachable through a well-formed 3-bit field, but
                    # mirrors the VERSION 2 gate for defense in depth.
                    raise VbsError(
                        f"codec {codec.name!r} (tag {codec.tag}) requires "
                        f"a VERSION 4 container, found VERSION 3"
                    )
            rec = codec.decode_record(r, (cx, cy), lay, state=state)
            state.observe(rec)
            records.append(rec)
        vbs = cls(lay, records)
        vbs.source_version = version
        return vbs

    def __repr__(self) -> str:
        return (
            f"VirtualBitstream({self.layout.width}x{self.layout.height} task, "
            f"c={self.layout.cluster_size}, {len(self.records)} clusters, "
            f"{self.size_bits} bits = {self.compression_ratio():.1%} of raw)"
        )


# -- encoding -------------------------------------------------------------------


def _cluster_logic(
    layout: VbsLayout, config: FabricConfig, cx: int, cy: int
) -> BitArray:
    """The c^2 * NLB logic field of one cluster (raster, zeros when absent)."""
    c = layout.cluster_size
    nlb = layout.params.nlb
    out = BitArray(layout.logic_bits_per_cluster)
    for j in range(c):
        for i in range(c):
            x, y = cx * c + i, cy * c + j
            logic = config.logic.get((x, y))
            if logic is not None:
                out.overwrite((j * c + i) * nlb, logic)
    return out


def _cluster_raw_frames(
    layout: VbsLayout, config: FabricConfig, cx: int, cy: int
) -> BitArray:
    """The c^2 * Nraw raw-fallback field (frames in raster order)."""
    c = layout.cluster_size
    nraw = layout.params.nraw
    out = BitArray(layout.raw_bits_per_cluster)
    for j in range(c):
        for i in range(c):
            x, y = cx * c + i, cy * c + j
            if config.region.contains(x, y):
                out.overwrite((j * c + i) * nraw, config.macro_frame(x, y))
    return out


@dataclass(frozen=True)
class ClusterWorkItem:
    """One picklable encode-pipeline work item (a non-empty cluster).

    Everything a worker needs that is *specific to this cluster*: the
    shared per-run inputs (layout, codec selection, order-search knobs)
    travel once per worker in an :class:`EncodeContext`.  Raw frames are
    deliberately absent — workers never see the full ``FabricConfig``;
    the merge step materializes frames in the parent for outcomes that
    need them, so process workers ship kilobytes, not the whole design.
    """

    pos: Tuple[int, int]
    pairs: Tuple[Pair, ...]
    logic: BitArray
    valid_members: Tuple[Tuple[int, int], ...]


@dataclass(frozen=True)
class EncodeContext:
    """Per-run shared inputs of the encode pipeline (picklable).

    Sent once per worker process (pool initializer) instead of once per
    item; the thread/serial drivers pass it by reference.  Codecs travel
    by *name* — registry objects are process-local.
    """

    layout: VbsLayout
    #: The caller's ``codecs`` selection verbatim (``"auto"``, a name
    #: tuple, or None) — resolved against the registry worker-side.
    codec_names: "str | Tuple[str, ...] | None"
    max_orders: int
    order_seed: int
    #: Persisted-memo warm start for process workers: each worker loads
    #: this :meth:`DecodeMemo.save` file into its private memo at pool
    #: init (memos do not cross process boundaries, but a file does).
    #: ``None`` keeps the historical cold per-worker memo.
    memo_path: Optional[str] = None
    #: Merge-on-exit scratch directory: when set, each process worker
    #: dumps the memo entries it discovered beyond its warm start into
    #: ``merge_dir/worker-<run_id>-<pid>.pkl`` at interpreter exit, and
    #: the parent folds the per-worker deltas into the shared memo after
    #: the pool shuts down.  ``None`` (thread/serial runs, or no
    #: ``memo_path``) disables the dump.
    merge_dir: Optional[str] = None
    #: Identity of this pool run, stamped into delta file names and
    #: payloads.  The parent merges only deltas carrying its own stamp,
    #: so stale files left in a scratch directory by a crashed or killed
    #: run are never folded into a later run's memo.
    run_id: Optional[str] = None


@dataclass
class _ClusterOutcome:
    """One pipeline work item's result, merged into EncodeStats in order.

    ``record`` is None when the cluster must be raw-coded — the parent
    owns the configuration and materializes the frames during the merge
    (workers cannot, and raw frames would bloat process-pool results).
    """

    pos: Tuple[int, int]
    record: Optional[ClusterRecord]
    pairs_total: int = 0
    orders_tried: int = 0
    offline_decode_work: int = 0
    reuse_hits: int = 0
    fallback_reason: Optional[str] = None
    #: Raw frames requested for the sequential family pass: set when the
    #: codec selection contains container-level codecs (dictionary /
    #: stateful), so the provisional record may still lose to the
    #: guaranteed raw coding once the family costs are known.  The parent
    #: fills the frames in during the raster-order merge.
    needs_raw_frames: bool = False


def _encode_cluster(
    item: ClusterWorkItem,
    ctx: EncodeContext,
    memo: Optional[DecodeMemo],
) -> _ClusterOutcome:
    """Encode one cluster work item (order search + codec selection).

    Pure with respect to the run: identical items and context produce
    identical outcomes regardless of which backend executes them, which
    is what makes the emitted container byte-identical across serial,
    thread-pool and process-pool drivers.
    """
    from repro.vbs.codecs import pick_codec, resolve_codecs
    from repro.vbs.order import candidate_orders

    layout = ctx.layout
    allowed = resolve_codecs(ctx.codec_names)
    model = get_cluster_model(layout.params, layout.cluster_size)
    cx, cy = item.pos
    pairs = list(item.pairs)
    outcome = _ClusterOutcome(
        pos=item.pos, record=None, pairs_total=len(pairs)
    )

    record: Optional[ClusterRecord] = None
    if len(pairs) <= layout.max_routes:
        valid = set(item.valid_members)
        for order in candidate_orders(
            pairs, model, max_orders=ctx.max_orders, seed=ctx.order_seed
        ):
            outcome.orders_tried += 1
            try:
                if memo is not None:
                    result, reused = memo.decode(model, order, valid)
                else:
                    from repro.vbs.devirt import ClusterDecoder

                    result = ClusterDecoder(
                        model, valid_macros=valid
                    ).decode(list(order))
                    reused = False
            except DevirtualizationError:
                continue
            if reused:
                outcome.reuse_hits += 1
            else:
                outcome.offline_decode_work += result.work
            record = ClusterRecord(
                (cx, cy),
                raw=False,
                logic=item.logic,
                pairs=list(order),
                orders_tried=outcome.orders_tried,
            )
            break
        else:
            outcome.fallback_reason = "no decodable order"
    else:
        outcome.fallback_reason = (
            f"{len(pairs)} routes exceed the count field"
        )

    if record is not None and allowed is not None:
        stateless = [
            c for c in allowed
            if not c.codes_raw and not c.container_scoped
        ]
        # Container-scoped codecs — including raw-coding ones like
        # ``raw-delta`` — are the sequential family pass's business; here
        # they only decide whether the frames must be held back.
        family = [c for c in allowed if c.container_scoped]
        if stateless:
            best = pick_codec(record, layout, stateless)
            record.codec = best.name
            # Raw competes on size too, but its record size is a layout
            # constant — only materialize the frames when it wins.
            if (
                any(c.codes_raw for c in allowed)
                and layout.raw_record_bits < record.size_bits(layout)
            ):
                if family:
                    # A family codec may still undercut raw (a delta
                    # residue on a dense-but-repetitive cluster, a
                    # dictionary reference) — keep the smart record
                    # and let the sequential pass settle raw-vs-rest
                    # with the frames held back.
                    outcome.needs_raw_frames = True
                else:
                    record = None
        elif family:
            # Only container-level codecs selected: keep the record
            # provisional (codec unassigned) and hold the raw frames
            # back for the sequential family pass, which owns the
            # raw-versus-family decision.
            outcome.needs_raw_frames = True
        else:
            record = None  # raw-only selection: code every cluster raw
    outcome.record = record
    return outcome


# -- process-pool worker plumbing -----------------------------------------------
#
# ``fork``-safe and ``spawn``-safe: the context is shipped through the
# pool initializer exactly once per worker, and each worker keeps its own
# DecodeMemo for the lifetime of the pool (cross-item reuse without
# cross-process coordination; determinism is unaffected — the router is
# deterministic, the memo only skips replays).

_WORKER_CTX: Optional[EncodeContext] = None
_WORKER_MEMO: Optional[DecodeMemo] = None


def _process_worker_init(ctx: EncodeContext) -> None:
    global _WORKER_CTX, _WORKER_MEMO
    _WORKER_CTX = ctx
    _WORKER_MEMO = DecodeMemo()
    if ctx.memo_path is not None:
        # Warm start from the persisted memo (tolerant load: a corrupt
        # or missing file just leaves the worker memo cold).
        _WORKER_MEMO.load(ctx.memo_path)
    if ctx.merge_dir is not None:
        # Merge-on-exit: dump everything discovered beyond the warm
        # start into a per-worker delta file when the worker exits.
        # Pool workers leave through ``os._exit`` (multiprocessing's
        # ``_bootstrap``), which skips ``atexit`` — the hook that does
        # run there is ``multiprocessing.util``'s finalizer registry,
        # on both fork and spawn.  The parent folds the deltas into the
        # persisted memo after the pool shuts down.
        import os as _os
        from multiprocessing import util as _mp_util
        from pathlib import Path as _Path

        memo = _WORKER_MEMO
        baseline = memo.snapshot_keys()
        tag = f"{ctx.run_id}-" if ctx.run_id is not None else ""
        delta_path = _Path(ctx.merge_dir) / f"worker-{tag}{_os.getpid()}.pkl"
        _mp_util.Finalize(
            None, memo.dump_delta,
            args=(delta_path, baseline, ctx.run_id),
            exitpriority=0,
        )


def _merge_worker_deltas(
    memo: DecodeMemo, merge_dir: str, run_id: Optional[str]
) -> int:
    """Fold this run's per-worker delta files into ``memo``; returns count.

    Every ``worker-*.pkl`` in the scratch directory is considered (sorted
    for determinism; overlapping keys carry identical deterministic
    results, first file wins), but only deltas whose payload carries this
    run's ``run_id`` stamp restore anything — a stale delta left behind
    by a crashed or killed pool run, which shares the name pattern but
    not the stamp, is ignored rather than folded into a foreign memo.
    """
    from pathlib import Path

    merged = 0
    for delta in sorted(Path(merge_dir).glob("worker-*.pkl")):
        merged += memo.load(delta, run_id=run_id)
    return merged


#: Work-item chunks handed to each process worker are sized so every
#: worker sees about this many chunks: small enough to balance uneven
#: cluster costs across the pool, large enough to amortize the per-chunk
#: pickle/submission overhead (chunksize 1 paid it per cluster).
PROCESS_CHUNKS_PER_WORKER = 4


def _chunk_work_items(
    items: Sequence[ClusterWorkItem], workers: int
) -> List[Tuple[ClusterWorkItem, ...]]:
    """Contiguous raster-order chunks for the process backend.

    One executor submission per chunk instead of one per cluster; the
    flattened chunk sequence is exactly ``items``, so the merge stays
    deterministic.
    """
    if not items:
        return []
    chunksize = max(
        1, -(-len(items) // (workers * PROCESS_CHUNKS_PER_WORKER))
    )
    return [
        tuple(items[i:i + chunksize])
        for i in range(0, len(items), chunksize)
    ]


def _process_encode_chunk(
    chunk: Tuple[ClusterWorkItem, ...],
) -> List[_ClusterOutcome]:
    assert _WORKER_CTX is not None, "pool initializer did not run"
    return [_encode_cluster(item, _WORKER_CTX, _WORKER_MEMO) for item in chunk]


def _dict_table_candidates(
    per_container: "List[Tuple[List[ClusterRecord], VbsLayout]]",
    trial_for,
    min_occurrences: int = 2,
) -> Tuple[Tuple[BitArray, ...], int]:
    """Iterative keep-if-it-pays pattern selection — the shared core of
    the embedded (per-container) and external (task-scope) dictionary
    builders.

    Patterns are collected from smart records in first-use raster order
    across every container and kept only while their summed per-record
    savings (current coding vs. a dictionary reference, both costed
    under ``trial_for(layout, table)``) exceed the pattern's own
    storage.  Dropping a pattern shrinks the reference field, so the
    selection is re-evaluated until stable.  Returns the stable table
    and its estimated net gain; the callers validate against the fully
    state-threaded selection and keep the table only when the container
    (or the whole task) actually gets smaller.
    """
    from repro.vbs.codecs import codec_by_name

    dict_codec = codec_by_name("dict")
    occurrences: Dict[BitArray, List[Tuple[int, ClusterRecord]]] = {}
    order: List[BitArray] = []
    for idx, (records, _layout) in enumerate(per_container):
        for rec in records:
            if rec.raw:
                continue
            if rec.logic not in occurrences:
                occurrences[rec.logic] = []
                order.append(rec.logic)
            occurrences[rec.logic].append((idx, rec))
    candidates = [p for p in order if len(occurrences[p]) >= min_occurrences]
    max_patterns = (1 << DICT_COUNT_BITS) - 1
    if len(candidates) > max_patterns:
        candidates = sorted(
            candidates, key=lambda p: -len(occurrences[p])
        )[:max_patterns]
        candidates.sort(key=order.index)
    while candidates:
        trials = [
            trial_for(layout, tuple(candidates))
            for _records, layout in per_container
        ]
        keep: List[BitArray] = []
        total_gain = 0
        for pattern in candidates:
            gain = -len(pattern)  # the pattern's own table storage
            for idx, rec in occurrences[pattern]:
                current = rec.size_bits(trials[idx])
                as_dict = dict_codec.record_bits(rec, trials[idx])
                if as_dict < current:
                    gain += current - as_dict
            if gain > 0:
                keep.append(pattern)
                total_gain += gain
        if len(keep) == len(candidates):
            return tuple(keep), total_gain
        candidates = keep
    return (), 0


def _build_dict_table(
    records: List[ClusterRecord],
    layout: VbsLayout,
    min_occurrences: int = 2,
) -> Tuple[BitArray, ...]:
    """Candidate embedded logic-pattern table for one container.

    On top of the shared selection core, the final table must also beat
    the ``DICT_COUNT_BITS`` section framing or it is dropped entirely.
    """
    table, total_gain = _dict_table_candidates(
        [(records, layout)],
        lambda lay, patterns: lay.with_dict_table(patterns),
        min_occurrences,
    )
    if not table or total_gain <= DICT_COUNT_BITS:
        return ()
    return table


def _family_selection(
    records: List[ClusterRecord],
    layout: VbsLayout,
    family: List["object"],
    raw_allowed: bool,
    raw_frames: Dict[Tuple[int, int], BitArray],
    predictor: "Optional[object]" = None,
    stats: Optional[EncodeStats] = None,
) -> Tuple[int, List[str]]:
    """Sequential (raster-order) codec assignment over the whole container.

    For every smart record the candidates are its current per-cluster
    pick (absent for provisional records; skipped when the trial layout
    cannot carry it), every applicable family codec costed against the
    threaded :class:`CodecState` — each codec at most once, even when
    the current pick is also in the family list — and, for records whose
    frames were held back, the guaranteed raw coding.  Raw records
    compete too: raw-coding family codecs (``raw-delta``) may re-code
    them against the raw-side state.  Returns the total payload bits
    (header + dictionary section + records) and the chosen codec name
    per record; nothing is mutated, so the caller can compare selections
    under different layouts.

    ``predictor`` (a :class:`~repro.vbs.predictor.CodecPredictor`)
    shortlists the costed candidates per record from its recorded
    feature→winner cells instead of trialling the whole family, with the
    verify-and-fallback contract documented in ``repro.vbs.predictor``;
    the record's current pick and the raw fallback always stay costed,
    so the monotone guarantees survive any store content.  ``stats``
    accumulates the trial counters either way.
    """
    from repro.vbs.codecs import codec_by_name

    if predictor is not None:
        from repro.vbs.predictor import cluster_key, pool_entropy_bucket

        pool = pool_entropy_bucket(records)
    raw_codec = codec_by_name("raw")
    state = CodecState()
    total = layout.header_bits + layout.dict_section_bits
    assigns: List[str] = []
    for rec in records:
        frames = raw_frames.get(rec.pos)
        if rec.raw:
            raw_rec: Optional[ClusterRecord] = rec
        elif frames is not None:
            raw_rec = ClusterRecord(
                rec.pos, raw=True, raw_frames=frames, codec="raw"
            )
        else:
            raw_rec = None
        # The applicable set: (codec, record-to-cost) pairs, each codec
        # at most once.
        applicable: List[Tuple["object", ClusterRecord]] = []
        seen = set()
        if rec.raw:
            applicable.append((raw_codec, rec))
            seen.add(raw_codec.name)
            for codec in family:
                if (
                    codec.name not in seen
                    and codec.codes_raw
                    and codec.encodable(rec, layout)
                ):
                    applicable.append((codec, rec))
                    seen.add(codec.name)
        else:
            if rec.codec is not None:
                current = codec_by_name(rec.codec)
                # A trial layout can invalidate the per-cluster pick
                # (e.g. a dictionary pick under a table the trial
                # dropped) — never cost a codec that cannot encode.
                if current.encodable(rec, layout):
                    applicable.append((current, rec))
                    seen.add(current.name)
            for codec in family:
                if codec.name in seen:
                    # Dedupe: the current pick may itself be in the
                    # family list; costing it twice would double-count
                    # nothing today but breaks the trial accounting.
                    continue
                if codec.codes_raw:
                    if (
                        raw_rec is not None
                        and raw_allowed
                        and codec.encodable(raw_rec, layout)
                    ):
                        applicable.append((codec, raw_rec))
                        seen.add(codec.name)
                elif codec.encodable(rec, layout):
                    applicable.append((codec, rec))
                    seen.add(codec.name)
            if raw_rec is not None and raw_codec.name not in seen and (
                raw_allowed or not applicable
            ):
                applicable.append((raw_codec, raw_rec))
        if not applicable:
            raise VbsError(
                f"no selected codec can encode the record at {rec.pos}"
            )

        costs: Dict[str, int] = {}

        def bits_of(entry) -> int:
            codec, target = entry
            if codec.name not in costs:
                costs[codec.name] = codec.record_bits(
                    target, layout, state=state
                )
                if stats is not None:
                    stats.family_trials += 1
            return costs[codec.name]

        def best_of(entries):
            return min(entries, key=lambda e: (bits_of(e), e[0].tag))

        if predictor is None or len(applicable) == 1:
            chosen, target = best_of(applicable)
        else:
            key = cluster_key(
                rec, layout, pool, has_frames=raw_rec is not None
            )
            ranked = predictor.shortlist(key)
            if ranked is None:
                # Cold key: the full trial runs and teaches the store.
                predictor.misses += 1
                chosen, target = best_of(applicable)
            else:
                keep = set(ranked)
                keep.add(raw_codec.name)
                if rec.codec is not None:
                    keep.add(rec.codec)
                short = [e for e in applicable if e[0].name in keep]
                chosen, target = best_of(short)
                fallback = False
                if len(short) < len(applicable):
                    predicted = next(
                        (e for e in short if e[0].name == ranked[0]), None
                    )
                    others = [e for e in short if e is not predicted]
                    if predicted is None:
                        fallback = True
                    elif others:
                        upset = bits_of(predicted) - min(
                            bits_of(e) for e in others
                        )
                        fallback = upset > predictor.margin_bits
                if fallback:
                    # The store's pick lost the shortlist by more than
                    # the margin: distrust the cell, re-run everything.
                    predictor.fallbacks += 1
                    chosen, target = best_of(applicable)
                else:
                    predictor.hits += 1
                    if stats is not None:
                        stats.family_trials_skipped += (
                            len(applicable) - len(short)
                        )
            predictor.record(key, chosen.name)

        total += bits_of((chosen, target))
        assigns.append(chosen.name)
        # Advance the state exactly as the decoder will see this record:
        # smart records extend the logic-side references, records that
        # are (or become) raw extend the raw-side reference.
        state.observe(target if chosen.codes_raw else rec)
    return total, assigns


def _apply_family_assignment(
    records: List[ClusterRecord],
    assigns: List[str],
    raw_frames: Dict[Tuple[int, int], BitArray],
) -> List[ClusterRecord]:
    from repro.vbs.codecs import codec_by_name

    out: List[ClusterRecord] = []
    for rec, name in zip(records, assigns):
        if rec.raw:
            # Raw stays raw; a raw-coding family codec (raw-delta) may
            # re-code it.  Never mutate in place — the caller reuses the
            # merged records across trial plans.
            if rec.codec != name:
                rec = ClusterRecord(
                    rec.pos, raw=True, raw_frames=rec.raw_frames,
                    codec=name,
                )
        elif codec_by_name(name).codes_raw:
            # Demoted to the raw side under whichever raw coding won.
            rec = ClusterRecord(
                rec.pos, raw=True, raw_frames=raw_frames[rec.pos],
                codec=name,
            )
        else:
            rec.codec = name
        out.append(rec)
    return out


def _family_choice(
    records: List[ClusterRecord],
    layout: VbsLayout,
    family: List["object"],
    raw_allowed: bool,
    raw_frames: Dict[Tuple[int, int], BitArray],
    predictor: "Optional[object]" = None,
    stats: Optional[EncodeStats] = None,
) -> Tuple[int, List[str], VbsLayout]:
    """Best (total, assigns, layout) under one tag-width regime.

    Runs the container-level selection without a dictionary table, and —
    when a dictionary codec is usable — again with the candidate table;
    keeps the table only when the full container (section included) gets
    strictly smaller.  Codecs whose tag does not fit the regime's tag
    field are excluded.  Nothing is mutated.
    """
    usable = [
        c for c in family
        if not (c.wide_tag and layout.tag_bits == CODEC_TAG_BITS)
    ]
    best_total, best_assigns = _family_selection(
        records, layout, usable, raw_allowed, raw_frames,
        predictor=predictor, stats=stats,
    )
    best_layout = layout
    if any(c.needs_dict for c in usable):
        table = _build_dict_table(records, layout)
        if table:
            trial = layout.with_dict_table(table)
            total, assigns = _family_selection(
                records, trial, usable, raw_allowed, raw_frames,
                predictor=predictor, stats=stats,
            )
            if total < best_total:
                best_total, best_assigns, best_layout = total, assigns, trial
    return best_total, best_assigns, best_layout


def _family_pass_choice(
    records: List[ClusterRecord],
    layout: VbsLayout,
    allowed: "Optional[List[object]]",
    raw_frames: Dict[Tuple[int, int], BitArray],
    predictor: "Optional[object]" = None,
    stats: Optional[EncodeStats] = None,
) -> Optional[Tuple[int, List[str], VbsLayout]]:
    """The family pass as a pure decision: (total, assigns, layout).

    Evaluates the container-level selection under the narrow (VERSION 3)
    tag regime and — when a wide-tag codec is in the selection — again
    under the VERSION 4 wide regime, where every record's framing costs
    ``WIDE_CODEC_TAG_BITS - CODEC_TAG_BITS`` extra bits but the new
    codecs compete.  The wide regime is kept only when the whole
    container gets strictly smaller, so the family never emits a larger
    stream than the per-cluster pick alone and never upgrades the
    container version without paying for it.  Returns None when the
    selection has no container-scoped codec (nothing to decide).
    """
    if allowed is None:
        return None
    family = [c for c in allowed if c.container_scoped]
    if not family:
        return None
    raw_allowed = any(c.codes_raw for c in allowed)
    best_total, best_assigns, best_layout = _family_choice(
        records, layout, family, raw_allowed, raw_frames,
        predictor=predictor, stats=stats,
    )
    if (
        layout.tag_bits == CODEC_TAG_BITS
        and any(c.wide_tag for c in family)
    ):
        wide_total, wide_assigns, wide_layout = _family_choice(
            records, layout.with_wide_tags(), family, raw_allowed,
            raw_frames, predictor=predictor, stats=stats,
        )
        if wide_total < best_total:
            best_total, best_assigns, best_layout = (
                wide_total, wide_assigns, wide_layout
            )
    return best_total, best_assigns, best_layout


def _family_pass(
    records: List[ClusterRecord],
    layout: VbsLayout,
    allowed: List["object"],
    raw_frames: Dict[Tuple[int, int], BitArray],
    predictor: "Optional[object]" = None,
    stats: Optional[EncodeStats] = None,
) -> Tuple[VbsLayout, List[ClusterRecord]]:
    """The sequential second pass of the two-pass family encode."""
    choice = _family_pass_choice(
        records, layout, allowed, raw_frames,
        predictor=predictor, stats=stats,
    )
    if choice is None:
        return layout, records
    _total, assigns, best_layout = choice
    return best_layout, _apply_family_assignment(
        records, assigns, raw_frames
    )


def encode_design(
    design: PackedDesign,
    placement: Placement,
    routing: RoutingResult,
    rrg: RoutingGraph,
    config: FabricConfig,
    cluster_size: int = 1,
    max_orders: int = 12,
    order_seed: int = 0,
    compact_logic: bool = False,
    codecs: "str | Sequence[str] | None" = None,
    workers: Optional[int] = None,
    backend: str = "thread",
    memo: Optional[DecodeMemo] = None,
    memo_path: "str | None" = None,
    predictor: "Optional[object]" = None,
) -> VirtualBitstream:
    """Run vbsgen over a routed design at the given coding granularity.

    ``compact_logic`` enables the future-work coding of Section V (logic
    data only for macros that carry any); the default is the strict
    Table I layout used in the paper's figures.

    ``codecs`` opts into the cost-driven codec picker: ``"auto"`` lets it
    choose the smallest registered coding per cluster, an explicit name
    sequence restricts the choice.  The raw coding is always available as
    the guaranteed fallback — a cluster with no decodable order is coded
    raw even when ``"raw"`` is not in the selection (Section III-B's
    correctness guarantee), and a raw-only selection codes every cluster
    raw.  ``workers`` > 1 drives the per-cluster work items through a
    worker pool; records come back in raster order and the emitted
    container is byte-identical to a serial run.

    ``backend`` selects the pool flavor: ``"thread"`` (default; shares
    the run's :class:`DecodeMemo`, GIL-bound for the pure-Python router)
    or ``"process"``, which ships picklable :class:`ClusterWorkItem`\\ s
    to a ``ProcessPoolExecutor`` — real parallelism for the router-heavy
    order search.  Process workers keep a private per-process memo; the
    caller-supplied ``memo`` is not consulted for work items on that
    path (live memos do not cross process boundaries), though with
    ``memo_path`` set the worker deltas are folded back into it after
    the pool exits.

    ``memo`` shares a :class:`DecodeMemo` *across* encode invocations —
    a cluster-size or codec sweep over the same design replays identical
    (order, mask) decodes from the first run instead of re-routing.
    Ignored as a work-item cache under ``backend="process"`` (memos do
    not cross process boundaries); pass it for serial/thread sweeps.

    Container-level codecs (the dictionary codec's shared pattern table,
    the stateful delta codecs, the wide-tag VERSION 4 codings) are
    assigned by a *sequential second pass* over the merged raster-order
    records — they cannot be chosen inside the parallel pipeline because
    their cost depends on the whole container.  The pass only ever
    switches a record to a strictly smaller coding, only keeps a
    dictionary table that pays for its own section, and only adopts the
    VERSION 4 wide tag field when the container shrinks despite the +2
    framing bits per record — so ``codecs="auto"`` output is monotone:
    never larger than the stateless codec set alone, and still
    byte-identical across worker counts.  Containers serialize at the
    lowest version able to carry them (2, 3 or 4).

    ``memo_path`` persists the memo across *processes* the way ``memo``
    shares it across invocations: the run warm-starts from the file
    (tolerantly — a missing or corrupt file restores nothing) and saves
    the extended memo back when done.  Process workers mirror the warm
    start into their private per-worker memos through the pool
    initializer and dump what they discovered beyond it into per-worker
    delta files at exit; the parent folds the deltas into the shared
    memo after the pool shuts down, so pool discoveries warm subsequent
    runs exactly like serial/thread ones.  Never changes the emitted
    bytes — the memo only skips deterministic router replays.

    ``predictor`` shares a :class:`~repro.vbs.predictor.CodecPredictor`
    across invocations the way ``memo`` shares decode work: the family
    pass shortlists its per-record codec trials from the store's
    recorded winners (full trial on cold keys, verify-and-fallback on
    warm ones) and files every settled winner back.  A warm store cuts
    the trial count — tracked in ``stats.family_trials`` /
    ``family_trials_skipped`` — and replaying a corpus the store was
    warmed on emits byte-identical containers to the exhaustive pass.
    Consultation is frozen at entry (``begin_session``): wins recorded
    during this encode teach the next one, so a cold store *is* the
    exhaustive pass, bit for bit.
    """
    if predictor is not None:
        predictor.begin_session()
    if memo is None:
        memo = DecodeMemo()
    if memo_path is not None:
        # On the pooled process path the parent memo is not consulted
        # for work items (workers warm-start themselves through the pool
        # initializer), but the parent still loads the file so the
        # post-pool save preserves its entries alongside the merged
        # worker deltas.
        memo.load(memo_path)
    pipeline = _encode_pipeline(
        design, placement, routing, rrg, config,
        cluster_size=cluster_size,
        max_orders=max_orders,
        order_seed=order_seed,
        compact_logic=compact_logic,
        codecs=codecs,
        workers=workers,
        backend=backend,
        memo=memo,
        memo_path=memo_path,
    )
    layout, records = pipeline.layout, pipeline.records
    if pipeline.allowed is not None:
        layout, records = _family_pass(
            records, layout, pipeline.allowed, pipeline.raw_frames,
            predictor=predictor, stats=pipeline.stats,
        )
    if memo_path is not None:
        memo.save(memo_path)
    return _finalize_container(layout, records, pipeline.stats)


@dataclass
class _PipelineResult:
    """The merged, pre-family state of one container's encode pipeline.

    ``records`` carry their per-cluster stateless picks; ``raw_frames``
    holds the frames the parallel pass held back for the sequential
    family selection.  ``allowed`` is the resolved codec selection
    (None = paper-strict legacy behavior, no family pass).
    """

    layout: VbsLayout
    records: List[ClusterRecord]
    stats: EncodeStats
    raw_frames: Dict[Tuple[int, int], BitArray]
    allowed: "Optional[List[object]]"


def _finalize_container(
    layout: VbsLayout,
    records: List[ClusterRecord],
    stats: EncodeStats,
) -> VirtualBitstream:
    """Count the final codec mix and assemble the container object."""
    from repro.vbs.codecs import codec_by_name

    for rec in records:
        if rec.raw:
            stats.clusters_raw += 1
        name = rec.codec_name(layout)
        stats.codec_counts[name] = stats.codec_counts.get(name, 0) + 1
        # Fail fast on a codec that cannot carry its record.
        codec_by_name(name)
    return VirtualBitstream(layout, records, stats)


def _encode_pipeline(
    design: PackedDesign,
    placement: Placement,
    routing: RoutingResult,
    rrg: RoutingGraph,
    config: FabricConfig,
    *,
    cluster_size: int,
    max_orders: int,
    order_seed: int,
    compact_logic: bool,
    codecs: "str | Sequence[str] | None",
    workers: Optional[int],
    backend: str,
    memo: Optional[DecodeMemo],
    memo_path: "str | None" = None,
) -> _PipelineResult:
    """Everything before the sequential family pass: work-item
    construction, the (possibly pooled) per-cluster encode, and the
    deterministic raster-order merge."""
    from repro.vbs.codecs import resolve_codecs

    if backend not in ("thread", "process"):
        raise VbsError(
            f"unknown encode backend {backend!r}; use 'thread' or 'process'"
        )

    fabric = placement.fabric
    params = fabric.params
    layout = VbsLayout(params, cluster_size, fabric.width, fabric.height,
                       compact_logic=compact_logic)
    components = extract_components(design, placement, routing, rrg, layout)
    if codecs is None or isinstance(codecs, str):
        codec_selection: "str | Tuple[str, ...] | None" = codecs
    else:
        codec_selection = tuple(codecs)
    allowed = resolve_codecs(codec_selection)
    ctx = EncodeContext(
        layout=layout,
        codec_names=codec_selection,
        max_orders=max_orders,
        order_seed=order_seed,
        memo_path=str(memo_path) if memo_path is not None else None,
    )
    if memo is None:
        memo = DecodeMemo()

    # Work-item construction is serial and cheap (bit extraction); the
    # expensive order-search/router replay is what the pool runs.
    cgw, cgh = layout.cluster_grid
    items: List[ClusterWorkItem] = []
    for cy in range(cgh):
        for cx in range(cgw):
            comps = components.get((cx, cy), [])
            logic = _cluster_logic(layout, config, cx, cy)
            if not comps and logic.count() == 0:
                continue  # empty cluster: omitted from the macro list
            items.append(ClusterWorkItem(
                pos=(cx, cy),
                pairs=tuple(p for comp in comps for p in comp.pairs()),
                logic=logic,
                valid_members=tuple(layout.valid_members(cx, cy)),
            ))

    if workers is not None and workers > 1 and backend == "process":
        import shutil
        import tempfile
        from concurrent.futures import ProcessPoolExecutor
        from dataclasses import replace as _dc_replace
        from pathlib import Path as _Path

        merge_dir: Optional[str] = None
        run_id: Optional[str] = None
        if ctx.memo_path is not None:
            # Stage per-worker delta files next to the persisted memo so
            # the atomic renames stay on one filesystem.
            merge_dir = tempfile.mkdtemp(
                prefix="memo-merge-", dir=str(_Path(ctx.memo_path).parent)
            )
            run_id = uuid.uuid4().hex
            ctx = _dc_replace(ctx, merge_dir=merge_dir, run_id=run_id)
        chunks = _chunk_work_items(items, workers)
        try:
            with ProcessPoolExecutor(
                max_workers=workers,
                initializer=_process_worker_init,
                initargs=(ctx,),
            ) as pool:
                outcomes = [
                    outcome
                    for batch in pool.map(_process_encode_chunk, chunks)
                    for outcome in batch
                ]
            if merge_dir is not None:
                _merge_worker_deltas(memo, merge_dir, run_id)
        finally:
            if merge_dir is not None:
                shutil.rmtree(merge_dir, ignore_errors=True)
    elif workers is not None and workers > 1:
        from concurrent.futures import ThreadPoolExecutor

        with ThreadPoolExecutor(max_workers=workers) as pool:
            outcomes = list(
                pool.map(lambda item: _encode_cluster(item, ctx, memo), items)
            )
    else:
        outcomes = [_encode_cluster(item, ctx, memo) for item in items]

    # Deterministic merge in raster order; raw frames are materialized
    # here (the parent owns the configuration) for outcomes that fell
    # back to raw coding or held frames back for the family pass.
    stats = EncodeStats()
    records: List[ClusterRecord] = []
    raw_frames: Dict[Tuple[int, int], BitArray] = {}
    for outcome in outcomes:
        cx, cy = outcome.pos
        rec = outcome.record
        if rec is None:
            rec = ClusterRecord(
                (cx, cy),
                raw=True,
                raw_frames=_cluster_raw_frames(layout, config, cx, cy),
                codec="raw",
            )
        stats.clusters_listed += 1
        stats.pairs_total += outcome.pairs_total
        stats.orders_tried += outcome.orders_tried
        stats.offline_decode_work += outcome.offline_decode_work
        stats.decode_reuse_hits += outcome.reuse_hits
        if outcome.fallback_reason is not None:
            stats.fallback_reasons[rec.pos] = outcome.fallback_reason
        if outcome.needs_raw_frames:
            raw_frames[rec.pos] = _cluster_raw_frames(layout, config, cx, cy)
        records.append(rec)

    return _PipelineResult(layout, records, stats, raw_frames, allowed)


def encode_flow(
    flow: FlowResult,
    config: FabricConfig,
    cluster_size: int = 1,
    **kwargs,
) -> VirtualBitstream:
    """Convenience wrapper over :func:`encode_design` for a FlowResult."""
    return encode_design(
        flow.design,
        flow.placement,
        flow.routing,
        flow.rrg,
        config,
        cluster_size=cluster_size,
        **kwargs,
    )


# -- task-scope encoding (shared dictionary across containers) -------------------


@dataclass
class TaskEncodeResult:
    """The containers of one multi-container task and their shared table.

    ``table`` is empty when task-scope sharing did not pay — the
    containers are then exactly the independent :func:`encode_design`
    outputs and reference no external dictionary.  ``solo_bits`` and
    ``shared_bits`` record both sides of the keep-if-it-pays decision in
    Table I accounting (the shared side includes the external table's
    storage once, since external memory holds it once per task).
    """

    containers: List[VirtualBitstream]
    dict_id: int
    table: Tuple[BitArray, ...]
    solo_bits: int
    shared_bits: int

    @property
    def shared(self) -> bool:
        """True when the containers reference the external table."""
        return bool(self.table)

    @property
    def table_bits(self) -> int:
        """External storage of the shared table (0 when not kept)."""
        return sum(len(pattern) for pattern in self.table)


def _build_shared_dict_table(
    per_container: List[Tuple[List[ClusterRecord], VbsLayout]],
    dict_id: int,
    min_occurrences: int = 2,
) -> Tuple[BitArray, ...]:
    """Candidate task-scope pattern table: the shared selection core with
    occurrences counted *across* every container of the task, costs
    evaluated under the shared trial layouts (wide tags, id reference),
    and each pattern's external storage paid once.  The caller validates
    the final table against the full state-threaded selection and keeps
    it only when the whole task shrinks.
    """
    table, _total_gain = _dict_table_candidates(
        per_container,
        lambda lay, patterns: lay.with_shared_dict(dict_id, patterns),
        min_occurrences,
    )
    return table


def encode_task(
    jobs: "Sequence[Tuple[FlowResult, FabricConfig]]",
    dict_id: int,
    cluster_size: int = 1,
    max_orders: int = 12,
    order_seed: int = 0,
    compact_logic: bool = False,
    codecs: "str | Sequence[str] | None" = "auto",
    workers: Optional[int] = None,
    backend: str = "thread",
    memo: Optional[DecodeMemo] = None,
    memo_path: "str | None" = None,
    predictor: "Optional[object]" = None,
) -> TaskEncodeResult:
    """Encode several routed designs as *one task* sharing a dictionary.

    The run-time manager's multi-task workloads load several containers
    of the same task (replicated instances, multi-region partitions); a
    pattern that repeats across those containers is stored once in
    external memory under ``dict_id`` instead of once per container.
    The encoder's keep-if-it-pays logic runs at task scope: every
    container is first encoded independently (the solo baseline, byte
    for byte what :func:`encode_design` would emit), then the
    whole-task selection is re-evaluated with a shared candidate table —
    and kept only when the summed container payloads *plus the external
    table storage* get strictly smaller than the solo sum.  Containers
    that adopt the table serialize as VERSION 4 with a non-zero
    shared-dictionary id and must be decoded with a resolver that knows
    ``dict_id`` (``VirtualBitstream.from_bits(..., shared_dicts=...)``;
    the run-time controller wires its task-table store in
    automatically).

    All jobs must share architecture parameters, cluster size and the
    compact-logic flag — a pattern table only makes sense over one
    coding geometry.  The result is byte-identical across serial,
    thread and process backends: the task-scope selection runs after
    the deterministic raster-order merges.  ``memo``/``memo_path``
    behave exactly as in :func:`encode_design` (cross-invocation and
    persisted warm starts; bytes never change).
    """
    if not jobs:
        raise VbsError("encode_task needs at least one (flow, config) job")
    if predictor is not None:
        predictor.begin_session()
    if not (1 <= dict_id < (1 << SHARED_DICT_ID_BITS)):
        raise VbsError(
            f"shared dictionary id {dict_id} outside "
            f"[1, {1 << SHARED_DICT_ID_BITS})"
        )
    if memo is None:
        memo = DecodeMemo()
    if memo_path is not None:
        # Same contract as encode_design: worker deltas are merged into
        # this memo by each pipeline, and the save below persists the
        # union.
        memo.load(memo_path)
    pipelines = [
        _encode_pipeline(
            flow.design, flow.placement, flow.routing, flow.rrg, config,
            cluster_size=cluster_size,
            max_orders=max_orders,
            order_seed=order_seed,
            compact_logic=compact_logic,
            codecs=codecs,
            workers=workers,
            backend=backend,
            memo=memo,
            memo_path=memo_path,
        )
        for flow, config in jobs
    ]
    base = pipelines[0].layout
    for p in pipelines[1:]:
        if (
            p.layout.params != base.params
            or p.layout.cluster_size != base.cluster_size
            or p.layout.compact_logic != base.compact_logic
        ):
            raise VbsError(
                "task containers must share architecture parameters, "
                "cluster size and logic coding to share a dictionary"
            )

    # Solo baseline: the per-container family decision, not yet applied.
    # Selections without container-scoped codecs (including the
    # paper-strict ``codecs=None``) have nothing to decide — their total
    # is a plain state-threaded size walk over the merged records.
    solo_choices = [
        _family_pass_choice(
            p.records, p.layout, p.allowed, p.raw_frames,
            predictor=predictor, stats=p.stats,
        )
        for p in pipelines
    ]
    solo_totals: List[int] = []
    for p, choice in zip(pipelines, solo_choices):
        if choice is not None:
            solo_totals.append(choice[0])
        else:
            state = CodecState()
            total = p.layout.header_bits + p.layout.dict_section_bits
            for rec in p.records:
                total += rec.size_bits(p.layout, state=state)
                state.observe(rec)
            solo_totals.append(total)

    # Task-scope trial: one table shared by every container.
    dict_allowed = pipelines[0].allowed is not None and any(
        c.needs_dict and not c.codes_raw for c in pipelines[0].allowed
    )
    table: Tuple[BitArray, ...] = ()
    shared_sum = sum(solo_totals)
    shared_plan: Optional[List[Tuple[List[str], VbsLayout]]] = None
    if dict_allowed:
        candidates = _build_shared_dict_table(
            [(p.records, p.layout) for p in pipelines], dict_id
        )
        if candidates:
            plan: List[Tuple[List[str], VbsLayout]] = []
            trial_sum = sum(len(pattern) for pattern in candidates)
            for p in pipelines:
                trial = p.layout.with_shared_dict(dict_id, candidates)
                family = [c for c in p.allowed if c.container_scoped]
                raw_allowed = any(c.codes_raw for c in p.allowed)
                total, assigns = _family_selection(
                    p.records, trial, family, raw_allowed, p.raw_frames,
                    predictor=predictor, stats=p.stats,
                )
                trial_sum += total
                plan.append((assigns, trial))
            if trial_sum < sum(solo_totals):
                table, shared_sum, shared_plan = candidates, trial_sum, plan

    containers: List[VirtualBitstream] = []
    for i, p in enumerate(pipelines):
        if shared_plan is not None:
            assigns, layout = shared_plan[i]
            records = _apply_family_assignment(
                p.records, assigns, p.raw_frames
            )
        elif solo_choices[i] is not None:
            _total, assigns, layout = solo_choices[i]
            records = _apply_family_assignment(
                p.records, assigns, p.raw_frames
            )
        else:
            records, layout = p.records, p.layout
        containers.append(_finalize_container(layout, records, p.stats))

    if memo_path is not None:
        memo.save(memo_path)
    return TaskEncodeResult(
        containers=containers,
        dict_id=dict_id,
        table=table,
        solo_bits=sum(solo_totals),
        shared_bits=shared_sum,
    )
