"""repro — Virtual Bit-Stream toolflow for compressed FPGA configurations.

A from-scratch reproduction of *Design Flow and Run-Time Management for
Compressed FPGA Configurations* (Huriaux, Courtay, Sentieys — DATE 2015):

* :mod:`repro.arch` — the island-style macro fabric of Section II-A, with
  the exact Eq. (1) switch accounting;
* :mod:`repro.netlist` / :mod:`repro.cad` — the VTR/VPR-equivalent offline
  flow (BLIF or synthetic netlists, LUT mapping, packing, simulated-
  annealing placement, PathFinder routing);
* :mod:`repro.bitstream` — junction-level expansion and the raw bitstream
  baseline;
* :mod:`repro.vbs` — the Virtual Bit-Stream itself: Table I format, the
  vbsgen backend with its offline/online feedback loop, clustering, and
  the run-time de-virtualization router;
* :mod:`repro.fabric` — electrical extraction and functional simulation of
  configured fabrics (the library's end-to-end correctness oracle);
* :mod:`repro.runtime` — external memory, reconfiguration controller,
  relocation/migration and placement management (Figure 2);
* :mod:`repro.eval` — the Table II benchmark proxies and the harness
  regenerating every table and figure of the evaluation.

Quickstart::

    from repro import (ArchParams, CircuitSpec, generate_circuit, run_flow,
                       expand_routing, encode_flow, decode_at)

    netlist = generate_circuit(CircuitSpec("demo", 60, 10, 8))
    flow = run_flow(netlist, ArchParams(channel_width=8))
    config = expand_routing(flow.design, flow.placement, flow.routing, flow.rrg)
    vbs = encode_flow(flow, config)                  # Table I coding
    placed = decode_at(vbs, 3, 4)                    # relocate at run time
"""

from repro.arch import ArchParams, FabricArch, RoutingGraph
from repro.netlist import (
    CircuitSpec,
    Latch,
    Lut,
    Netlist,
    generate_circuit,
    map_to_luts,
    parse_blif,
    write_blif,
)
from repro.cad import (
    FlowResult,
    PackedDesign,
    Placement,
    RoutingResult,
    find_mcw,
    pack,
    place,
    route_design,
    run_flow,
)
from repro.bitstream import FabricConfig, RawBitstream, expand_routing
from repro.vbs import (
    VirtualBitstream,
    decode_at,
    decode_vbs,
    encode_design,
    encode_flow,
)
from repro.fabric import extract_circuit, verify_connectivity, verify_functional
from repro.runtime import (
    ExternalMemory,
    FabricManager,
    ReconfigurationController,
)

__version__ = "1.0.0"

__all__ = [
    "ArchParams",
    "FabricArch",
    "RoutingGraph",
    "CircuitSpec",
    "Latch",
    "Lut",
    "Netlist",
    "generate_circuit",
    "map_to_luts",
    "parse_blif",
    "write_blif",
    "FlowResult",
    "PackedDesign",
    "Placement",
    "RoutingResult",
    "find_mcw",
    "pack",
    "place",
    "route_design",
    "run_flow",
    "FabricConfig",
    "RawBitstream",
    "expand_routing",
    "VirtualBitstream",
    "decode_at",
    "decode_vbs",
    "encode_design",
    "encode_flow",
    "extract_circuit",
    "verify_connectivity",
    "verify_functional",
    "ExternalMemory",
    "FabricManager",
    "ReconfigurationController",
    "__version__",
]
