"""Command-line front-ends.

``vbsgen`` mirrors the paper's backend binary: it takes a BLIF netlist,
runs the offline flow at the requested architecture parameters, and writes
a Virtual Bit-Stream container next to a summary of the achieved
compression.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.arch.params import ArchParams
from repro.bitstream.expand import expand_routing
from repro.bitstream.raw import RawBitstream
from repro.cad.flow import run_flow
from repro.netlist.blif import parse_blif
from repro.vbs.encode import encode_flow


def main_vbsgen(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="vbsgen",
        description="Generate a Virtual Bit-Stream from a BLIF netlist.",
    )
    parser.add_argument("blif", type=Path, help="input BLIF file")
    parser.add_argument("-o", "--output", type=Path, default=None,
                        help="output .vbs path (default: <blif>.vbs)")
    parser.add_argument("-W", "--channel-width", type=int, default=20)
    parser.add_argument("-K", "--lut-size", type=int, default=6)
    parser.add_argument("-c", "--cluster-size", type=int, default=1)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--raw-output", type=Path, default=None,
                        help="also write the raw bitstream baseline")
    args = parser.parse_args(argv)

    netlist = parse_blif(args.blif.read_text(), args.blif.stem)
    params = ArchParams(channel_width=args.channel_width,
                        lut_size=args.lut_size)
    print(f"{netlist!r} on {params.describe()}")

    flow = run_flow(netlist, params, seed=args.seed)
    print(flow.summary())

    config = expand_routing(flow.design, flow.placement, flow.routing, flow.rrg)
    vbs = encode_flow(flow, config, cluster_size=args.cluster_size)
    out = args.output or args.blif.with_suffix(".vbs")
    out.write_bytes(vbs.to_bits().to_bytes())
    print(f"{vbs!r}\nwrote {out}")
    if vbs.stats.clusters_raw:
        print(f"note: {vbs.stats.clusters_raw} cluster(s) used the raw fallback")

    if args.raw_output is not None:
        raw = RawBitstream.from_config(config)
        args.raw_output.write_bytes(raw.bits.to_bytes())
        print(f"wrote raw baseline {args.raw_output} ({raw.size_bits} bits)")
    return 0


if __name__ == "__main__":
    sys.exit(main_vbsgen())
