"""Command-line front-ends.

``vbsgen`` mirrors the paper's backend binary: it takes a BLIF netlist,
runs the offline flow at the requested architecture parameters, and writes
a Virtual Bit-Stream container next to a summary of the achieved
compression.

``main`` is the ``repro`` umbrella command::

    repro vbsgen design.blif -W 20 --codecs auto --workers 4
    repro vbs inspect design.vbs
    repro runtime simulate --kind hot-set --tasks 3 --length 40 --seed 1
    repro tasks check suites/smoke.json

``vbs inspect`` parses a container through the codec registry and prints
the prelude, per-cluster codec tags, and the compression ratio.
``runtime simulate`` replays a seeded multi-task workload trace through
the fabric manager and reports cache hit rates, decoded bytes and the
cost model's reconfiguration latency (``--json`` for the machine-readable
report).  ``tasks run``/``tasks check`` drive the declarative suite
harness (``repro.eval.tasks``): expand a suite file's grids, run every
point, and gate on QoR deltas against committed goldens.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.arch.params import ArchParams
from repro.bitstream.expand import expand_routing
from repro.bitstream.raw import RawBitstream
from repro.cad.flow import run_flow
from repro.netlist.blif import parse_blif
from repro.vbs.encode import VirtualBitstream, encode_flow


def _add_vbsgen_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("blif", type=Path, help="input BLIF file")
    parser.add_argument("-o", "--output", type=Path, default=None,
                        help="output .vbs path (default: <blif>.vbs)")
    parser.add_argument("-W", "--channel-width", type=int, default=20)
    parser.add_argument("-K", "--lut-size", type=int, default=6)
    parser.add_argument("-c", "--cluster-size", type=int, default=1)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--codecs", default=None,
                        help="cost-driven codec picker: 'auto' or a "
                             "comma-separated registry name list "
                             "(default: paper-strict list+raw)")
    parser.add_argument("--workers", type=int, default=None,
                        help="encode pipeline workers")
    parser.add_argument("--backend", default="thread",
                        choices=("thread", "process"),
                        help="encode pipeline pool flavor (process sidesteps "
                             "the GIL for the pure-Python router)")
    parser.add_argument("--compact-logic", action="store_true",
                        help="Section V presence-flagged logic coding")
    parser.add_argument("--raw-output", type=Path, default=None,
                        help="also write the raw bitstream baseline")
    parser.add_argument("--predictor-store", type=Path, default=None,
                        help="persistable feature->codec predictor store "
                             "(JSON): warm-starts the family pass's codec "
                             "shortlists and is saved back extended")


def main_vbsgen(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="vbsgen",
        description="Generate a Virtual Bit-Stream from a BLIF netlist.",
    )
    _add_vbsgen_args(parser)
    return _run_vbsgen(parser.parse_args(argv))


def _run_vbsgen(args: argparse.Namespace) -> int:
    from repro.errors import VbsError
    from repro.vbs.codecs import resolve_codecs

    codecs = args.codecs
    if codecs is not None and codecs != "auto":
        codecs = [name.strip() for name in codecs.split(",") if name.strip()]
    try:
        # A typo'd codec name must fail in milliseconds, exit 2, before
        # the expensive CAD flow runs — the registry is the one source
        # of valid names, so the check cannot drift as codecs are added.
        resolve_codecs(codecs)
    except VbsError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    netlist = parse_blif(args.blif.read_text(), args.blif.stem)
    params = ArchParams(channel_width=args.channel_width,
                        lut_size=args.lut_size)
    print(f"{netlist!r} on {params.describe()}")

    flow = run_flow(netlist, params, seed=args.seed)
    print(flow.summary())

    predictor = None
    if args.predictor_store is not None:
        from repro.vbs.predictor import CodecPredictor

        predictor = CodecPredictor()
        predictor.load(args.predictor_store)
    config = expand_routing(flow.design, flow.placement, flow.routing, flow.rrg)
    vbs = encode_flow(
        flow, config,
        cluster_size=args.cluster_size,
        compact_logic=args.compact_logic,
        codecs=codecs,
        workers=args.workers,
        backend=args.backend,
        predictor=predictor,
    )
    out = args.output or args.blif.with_suffix(".vbs")
    out.write_bytes(vbs.to_bits().to_bytes())
    print(f"{vbs!r}\nwrote {out}")
    if vbs.stats.codec_counts:
        counts = ", ".join(
            f"{name}={n}" for name, n in sorted(vbs.stats.codec_counts.items())
        )
        print(f"codecs: {counts}")
    if vbs.stats.clusters_raw:
        print(f"note: {vbs.stats.clusters_raw} cluster(s) used the raw fallback")
    if predictor is not None:
        predictor.save(args.predictor_store)
        skipped = vbs.stats.family_trials_skipped
        print(f"predictor: {vbs.stats.family_trials} codec trials, "
              f"{skipped} skipped "
              f"({len(predictor)} cells, {predictor.hits} hits, "
              f"{predictor.misses} cold, {predictor.fallbacks} re-trials); "
              f"store saved to {args.predictor_store}")

    if args.raw_output is not None:
        raw = RawBitstream.from_config(config)
        args.raw_output.write_bytes(raw.bits.to_bytes())
        print(f"wrote raw baseline {args.raw_output} ({raw.size_bits} bits)")
    return 0


def inspect_summary(vbs: VirtualBitstream, path: Path, num_bytes: int,
                    per_cluster: bool = False) -> dict:
    """JSON-ready container summary with schema-stable keys.

    The key set is part of the tooling contract (asserted by the CLI
    tests): additions are allowed, renames and removals are not.
    """
    from repro.vbs.codecs import codec_by_name
    from repro.vbs.format import PRELUDE_BITS, CodecState

    lay = vbs.layout
    summary = {
        "file": str(path),
        "bytes": num_bytes,
        "version": vbs.source_version or vbs.wire_version,
        "prelude": {
            "cluster_size": lay.cluster_size,
            "channel_width": lay.params.channel_width,
            "lut_size": lay.params.lut_size,
            "compact_logic": lay.compact_logic,
            "width": lay.width,
            "height": lay.height,
        },
        "payload_bits": vbs.size_bits,
        "prelude_bits": PRELUDE_BITS,
        "tag_bits": lay.tag_bits,
        "shared_dict_id": lay.shared_dict_id,
        "dict_patterns": len(lay.dict_table),
        "dict_section_bits": lay.dict_section_bits,
        "records": len(vbs.records),
        "codec_counts": {
            name: count for name, count in sorted(vbs.codec_tags().items())
        },
        "raw_equivalent_bits": vbs.raw_equivalent_bits(),
        "compression_ratio": vbs.compression_ratio(),
    }
    if per_cluster:
        state = CodecState()
        rows = []
        for rec in vbs.records:
            name = rec.codec_name(lay)
            rows.append({
                "pos": list(rec.pos),
                "codec": name,
                "tag": codec_by_name(name).tag,
                "bits": rec.size_bits(lay, state=state),
            })
            state.observe(rec)
        summary["per_cluster"] = rows
    return summary


def _peek_shared_reference(data: bytes) -> dict:
    """Prelude and shared-dictionary id of a container whose external
    table is unavailable — everything readable before the payload.

    Reads through :func:`repro.vbs.format.read_prelude`, the single
    owner of the prelude bit layout, so this peek cannot drift from the
    real parser.
    """
    from repro.utils.bitarray import BitArray, BitReader
    from repro.vbs.format import SHARED_DICT_ID_BITS, read_prelude

    r = BitReader(BitArray.from_bytes(data))
    prelude = read_prelude(r)
    return {
        "version": prelude.version,
        "shared_dict_id": r.read(SHARED_DICT_ID_BITS),
        "prelude": {
            "cluster_size": prelude.cluster_size,
            "channel_width": prelude.channel_width,
            "lut_size": prelude.lut_size,
            "compact_logic": prelude.compact_logic,
            "width": prelude.width,
            "height": prelude.height,
        },
    }


def _print_prelude(prelude: dict) -> None:
    """The human prelude block, shared by the full and stub inspects."""
    print("prelude:")
    print(f"  cluster size    {prelude['cluster_size']}")
    print(f"  channel width   {prelude['channel_width']}")
    print(f"  lut size        {prelude['lut_size']}")
    print(f"  compact logic   {prelude['compact_logic']}")
    print(f"  task            {prelude['width']}x{prelude['height']} macros")


def _inspect_shared_stub(args: argparse.Namespace, data: bytes,
                         reason: str) -> int:
    """Reduced inspect output for an unresolvable shared-dict container.

    The payload cannot be parsed without the task table (dictionary
    records would fabricate logic), but the prelude and the reference
    itself are still worth reporting — and the tool must not traceback
    on the very containers VERSION 4 added.  The exit code is 2 with the
    unresolved id named on stderr: an inspect that could not parse the
    records is a failed inspect, and scripts must be able to tell.
    """
    import json

    peek = _peek_shared_reference(data)
    if args.json:
        summary = {
            "file": str(args.file),
            "bytes": len(data),
            "shared_table_unresolved": reason,
            **peek,
        }
        print(json.dumps(summary, indent=1, sort_keys=True))
    else:
        print(f"container: {args.file} ({len(data)} bytes, "
              f"version {peek['version']})")
        _print_prelude(peek["prelude"])
        print(f"shared dictionary: id {peek['shared_dict_id']} — table not "
              f"available, records not parsed")
        print(f"({reason})")
    print(f"error: cannot resolve shared dictionary id "
          f"{peek['shared_dict_id']}: {reason}", file=sys.stderr)
    return 2


def _run_vbs_inspect(args: argparse.Namespace) -> int:
    import json

    from repro.errors import SharedDictUnresolvedError
    from repro.utils.bitarray import BitArray
    from repro.vbs.codecs import codec_by_name
    from repro.vbs.format import PRELUDE_BITS

    data = args.file.read_bytes()
    try:
        vbs = VirtualBitstream.from_bits(BitArray.from_bytes(data))
    except SharedDictUnresolvedError as exc:
        return _inspect_shared_stub(args, data, str(exc))
    lay = vbs.layout
    if args.json:
        summary = inspect_summary(
            vbs, args.file, len(data), per_cluster=args.per_cluster
        )
        print(json.dumps(summary, indent=1, sort_keys=True))
        return 0
    print(f"container: {args.file} ({len(data)} bytes, "
          f"version {vbs.source_version})")
    _print_prelude({
        "cluster_size": lay.cluster_size,
        "channel_width": lay.params.channel_width,
        "lut_size": lay.params.lut_size,
        "compact_logic": lay.compact_logic,
        "width": lay.width,
        "height": lay.height,
    })
    print(f"payload: {vbs.size_bits} bits Table I accounting "
          f"(+{PRELUDE_BITS} prelude)")
    print(f"codec tag field: {lay.tag_bits} bits"
          + (" (VERSION 4 wide tags)" if lay.tag_bits > 3 else ""))
    if lay.shared_dict_id is not None:
        print(f"shared dictionary: id {lay.shared_dict_id}, "
              f"{len(lay.dict_table)} pattern(s) resolved externally")
    elif lay.dict_table:
        print(f"dictionary: {len(lay.dict_table)} embedded pattern(s), "
              f"{lay.dict_section_bits} bits")
    print(f"records: {len(vbs.records)} listed cluster(s)")
    counts = vbs.codec_tags()
    for name in sorted(counts):
        tag = codec_by_name(name).tag
        print(f"  codec {name!r} (tag {tag}): {counts[name]} record(s)")
    if args.per_cluster:
        from repro.vbs.format import CodecState

        state = CodecState()
        for rec in vbs.records:
            name = rec.codec_name(lay)
            print(f"  ({rec.pos[0]:>3},{rec.pos[1]:>3})  {name:<8}"
                  f"{rec.size_bits(lay, state=state):>8} bits")
            state.observe(rec)
    ratio = vbs.compression_ratio()
    print(f"raw equivalent: {vbs.raw_equivalent_bits()} bits")
    print(f"compression ratio: {ratio:.4f} ({ratio:.1%} of raw)")
    return 0


def _run_runtime_simulate(args: argparse.Namespace) -> int:
    import json

    from repro.errors import RuntimeManagementError
    from repro.runtime.manager import BEST_FIT, FIRST_FIT
    from repro.runtime.workload import run_scenario, summarize_report

    try:
        report = run_scenario(
            kind=args.kind,
            n_tasks=args.tasks,
            length=args.length,
            seed=args.seed,
            channel_width=args.channel_width,
            cluster_size=args.cluster_size,
            cache_capacity=args.capacity,
            cache_capacity_bytes=args.capacity_bytes or None,
            memo_entries=args.memo_entries,
            strategy=BEST_FIT if args.best_fit else FIRST_FIT,
            codecs="auto" if args.auto_codecs else None,
            cache_dir=str(args.cache_dir) if args.cache_dir else None,
            arrivals=args.arrivals,
            mean_interarrival=args.mean_interarrival,
            zipf_alpha=args.zipf_alpha,
            task_scope=args.task_scope,
            containers_per_task=args.containers_per_task,
            shards=args.shards,
            router=args.router,
            migrate_backlog=args.migrate_backlog,
            servers=args.servers,
            policy=args.policy,
            queue_threshold=args.queue_threshold,
        )
    except RuntimeManagementError as exc:
        # An unknown mix/arrival name (or any scenario misconfiguration)
        # must fail loudly with a non-zero exit — silently simulating a
        # different mix than the one asked for would poison any tooling
        # consuming the --json artifact.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(summarize_report(report))
    if args.json is not None:
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(
            json.dumps(report, indent=1, sort_keys=True) + "\n"
        )
        print(f"wrote {args.json}")
    return 0


def _run_runtime_sweep(args: argparse.Namespace) -> int:
    import json

    from repro.errors import RuntimeManagementError
    from repro.runtime.manager import BEST_FIT, FIRST_FIT
    from repro.runtime.workload import run_sweep_scenario, summarize_sweep

    try:
        sweep = run_sweep_scenario(
            kind=args.kind,
            n_tasks=args.tasks,
            length=args.length,
            seed=args.seed,
            channel_width=args.channel_width,
            cluster_size=args.cluster_size,
            cache_capacity=args.capacity,
            memo_entries=args.memo_entries,
            strategy=BEST_FIT if args.best_fit else FIRST_FIT,
            codecs="auto" if args.auto_codecs else None,
            base_interarrival=args.base_interarrival,
            factor=args.factor,
            steps=args.steps,
            zipf_alpha=args.zipf_alpha,
            servers=args.servers,
            policy=args.policy,
            queue_threshold=args.queue_threshold,
        )
    except RuntimeManagementError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(summarize_sweep(sweep))
    # Schema self-check: the ladder must tighten monotonically and the
    # knee (when located) must point inside the swept range — a sweep
    # artifact violating either is a bug, not a measurement.
    gaps = [row["mean_interarrival"] for row in sweep["rates"]]
    if gaps != sorted(gaps, reverse=True) or len(set(gaps)) != len(gaps):
        print("error: sweep rates are not strictly tightening",
              file=sys.stderr)
        return 1
    knee = sweep.get("knee")
    if knee is not None and not 0 <= knee["index"] < len(gaps):
        print("error: knee index outside the swept range", file=sys.stderr)
        return 1
    if knee is None and args.require_knee:
        print("error: no saturation knee within the swept range "
              "(--require-knee)", file=sys.stderr)
        return 1
    if args.json is not None:
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(
            json.dumps(sweep, indent=1, sort_keys=True) + "\n"
        )
        print(f"wrote {args.json}")
    return 0


def _run_tasks_run(args: argparse.Namespace) -> int:
    import json

    from repro.eval.tasks import TaskSuiteError, run_suite, save_golden

    try:
        report = run_suite(
            args.suite, args.results_dir, force=args.force,
            progress=lambda p: print(f"  {p.key}"),
        )
    except TaskSuiteError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"suite {report.suite['name']}: {len(report.points)} point(s)")
    if args.update_golden:
        path = save_golden(report)
        print(f"wrote golden {path}")
    if args.json is not None:
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(
            json.dumps(report.to_json(), indent=1, sort_keys=True) + "\n"
        )
        print(f"wrote {args.json}")
    return 0


def _run_tasks_check(args: argparse.Namespace) -> int:
    import json

    from repro.eval.tasks import (
        TaskSuiteError,
        compare_to_golden,
        load_golden,
        run_suite,
        summarize_comparison,
    )

    try:
        report = run_suite(
            args.suite, args.results_dir, force=args.force,
            progress=lambda p: print(f"  {p.key}"),
        )
        golden = load_golden(report.suite_path, report.suite)
    except TaskSuiteError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if golden is None:
        # A check without goldens must not silently pass — that is how
        # QoR drift goes unnoticed until it compounds.
        print(f"error: no golden results for {args.suite} "
              f"(run `repro tasks run {args.suite} --update-golden`)",
              file=sys.stderr)
        return 2
    comparison = compare_to_golden(report, golden)
    print(summarize_comparison(comparison))
    if args.json is not None:
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(json.dumps(
            {"suite": report.suite["name"], **comparison},
            indent=1, sort_keys=True,
        ) + "\n")
        print(f"wrote {args.json}")
    return 0 if comparison["passed"] else 1


def _add_tasks_point_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("suite", type=Path, help="suite JSON file")
    parser.add_argument("--results-dir", type=Path, default=Path("results"),
                        help="point-cache root (default: results/)")
    parser.add_argument("--force", action="store_true",
                        help="recompute every point, ignoring the cache")
    parser.add_argument("--json", type=Path, default=None,
                        help="also write the machine-readable report here")


def main(argv: "list[str] | None" = None) -> int:
    """The ``repro`` umbrella command."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Compressed-FPGA-configuration design flow and runtime.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("vbsgen", help="generate a VBS from a BLIF netlist")
    _add_vbsgen_args(gen)
    gen.set_defaults(func=_run_vbsgen)

    vbs = sub.add_parser("vbs", help="Virtual Bit-Stream container tools")
    vbs_sub = vbs.add_subparsers(dest="vbs_command", required=True)
    inspect = vbs_sub.add_parser(
        "inspect", help="print prelude, codec tags and compression ratio"
    )
    inspect.add_argument("file", type=Path, help=".vbs container file")
    inspect.add_argument("--per-cluster", action="store_true",
                         help="also list every cluster record")
    inspect.add_argument("--json", action="store_true",
                         help="machine-readable summary (stable key schema)")
    inspect.set_defaults(func=_run_vbs_inspect)

    runtime = sub.add_parser("runtime", help="run-time manager tools")
    runtime_sub = runtime.add_subparsers(dest="runtime_command", required=True)
    sim = runtime_sub.add_parser(
        "simulate",
        help="replay a seeded multi-task workload trace through the "
             "fabric manager",
    )
    # The kind is validated by generate_trace in the handler (exit 2 on
    # an unknown name), not by argparse choices: every other subcommand
    # defers its heavy imports into the _run_* handler, and a literal
    # choices duplicate silently lagged behind TRACE_KINDS once already.
    sim.add_argument("--kind", default="hot-set",
                     help="arrival mix of the generated trace: hot-set, "
                          "round-robin, adversarial or zipf")
    sim.add_argument("--tasks", type=int, default=3,
                     help="synthetic task images to generate")
    sim.add_argument("--length", type=int, default=40,
                     help="trace length in events")
    sim.add_argument("--seed", type=int, default=1)
    sim.add_argument("--arrivals", default=None,
                     help="open-loop arrival process ('poisson'): stamp "
                          "requests with virtual timestamps and report "
                          "p50/p95/p99 latency, queue depth and per-phase "
                          "breakdowns (default: closed loop)")
    sim.add_argument("--mean-interarrival", type=int, default=2000,
                     help="mean Poisson inter-arrival gap in cycles")
    sim.add_argument("--zipf-alpha", type=float, default=1.1,
                     help="popularity skew of the zipf mix")
    # Like --kind, the shard count and router name are validated in the
    # handler (exit 2 with a stderr message on a non-positive count or an
    # unknown router), not by argparse choices — see the note above.
    sim.add_argument("--shards", type=int, default=1,
                     help="fabric shards in the fleet (1 = the single-"
                          "fabric simulator, byte-identical report)")
    sim.add_argument("--router", default="hash",
                     help="fleet placement router: 'hash' (consistent "
                          "hashing on the task name) or 'load' "
                          "(least-loaded shard by recorded queue depth "
                          "and latency)")
    sim.add_argument("--migrate-backlog", type=int, default=None,
                     help="cross-shard saturation migration threshold in "
                          "backlog cycles (needs --arrivals poisson and "
                          "--shards >= 2; default: migration off)")
    sim.add_argument("--servers", type=int, default=1,
                     help="parallel reconfiguration servers per fabric "
                          "on the open-loop clock (1 = the historical "
                          "single-server model, byte-identical report)")
    sim.add_argument("--policy", default=None,
                     help="admission policy at the arrival door: none, "
                          "drop-cold, defer-cold or priority (needs "
                          "--arrivals poisson, single fabric)")
    sim.add_argument("--queue-threshold", type=int, default=4,
                     help="queue depth at which drop-cold/defer-cold "
                          "start shedding cold requests")
    sim.add_argument("--task-scope", action="store_true",
                     help="synthesize multi-container task groups through "
                          "encode_task (VERSION 4 shared dictionaries "
                          "refcounted under eviction pressure)")
    sim.add_argument("--containers-per-task", type=int, default=2,
                     help="containers per task group with --task-scope")
    sim.add_argument("-W", "--channel-width", type=int, default=8)
    sim.add_argument("-c", "--cluster-size", type=int, default=1)
    sim.add_argument("--capacity", type=int, default=16,
                     help="decode cache entry capacity (0 disables the "
                          "count bound; caching stays on if "
                          "--capacity-bytes is set)")
    sim.add_argument("--capacity-bytes", type=int, default=None,
                     help="decode cache byte budget in expanded-image "
                          "bytes (0 = no byte bound)")
    sim.add_argument("--memo-entries", type=int, default=4096,
                     help="controller DecodeMemo bound (0 disables reuse)")
    sim.add_argument("--best-fit", action="store_true",
                     help="adjacency-aware best-fit placement "
                          "(default first-fit)")
    sim.add_argument("--auto-codecs", action="store_true",
                     help="encode task images with codecs=auto")
    sim.add_argument("--cache-dir", type=Path, default=None,
                     help="persist/restore decode-cache entries in this "
                          "directory (cross-process reuse)")
    sim.add_argument("--json", type=Path, default=None,
                     help="also write the machine-readable report here")
    sim.set_defaults(func=_run_runtime_simulate)

    sweep = runtime_sub.add_parser(
        "sweep",
        help="replay one workload at a geometric ladder of arrival "
             "rates and locate the saturation knee",
    )
    sweep.add_argument("--kind", default="zipf",
                       help="arrival mix of the generated trace: hot-set, "
                            "round-robin, adversarial or zipf")
    sweep.add_argument("--tasks", type=int, default=4,
                       help="synthetic task images to generate")
    sweep.add_argument("--length", type=int, default=40,
                       help="trace length in events")
    sweep.add_argument("--seed", type=int, default=3)
    sweep.add_argument("--base-interarrival", type=int, default=2000,
                       help="most relaxed mean inter-arrival gap in "
                            "cycles (the ladder's first rung)")
    sweep.add_argument("--factor", type=float, default=2.0,
                       help="geometric rate step: each rung divides the "
                            "gap by this factor")
    sweep.add_argument("--steps", type=int, default=5,
                       help="rungs on the rate ladder (stops early once "
                            "the gap bottoms out at 1 cycle)")
    sweep.add_argument("--zipf-alpha", type=float, default=1.1,
                       help="popularity skew of the zipf mix")
    sweep.add_argument("--servers", type=int, default=1,
                       help="parallel reconfiguration servers on the "
                            "open-loop clock")
    sweep.add_argument("--policy", default=None,
                       help="admission policy at the arrival door: none, "
                            "drop-cold, defer-cold or priority")
    sweep.add_argument("--queue-threshold", type=int, default=4,
                       help="queue depth at which drop-cold/defer-cold "
                            "start shedding cold requests")
    sweep.add_argument("-W", "--channel-width", type=int, default=8)
    sweep.add_argument("-c", "--cluster-size", type=int, default=1)
    sweep.add_argument("--capacity", type=int, default=16,
                       help="decode cache entry capacity per rate replay")
    sweep.add_argument("--memo-entries", type=int, default=4096,
                       help="controller DecodeMemo bound (0 disables "
                            "reuse)")
    sweep.add_argument("--best-fit", action="store_true",
                       help="adjacency-aware best-fit placement "
                            "(default first-fit)")
    sweep.add_argument("--auto-codecs", action="store_true",
                       help="encode task images with codecs=auto")
    sweep.add_argument("--require-knee", action="store_true",
                       help="exit 1 unless a saturation knee was located "
                            "within the swept range (CI smoke gating)")
    sweep.add_argument("--json", type=Path, default=None,
                       help="also write the machine-readable sweep here")
    sweep.set_defaults(func=_run_runtime_sweep)

    tasks = sub.add_parser(
        "tasks",
        help="declarative evaluation suites (arch x circuit x codec grids)",
    )
    tasks_sub = tasks.add_subparsers(dest="tasks_command", required=True)
    trun = tasks_sub.add_parser(
        "run",
        help="expand a suite file and run every point through the "
             "cached eval pipeline",
    )
    _add_tasks_point_args(trun)
    trun.add_argument("--update-golden", action="store_true",
                      help="record this run's metrics as the suite's "
                           "golden results")
    trun.set_defaults(func=_run_tasks_run)
    tcheck = tasks_sub.add_parser(
        "check",
        help="run a suite and compare QoR against its golden results "
             "(exit 1 on any out-of-tolerance delta)",
    )
    _add_tasks_point_args(tcheck)
    tcheck.set_defaults(func=_run_tasks_check)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
