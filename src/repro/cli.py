"""Command-line front-ends.

``vbsgen`` mirrors the paper's backend binary: it takes a BLIF netlist,
runs the offline flow at the requested architecture parameters, and writes
a Virtual Bit-Stream container next to a summary of the achieved
compression.

``main`` is the ``repro`` umbrella command::

    repro vbsgen design.blif -W 20 --codecs auto --workers 4
    repro vbs inspect design.vbs

``vbs inspect`` parses a container through the codec registry and prints
the prelude, per-cluster codec tags, and the compression ratio.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.arch.params import ArchParams
from repro.bitstream.expand import expand_routing
from repro.bitstream.raw import RawBitstream
from repro.cad.flow import run_flow
from repro.netlist.blif import parse_blif
from repro.vbs.encode import VirtualBitstream, encode_flow


def _add_vbsgen_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("blif", type=Path, help="input BLIF file")
    parser.add_argument("-o", "--output", type=Path, default=None,
                        help="output .vbs path (default: <blif>.vbs)")
    parser.add_argument("-W", "--channel-width", type=int, default=20)
    parser.add_argument("-K", "--lut-size", type=int, default=6)
    parser.add_argument("-c", "--cluster-size", type=int, default=1)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--codecs", default=None,
                        help="cost-driven codec picker: 'auto' or a "
                             "comma-separated registry name list "
                             "(default: paper-strict list+raw)")
    parser.add_argument("--workers", type=int, default=None,
                        help="encode pipeline worker threads")
    parser.add_argument("--compact-logic", action="store_true",
                        help="Section V presence-flagged logic coding")
    parser.add_argument("--raw-output", type=Path, default=None,
                        help="also write the raw bitstream baseline")


def main_vbsgen(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="vbsgen",
        description="Generate a Virtual Bit-Stream from a BLIF netlist.",
    )
    _add_vbsgen_args(parser)
    return _run_vbsgen(parser.parse_args(argv))


def _run_vbsgen(args: argparse.Namespace) -> int:
    netlist = parse_blif(args.blif.read_text(), args.blif.stem)
    params = ArchParams(channel_width=args.channel_width,
                        lut_size=args.lut_size)
    print(f"{netlist!r} on {params.describe()}")

    flow = run_flow(netlist, params, seed=args.seed)
    print(flow.summary())

    codecs = args.codecs
    if codecs is not None and codecs != "auto":
        codecs = [name.strip() for name in codecs.split(",") if name.strip()]
    config = expand_routing(flow.design, flow.placement, flow.routing, flow.rrg)
    vbs = encode_flow(
        flow, config,
        cluster_size=args.cluster_size,
        compact_logic=args.compact_logic,
        codecs=codecs,
        workers=args.workers,
    )
    out = args.output or args.blif.with_suffix(".vbs")
    out.write_bytes(vbs.to_bits().to_bytes())
    print(f"{vbs!r}\nwrote {out}")
    if vbs.stats.codec_counts:
        counts = ", ".join(
            f"{name}={n}" for name, n in sorted(vbs.stats.codec_counts.items())
        )
        print(f"codecs: {counts}")
    if vbs.stats.clusters_raw:
        print(f"note: {vbs.stats.clusters_raw} cluster(s) used the raw fallback")

    if args.raw_output is not None:
        raw = RawBitstream.from_config(config)
        args.raw_output.write_bytes(raw.bits.to_bytes())
        print(f"wrote raw baseline {args.raw_output} ({raw.size_bits} bits)")
    return 0


def inspect_summary(vbs: VirtualBitstream, path: Path, num_bytes: int,
                    per_cluster: bool = False) -> dict:
    """JSON-ready container summary with schema-stable keys.

    The key set is part of the tooling contract (asserted by the CLI
    tests): additions are allowed, renames and removals are not.
    """
    from repro.vbs.codecs import codec_by_name
    from repro.vbs.format import PRELUDE_BITS, CodecState

    lay = vbs.layout
    summary = {
        "file": str(path),
        "bytes": num_bytes,
        "version": vbs.source_version or vbs.wire_version,
        "prelude": {
            "cluster_size": lay.cluster_size,
            "channel_width": lay.params.channel_width,
            "lut_size": lay.params.lut_size,
            "compact_logic": lay.compact_logic,
            "width": lay.width,
            "height": lay.height,
        },
        "payload_bits": vbs.size_bits,
        "prelude_bits": PRELUDE_BITS,
        "dict_patterns": len(lay.dict_table),
        "dict_section_bits": lay.dict_section_bits,
        "records": len(vbs.records),
        "codec_counts": {
            name: count for name, count in sorted(vbs.codec_tags().items())
        },
        "raw_equivalent_bits": vbs.raw_equivalent_bits(),
        "compression_ratio": vbs.compression_ratio(),
    }
    if per_cluster:
        state = CodecState()
        rows = []
        for rec in vbs.records:
            name = rec.codec_name(lay)
            rows.append({
                "pos": list(rec.pos),
                "codec": name,
                "tag": codec_by_name(name).tag,
                "bits": rec.size_bits(lay, state=state),
            })
            state.observe(rec)
        summary["per_cluster"] = rows
    return summary


def _run_vbs_inspect(args: argparse.Namespace) -> int:
    import json

    from repro.utils.bitarray import BitArray
    from repro.vbs.codecs import codec_by_name
    from repro.vbs.format import PRELUDE_BITS

    data = args.file.read_bytes()
    vbs = VirtualBitstream.from_bits(BitArray.from_bytes(data))
    lay = vbs.layout
    if args.json:
        summary = inspect_summary(
            vbs, args.file, len(data), per_cluster=args.per_cluster
        )
        print(json.dumps(summary, indent=1, sort_keys=True))
        return 0
    print(f"container: {args.file} ({len(data)} bytes, "
          f"version {vbs.source_version})")
    print("prelude:")
    print(f"  cluster size    {lay.cluster_size}")
    print(f"  channel width   {lay.params.channel_width}")
    print(f"  lut size        {lay.params.lut_size}")
    print(f"  compact logic   {lay.compact_logic}")
    print(f"  task            {lay.width}x{lay.height} macros")
    print(f"payload: {vbs.size_bits} bits Table I accounting "
          f"(+{PRELUDE_BITS} prelude)")
    if lay.dict_table:
        print(f"dictionary: {len(lay.dict_table)} shared pattern(s), "
              f"{lay.dict_section_bits} bits")
    print(f"records: {len(vbs.records)} listed cluster(s)")
    counts = vbs.codec_tags()
    for name in sorted(counts):
        tag = codec_by_name(name).tag
        print(f"  codec {name!r} (tag {tag}): {counts[name]} record(s)")
    if args.per_cluster:
        from repro.vbs.format import CodecState

        state = CodecState()
        for rec in vbs.records:
            name = rec.codec_name(lay)
            print(f"  ({rec.pos[0]:>3},{rec.pos[1]:>3})  {name:<8}"
                  f"{rec.size_bits(lay, state=state):>8} bits")
            state.observe(rec)
    ratio = vbs.compression_ratio()
    print(f"raw equivalent: {vbs.raw_equivalent_bits()} bits")
    print(f"compression ratio: {ratio:.4f} ({ratio:.1%} of raw)")
    return 0


def main(argv: "list[str] | None" = None) -> int:
    """The ``repro`` umbrella command."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Compressed-FPGA-configuration design flow and runtime.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("vbsgen", help="generate a VBS from a BLIF netlist")
    _add_vbsgen_args(gen)
    gen.set_defaults(func=_run_vbsgen)

    vbs = sub.add_parser("vbs", help="Virtual Bit-Stream container tools")
    vbs_sub = vbs.add_subparsers(dest="vbs_command", required=True)
    inspect = vbs_sub.add_parser(
        "inspect", help="print prelude, codec tags and compression ratio"
    )
    inspect.add_argument("file", type=Path, help=".vbs container file")
    inspect.add_argument("--per-cluster", action="store_true",
                         help="also list every cluster record")
    inspect.add_argument("--json", action="store_true",
                         help="machine-readable summary (stable key schema)")
    inspect.set_defaults(func=_run_vbs_inspect)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
