"""Architecture model: parameters, block types, macro/cluster electricals, RRG.

Reproduces the island-style fabric of Section II-A: a grid of uniform macros
(6-LUT + FF logic block, ChanX/ChanY channels of W single-length tracks, one
switch box), with the exact Eq. (1) switch accounting and the Virtual
Bit-Stream I/O numbering of Section II-B.
"""

from repro.arch.params import ArchParams
from repro.arch.blocktype import (
    BlockType,
    PortDef,
    DIR_IN,
    DIR_OUT,
    IOB_PAD_PORTS,
    make_clb_type,
    make_iob_type,
    encode_clb_config,
    decode_clb_config,
    encode_iob_config,
    decode_iob_config,
)
from repro.arch.macro import ClusterModel, Switch, get_cluster_model, get_macro_model
from repro.arch.fabric import FabricArch
from repro.arch.rrg import (
    RoutingGraph,
    TilePatternRoutingGraph,
    routing_graph_for,
    clear_routing_graph_cache,
    KIND_XTRK,
    KIND_YTRK,
    KIND_LINE,
)

__all__ = [
    "ArchParams",
    "BlockType",
    "PortDef",
    "DIR_IN",
    "DIR_OUT",
    "IOB_PAD_PORTS",
    "make_clb_type",
    "make_iob_type",
    "encode_clb_config",
    "decode_clb_config",
    "encode_iob_config",
    "decode_iob_config",
    "ClusterModel",
    "Switch",
    "get_cluster_model",
    "get_macro_model",
    "FabricArch",
    "RoutingGraph",
    "TilePatternRoutingGraph",
    "routing_graph_for",
    "clear_routing_graph_cache",
    "KIND_XTRK",
    "KIND_YTRK",
    "KIND_LINE",
]
