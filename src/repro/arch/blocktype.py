"""Block types occupying macro footprints: logic blocks (CLB) and I/O blocks.

The paper's fabric is heterogeneous in function but *uniform in footprint*:
"the number of configuration elements in the bit-stream remains the same"
regardless of a macro's content, and circuit inputs/outputs are "part of the
heterogeneous logic fabric itself".  We therefore model every grid cell as an
identical macro (same pin lines, same NLB configuration bits) whose function
is selected by the block type occupying it:

* ``CLB`` — one K-input LUT plus an optional flip-flop; pins 0..K-1 are LUT
  inputs, pin K is the block output.  Configuration: 2**K truth-table bits
  followed by the FF-bypass bit.
* ``IOB`` — a pad cell with capacity 2 (two independent pads).  Each pad has
  one fabric-driving pin (the pad acts as circuit input) and one
  fabric-sinking pin (circuit output).  Configuration: 4 enable bits, padded
  to NLB so raw frames stay uniform.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import ArchitectureError
from repro.arch.params import ArchParams
from repro.utils.bitarray import BitArray

#: Pin direction relative to the routing fabric.
DIR_OUT = "out"  # drives a net into the fabric (a source)
DIR_IN = "in"    # sinks a net from the fabric (a sink)


@dataclass(frozen=True)
class PortDef:
    """One logical port of a block type, bound to a macro pin line."""

    name: str
    macro_pin: int
    direction: str

    def __post_init__(self) -> None:
        if self.direction not in (DIR_IN, DIR_OUT):
            raise ArchitectureError(f"bad port direction {self.direction!r}")


class BlockType:
    """A block function that can occupy a macro footprint."""

    def __init__(self, name: str, ports: Tuple[PortDef, ...], capacity: int = 1):
        self.name = name
        self.ports = ports
        self.capacity = capacity
        self._by_name: Dict[str, PortDef] = {p.name: p for p in ports}
        if len(self._by_name) != len(ports):
            raise ArchitectureError(f"duplicate port names in block type {name}")
        pins = [p.macro_pin for p in ports]
        if len(set(pins)) != len(pins):
            raise ArchitectureError(f"two ports of {name} share a macro pin line")

    def port(self, name: str) -> PortDef:
        try:
            return self._by_name[name]
        except KeyError:
            raise ArchitectureError(f"block type {self.name} has no port {name!r}")

    def input_ports(self) -> Tuple[PortDef, ...]:
        return tuple(p for p in self.ports if p.direction == DIR_IN)

    def output_ports(self) -> Tuple[PortDef, ...]:
        return tuple(p for p in self.ports if p.direction == DIR_OUT)

    def __repr__(self) -> str:
        return f"BlockType({self.name}, {len(self.ports)} ports)"


def make_clb_type(params: ArchParams) -> BlockType:
    """The logic-block type: K LUT inputs and one output."""
    ports = tuple(
        PortDef(f"in{i}", i, DIR_IN) for i in range(params.lut_size)
    ) + (PortDef("out", params.lut_size, DIR_OUT),)
    return BlockType("clb", ports)


def make_iob_type(params: ArchParams) -> BlockType:
    """The I/O-block type: two pads per cell.

    Pad 0 uses the block-output line (pin ``L-1``, on ChanX) to drive the
    fabric and pin 0 to sink it; pad 1 uses the last ChanY line to drive and
    the first ChanY line to sink, so the two pads load different channels.
    """
    out_pin = params.num_lb_pins - 1
    chany = sorted(params.chany_pins)
    ports = (
        PortDef("pad0_o", out_pin, DIR_OUT),
        PortDef("pad0_i", 0, DIR_IN),
        PortDef("pad1_o", chany[-1], DIR_OUT),
        PortDef("pad1_i", chany[0], DIR_IN),
    )
    return BlockType("iob", ports, capacity=2)


#: Sub-site port names per pad index of an IOB.
IOB_PAD_PORTS = ({"o": "pad0_o", "i": "pad0_i"}, {"o": "pad1_o", "i": "pad1_i"})


# -- configuration (logic data) encode / decode -------------------------------


def encode_clb_config(params: ArchParams, truth_table: int, use_ff: bool) -> BitArray:
    """Serialize a CLB's logic data into its NLB-bit frame section.

    Bit ``i`` of the frame is row ``i`` of the truth table (the LUT output
    when the input vector equals ``i``); the final bit enables the flip-flop
    on the block output.
    """
    size = 2 ** params.lut_size
    if truth_table < 0 or truth_table >= (1 << size):
        raise ArchitectureError(
            f"truth table does not fit a {params.lut_size}-LUT"
        )
    bits = BitArray(params.nlb)
    for i in range(size):
        if (truth_table >> i) & 1:
            bits[i] = 1
    bits[size] = 1 if use_ff else 0
    return bits


def decode_clb_config(params: ArchParams, bits: BitArray) -> Tuple[int, bool]:
    """Inverse of :func:`encode_clb_config`; returns (truth_table, use_ff)."""
    size = 2 ** params.lut_size
    if len(bits) != params.nlb:
        raise ArchitectureError(
            f"CLB config must be {params.nlb} bits, got {len(bits)}"
        )
    tt = 0
    for i in range(size):
        if bits[i]:
            tt |= 1 << i
    return tt, bool(bits[size])


def encode_iob_config(
    params: ArchParams, pad_out_enable: Tuple[bool, bool], pad_in_enable: Tuple[bool, bool]
) -> BitArray:
    """Serialize an IOB's pad-enable flags, zero-padded to NLB bits."""
    bits = BitArray(params.nlb)
    bits[0] = 1 if pad_out_enable[0] else 0
    bits[1] = 1 if pad_in_enable[0] else 0
    bits[2] = 1 if pad_out_enable[1] else 0
    bits[3] = 1 if pad_in_enable[1] else 0
    return bits


def decode_iob_config(
    params: ArchParams, bits: BitArray
) -> Tuple[Tuple[bool, bool], Tuple[bool, bool]]:
    """Inverse of :func:`encode_iob_config`."""
    if len(bits) != params.nlb:
        raise ArchitectureError(
            f"IOB config must be {params.nlb} bits, got {len(bits)}"
        )
    return (bool(bits[0]), bool(bits[2])), (bool(bits[1]), bool(bits[3]))
