"""Junction-level electrical model of macros and macro clusters.

This module is the detailed counterpart of the paper's Figure 1: it
enumerates every wire *segment* and every programmable *pass transistor*
inside a macro (or a ``c x c`` cluster of macros, Section IV-B), assigns each
switch its position in the raw configuration frame, and exposes the adjacency
needed by the de-virtualization router of Section II-C.

Electrical conventions
----------------------
Every crossing of two wires is an **isolating junction**: both wires are cut
at the crossing and the resulting ends can be joined pairwise by pass
transistors.  A 4-way (cross-shaped) junction has ``C(4,2) = 6`` switches, a
3-way (T-shaped) junction has 3 — exactly the unit costs of Eq. (1).

Local segment keys inside one macro (W tracks, nx ChanX pin lines, ny ChanY
pin lines)::

    ("sbw", t)     stub of the WEST neighbour's ChanX wire into this switch box
    ("sbs", t)     stub of the SOUTH neighbour's ChanY wire into this switch box
    ("tx", t, k)   k-th segment of this macro's ChanX track t, k in 0..nx
                   (k = 0 touches the switch box, k = nx crosses the EAST edge)
    ("ty", t, k)   k-th segment of ChanY track t, k in 0..ny (k = ny → NORTH)
    ("lx", i, s)   ChanX pin line i, segment s in 0..W-1 (s = 0 is the pin)
    ("ly", j, s)   ChanY pin line j, likewise

Raw frame layout per macro: ``[NLB logic bits][switch-box][ChanX CB][ChanY
CB]``, switches emitted in the deterministic order produced by
:meth:`ClusterModel._build`, giving exactly ``Nraw`` bits per macro.

Cluster composition
-------------------
Inside a cluster, macro (i+1, j)'s ``("sbw", t)`` stub *is* macro (i, j)'s
``("tx", t, nx)`` segment (one physical wire crossing the shared edge), and
likewise vertically; :meth:`ClusterModel.canonical` performs that merge.  The
cluster's black-box I/O numbering generalizes Section II-B::

    [0,        cW)   WEST crossings   (row-major: j * W + t)
    [cW,      2cW)   EAST crossings
    [2cW,     3cW)   SOUTH crossings  (column-major: i * W + t)
    [3cW,     4cW)   NORTH crossings
    [4cW, 4cW+c2L)   block pins       ((j * c + i) * L + p)
    4cW + c2L        the null code

which for ``c = 1`` reduces to the paper's ``4W + L + 1`` I/O space and
``M = ceil(log2(4W + L + 1))`` bits per endpoint.
"""

from __future__ import annotations

import functools
from typing import Dict, List, NamedTuple, Tuple

from repro.arch.params import ArchParams
from repro.errors import ArchitectureError
from repro.utils.bitarray import bits_for

LocalKey = Tuple  # ("tx", t, k) etc.
SegKey = Tuple[int, int, LocalKey]  # (macro_i, macro_j, local key)


class Switch(NamedTuple):
    """One programmable pass transistor inside a cluster.

    ``offset`` is the bit position inside the owning macro's *routing* region
    (i.e. the raw frame position is ``NLB + offset``).
    """

    macro_i: int
    macro_j: int
    offset: int
    seg_a: int
    seg_b: int


def iter_macro_junctions(params: ArchParams):
    """Yield every junction of one macro as ``(bit_offset, end_keys)``.

    ``end_keys`` is the ordered list of local segment keys meeting at the
    junction; the junction's pass transistors occupy ``C(len(ends), 2)``
    consecutive bits starting at ``bit_offset`` (inside the macro's routing
    region), pairs enumerated as (0,1), (0,2), ..., (1,2), ...  The emission
    order — switch box, ChanX connection box, ChanY connection box — defines
    the raw frame layout and totals exactly ``params.routing_bits``.
    """
    W = params.channel_width
    nx = len(params.chanx_pins)
    ny = len(params.chany_pins)
    offset = 0
    for t in range(W):
        ends = [("sbw", t), ("tx", t, 0), ("sbs", t), ("ty", t, 0)]
        yield offset, ends
        offset += 6
    for i in range(nx):
        for t in range(W):
            if t < W - 1:
                ends = [("lx", i, t), ("lx", i, t + 1), ("tx", t, i), ("tx", t, i + 1)]
                n = 6
            else:
                ends = [("lx", i, t), ("tx", t, i), ("tx", t, i + 1)]
                n = 3
            yield offset, ends
            offset += n
    for j in range(ny):
        for t in range(W):
            if t < W - 1:
                ends = [("ly", j, t), ("ly", j, t + 1), ("ty", t, j), ("ty", t, j + 1)]
                n = 6
            else:
                ends = [("ly", j, t), ("ty", t, j), ("ty", t, j + 1)]
                n = 3
            yield offset, ends
            offset += n


@functools.lru_cache(maxsize=None)
def _pair_offset_table(num_ends: int) -> Dict[Tuple[int, int], int]:
    table: Dict[Tuple[int, int], int] = {}
    index = 0
    for i in range(num_ends):
        for j in range(i + 1, num_ends):
            table[(i, j)] = index
            index += 1
    return table


def junction_pair_offset(num_ends: int, a: int, b: int) -> int:
    """Bit index (within a junction) of the switch joining ends ``a < b``."""
    if not 0 <= a < b < num_ends:
        raise ArchitectureError(f"bad junction pair ({a},{b}) of {num_ends}")
    return _pair_offset_table(num_ends)[(a, b)]


class ClusterModel:
    """Detailed model of a ``c x c`` block of macros (``c = 1``: one macro)."""

    def __init__(self, params: ArchParams, cluster_size: int = 1):
        if cluster_size < 1:
            raise ArchitectureError("cluster size must be >= 1")
        self.params = params
        self.c = cluster_size
        self.W = params.channel_width
        self.L = params.num_lb_pins
        self.nx = len(params.chanx_pins)
        self.ny = len(params.chany_pins)

        self.seg_keys: List[SegKey] = []
        self.seg_ids: Dict[SegKey, int] = {}
        self.switches: List[Switch] = []
        self.adjacency: List[List[Tuple[int, int]]] = []
        self.io_to_seg: List[int] = []
        self.seg_to_io: Dict[int, int] = {}

        self._build()

        self.io_count = params.cluster_io_count(cluster_size)
        self.null_io = self.io_count
        self.m_bits = params.io_code_bits(cluster_size)
        assert len(self.io_to_seg) == self.io_count

    # -- segment bookkeeping ----------------------------------------------------

    def canonical(self, i: int, j: int, key: LocalKey) -> SegKey:
        """Canonical cluster-wide key for a macro-local segment.

        Switch-box stubs shared with a neighbouring macro *inside* the
        cluster collapse onto that neighbour's own track segment.
        """
        kind = key[0]
        if kind == "sbw" and i > 0:
            return (i - 1, j, ("tx", key[1], self.nx))
        if kind == "sbs" and j > 0:
            return (i, j - 1, ("ty", key[1], self.ny))
        return (i, j, key)

    def _seg(self, i: int, j: int, key: LocalKey) -> int:
        ck = self.canonical(i, j, key)
        sid = self.seg_ids.get(ck)
        if sid is None:
            sid = len(self.seg_keys)
            self.seg_ids[ck] = sid
            self.seg_keys.append(ck)
            self.adjacency.append([])
        return sid

    def _add_switch(self, mi: int, mj: int, offset: int, a: int, b: int) -> None:
        sw_id = len(self.switches)
        self.switches.append(Switch(mi, mj, offset, a, b))
        self.adjacency[a].append((b, sw_id))
        self.adjacency[b].append((a, sw_id))

    def pin_line_key(self, p: int) -> LocalKey:
        """The local key of pin ``p``'s line segment 0 (the pin itself)."""
        if p in self.params.chanx_pins:
            return ("lx", self.params.chanx_pins.index(p), 0)
        return ("ly", self.params.chany_pins.index(p), 0)

    def pin_seg(self, i: int, j: int, p: int) -> int:
        """Segment id of block pin ``p`` of the macro at cluster cell (i, j)."""
        return self.seg_ids[self.canonical(i, j, self.pin_line_key(p))]

    def pin_io_fields(self, io: int) -> Tuple[int, int, int]:
        """Decompose a pin I/O number into (cell i, cell j, pin p)."""
        base = 4 * self.c * self.W
        if not base <= io < base + self.c * self.c * self.L:
            raise ArchitectureError(f"I/O {io} is not a block pin")
        cell, p = divmod(io - base, self.L)
        j, i = divmod(cell, self.c)
        return i, j, p

    @functools.lru_cache(maxsize=None)
    def pin_line_segments(self, io: int) -> List[int]:
        """All segments of the pin line serving pin I/O ``io``.

        A block pin is only reachable through its own line, so these are the
        segments the de-virtualization router protects while other
        connections are routed.  Cached per model: the decoder asks for the
        same pin lines once per cluster decode.
        """
        i, j, p = self.pin_io_fields(io)
        if p in self.params.chanx_pins:
            tag, idx = "lx", self.params.chanx_pins.index(p)
        else:
            tag, idx = "ly", self.params.chany_pins.index(p)
        return [
            self.seg_ids[self.canonical(i, j, (tag, idx, s))]
            for s in range(self.W)
        ]

    def is_pin_io(self, io: int) -> bool:
        return 4 * self.c * self.W <= io < self.io_count

    # -- construction -----------------------------------------------------------

    def _emit_junction(self, mi: int, mj: int, offset: int, ends: List[int]) -> int:
        """Emit all pairwise switches of one junction; return bits consumed."""
        n = 0
        for a in range(len(ends)):
            for b in range(a + 1, len(ends)):
                self._add_switch(mi, mj, offset + n, ends[a], ends[b])
                n += 1
        return n

    def _build_macro(self, mi: int, mj: int) -> None:
        emitted = 0
        last = 0
        for offset, end_keys in iter_macro_junctions(self.params):
            ends = [self._seg(mi, mj, key) for key in end_keys]
            emitted += self._emit_junction(mi, mj, offset, ends)
        if emitted != self.params.routing_bits:
            raise ArchitectureError(
                f"macro switch layout emitted {emitted} bits, expected "
                f"{self.params.routing_bits} (Eq. 1 mismatch)"
            )

    def _build(self) -> None:
        c, W, L = self.c, self.W, self.L
        for mj in range(c):
            for mi in range(c):
                self._build_macro(mi, mj)

        # Deterministic neighbour order for the de-virtualization BFS.
        for lst in self.adjacency:
            lst.sort()

        # Set-wise BFS views of the adjacency: a neighbour bitmask per
        # segment, and the first (lowest-id) switch joining each segment
        # pair.  Bit order equals the sorted list order, so frontier
        # expansion via mask intersection visits neighbours identically.
        self.nbr_masks: List[int] = []
        self.switch_to: List[Dict[int, int]] = []
        for lst in self.adjacency:
            mask = 0
            first_sw: Dict[int, int] = {}
            for nbr, sw_id in lst:
                mask |= 1 << nbr
                if nbr not in first_sw:
                    first_sw[nbr] = sw_id
            self.nbr_masks.append(mask)
            self.switch_to.append(first_sw)

        #: ((macro_i, macro_j), frame offset) per switch — the hot fields of
        #: :class:`Switch` as plain tuples for the router's commit loop.
        self.switch_cells: List[Tuple[Tuple[int, int], int]] = [
            ((sw.macro_i, sw.macro_j), sw.offset) for sw in self.switches
        ]

        # Black-box I/O numbering (see module docstring).
        for j in range(c):
            for t in range(W):
                self.io_to_seg.append(self.seg_ids[self.canonical(0, j, ("sbw", t))])
        for j in range(c):
            for t in range(W):
                self.io_to_seg.append(
                    self.seg_ids[self.canonical(c - 1, j, ("tx", t, self.nx))]
                )
        for i in range(c):
            for t in range(W):
                self.io_to_seg.append(self.seg_ids[self.canonical(i, 0, ("sbs", t))])
        for i in range(c):
            for t in range(W):
                self.io_to_seg.append(
                    self.seg_ids[self.canonical(i, c - 1, ("ty", t, self.ny))]
                )
        for j in range(c):
            for i in range(c):
                for p in range(L):
                    self.io_to_seg.append(self.pin_seg(i, j, p))

        for io, seg in enumerate(self.io_to_seg):
            if seg in self.seg_to_io:
                raise ArchitectureError(
                    f"segment {self.seg_keys[seg]} claimed by two I/O numbers "
                    f"({self.seg_to_io[seg]} and {io})"
                )
            self.seg_to_io[seg] = io

        #: Segments a route may only *terminate* on, never pass through:
        #: cluster-boundary crossings (passing through would leak the net into
        #: a neighbouring macro) and block pins (passing through would attach
        #: the net to the block).
        self.terminal_segs = frozenset(self.io_to_seg)
        #: Flat per-segment membership of ``terminal_segs`` — the router's
        #: BFS inner loop indexes this instead of hashing into the frozenset.
        self.terminal_mask = [False] * len(self.seg_keys)
        for seg in self.terminal_segs:
            self.terminal_mask[seg] = True
        #: Bit s set iff segment s is routable-through when every macro of
        #: the cluster lies inside the task (the common case): not a
        #: terminal.  Decoders with blocked cells mask further bits off.
        full = (1 << len(self.seg_keys)) - 1
        for seg in self.terminal_segs:
            full &= ~(1 << seg)
        self.clear_mask_full = full
        #: First block-pin I/O number: ``io >= pin_io_base`` == is_pin_io.
        self.pin_io_base = 4 * self.c * self.W

    # -- convenience ------------------------------------------------------------

    @property
    def num_segments(self) -> int:
        return len(self.seg_keys)

    @property
    def num_switches(self) -> int:
        return len(self.switches)

    def io_name(self, io: int) -> str:
        """Human-readable name of an I/O number (for diagnostics)."""
        c, W, L = self.c, self.W, self.L
        if io == self.null_io:
            return "NULL"
        side_size = c * W
        if io < side_size:
            return f"WEST[row={io // W},t={io % W}]"
        io -= side_size
        if io < side_size:
            return f"EAST[row={io // W},t={io % W}]"
        io -= side_size
        if io < side_size:
            return f"SOUTH[col={io // W},t={io % W}]"
        io -= side_size
        if io < side_size:
            return f"NORTH[col={io // W},t={io % W}]"
        io -= side_size
        cell, p = divmod(io, L)
        j, i = divmod(cell, c)
        return f"PIN[cell=({i},{j}),p={p}]"


@functools.lru_cache(maxsize=64)
def get_cluster_model(params: ArchParams, cluster_size: int = 1) -> ClusterModel:
    """Cached factory: cluster models are immutable and expensive to build."""
    return ClusterModel(params, cluster_size)


def get_macro_model(params: ArchParams) -> ClusterModel:
    """The single-macro (finest-grain) model of Section II-B."""
    return get_cluster_model(params, 1)
