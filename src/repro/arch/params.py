"""Architecture parameters and the paper's Eq. (1) switch accounting.

The reproduced architecture is the island-style fabric of Section II-A: a
grid of *macros*, each macro being one logic block (a K-input LUT plus an
optional flip-flop), the adjacent horizontal (ChanX) and vertical (ChanY)
routing channels of ``W`` single-length tracks, and the switch box at the
channel intersection.

Programmable-switch counting follows Eq. (1) of the paper::

    Nraw = NLB + 6 * (NS + NC+) + 3 * NCT

where ``NLB`` is the logic-block configuration size (2**K + 1: the LUT truth
table plus the flip-flop bypass bit), ``NS`` the number of 4-way switch-box
points (one per track, six pass transistors each), ``NC+`` the 4-way
connection-box crossings (``L * (W - 1)``), and ``NCT`` the 3-way T-shaped
line terminations (``L``).  With W = 5 and L = 7 this gives the paper's
value of 284 bits per macro.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property, lru_cache

from repro.errors import ArchitectureError
from repro.utils.bitarray import bits_for

#: Macro pin lines routed through the horizontal channel (ChanX).
#: Pins 0..K-1 are LUT inputs, pin K (= L - 1) is the block output.
DEFAULT_CHANX_PINS = (0, 1, 2, 6)
#: Macro pin lines routed through the vertical channel (ChanY).
DEFAULT_CHANY_PINS = (3, 4, 5)


@dataclass(frozen=True)
class ArchParams:
    """Immutable description of the reconfigurable architecture.

    Parameters
    ----------
    channel_width:
        ``W``, the number of tracks per routing channel.  The paper uses
        W = 5 for its worked example and normalizes the evaluation to W = 20.
    lut_size:
        ``K``, the LUT input count.  The paper's fabric uses 6-LUTs.
    chanx_pins / chany_pins:
        Partition of the ``L = K + 1`` logic-block pin lines between the two
        channels adjacent to the block.
    """

    channel_width: int = 20
    lut_size: int = 6
    chanx_pins: tuple = field(default=DEFAULT_CHANX_PINS)
    chany_pins: tuple = field(default=DEFAULT_CHANY_PINS)

    def __post_init__(self) -> None:
        if self.channel_width < 2:
            raise ArchitectureError("channel width must be at least 2 tracks")
        if self.lut_size < 1:
            raise ArchitectureError("LUT size must be at least 1")
        pins = sorted(self.chanx_pins + self.chany_pins)
        if pins != list(range(self.num_lb_pins)):
            raise ArchitectureError(
                f"channel pin partition {self.chanx_pins}+{self.chany_pins} "
                f"must cover pins 0..{self.num_lb_pins - 1} exactly once"
            )

    # -- basic derived quantities ---------------------------------------------

    @cached_property
    def num_lb_pins(self) -> int:
        """``L``: logic-block pins per macro (K LUT inputs + 1 output)."""
        return self.lut_size + 1

    @cached_property
    def nlb(self) -> int:
        """``NLB``: logic-block configuration bits (truth table + FF bypass)."""
        return 2 ** self.lut_size + 1

    @cached_property
    def ns(self) -> int:
        """``NS``: 4-way switch-box points per macro (one per track)."""
        return self.channel_width

    @cached_property
    def nc_plus(self) -> int:
        """``NC+``: 4-way connection-box crossings per macro, ``L * (W - 1)``."""
        return self.num_lb_pins * (self.channel_width - 1)

    @cached_property
    def nct(self) -> int:
        """``NCT``: 3-way T-shaped line terminations per macro, ``L``."""
        return self.num_lb_pins

    @cached_property
    def nraw(self) -> int:
        """Eq. (1): raw configuration bits per macro."""
        return self.nlb + 6 * (self.ns + self.nc_plus) + 3 * self.nct

    @cached_property
    def routing_bits(self) -> int:
        """Raw routing bits per macro (everything except the logic data)."""
        return self.nraw - self.nlb

    # -- Virtual Bit-Stream I/O space (Section II-B) ---------------------------

    @lru_cache(maxsize=None)
    def cluster_io_count(self, cluster_size: int = 1) -> int:
        """Black-box I/Os of a ``c x c`` macro cluster: ``4cW + c^2 L``.

        A route endpoint is either one of the ``4cW`` track crossings on the
        cluster boundary or one of the ``c^2 * L`` logic-block pins inside.
        """
        c = cluster_size
        if c < 1:
            raise ArchitectureError("cluster size must be >= 1")
        return 4 * c * self.channel_width + c * c * self.num_lb_pins

    @lru_cache(maxsize=None)
    def io_code_bits(self, cluster_size: int = 1) -> int:
        """``M = ceil(log2(4cW + c^2 L + 1))``: bits per connection endpoint.

        The ``+ 1`` reserves the null code.  For the paper's W = 5, L = 7
        single-macro example this evaluates to M = 5.
        """
        return bits_for(self.cluster_io_count(cluster_size) + 1)

    @lru_cache(maxsize=None)
    def connection_breakeven(self, cluster_size: int = 1) -> int:
        """Connections codable before VBS stops being smaller than raw.

        ``floor(Nraw / 2M)`` — the paper quotes 28 for the single-macro
        W = 5 example (Nraw = 284, M = 5).
        """
        c = cluster_size
        raw = self.nraw * c * c
        return raw // (2 * self.io_code_bits(cluster_size))

    @lru_cache(maxsize=None)
    def max_routes(self, cluster_size: int = 1) -> int:
        """Upper bound on distinct routes inside a ``c x c`` cluster.

        Every route consumes at least two of the cluster's I/Os, so the bound
        is half the I/O count.  For c = 1 this matches the magnitude of the
        paper's route-count field (``ceil(log2(2W))`` wide at L = 7).
        """
        return self.cluster_io_count(cluster_size) // 2

    @lru_cache(maxsize=None)
    def route_count_bits(self, cluster_size: int = 1) -> int:
        """Width of the per-macro/cluster route-count field, sentinel included.

        One extra value is reserved as the *raw escape* sentinel flagging a
        raw-coded macro (the paper's fallback when no connection order
        decodes, Section III-B).
        """
        return bits_for(self.max_routes(cluster_size) + 2)

    def describe(self) -> str:
        """Human-readable one-line summary."""
        return (
            f"island-style fabric, W={self.channel_width}, {self.lut_size}-LUT+FF "
            f"(L={self.num_lb_pins}, NLB={self.nlb}), Nraw={self.nraw} bits/macro"
        )
