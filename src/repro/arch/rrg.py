"""Track-level routing resource graph (RRG) for the global router.

The global router (``repro.cad.route``) works on whole wires, not junction
segments: one node per single-length track wire and one node per pin line.
This is the classic VPR granularity and keeps PathFinder tractable; the
junction-level expansion (``repro.bitstream.expand``) later converts each
routed tree into exact pass-transistor closures, which is always possible
because every node here has capacity 1 (no two nets ever share a wire).

Node identifiers are dense integers::

    cell = y * width + x
    node = cell * (2W + L) + k
        k in [0, W)       XTRK(x, y, t)   — ChanX wire owned by the cell
        k in [W, 2W)      YTRK(x, y, t)   — ChanY wire owned by the cell
        k in [2W, 2W+L)   LINE(x, y, p)   — pin line p (terminal and dogleg)

Edges (undirected, stored in CSR form):

* connection box: ``LINE(x,y,p) - XTRK(x,y,t)`` for p on ChanX (all t), and
  ``LINE(x,y,p) - YTRK(x,y,t)`` for p on ChanY;
* switch box at SB(x,y): all pairs among the up-to-four same-index wires
  meeting there — ``XTRK(x-1,y,t)``, ``XTRK(x,y,t)``, ``YTRK(x,y-1,t)``,
  ``YTRK(x,y,t)`` (a *disjoint* switch box: the track index is preserved).

Two implementations share the interface:

* :class:`RoutingGraph` materializes the explicit CSR — O(V+E) memory,
  fastest per-node access, and the reference adjacency everything else is
  pinned against.
* :class:`TilePatternRoutingGraph` stores only the deduplicated *tile
  patterns* (interior / edge / corner classes keyed by the presence of the
  four neighbour cells) and derives any node's neighbours as
  ``pattern + cell_offset`` on demand — O(patterns) memory, node-for-node
  identical to the explicit build including neighbour order.

:func:`routing_graph_for` is the fabric-keyed cache in front of both: the
CAD flow, the MCW search and the task harness all fetch graphs through it
so one arch point builds one graph, and giant fabrics automatically get
the compressed representation.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Iterator, List, Tuple

from repro.arch.fabric import FabricArch
from repro.errors import RoutingError
from repro.utils.bitkernels import HAVE_NUMPY

if HAVE_NUMPY:
    import numpy as np

KIND_XTRK = 0
KIND_YTRK = 1
KIND_LINE = 2

#: Largest node id the explicit CSR can store (int32 neighbour arrays).
MAX_EXPLICIT_NODES = 2**31 - 1

#: ``routing_graph_for(compressed=None)`` switches to the tile-pattern
#: representation at this node count: past it the explicit CSR costs tens
#: of megabytes while the patterns stay constant-size.
COMPRESSED_AUTO_NODES = 200_000


class _RoutingGraphBase:
    """Node-id arithmetic and naming shared by both representations."""

    fabric: FabricArch
    W: int
    L: int
    per_cell: int
    num_nodes: int
    num_edges: int

    def __init__(self, fabric: FabricArch):
        self.fabric = fabric
        p = fabric.params
        self.W = p.channel_width
        self.L = p.num_lb_pins
        self.per_cell = 2 * self.W + self.L
        self.num_nodes = fabric.width * fabric.height * self.per_cell

    # -- node id helpers ----------------------------------------------------------

    def xtrk(self, x: int, y: int, t: int) -> int:
        return (y * self.fabric.width + x) * self.per_cell + t

    def ytrk(self, x: int, y: int, t: int) -> int:
        return (y * self.fabric.width + x) * self.per_cell + self.W + t

    def line(self, x: int, y: int, p: int) -> int:
        return (y * self.fabric.width + x) * self.per_cell + 2 * self.W + p

    def node_cell(self, node: int) -> Tuple[int, int]:
        cell, _ = divmod(node, self.per_cell)
        y, x = divmod(cell, self.fabric.width)
        return x, y

    def node_x_of(self, node: int) -> int:
        """Cell x coordinate of a node (computed, no array lookup)."""
        return (node // self.per_cell) % self.fabric.width

    def node_y_of(self, node: int) -> int:
        """Cell y coordinate of a node (computed, no array lookup)."""
        return (node // self.per_cell) // self.fabric.width

    def node_kind(self, node: int) -> Tuple[int, int]:
        """Return (kind, index): kind XTRK/YTRK with track, or LINE with pin."""
        k = node % self.per_cell
        if k < self.W:
            return KIND_XTRK, k
        if k < 2 * self.W:
            return KIND_YTRK, k - self.W
        return KIND_LINE, k - 2 * self.W

    def node_str(self, node: int) -> str:
        x, y = self.node_cell(node)
        kind, idx = self.node_kind(node)
        name = {KIND_XTRK: "XTRK", KIND_YTRK: "YTRK", KIND_LINE: "LINE"}[kind]
        return f"{name}({x},{y},{idx})"

    # -- traversal (implemented by subclasses) -------------------------------------

    def neighbor_list(self, node: int) -> List[int]:
        raise NotImplementedError

    def degree(self, node: int) -> int:
        raise NotImplementedError

    def iter_edges(self) -> Iterator[Tuple[int, int]]:
        """Each undirected edge exactly once (a < b), in CSR order."""
        for a in range(self.num_nodes):
            for b in self.neighbor_list(a):
                if a < b:
                    yield a, b


class RoutingGraph(_RoutingGraphBase):
    """CSR adjacency over the track-level routing resources of a fabric."""

    def __init__(self, fabric: FabricArch):
        super().__init__(fabric)
        self._build(fabric)

    # -- construction --------------------------------------------------------------

    def _build(self, fabric: FabricArch) -> None:
        if self.num_nodes > MAX_EXPLICIT_NODES:
            # The CSR stores node ids in int32 (numpy) / array("i")
            # (fallback); a larger id space would wrap silently and
            # corrupt the adjacency.  Giant fabrics must use the
            # tile-pattern representation instead.
            raise RoutingError(
                f"{fabric.width}x{fabric.height} fabric at "
                f"W={self.W} has {self.num_nodes} routing nodes, more than "
                f"the explicit CSR's int32 id space ({MAX_EXPLICIT_NODES}); "
                f"use TilePatternRoutingGraph (routing_graph_for picks it "
                f"automatically)"
            )
        W, L = self.W, self.L
        width, height = fabric.width, fabric.height
        chanx = fabric.params.chanx_pins
        chany = fabric.params.chany_pins

        src: List[int] = []
        dst: List[int] = []

        def link(a: int, b: int) -> None:
            src.append(a)
            dst.append(b)
            src.append(b)
            dst.append(a)

        for y in range(height):
            for x in range(width):
                # Connection boxes.
                for p in chanx:
                    ln = self.line(x, y, p)
                    for t in range(W):
                        link(ln, self.xtrk(x, y, t))
                for p in chany:
                    ln = self.line(x, y, p)
                    for t in range(W):
                        link(ln, self.ytrk(x, y, t))
                # Switch box at SB(x, y): pairs among the wires meeting there.
                for t in range(W):
                    wires = [self.xtrk(x, y, t), self.ytrk(x, y, t)]
                    if x > 0:
                        wires.append(self.xtrk(x - 1, y, t))
                    if y > 0:
                        wires.append(self.ytrk(x, y - 1, t))
                    for i in range(len(wires)):
                        for j in range(i + 1, len(wires)):
                            link(wires[i], wires[j])

        if HAVE_NUMPY:
            src_a = np.asarray(src, dtype=np.int32)
            dst_a = np.asarray(dst, dtype=np.int32)
            order = np.argsort(src_a, kind="stable")
            src_a = src_a[order]
            dst_a = dst_a[order]
            counts = np.bincount(src_a, minlength=self.num_nodes)
            self.indptr = np.zeros(self.num_nodes + 1, dtype=np.int64)
            np.cumsum(counts, out=self.indptr[1:])
            self.nbrs = dst_a
            # Node positions (cell coordinates) for the A* heuristic.
            cells = np.arange(self.num_nodes, dtype=np.int64) // self.per_cell
            self.node_x = (cells % width).astype(np.int32)
            self.node_y = (cells // width).astype(np.int32)
        else:
            # Pure-Python CSR via a stable counting sort — the same
            # neighbour order as the stable argsort above.  array.array
            # keeps the memory footprint and the ``.tolist()`` surface
            # of the numpy arrays.
            from array import array

            n = self.num_nodes
            counts = [0] * n
            for a in src:
                counts[a] += 1
            indptr = [0] * (n + 1)
            run = 0
            for i, cnt in enumerate(counts):
                run += cnt
                indptr[i + 1] = run
            nbrs = [0] * len(src)
            cursor = indptr[:n]
            for a, b in zip(src, dst):
                nbrs[cursor[a]] = b
                cursor[a] += 1
            self.indptr = array("q", indptr)
            self.nbrs = array("i", nbrs)
            per_cell = self.per_cell
            self.node_x = array(
                "i", ((i // per_cell) % width for i in range(n))
            )
            self.node_y = array(
                "i", ((i // per_cell) // width for i in range(n))
            )
        self.num_edges = len(self.nbrs) // 2

    # -- traversal -------------------------------------------------------------------

    def neighbors(self, node: int) -> "np.ndarray":
        """Neighbour node ids of ``node`` (ascending order not guaranteed).

        An ``array.array`` slice on the pure-Python fallback — same
        iteration, membership and ``.tolist()`` surface.
        """
        return self.nbrs[self.indptr[node] : self.indptr[node + 1]]

    def neighbor_list(self, node: int) -> List[int]:
        """Neighbours as a plain list of Python ints (router hot path)."""
        return self.nbrs[self.indptr[node] : self.indptr[node + 1]].tolist()

    def degree(self, node: int) -> int:
        return int(self.indptr[node + 1] - self.indptr[node])

    def iter_edges(self) -> Iterator[Tuple[int, int]]:
        """Each undirected edge exactly once (a < b), in CSR order."""
        if HAVE_NUMPY:
            src = np.repeat(
                np.arange(self.num_nodes, dtype=np.int64),
                np.diff(self.indptr),
            )
            keep = src < self.nbrs
            yield from zip(src[keep].tolist(), self.nbrs[keep].tolist())
            return
        for a in range(self.num_nodes):
            for b in self.neighbors(a):
                if a < b:
                    yield a, int(b)


def _tile_pattern(
    params, has_west: bool, has_east: bool, has_south: bool, has_north: bool
) -> List[List[Tuple[int, int, int]]]:
    """Per-local-node neighbour template of one tile class.

    Replays the explicit builder's edge generation over the smallest
    window of cells that reproduces the focus cell's surroundings
    (present/absent west, east, south, north neighbours) and collects the
    directed edges leaving the focus cell, in global append order — which
    is exactly the neighbour order the stable CSR sort produces.  Entries
    are ``(dx, dy, k)``: neighbour = local node ``k`` of the cell offset
    by ``(dx, dy)``.
    """
    W = params.channel_width
    L = params.num_lb_pins
    chanx = params.chanx_pins
    chany = params.chany_pins
    per_cell = 2 * W + L

    fx = 1 if has_west else 0
    fy = 1 if has_south else 0
    vw = fx + 1 + (1 if has_east else 0)
    vh = fy + 1 + (1 if has_north else 0)

    def xt(x: int, y: int, t: int) -> Tuple[int, int, int]:
        return (x, y, t)

    def yt(x: int, y: int, t: int) -> Tuple[int, int, int]:
        return (x, y, W + t)

    def ln(x: int, y: int, p: int) -> Tuple[int, int, int]:
        return (x, y, 2 * W + p)

    edges: List[Tuple[Tuple[int, int, int], Tuple[int, int, int]]] = []

    def link(a, b) -> None:
        edges.append((a, b))
        edges.append((b, a))

    # The exact loop structure of RoutingGraph._build over the window.
    for y in range(vh):
        for x in range(vw):
            for p in chanx:
                l = ln(x, y, p)
                for t in range(W):
                    link(l, xt(x, y, t))
            for p in chany:
                l = ln(x, y, p)
                for t in range(W):
                    link(l, yt(x, y, t))
            for t in range(W):
                wires = [xt(x, y, t), yt(x, y, t)]
                if x > 0:
                    wires.append(xt(x - 1, y, t))
                if y > 0:
                    wires.append(yt(x, y - 1, t))
                for i in range(len(wires)):
                    for j in range(i + 1, len(wires)):
                        link(wires[i], wires[j])

    rows: List[List[Tuple[int, int, int]]] = [[] for _ in range(per_cell)]
    for (sx, sy, sk), (dx, dy, dk) in edges:
        if sx == fx and sy == fy:
            rows[sk].append((dx - fx, dy - fy, dk))
    return rows


class TilePatternRoutingGraph(_RoutingGraphBase):
    """Tile-pattern adjacency: O(patterns) memory instead of O(V+E).

    The fabric is tile-regular, so a node's neighbour list depends only
    on its local index and on which of the cell's four neighbour cells
    exist — at most nine distinct tile classes (interior, four edges,
    four corners) for any grid.  Each class stores, per local node, the
    precomputed *node-id offsets* of its neighbours; ``neighbors(n)`` is
    ``[n + off for off in pattern]``.

    Pinned node-for-node identical (values *and* order) to
    :class:`RoutingGraph` by the equivalence property suite.
    """

    def __init__(self, fabric: FabricArch):
        super().__init__(fabric)
        width, height = fabric.width, fabric.height
        per_cell = self.per_cell

        # Reachable flag pairs along each axis (width/height 1 and 2
        # collapse edge and corner classes).
        def axis_flags(extent: int) -> List[Tuple[bool, bool]]:
            if extent == 1:
                return [(False, False)]
            flags = [(False, True), (True, False)]
            if extent > 2:
                flags.append((True, True))
            return flags

        # mask -> per-k tuple of node-id offsets (dy*width + dx cells
        # away, local index k2):  neighbour = node + offset.
        self._offsets: Dict[int, List[Tuple[int, ...]]] = {}
        self._degrees: Dict[int, List[int]] = {}
        directed_per_mask: Dict[int, int] = {}
        for hw, he in axis_flags(width):
            for hs, hn in axis_flags(height):
                mask = (hw << 0) | (he << 1) | (hs << 2) | (hn << 3)
                rows = _tile_pattern(fabric.params, hw, he, hs, hn)
                self._offsets[mask] = [
                    tuple(
                        (dy * width + dx) * per_cell + k2 - k
                        for dx, dy, k2 in row
                    )
                    for k, row in enumerate(rows)
                ]
                self._degrees[mask] = [len(row) for row in rows]
                directed_per_mask[mask] = sum(len(row) for row in rows)

        # Edge count without enumerating cells: class populations are a
        # product of the per-axis position counts.
        def axis_counts(extent: int) -> Dict[Tuple[bool, bool], int]:
            if extent == 1:
                return {(False, False): 1}
            counts = {(False, True): 1, (True, False): 1}
            if extent > 2:
                counts[(True, True)] = extent - 2
            return counts

        directed = 0
        for (hw, he), cx in axis_counts(width).items():
            for (hs, hn), cy in axis_counts(height).items():
                mask = (hw << 0) | (he << 1) | (hs << 2) | (hn << 3)
                directed += cx * cy * directed_per_mask[mask]
        self.num_edges = directed // 2

    def _mask_of(self, x: int, y: int) -> int:
        width, height = self.fabric.width, self.fabric.height
        return (
            (x > 0)
            | ((x < width - 1) << 1)
            | ((y > 0) << 2)
            | ((y < height - 1) << 3)
        )

    # -- traversal -------------------------------------------------------------------

    def neighbor_list(self, node: int) -> List[int]:
        cell, k = divmod(node, self.per_cell)
        y, x = divmod(cell, self.fabric.width)
        return [node + off for off in self._offsets[self._mask_of(x, y)][k]]

    def neighbors(self, node: int) -> List[int]:
        """Neighbour node ids (a plain list: same iteration/membership)."""
        return self.neighbor_list(node)

    def degree(self, node: int) -> int:
        cell, k = divmod(node, self.per_cell)
        y, x = divmod(cell, self.fabric.width)
        return self._degrees[self._mask_of(x, y)][k]


# -- fabric-keyed graph cache ----------------------------------------------------

_RRG_CACHE: "OrderedDict[tuple, _RoutingGraphBase]" = OrderedDict()
_RRG_CACHE_CAPACITY = 8
_RRG_CACHE_LOCK = threading.Lock()


def routing_graph_for(
    fabric: FabricArch, compressed: "bool | None" = None
) -> _RoutingGraphBase:
    """The routing graph of ``fabric``, built once per arch point.

    ``compressed=None`` (the default) picks the representation by size:
    explicit CSR below :data:`COMPRESSED_AUTO_NODES` routing nodes (the
    fastest per-node access for ordinary fabrics), tile patterns above it
    (constant memory for giant fabrics).  Graphs are cached under the
    fabric's structural key — params, dimensions and cell types — so the
    MCW search's repeated widths and the task harness's grids reuse one
    graph per arch point.  Both representations are adjacency-identical,
    so a cache hit can never change a routing result.
    """
    if compressed is None:
        per_cell = 2 * fabric.params.channel_width + fabric.params.num_lb_pins
        compressed = (
            fabric.width * fabric.height * per_cell >= COMPRESSED_AUTO_NODES
        )
    key = fabric.structure_key() + (bool(compressed),)
    with _RRG_CACHE_LOCK:
        graph = _RRG_CACHE.get(key)
        if graph is not None:
            _RRG_CACHE.move_to_end(key)
            return graph
    graph = (
        TilePatternRoutingGraph(fabric) if compressed else RoutingGraph(fabric)
    )
    with _RRG_CACHE_LOCK:
        existing = _RRG_CACHE.get(key)
        if existing is not None:
            _RRG_CACHE.move_to_end(key)
            return existing
        _RRG_CACHE[key] = graph
        while len(_RRG_CACHE) > _RRG_CACHE_CAPACITY:
            _RRG_CACHE.popitem(last=False)
    return graph


def clear_routing_graph_cache() -> None:
    """Drop every cached graph (tests and memory-measurement harnesses)."""
    with _RRG_CACHE_LOCK:
        _RRG_CACHE.clear()
