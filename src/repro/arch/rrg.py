"""Track-level routing resource graph (RRG) for the global router.

The global router (``repro.cad.route``) works on whole wires, not junction
segments: one node per single-length track wire and one node per pin line.
This is the classic VPR granularity and keeps PathFinder tractable; the
junction-level expansion (``repro.bitstream.expand``) later converts each
routed tree into exact pass-transistor closures, which is always possible
because every node here has capacity 1 (no two nets ever share a wire).

Node identifiers are dense integers::

    cell = y * width + x
    node = cell * (2W + L) + k
        k in [0, W)       XTRK(x, y, t)   — ChanX wire owned by the cell
        k in [W, 2W)      YTRK(x, y, t)   — ChanY wire owned by the cell
        k in [2W, 2W+L)   LINE(x, y, p)   — pin line p (terminal and dogleg)

Edges (undirected, stored in CSR form):

* connection box: ``LINE(x,y,p) - XTRK(x,y,t)`` for p on ChanX (all t), and
  ``LINE(x,y,p) - YTRK(x,y,t)`` for p on ChanY;
* switch box at SB(x,y): all pairs among the up-to-four same-index wires
  meeting there — ``XTRK(x-1,y,t)``, ``XTRK(x,y,t)``, ``YTRK(x,y-1,t)``,
  ``YTRK(x,y,t)`` (a *disjoint* switch box: the track index is preserved).
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from repro.arch.fabric import FabricArch
from repro.utils.bitkernels import HAVE_NUMPY

if HAVE_NUMPY:
    import numpy as np

KIND_XTRK = 0
KIND_YTRK = 1
KIND_LINE = 2


class RoutingGraph:
    """CSR adjacency over the track-level routing resources of a fabric."""

    def __init__(self, fabric: FabricArch):
        self.fabric = fabric
        p = fabric.params
        self.W = p.channel_width
        self.L = p.num_lb_pins
        self.per_cell = 2 * self.W + self.L
        self.num_nodes = fabric.width * fabric.height * self.per_cell
        self._build(fabric)

    # -- node id helpers ----------------------------------------------------------

    def xtrk(self, x: int, y: int, t: int) -> int:
        return (y * self.fabric.width + x) * self.per_cell + t

    def ytrk(self, x: int, y: int, t: int) -> int:
        return (y * self.fabric.width + x) * self.per_cell + self.W + t

    def line(self, x: int, y: int, p: int) -> int:
        return (y * self.fabric.width + x) * self.per_cell + 2 * self.W + p

    def node_cell(self, node: int) -> Tuple[int, int]:
        cell, _ = divmod(node, self.per_cell)
        y, x = divmod(cell, self.fabric.width)
        return x, y

    def node_kind(self, node: int) -> Tuple[int, int]:
        """Return (kind, index): kind XTRK/YTRK with track, or LINE with pin."""
        k = node % self.per_cell
        if k < self.W:
            return KIND_XTRK, k
        if k < 2 * self.W:
            return KIND_YTRK, k - self.W
        return KIND_LINE, k - 2 * self.W

    def node_str(self, node: int) -> str:
        x, y = self.node_cell(node)
        kind, idx = self.node_kind(node)
        name = {KIND_XTRK: "XTRK", KIND_YTRK: "YTRK", KIND_LINE: "LINE"}[kind]
        return f"{name}({x},{y},{idx})"

    # -- construction --------------------------------------------------------------

    def _build(self, fabric: FabricArch) -> None:
        W, L = self.W, self.L
        width, height = fabric.width, fabric.height
        chanx = fabric.params.chanx_pins
        chany = fabric.params.chany_pins

        src: List[int] = []
        dst: List[int] = []

        def link(a: int, b: int) -> None:
            src.append(a)
            dst.append(b)
            src.append(b)
            dst.append(a)

        for y in range(height):
            for x in range(width):
                # Connection boxes.
                for p in chanx:
                    ln = self.line(x, y, p)
                    for t in range(W):
                        link(ln, self.xtrk(x, y, t))
                for p in chany:
                    ln = self.line(x, y, p)
                    for t in range(W):
                        link(ln, self.ytrk(x, y, t))
                # Switch box at SB(x, y): pairs among the wires meeting there.
                for t in range(W):
                    wires = [self.xtrk(x, y, t), self.ytrk(x, y, t)]
                    if x > 0:
                        wires.append(self.xtrk(x - 1, y, t))
                    if y > 0:
                        wires.append(self.ytrk(x, y - 1, t))
                    for i in range(len(wires)):
                        for j in range(i + 1, len(wires)):
                            link(wires[i], wires[j])

        if HAVE_NUMPY:
            src_a = np.asarray(src, dtype=np.int32)
            dst_a = np.asarray(dst, dtype=np.int32)
            order = np.argsort(src_a, kind="stable")
            src_a = src_a[order]
            dst_a = dst_a[order]
            counts = np.bincount(src_a, minlength=self.num_nodes)
            self.indptr = np.zeros(self.num_nodes + 1, dtype=np.int64)
            np.cumsum(counts, out=self.indptr[1:])
            self.nbrs = dst_a
            # Node positions (cell coordinates) for the A* heuristic.
            cells = np.arange(self.num_nodes, dtype=np.int64) // self.per_cell
            self.node_x = (cells % width).astype(np.int32)
            self.node_y = (cells // width).astype(np.int32)
        else:
            # Pure-Python CSR via a stable counting sort — the same
            # neighbour order as the stable argsort above.  array.array
            # keeps the memory footprint and the ``.tolist()`` surface
            # of the numpy arrays.
            from array import array

            n = self.num_nodes
            counts = [0] * n
            for a in src:
                counts[a] += 1
            indptr = [0] * (n + 1)
            run = 0
            for i, cnt in enumerate(counts):
                run += cnt
                indptr[i + 1] = run
            nbrs = [0] * len(src)
            cursor = indptr[:n]
            for a, b in zip(src, dst):
                nbrs[cursor[a]] = b
                cursor[a] += 1
            self.indptr = array("q", indptr)
            self.nbrs = array("i", nbrs)
            per_cell = self.per_cell
            self.node_x = array(
                "i", ((i // per_cell) % width for i in range(n))
            )
            self.node_y = array(
                "i", ((i // per_cell) // width for i in range(n))
            )
        self.num_edges = len(self.nbrs) // 2

    # -- traversal -------------------------------------------------------------------

    def neighbors(self, node: int) -> "np.ndarray":
        """Neighbour node ids of ``node`` (ascending order not guaranteed).

        An ``array.array`` slice on the pure-Python fallback — same
        iteration, membership and ``.tolist()`` surface.
        """
        return self.nbrs[self.indptr[node] : self.indptr[node + 1]]

    def degree(self, node: int) -> int:
        return int(self.indptr[node + 1] - self.indptr[node])

    def iter_edges(self) -> Iterator[Tuple[int, int]]:
        """Each undirected edge exactly once (a < b)."""
        for a in range(self.num_nodes):
            for b in self.neighbors(a):
                if a < b:
                    yield a, int(b)
