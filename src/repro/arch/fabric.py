"""The reconfigurable fabric: a rectangular grid of uniform macros.

Every grid cell carries an identical macro footprint (Section II-A); the
*block type* occupying the cell (CLB or IOB) decides which pin lines are
terminals and how the NLB logic-data bits are interpreted.  Following the
VPR-classic island layout used by the paper's flow, logic blocks fill an
``n x n`` interior and I/O blocks form a one-cell perimeter ring, so a
Table II circuit of size ``n`` occupies an ``(n+2) x (n+2)`` task rectangle.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from repro.arch.blocktype import BlockType, make_clb_type, make_iob_type
from repro.arch.params import ArchParams
from repro.errors import ArchitectureError
from repro.utils.geometry import Point, Rect


class FabricArch:
    """A fabric instance: architecture parameters plus a typed cell grid."""

    def __init__(
        self,
        params: ArchParams,
        width: int,
        height: int,
        type_map: Dict[Tuple[int, int], str],
    ):
        if width < 1 or height < 1:
            raise ArchitectureError("fabric must be at least 1x1")
        self.params = params
        self.width = width
        self.height = height
        self.block_types: Dict[str, BlockType] = {
            "clb": make_clb_type(params),
            "iob": make_iob_type(params),
        }
        for (x, y), tname in type_map.items():
            if not (0 <= x < width and 0 <= y < height):
                raise ArchitectureError(f"cell ({x},{y}) outside {width}x{height}")
            if tname not in self.block_types:
                raise ArchitectureError(f"unknown block type {tname!r} at ({x},{y})")
        self._type_map = dict(type_map)
        self._structure_key: "Tuple | None" = None

    # -- constructors -----------------------------------------------------------

    @classmethod
    def island(cls, params: ArchParams, logic_size: int) -> "FabricArch":
        """The VPR-classic island layout: CLB core, IOB perimeter ring."""
        if logic_size < 1:
            raise ArchitectureError("logic core must be at least 1x1")
        side = logic_size + 2
        type_map: Dict[Tuple[int, int], str] = {}
        for y in range(side):
            for x in range(side):
                on_ring = x in (0, side - 1) or y in (0, side - 1)
                type_map[(x, y)] = "iob" if on_ring else "clb"
        return cls(params, side, side, type_map)

    # -- queries ----------------------------------------------------------------

    def structure_key(self) -> Tuple:
        """Hashable identity of the fabric's structure.

        Two fabrics with equal keys have identical parameters, dimensions
        and cell typing — and therefore identical routing graphs; the
        RRG cache (:func:`repro.arch.rrg.routing_graph_for`) keys on it.
        """
        if self._structure_key is None:
            self._structure_key = (
                self.params,
                self.width,
                self.height,
                frozenset(self._type_map.items()),
            )
        return self._structure_key

    @property
    def bounds(self) -> Rect:
        return Rect(0, 0, self.width, self.height)

    @property
    def num_macros(self) -> int:
        return self.width * self.height

    def type_name_at(self, x: int, y: int) -> str:
        try:
            return self._type_map[(x, y)]
        except KeyError:
            raise ArchitectureError(f"cell ({x},{y}) outside the fabric")

    def type_at(self, x: int, y: int) -> BlockType:
        return self.block_types[self.type_name_at(x, y)]

    def capacity_at(self, x: int, y: int) -> int:
        """Number of placeable sub-sites at a cell (IOBs hold 2 pads)."""
        return self.type_at(x, y).capacity

    def cells(self) -> Iterator[Point]:
        for y in range(self.height):
            for x in range(self.width):
                yield Point(x, y)

    def cells_of_type(self, tname: str) -> List[Point]:
        """All cells carrying block type ``tname``, in raster order."""
        return [p for p in self.cells() if self._type_map[(p.x, p.y)] == tname]

    def site_count(self, tname: str) -> int:
        """Total placeable sites of a type (cells x capacity)."""
        cap = self.block_types[tname].capacity
        return cap * len(self.cells_of_type(tname))

    # -- global electrical naming ------------------------------------------------

    def global_segment(self, x: int, y: int, local_key: Tuple) -> Tuple:
        """Fabric-wide canonical name for a macro-local segment.

        Mirrors :meth:`repro.arch.macro.ClusterModel.canonical` but over the
        whole grid: a switch-box stub is the same wire as the neighbouring
        macro's outermost track segment.  Stubs on the fabric's west/south
        edge have no owner macro and keep their own name (dangling wires).
        """
        kind = local_key[0]
        nx = len(self.params.chanx_pins)
        ny = len(self.params.chany_pins)
        if kind == "sbw" and x > 0:
            return ("tx", x - 1, y, local_key[1], nx)
        if kind == "sbs" and y > 0:
            return ("ty", x, y - 1, local_key[1], ny)
        return (kind, x, y) + tuple(local_key[1:])

    def describe(self) -> str:
        n_clb = len(self.cells_of_type("clb"))
        n_iob = len(self.cells_of_type("iob"))
        return (
            f"{self.width}x{self.height} fabric ({n_clb} CLB, {n_iob} IOB cells), "
            f"{self.params.describe()}"
        )
