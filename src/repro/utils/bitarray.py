"""Bit-level containers used by the raw bitstream and the Virtual Bit-Stream.

The paper's configuration formats are specified down to the bit (Table I and
Eq. 1), so the codec layers need exact-width reads and writes.  ``BitArray``
is a mutable, indexable vector of bits; ``BitWriter``/``BitReader`` stream
fixed-width unsigned fields over it, most-significant bit first.

All bulk operations delegate to :mod:`repro.utils.bitkernels`, which moves
whole fields and byte spans per call (numpy block ops when available, big-int
batch kernels otherwise) instead of looping one bit at a time.  The kernels
are bit-exact with the original per-bit loops — byte-for-byte output is pinned
by the golden vectors — so only speed changes here.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Iterator, List, Sequence

from . import bitkernels as _bk


def bits_for(value_count: int) -> int:
    """Width in bits of a field able to code ``value_count`` distinct values.

    This is the ``ceil(log2(n))`` used throughout Table I of the paper, with
    the convention that a field for a single possible value still occupies one
    bit (a zero-width field would make the stream ambiguous).

    >>> bits_for(28)
    5
    >>> bits_for(1)
    1
    """
    if value_count < 1:
        raise ValueError(f"field must code at least one value, got {value_count}")
    return max(1, (value_count - 1).bit_length())


class BitArray:
    """A mutable sequence of bits backed by a Python ``bytearray``.

    Bits are addressed from 0; bit *i* lives in byte ``i // 8`` at in-byte
    position ``7 - i % 8`` (most-significant bit first), which matches the
    byte serialization used when a stream is written to external memory.
    """

    __slots__ = ("_buf", "_nbits")

    def __init__(self, nbits: int = 0, fill: int = 0):
        if nbits < 0:
            raise ValueError("bit count must be non-negative")
        if fill not in (0, 1):
            raise ValueError("fill must be 0 or 1")
        self._nbits = nbits
        byte_fill = 0xFF if fill else 0x00
        self._buf = bytearray([byte_fill]) * ((nbits + 7) // 8)
        if fill and nbits % 8:
            # Clear the padding bits past the end so equality is canonical.
            self._buf[-1] &= 0xFF << (8 - nbits % 8) & 0xFF

    # -- construction helpers -------------------------------------------------

    @classmethod
    def from_bits(cls, bits: Iterable[int]) -> "BitArray":
        """Build from an iterable of 0/1 integers."""
        items = list(bits)
        arr = cls(len(items))
        acc = 0
        for b in items:
            acc = (acc << 1) | (1 if b else 0)
        if items:
            _bk.set_field(arr._buf, 0, len(items), acc)
        return arr

    @classmethod
    def from_bytes(cls, data: bytes, nbits: int | None = None) -> "BitArray":
        """Build from packed bytes, optionally truncated to ``nbits``."""
        total = len(data) * 8
        if nbits is None:
            nbits = total
        if nbits > total:
            raise ValueError(f"nbits={nbits} exceeds {total} bits of data")
        arr = cls(0)
        arr._nbits = nbits
        arr._buf = bytearray(data[: (nbits + 7) // 8])
        if nbits % 8:
            arr._buf[-1] &= 0xFF << (8 - nbits % 8) & 0xFF
        return arr

    @classmethod
    def from_ones(cls, nbits: int, positions: Sequence[int]) -> "BitArray":
        """Build an ``nbits``-bit array with exactly ``positions`` set."""
        for p in positions:
            if not 0 <= p < nbits:
                raise IndexError(f"bit index {p} out of range [0, {nbits})")
        arr = cls(0)
        arr._nbits = nbits
        arr._buf = _bk.set_bits(nbits, positions)
        return arr

    # -- core protocol ---------------------------------------------------------

    def __len__(self) -> int:
        return self._nbits

    def _check(self, idx: int) -> int:
        if idx < 0:
            idx += self._nbits
        if not 0 <= idx < self._nbits:
            raise IndexError(f"bit index {idx} out of range [0, {self._nbits})")
        return idx

    def __getitem__(self, idx: int) -> int:
        idx = self._check(idx)
        return (self._buf[idx >> 3] >> (7 - (idx & 7))) & 1

    def __setitem__(self, idx: int, value: int) -> None:
        idx = self._check(idx)
        mask = 1 << (7 - (idx & 7))
        if value:
            self._buf[idx >> 3] |= mask
        else:
            self._buf[idx >> 3] &= ~mask & 0xFF

    def __iter__(self) -> Iterator[int]:
        buf = self._buf
        for i in range(self._nbits):
            yield (buf[i >> 3] >> (7 - (i & 7))) & 1

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitArray):
            return NotImplemented
        return self._nbits == other._nbits and self._buf == other._buf

    def __hash__(self) -> int:
        return hash((self._nbits, bytes(self._buf)))

    def __xor__(self, other: "BitArray") -> "BitArray":
        """Bitwise XOR of two equal-length arrays (byte-wise, so cheap).

        Both operands keep their canonical zero padding past the end, so
        the result's padding is zero too and equality stays canonical.
        """
        if not isinstance(other, BitArray):
            return NotImplemented
        if self._nbits != other._nbits:
            raise ValueError(
                f"cannot XOR a {self._nbits}-bit array with a "
                f"{other._nbits}-bit array"
            )
        out = BitArray(0)
        out._nbits = self._nbits
        out._buf = _bk.xor_bytes(self._buf, other._buf)
        return out

    def __repr__(self) -> str:
        preview = "".join(str(b) for b in list(self)[:32])
        ell = "…" if self._nbits > 32 else ""
        return f"BitArray({self._nbits} bits: {preview}{ell})"

    # -- bulk operations --------------------------------------------------------

    def append(self, bit: int) -> None:
        """Append a single bit."""
        n = self._nbits
        self._nbits = n + 1
        if (n >> 3) >= len(self._buf):
            self._buf.append(0)
        if bit:
            # Padding past the end is canonically zero, so only a set bit
            # needs a write.
            self._buf[n >> 3] |= 0x80 >> (n & 7)

    def extend(self, bits: Iterable[int]) -> None:
        """Append every bit from ``bits``."""
        if isinstance(bits, BitArray):
            n = bits._nbits
            if not n:
                return
            old = self._nbits
            new = old + n
            need = (new + 7) >> 3
            if need > len(self._buf):
                self._buf.extend(bytes(need - len(self._buf)))
            _bk.splice_bits(self._buf, old, bits._buf, n)
            self._nbits = new
            return
        for b in bits:
            self.append(b)

    def set_field(self, offset: int, width: int, value: int) -> None:
        """Write ``value`` as a ``width``-bit big-endian field at ``offset``."""
        if width < 0:
            raise ValueError("width must be non-negative")
        if value < 0 or value >= (1 << width):
            raise ValueError(f"value {value} does not fit in {width} bits")
        if 0 <= offset and offset + width <= self._nbits:
            _bk.set_field(self._buf, offset, width, value)
            return
        # Out-of-range or negative offsets keep the legacy per-bit indexing
        # semantics (wrapping, IndexError text).
        for i in range(width):
            self[offset + i] = (value >> (width - 1 - i)) & 1

    def get_field(self, offset: int, width: int) -> int:
        """Read a ``width``-bit big-endian field starting at ``offset``."""
        if 0 <= offset and width >= 0 and offset + width <= self._nbits:
            return _bk.get_field(self._buf, offset, width)
        value = 0
        for i in range(width):
            value = (value << 1) | self[offset + i]
        return value

    def count(self) -> int:
        """Number of set bits (population count)."""
        return _bk.popcount(self._buf)

    def ones(self) -> List[int]:
        """Ascending positions of all set bits."""
        return _bk.find_ones(self._buf, self._nbits)

    def to_bytes(self) -> bytes:
        """Packed byte representation; final byte zero-padded."""
        return bytes(self._buf)

    def digest(self) -> str:
        """Content-addressing digest (hex SHA-256 over length + bytes).

        Two arrays share a digest exactly when they are equal, including
        length — the bit count is hashed ahead of the payload so e.g. a
        7-bit and an 8-bit array with identical bytes differ.  Used as the
        cache key of the runtime decode cache.
        """
        h = hashlib.sha256()
        h.update(self._nbits.to_bytes(8, "big"))
        h.update(self._buf)
        return h.hexdigest()

    def copy(self) -> "BitArray":
        dup = BitArray(0)
        dup._nbits = self._nbits
        dup._buf = bytearray(self._buf)
        return dup

    def slice(self, offset: int, width: int) -> "BitArray":
        """A copy of bits ``[offset, offset + width)``."""
        if offset < 0 or width < 0 or offset + width > self._nbits:
            raise IndexError(
                f"slice [{offset}, {offset + width}) out of range [0, {self._nbits})"
            )
        out = BitArray(0)
        out._nbits = width
        out._buf = _bk.extract_bits(self._buf, offset, width)
        return out

    def overwrite(self, offset: int, other: "BitArray") -> None:
        """Copy all bits of ``other`` into this array starting at ``offset``."""
        if offset < 0 or offset + len(other) > self._nbits:
            raise IndexError(
                f"overwrite [{offset}, {offset + len(other)}) out of range "
                f"[0, {self._nbits})"
            )
        _bk.splice_bits(self._buf, offset, other._buf, other._nbits)


class BitWriter:
    """Append-only stream of fixed-width unsigned fields over a BitArray.

    Internally the writer accumulates into a big-int window spilled to a
    ``bytearray`` in whole-byte chunks, so a ``write`` costs one shift-or
    instead of ``width`` per-bit appends.  ``finish`` assembles the final
    :class:`BitArray` without copying the byte buffer.
    """

    __slots__ = ("_bytes", "_acc", "_nacc", "_result")

    # Spill the accumulator once it holds this many bits, keeping the
    # big-int shifts cheap no matter how long the stream runs.
    _SPILL_BITS = 512

    def __init__(self) -> None:
        self._bytes = bytearray()
        self._acc = 0
        self._nacc = 0
        self._result: BitArray | None = None

    def _spill(self) -> None:
        nbytes = self._nacc >> 3
        if nbytes:
            rem = self._nacc & 7
            self._bytes += (self._acc >> rem).to_bytes(nbytes, "big")
            self._acc &= (1 << rem) - 1
            self._nacc = rem

    def write(self, value: int, width: int) -> None:
        """Append ``value`` using exactly ``width`` bits (MSB first)."""
        if value < 0 or value >= (1 << width):
            raise ValueError(f"value {value} does not fit in {width} bits")
        self._acc = (self._acc << width) | value
        self._nacc += width
        if self._nacc >= self._SPILL_BITS:
            self._spill()

    def write_fields(self, values: Sequence[int], width: int) -> None:
        """Append every value in ``values`` as a ``width``-bit field."""
        if not values:
            # Still validate the width the way ``write`` would.
            1 << width
            return
        limit = 1 << width
        if min(values) < 0 or max(values) >= limit:
            for v in values:
                if v < 0 or v >= limit:
                    raise ValueError(f"value {v} does not fit in {width} bits")
        self._append_packed(_bk.pack_fields(values, width), len(values) * width)

    def write_bits(self, bits: BitArray) -> None:
        """Append a raw run of bits."""
        self._append_packed(bits._buf, len(bits))

    def _append_packed(self, src, nbits: int) -> None:
        """Append ``nbits`` bits from a packed MSB-first buffer."""
        if nbits <= 0:
            return
        self._spill()
        if self._nacc:
            # Unaligned seam: merge through the accumulator.
            value = int.from_bytes(src[: (nbits + 7) >> 3], "big") >> (
                (-nbits) & 7
            )
            self._acc = (self._acc << nbits) | value
            self._nacc += nbits
            self._spill()
        else:
            # Byte-aligned: bulk-copy whole bytes, keep the tail in the
            # accumulator.
            full = nbits >> 3
            if full:
                self._bytes += src[:full]
            rem = nbits & 7
            if rem:
                self._acc = src[full] >> (8 - rem)
                self._nacc = rem

    @property
    def bit_length(self) -> int:
        if self._result is not None:
            return len(self._result)
        return (len(self._bytes) << 3) + self._nacc

    def finish(self) -> BitArray:
        """Return the accumulated bits.  The writer may not be reused."""
        if self._result is None:
            self._spill()
            nbits = (len(self._bytes) << 3) + self._nacc
            if self._nacc:
                self._bytes.append((self._acc << (8 - self._nacc)) & 0xFF)
                self._acc = 0
                self._nacc = 0
            arr = BitArray(0)
            arr._nbits = nbits
            arr._buf = self._bytes
            self._result = arr
        return self._result


class BitReader:
    """Sequential reader of fixed-width unsigned fields from a BitArray."""

    __slots__ = ("_arr", "_pos")

    def __init__(self, arr: BitArray, offset: int = 0):
        self._arr = arr
        self._pos = offset

    @property
    def position(self) -> int:
        return self._pos

    @property
    def remaining(self) -> int:
        return len(self._arr) - self._pos

    def seek(self, position: int) -> None:
        """Reposition the reader (used by the legacy VERSION 1 parser,
        which must inspect the route-count field before it knows which
        codec owns the record body)."""
        if not 0 <= position <= len(self._arr):
            raise ValueError(
                f"seek position {position} outside [0, {len(self._arr)}]"
            )
        self._pos = position

    def read(self, width: int) -> int:
        """Consume and return the next ``width``-bit unsigned field."""
        if width > self.remaining:
            raise EOFError(
                f"requested {width} bits but only {self.remaining} remain"
            )
        value = _bk.get_field(self._arr._buf, self._pos, width)
        self._pos += width
        return value

    def read_fields(self, count: int, width: int) -> List[int]:
        """Consume ``count`` consecutive ``width``-bit fields in one call."""
        total = count * width
        if total > self.remaining:
            raise EOFError(
                f"requested {total} bits but only {self.remaining} remain"
            )
        values = _bk.unpack_fields(self._arr._buf, self._pos, width, count)
        self._pos += total
        return values

    def read_pairs(self, count: int, width: int) -> List[tuple]:
        """Consume ``count`` pairs of ``width``-bit fields."""
        flat = iter(self.read_fields(2 * count, width))
        return list(zip(flat, flat))

    def _read_unary(self, bit: int) -> int:
        arr = self._arr
        run = _bk.run_of(arr._buf, self._pos, arr._nbits, bit)
        if self._pos + run >= arr._nbits:
            # Match the per-bit loop this replaces: the run itself was
            # consumed before the missing terminator was requested.
            self._pos = arr._nbits
            raise EOFError("requested 1 bits but only 0 remain")
        self._pos += run + 1
        return run

    def read_unary_ones(self) -> int:
        """Length of the run of 1-bits before the next 0 (consumes both)."""
        return self._read_unary(1)

    def read_unary_zeros(self) -> int:
        """Length of the run of 0-bits before the next 1 (consumes both)."""
        return self._read_unary(0)

    def read_bits(self, width: int) -> BitArray:
        """Consume and return the next ``width`` bits as a BitArray."""
        if width > self.remaining:
            raise EOFError(
                f"requested {width} bits but only {self.remaining} remain"
            )
        out = self._arr.slice(self._pos, width)
        self._pos += width
        return out
