"""Bit-level containers used by the raw bitstream and the Virtual Bit-Stream.

The paper's configuration formats are specified down to the bit (Table I and
Eq. 1), so the codec layers need exact-width reads and writes.  ``BitArray``
is a mutable, indexable vector of bits; ``BitWriter``/``BitReader`` stream
fixed-width unsigned fields over it, most-significant bit first.
"""

from __future__ import annotations

from typing import Iterable, Iterator


def bits_for(value_count: int) -> int:
    """Width in bits of a field able to code ``value_count`` distinct values.

    This is the ``ceil(log2(n))`` used throughout Table I of the paper, with
    the convention that a field for a single possible value still occupies one
    bit (a zero-width field would make the stream ambiguous).

    >>> bits_for(28)
    5
    >>> bits_for(1)
    1
    """
    if value_count < 1:
        raise ValueError(f"field must code at least one value, got {value_count}")
    return max(1, (value_count - 1).bit_length())


class BitArray:
    """A mutable sequence of bits backed by a Python ``bytearray``.

    Bits are addressed from 0; bit *i* lives in byte ``i // 8`` at in-byte
    position ``7 - i % 8`` (most-significant bit first), which matches the
    byte serialization used when a stream is written to external memory.
    """

    __slots__ = ("_buf", "_nbits")

    def __init__(self, nbits: int = 0, fill: int = 0):
        if nbits < 0:
            raise ValueError("bit count must be non-negative")
        if fill not in (0, 1):
            raise ValueError("fill must be 0 or 1")
        self._nbits = nbits
        byte_fill = 0xFF if fill else 0x00
        self._buf = bytearray([byte_fill]) * ((nbits + 7) // 8)
        if fill and nbits % 8:
            # Clear the padding bits past the end so equality is canonical.
            self._buf[-1] &= 0xFF << (8 - nbits % 8) & 0xFF

    # -- construction helpers -------------------------------------------------

    @classmethod
    def from_bits(cls, bits: Iterable[int]) -> "BitArray":
        """Build from an iterable of 0/1 integers."""
        items = list(bits)
        arr = cls(len(items))
        for i, b in enumerate(items):
            if b:
                arr[i] = 1
        return arr

    @classmethod
    def from_bytes(cls, data: bytes, nbits: int | None = None) -> "BitArray":
        """Build from packed bytes, optionally truncated to ``nbits``."""
        total = len(data) * 8
        if nbits is None:
            nbits = total
        if nbits > total:
            raise ValueError(f"nbits={nbits} exceeds {total} bits of data")
        arr = cls(0)
        arr._nbits = nbits
        arr._buf = bytearray(data[: (nbits + 7) // 8])
        if nbits % 8:
            arr._buf[-1] &= 0xFF << (8 - nbits % 8) & 0xFF
        return arr

    # -- core protocol ---------------------------------------------------------

    def __len__(self) -> int:
        return self._nbits

    def _check(self, idx: int) -> int:
        if idx < 0:
            idx += self._nbits
        if not 0 <= idx < self._nbits:
            raise IndexError(f"bit index {idx} out of range [0, {self._nbits})")
        return idx

    def __getitem__(self, idx: int) -> int:
        idx = self._check(idx)
        return (self._buf[idx >> 3] >> (7 - (idx & 7))) & 1

    def __setitem__(self, idx: int, value: int) -> None:
        idx = self._check(idx)
        mask = 1 << (7 - (idx & 7))
        if value:
            self._buf[idx >> 3] |= mask
        else:
            self._buf[idx >> 3] &= ~mask & 0xFF

    def __iter__(self) -> Iterator[int]:
        for i in range(self._nbits):
            yield self[i]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitArray):
            return NotImplemented
        return self._nbits == other._nbits and self._buf == other._buf

    def __hash__(self) -> int:
        return hash((self._nbits, bytes(self._buf)))

    def __xor__(self, other: "BitArray") -> "BitArray":
        """Bitwise XOR of two equal-length arrays (byte-wise, so cheap).

        Both operands keep their canonical zero padding past the end, so
        the result's padding is zero too and equality stays canonical.
        """
        if not isinstance(other, BitArray):
            return NotImplemented
        if self._nbits != other._nbits:
            raise ValueError(
                f"cannot XOR a {self._nbits}-bit array with a "
                f"{other._nbits}-bit array"
            )
        out = BitArray(0)
        out._nbits = self._nbits
        out._buf = bytearray(a ^ b for a, b in zip(self._buf, other._buf))
        return out

    def __repr__(self) -> str:
        preview = "".join(str(b) for b in list(self)[:32])
        ell = "…" if self._nbits > 32 else ""
        return f"BitArray({self._nbits} bits: {preview}{ell})"

    # -- bulk operations --------------------------------------------------------

    def append(self, bit: int) -> None:
        """Append a single bit."""
        self._nbits += 1
        if (self._nbits + 7) // 8 > len(self._buf):
            self._buf.append(0)
        self[self._nbits - 1] = bit

    def extend(self, bits: Iterable[int]) -> None:
        """Append every bit from ``bits``."""
        for b in bits:
            self.append(b)

    def set_field(self, offset: int, width: int, value: int) -> None:
        """Write ``value`` as a ``width``-bit big-endian field at ``offset``."""
        if width < 0:
            raise ValueError("width must be non-negative")
        if value < 0 or value >= (1 << width):
            raise ValueError(f"value {value} does not fit in {width} bits")
        for i in range(width):
            self[offset + i] = (value >> (width - 1 - i)) & 1

    def get_field(self, offset: int, width: int) -> int:
        """Read a ``width``-bit big-endian field starting at ``offset``."""
        value = 0
        for i in range(width):
            value = (value << 1) | self[offset + i]
        return value

    def count(self) -> int:
        """Number of set bits (population count)."""
        return sum(bin(b).count("1") for b in self._buf)

    def to_bytes(self) -> bytes:
        """Packed byte representation; final byte zero-padded."""
        return bytes(self._buf)

    def digest(self) -> str:
        """Content-addressing digest (hex SHA-256 over length + bytes).

        Two arrays share a digest exactly when they are equal, including
        length — the bit count is hashed ahead of the payload so e.g. a
        7-bit and an 8-bit array with identical bytes differ.  Used as the
        cache key of the runtime decode cache.
        """
        import hashlib

        h = hashlib.sha256()
        h.update(self._nbits.to_bytes(8, "big"))
        h.update(self._buf)
        return h.hexdigest()

    def copy(self) -> "BitArray":
        dup = BitArray(0)
        dup._nbits = self._nbits
        dup._buf = bytearray(self._buf)
        return dup

    def slice(self, offset: int, width: int) -> "BitArray":
        """A copy of bits ``[offset, offset + width)``."""
        if offset < 0 or width < 0 or offset + width > self._nbits:
            raise IndexError(
                f"slice [{offset}, {offset + width}) out of range [0, {self._nbits})"
            )
        out = BitArray(width)
        for i in range(width):
            out[i] = self[offset + i]
        return out

    def overwrite(self, offset: int, other: "BitArray") -> None:
        """Copy all bits of ``other`` into this array starting at ``offset``."""
        if offset < 0 or offset + len(other) > self._nbits:
            raise IndexError(
                f"overwrite [{offset}, {offset + len(other)}) out of range "
                f"[0, {self._nbits})"
            )
        for i in range(len(other)):
            self[offset + i] = other[i]


class BitWriter:
    """Append-only stream of fixed-width unsigned fields over a BitArray."""

    def __init__(self) -> None:
        self._arr = BitArray(0)

    def write(self, value: int, width: int) -> None:
        """Append ``value`` using exactly ``width`` bits (MSB first)."""
        if value < 0 or value >= (1 << width):
            raise ValueError(f"value {value} does not fit in {width} bits")
        for i in range(width):
            self._arr.append((value >> (width - 1 - i)) & 1)

    def write_bits(self, bits: BitArray) -> None:
        """Append a raw run of bits."""
        self._arr.extend(bits)

    @property
    def bit_length(self) -> int:
        return len(self._arr)

    def finish(self) -> BitArray:
        """Return the accumulated bits.  The writer may not be reused."""
        return self._arr


class BitReader:
    """Sequential reader of fixed-width unsigned fields from a BitArray."""

    def __init__(self, arr: BitArray, offset: int = 0):
        self._arr = arr
        self._pos = offset

    @property
    def position(self) -> int:
        return self._pos

    @property
    def remaining(self) -> int:
        return len(self._arr) - self._pos

    def seek(self, position: int) -> None:
        """Reposition the reader (used by the legacy VERSION 1 parser,
        which must inspect the route-count field before it knows which
        codec owns the record body)."""
        if not 0 <= position <= len(self._arr):
            raise ValueError(
                f"seek position {position} outside [0, {len(self._arr)}]"
            )
        self._pos = position

    def read(self, width: int) -> int:
        """Consume and return the next ``width``-bit unsigned field."""
        if width > self.remaining:
            raise EOFError(
                f"requested {width} bits but only {self.remaining} remain"
            )
        value = self._arr.get_field(self._pos, width)
        self._pos += width
        return value

    def read_bits(self, width: int) -> BitArray:
        """Consume and return the next ``width`` bits as a BitArray."""
        if width > self.remaining:
            raise EOFError(
                f"requested {width} bits but only {self.remaining} remain"
            )
        out = self._arr.slice(self._pos, width)
        self._pos += width
        return out
