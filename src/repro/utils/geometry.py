"""Small planar-geometry helpers for grid placement and region management.

The reconfigurable fabric is a rectangular grid of macros; hardware tasks are
axis-aligned rectangles on it.  ``Rect`` is used by the placer (bounding
boxes), the VBS clustering (tiling), and the runtime fabric manager (region
allocation and collision detection).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, NamedTuple


class Point(NamedTuple):
    """An (x, y) grid coordinate; x grows east, y grows north."""

    x: int
    y: int

    def manhattan(self, other: "Point") -> int:
        """Manhattan (L1) distance to ``other``."""
        return abs(self.x - other.x) + abs(self.y - other.y)

    def translated(self, dx: int, dy: int) -> "Point":
        return Point(self.x + dx, self.y + dy)


@dataclass(frozen=True)
class Rect:
    """A half-open axis-aligned rectangle ``[x, x+w) x [y, y+h)``."""

    x: int
    y: int
    w: int
    h: int

    def __post_init__(self) -> None:
        if self.w < 0 or self.h < 0:
            raise ValueError(f"rectangle sides must be non-negative: {self}")

    @classmethod
    def spanning(cls, points: "list[Point] | list[tuple[int, int]]") -> "Rect":
        """The tightest rectangle covering every point (inclusive)."""
        if not points:
            raise ValueError("cannot span an empty point set")
        xs = [p[0] for p in points]
        ys = [p[1] for p in points]
        return cls(min(xs), min(ys), max(xs) - min(xs) + 1, max(ys) - min(ys) + 1)

    @property
    def x2(self) -> int:
        """One past the right edge."""
        return self.x + self.w

    @property
    def y2(self) -> int:
        """One past the top edge."""
        return self.y + self.h

    @property
    def area(self) -> int:
        return self.w * self.h

    @property
    def semiperimeter(self) -> int:
        """Half-perimeter; the classic VPR placement wirelength estimate."""
        return self.w + self.h

    def contains(self, x: int, y: int) -> bool:
        return self.x <= x < self.x2 and self.y <= y < self.y2

    def contains_rect(self, other: "Rect") -> bool:
        return (
            self.x <= other.x
            and self.y <= other.y
            and other.x2 <= self.x2
            and other.y2 <= self.y2
        )

    def overlaps(self, other: "Rect") -> bool:
        """True when the two rectangles share at least one cell."""
        return (
            self.x < other.x2
            and other.x < self.x2
            and self.y < other.y2
            and other.y < self.y2
        )

    def translated(self, dx: int, dy: int) -> "Rect":
        return Rect(self.x + dx, self.y + dy, self.w, self.h)

    def cells(self) -> Iterator[Point]:
        """Iterate every cell in raster order (y outer, x inner)."""
        for y in range(self.y, self.y2):
            for x in range(self.x, self.x2):
                yield Point(x, y)

    def clipped(self, bounds: "Rect") -> "Rect":
        """The intersection with ``bounds`` (possibly empty)."""
        nx = max(self.x, bounds.x)
        ny = max(self.y, bounds.y)
        nx2 = min(self.x2, bounds.x2)
        ny2 = min(self.y2, bounds.y2)
        return Rect(nx, ny, max(0, nx2 - nx), max(0, ny2 - ny))

    def expanded(self, margin: int, bounds: "Rect | None" = None) -> "Rect":
        """Grow by ``margin`` on every side, optionally clipped to ``bounds``."""
        grown = Rect(
            self.x - margin, self.y - margin, self.w + 2 * margin, self.h + 2 * margin
        )
        return grown.clipped(bounds) if bounds is not None else grown
