"""Deterministic random-number helpers.

Everything stochastic in the library (synthetic netlist generation, simulated
annealing moves, test vector generation) draws from a ``random.Random``
created here, seeded from a stable string hash, so that a given benchmark
name always produces the same circuit and a given flow run is repeatable.
"""

from __future__ import annotations

import hashlib
import random


def seed_from_name(name: str, salt: int = 0) -> int:
    """A stable 64-bit seed derived from a string (independent of PYTHONHASHSEED)."""
    digest = hashlib.sha256(f"{name}:{salt}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def make_rng(seed: "int | str", salt: int = 0) -> random.Random:
    """Create a deterministic ``random.Random`` from an int or string seed."""
    if isinstance(seed, str):
        seed = seed_from_name(seed, salt)
    elif salt:
        seed = seed ^ (salt * 0x9E3779B97F4A7C15 & 0xFFFFFFFFFFFFFFFF)
    return random.Random(seed)
