"""Disjoint-set (union-find) structure.

Used by the fabric extractor to recover electrical nets from a configuration:
every closed pass transistor merges the two wire segments it joins, and the
resulting equivalence classes are the nets loaded on the fabric.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List


class UnionFind:
    """Union-find with path compression and union by size.

    Elements are arbitrary hashable objects and are created lazily on first
    use, which suits sparse configurations where most fabric segments are
    never touched.
    """

    def __init__(self, elements: Iterable[Hashable] = ()):
        self._parent: Dict[Hashable, Hashable] = {}
        self._size: Dict[Hashable, int] = {}
        for e in elements:
            self.add(e)

    def add(self, element: Hashable) -> None:
        """Register ``element`` as a singleton set if unseen."""
        if element not in self._parent:
            self._parent[element] = element
            self._size[element] = 1

    def __contains__(self, element: Hashable) -> bool:
        return element in self._parent

    def __len__(self) -> int:
        return len(self._parent)

    def find(self, element: Hashable) -> Hashable:
        """Canonical representative of the set containing ``element``."""
        self.add(element)
        root = element
        while self._parent[root] != root:
            root = self._parent[root]
        # Path compression.
        while self._parent[element] != root:
            self._parent[element], element = root, self._parent[element]
        return root

    def union(self, a: Hashable, b: Hashable) -> Hashable:
        """Merge the sets of ``a`` and ``b``; return the surviving root."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        return ra

    def connected(self, a: Hashable, b: Hashable) -> bool:
        """True when ``a`` and ``b`` are in the same set."""
        return self.find(a) == self.find(b)

    def groups(self) -> List[List[Hashable]]:
        """All sets, each as a list of members (deterministic order)."""
        by_root: Dict[Hashable, List[Hashable]] = {}
        for e in self._parent:
            by_root.setdefault(self.find(e), []).append(e)
        return list(by_root.values())
