"""Batch bit kernels: the speed layer under the bit-level containers.

Every primitive here operates on *packed MSB-first* byte buffers — bit
``i`` lives in byte ``i >> 3`` at in-byte position ``7 - (i & 7)``, the
same layout :class:`~repro.utils.bitarray.BitArray` serializes to
external memory — and moves whole fields, spans or scans per call
instead of one bit per Python-level iteration:

* ``get_field``/``set_field`` read/write an arbitrary-width big-endian
  field through one ``int.from_bytes``/``int.to_bytes`` pair (C-speed
  big-integer shift/merge at the byte seams);
* ``extract_bits``/``splice_bits`` copy bit spans — byte-aligned spans
  go through plain ``bytearray`` slice copies (memcpy), unaligned spans
  through a single shift-merge;
* ``pack_fields``/``unpack_fields`` move N equal-width fields in one
  call;
* ``popcount``, ``xor_bytes``, ``find_ones``, ``set_bits`` and
  ``run_of`` are the whole-buffer scans behind ``BitArray.count``,
  ``__xor__``, the run-length codecs and the unary decoders.

Backend selection happens once at import: when numpy is importable the
scan/batch primitives bind to numpy block implementations
(``unpackbits``/``packbits``/``flatnonzero``); otherwise — or when the
environment variable ``REPRO_NO_NUMPY=1`` forces it, which CI uses to
keep the fallback green — everything binds to the pure-Python batch
kernels.  Both backends are bit-exact by contract: every public
primitive produces identical results on either path (the golden-vector
and byte-identity suites pin this), so the choice is invisible except
in speed.  The numpy wrappers fall through to the Python kernels below
a small-input threshold where ufunc dispatch overhead would dominate;
that, too, never changes results.

The ``ref_*`` functions are the retained naive one-bit-at-a-time
reference implementations (the semantics the original containers had);
the property suite ``tests/property/test_bitkernels.py`` checks every
kernel against them over randomized widths, offsets and seam
alignments on both backends.
"""

from __future__ import annotations

import os
from typing import List, Sequence

_np = None
if os.environ.get("REPRO_NO_NUMPY", "") != "1":
    try:
        import numpy as _np  # type: ignore[no-redef]
    except ImportError:
        _np = None

#: True when the numpy backend is active (import-time decision).
HAVE_NUMPY = _np is not None
#: Human-readable backend name, surfaced by benchmarks and diagnostics.
BACKEND = "numpy" if HAVE_NUMPY else "python"

#: Buffers below this many bytes skip the numpy wrappers — ufunc
#: dispatch costs more than the whole operation on a few dozen bytes.
_SMALL_BUF = 64
#: Field batches below this many values likewise stay pure-Python.
_SMALL_FIELDS = 64

#: Set-bit positions within one byte value, MSB first.
_BYTE_ONES = tuple(
    tuple(i for i in range(8) if b & (0x80 >> i)) for b in range(256)
)


# -- pure-Python batch kernels ------------------------------------------------
#
# "Batch" here means one C-level big-integer or slice operation per call;
# these are the fallback backend and the shared field machinery of the
# numpy backend (single-field reads gain nothing from numpy).


def py_get_field(buf, offset: int, width: int) -> int:
    """Read a ``width``-bit big-endian field at bit ``offset`` (in range)."""
    if width <= 0:
        return 0
    end = offset + width
    first = offset >> 3
    last = (end + 7) >> 3
    span = int.from_bytes(buf[first:last], "big")
    return (span >> ((last << 3) - end)) & ((1 << width) - 1)


def py_set_field(buf, offset: int, width: int, value: int) -> None:
    """Write a ``width``-bit big-endian field at bit ``offset`` (in range)."""
    if width <= 0:
        return
    end = offset + width
    first = offset >> 3
    last = (end + 7) >> 3
    shift = (last << 3) - end
    mask = ((1 << width) - 1) << shift
    span = int.from_bytes(buf[first:last], "big")
    span = (span & ~mask) | ((value << shift) & mask)
    buf[first:last] = span.to_bytes(last - first, "big")


def py_extract_bits(buf, offset: int, width: int) -> bytearray:
    """Copy bits ``[offset, offset+width)`` into a fresh packed buffer.

    The result is ``ceil(width / 8)`` bytes with canonical zero padding
    past the end — exactly a :class:`BitArray` backing buffer.
    """
    if width <= 0:
        return bytearray(0)
    out_bytes = (width + 7) >> 3
    if not offset & 7:
        first = offset >> 3
        out = bytearray(buf[first:first + out_bytes])
        pad = (-width) & 7
        if pad:
            out[-1] &= (0xFF << pad) & 0xFF
        return out
    value = py_get_field(buf, offset, width)
    return bytearray((value << ((-width) & 7)).to_bytes(out_bytes, "big"))


def py_splice_bits(dst, offset: int, src, width: int) -> None:
    """Copy the first ``width`` bits of packed ``src`` into ``dst`` at
    bit ``offset`` (both in range; ``dst`` bits outside the span keep
    their values)."""
    if width <= 0:
        return
    if not offset & 7 and not width & 7:
        o = offset >> 3
        dst[o:o + (width >> 3)] = src[:width >> 3]
        return
    nbytes = (width + 7) >> 3
    value = int.from_bytes(src[:nbytes], "big") >> ((-width) & 7)
    py_set_field(dst, offset, width, value)


def py_popcount(buf) -> int:
    """Number of set bits in the whole buffer."""
    return int.from_bytes(buf, "big").bit_count()


def py_xor_bytes(a, b) -> bytearray:
    """Byte-wise XOR of two equal-length buffers."""
    n = len(a)
    if n != len(b):
        raise ValueError(f"cannot XOR {n} bytes with {len(b)} bytes")
    return bytearray(
        (int.from_bytes(a, "big") ^ int.from_bytes(b, "big")).to_bytes(
            n, "big"
        )
    )


def py_find_ones(buf, nbits: int) -> List[int]:
    """Ascending positions of the set bits among the first ``nbits``."""
    out: List[int] = []
    extend = out.extend
    lut = _BYTE_ONES
    base = 0
    for b in buf:
        if b:
            extend([base + i for i in lut[b]])
        base += 8
    while out and out[-1] >= nbits:
        out.pop()
    return out


def py_set_bits(nbits: int, positions: Sequence[int]) -> bytearray:
    """A fresh packed ``nbits`` buffer with the listed positions set."""
    out = bytearray((nbits + 7) >> 3)
    for p in positions:
        out[p >> 3] |= 0x80 >> (p & 7)
    return out


def py_pack_fields(values: Sequence[int], width: int) -> bytearray:
    """Pack N ``width``-bit big-endian fields back to back (canonical
    zero padding in the final byte)."""
    n = len(values)
    total = n * width
    if total <= 0:
        return bytearray(0)
    mask = (1 << width) - 1
    acc = 0
    for v in values:
        acc = (acc << width) | (v & mask)
    return bytearray(
        (acc << ((-total) & 7)).to_bytes((total + 7) >> 3, "big")
    )


def py_unpack_fields(buf, offset: int, width: int, count: int) -> List[int]:
    """Read ``count`` consecutive ``width``-bit fields starting at
    ``offset`` (in range) in one pass."""
    if count <= 0:
        return []
    if width <= 0:
        return [0] * count
    total = width * count
    big = py_get_field(buf, offset, total)
    mask = (1 << width) - 1
    out: List[int] = []
    append = out.append
    shift = total
    for _ in range(count):
        shift -= width
        append((big >> shift) & mask)
    return out


def py_run_of(buf, pos: int, nbits: int, bit: int) -> int:
    """Length of the run of ``bit`` starting at ``pos`` (capped at
    ``nbits - pos``; 0 when ``pos`` is at or past the end)."""
    if pos >= nbits:
        return 0
    byte_i = pos >> 3
    # Transform so the first *non-matching* bit becomes the first set bit.
    cur = buf[byte_i]
    if bit:
        cur ^= 0xFF
    cur &= 0xFF >> (pos & 7)
    if cur:
        run = (8 - cur.bit_length()) - (pos & 7)
        return min(run, nbits - pos)
    run = 8 - (pos & 7)
    byte_i += 1
    nbytes = len(buf)
    while byte_i < nbytes:
        cur = buf[byte_i]
        if bit:
            cur ^= 0xFF
        if cur:
            run += 8 - cur.bit_length()
            break
        run += 8
        byte_i += 1
    return min(run, nbits - pos)


# -- numpy batch kernels ------------------------------------------------------

if HAVE_NUMPY:
    _HAVE_BITWISE_COUNT = hasattr(_np, "bitwise_count")

    def np_popcount(buf) -> int:
        if len(buf) < _SMALL_BUF:
            return py_popcount(buf)
        arr = _np.frombuffer(bytes(buf), dtype=_np.uint8)
        if _HAVE_BITWISE_COUNT:
            return int(_np.bitwise_count(arr).sum())
        return int(_np.unpackbits(arr).sum())

    def np_xor_bytes(a, b) -> bytearray:
        n = len(a)
        if n != len(b):
            raise ValueError(f"cannot XOR {n} bytes with {len(b)} bytes")
        if n < _SMALL_BUF:
            return py_xor_bytes(a, b)
        av = _np.frombuffer(bytes(a), dtype=_np.uint8)
        bv = _np.frombuffer(bytes(b), dtype=_np.uint8)
        return bytearray(_np.bitwise_xor(av, bv).tobytes())

    def np_find_ones(buf, nbits: int) -> List[int]:
        if len(buf) < _SMALL_BUF:
            return py_find_ones(buf, nbits)
        bits = _np.unpackbits(_np.frombuffer(bytes(buf), dtype=_np.uint8))
        return _np.flatnonzero(bits[:nbits]).tolist()

    def np_set_bits(nbits: int, positions: Sequence[int]) -> bytearray:
        if len(positions) < _SMALL_FIELDS:
            return py_set_bits(nbits, positions)
        nbytes = (nbits + 7) >> 3
        bits = _np.zeros(nbytes << 3, dtype=_np.uint8)
        bits[_np.asarray(positions, dtype=_np.int64)] = 1
        return bytearray(_np.packbits(bits).tobytes())

    def np_pack_fields(values: Sequence[int], width: int) -> bytearray:
        n = len(values)
        if width <= 0 or width > 64 or n < _SMALL_FIELDS:
            return py_pack_fields(values, width)
        arr = _np.asarray(values, dtype=_np.uint64)
        if width < 64:
            arr = arr & _np.uint64((1 << width) - 1)
        bytes_be = arr.astype(">u8").view(_np.uint8).reshape(n, 8)
        bits = _np.unpackbits(bytes_be, axis=1)[:, 64 - width:]
        packed = _np.packbits(bits.reshape(-1))
        return bytearray(packed.tobytes())

    def np_unpack_fields(
        buf, offset: int, width: int, count: int
    ) -> List[int]:
        # width 64 stays pure-Python: the power-of-two weights would
        # need a 65-bit intermediate.
        if width <= 0 or width > 63 or count < _SMALL_FIELDS:
            return py_unpack_fields(buf, offset, width, count)
        total = width * count
        span = py_extract_bits(buf, offset, total)
        bits = _np.unpackbits(
            _np.frombuffer(bytes(span), dtype=_np.uint8), count=total
        )
        m = bits.reshape(count, width).astype(_np.uint64)
        powers = _np.left_shift(
            _np.uint64(1), _np.arange(width - 1, -1, -1, dtype=_np.uint64)
        )
        return (m * powers).sum(axis=1, dtype=_np.uint64).tolist()


# -- import-time backend binding ---------------------------------------------

get_field = py_get_field
set_field = py_set_field
extract_bits = py_extract_bits
splice_bits = py_splice_bits
run_of = py_run_of

if HAVE_NUMPY:
    popcount = np_popcount
    xor_bytes = np_xor_bytes
    find_ones = np_find_ones
    set_bits = np_set_bits
    pack_fields = np_pack_fields
    unpack_fields = np_unpack_fields
else:
    popcount = py_popcount
    xor_bytes = py_xor_bytes
    find_ones = py_find_ones
    set_bits = py_set_bits
    pack_fields = py_pack_fields
    unpack_fields = py_unpack_fields


# -- retained naive reference (the property-suite oracle) ---------------------


def _ref_bit(buf, i: int) -> int:
    return (buf[i >> 3] >> (7 - (i & 7))) & 1


def _ref_set_bit(buf, i: int, v: int) -> None:
    mask = 0x80 >> (i & 7)
    if v:
        buf[i >> 3] |= mask
    else:
        buf[i >> 3] &= ~mask & 0xFF


def ref_get_field(buf, offset: int, width: int) -> int:
    value = 0
    for i in range(width):
        value = (value << 1) | _ref_bit(buf, offset + i)
    return value


def ref_set_field(buf, offset: int, width: int, value: int) -> None:
    for i in range(width):
        _ref_set_bit(buf, offset + i, (value >> (width - 1 - i)) & 1)


def ref_extract_bits(buf, offset: int, width: int) -> bytearray:
    out = bytearray((width + 7) >> 3)
    for i in range(width):
        if _ref_bit(buf, offset + i):
            out[i >> 3] |= 0x80 >> (i & 7)
    return out


def ref_splice_bits(dst, offset: int, src, width: int) -> None:
    for i in range(width):
        _ref_set_bit(dst, offset + i, _ref_bit(src, i))


def ref_popcount(buf) -> int:
    return sum(bin(b).count("1") for b in buf)


def ref_xor_bytes(a, b) -> bytearray:
    if len(a) != len(b):
        raise ValueError(f"cannot XOR {len(a)} bytes with {len(b)} bytes")
    return bytearray(x ^ y for x, y in zip(a, b))


def ref_find_ones(buf, nbits: int) -> List[int]:
    return [i for i in range(nbits) if _ref_bit(buf, i)]


def ref_set_bits(nbits: int, positions: Sequence[int]) -> bytearray:
    out = bytearray((nbits + 7) >> 3)
    for p in positions:
        _ref_set_bit(out, p, 1)
    return out


def ref_pack_fields(values: Sequence[int], width: int) -> bytearray:
    out = bytearray((len(values) * width + 7) >> 3)
    for k, v in enumerate(values):
        ref_set_field(out, k * width, width, v & ((1 << width) - 1) if width else 0)
    return out if values and width else bytearray(0)


def ref_unpack_fields(buf, offset: int, width: int, count: int) -> List[int]:
    return [
        ref_get_field(buf, offset + k * width, width) for k in range(count)
    ]


def ref_run_of(buf, pos: int, nbits: int, bit: int) -> int:
    n = 0
    while pos + n < nbits and _ref_bit(buf, pos + n) == bit:
        n += 1
    return n
