"""Shared low-level utilities: bit packing, geometry, disjoint sets, RNG.

These are substrate pieces used across the architecture model, the bitstream
generators, and the Virtual Bit-Stream codec.  They have no dependency on any
other ``repro`` package.
"""

from repro.utils.bitarray import BitArray, BitReader, BitWriter, bits_for
from repro.utils.geometry import Point, Rect
from repro.utils.unionfind import UnionFind
from repro.utils.rng import make_rng

__all__ = [
    "BitArray",
    "BitReader",
    "BitWriter",
    "bits_for",
    "Point",
    "Rect",
    "UnionFind",
    "make_rng",
]
