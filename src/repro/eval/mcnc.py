"""Table II: the 20 largest MCNC circuits, and their synthetic proxies.

The paper's benchmark set (Table II) gives, per circuit, the VPR grid size,
the minimum channel width and the logic-block count.  The original BLIF
sources are not redistributable here, so each circuit is reproduced as a
*proxy* netlist from ``repro.netlist.generate``:

* ``lbs`` and ``size`` are taken verbatim from Table II;
* primary I/O and latch counts follow the published MCNC profiles,
  clamped to the proxy fabric's pad capacity (2 pads per perimeter IOB
  cell — the paper treats I/O as part of the fabric, Section II-A);
* the generator's locality parameter is calibrated against the paper's
  MCW column, so circuits the paper found congested stay congested.

All quantities that come from the paper are kept exact; all approximations
are one-line formulas documented here and in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import NetlistError
from repro.netlist.generate import CircuitSpec
from repro.netlist.model import Netlist
from repro.netlist.generate import generate_circuit


@dataclass(frozen=True)
class McncCircuit:
    """One Table II row plus the published I/O and latch profile."""

    name: str
    size: int        # Table II "Size" (logic grid side)
    mcw_paper: int   # Table II "MCW"
    lbs: int         # Table II "LBs"
    io_in: int       # published MCNC primary inputs
    io_out: int      # published MCNC primary outputs
    latches: int     # published MCNC flip-flop count

    @property
    def pad_capacity(self) -> int:
        """IOB ring capacity: 2 pads per cell over ``4*size + 4`` ring cells."""
        return 2 * (4 * self.size + 4)

    def clamped_io(self) -> Tuple[int, int]:
        """Pad counts scaled down to the ring capacity when necessary."""
        total = self.io_in + self.io_out
        if total <= self.pad_capacity:
            return self.io_in, self.io_out
        scale = self.pad_capacity / total
        n_in = max(1, int(self.io_in * scale))
        n_out = max(1, self.pad_capacity - n_in)
        return n_in, n_out

    @property
    def locality(self) -> float:
        """Generator locality calibrated from the paper's MCW column.

        A linear map sending MCW 8 -> 0.88 (easily routed) and MCW 16 ->
        0.70 (congested), which preserves the paper's relative congestion
        ordering across the suite.
        """
        return max(0.70, min(0.88, 1.06 - 0.0225 * self.mcw_paper))

    def spec(self, scale: float = 1.0) -> CircuitSpec:
        """The proxy generator spec, optionally down-scaled for quick runs."""
        if not 0.0 < scale <= 1.0:
            raise NetlistError("scale must be in (0, 1]")
        n_luts = max(8, round(self.lbs * scale))
        n_in, n_out = self.clamped_io()
        if scale < 1.0:
            n_in = max(2, round(n_in * scale))
            n_out = max(2, round(n_out * scale))
        n_latches = min(n_luts, round(self.latches * scale))
        return CircuitSpec(
            name=self.name,
            n_luts=n_luts,
            n_inputs=n_in,
            n_outputs=n_out,
            n_latches=n_latches,
            locality=self.locality,
        )

    def netlist(self, scale: float = 1.0) -> Netlist:
        return generate_circuit(self.spec(scale))


#: Table II of the paper, with published I/O / latch profiles appended.
MCNC_TABLE: Tuple[McncCircuit, ...] = (
    McncCircuit("alu4", 35, 9, 1173, 14, 8, 0),
    McncCircuit("apex2", 39, 12, 1478, 38, 3, 0),
    McncCircuit("apex4", 32, 15, 970, 9, 19, 0),
    McncCircuit("bigkey", 27, 8, 683, 229, 197, 224),
    McncCircuit("clma", 79, 15, 6226, 62, 82, 33),
    McncCircuit("des", 32, 8, 554, 256, 245, 0),
    McncCircuit("diffeq", 30, 10, 869, 64, 39, 377),
    McncCircuit("dsip", 27, 9, 680, 229, 197, 224),
    McncCircuit("elliptic", 47, 13, 2134, 131, 114, 1122),
    McncCircuit("ex1010", 56, 16, 3093, 10, 10, 0),
    McncCircuit("ex5p", 28, 13, 740, 8, 63, 0),
    McncCircuit("frisc", 55, 16, 2940, 20, 116, 886),
    McncCircuit("misex3", 35, 11, 1158, 14, 14, 0),
    McncCircuit("pdc", 61, 15, 3629, 16, 40, 0),
    McncCircuit("s298", 37, 8, 1301, 4, 6, 14),
    McncCircuit("s38417", 58, 8, 3333, 28, 106, 1464),
    McncCircuit("s38584.1", 65, 9, 4219, 38, 304, 1426),
    McncCircuit("seq", 37, 12, 1325, 41, 35, 0),
    McncCircuit("spla", 55, 14, 3005, 16, 46, 0),
    McncCircuit("tseng", 29, 8, 799, 52, 122, 385),
)

_BY_NAME: Dict[str, McncCircuit] = {c.name: c for c in MCNC_TABLE}

#: Circuits small enough for quick CI-style runs (under ~1500 LBs).
SMALL_SET = ("bigkey", "des", "dsip", "ex5p", "tseng", "diffeq", "apex4")
MEDIUM_SET = SMALL_SET + (
    "alu4", "misex3", "s298", "seq", "apex2",
)
FULL_SET = tuple(c.name for c in MCNC_TABLE)


def circuit(name: str) -> McncCircuit:
    try:
        return _BY_NAME[name]
    except KeyError:
        raise NetlistError(
            f"unknown MCNC circuit {name!r}; choose from {sorted(_BY_NAME)}"
        )


def benchmark_names(subset: str = "full") -> Tuple[str, ...]:
    """Resolve a subset keyword to circuit names."""
    subsets = {"small": SMALL_SET, "medium": MEDIUM_SET, "full": FULL_SET}
    try:
        return subsets[subset]
    except KeyError:
        raise NetlistError(
            f"unknown subset {subset!r}; choose from {sorted(subsets)}"
        )
