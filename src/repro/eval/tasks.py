"""Declarative task suites: arch x circuit x codec x workload grids.

A *suite* is a JSON file describing a grid of evaluation points in the
style of VTR's ``run_vtr_task`` task lists and rad_gen's parameter-sweep
configs: instead of hand-listing experiments, the suite declares the axes
and the harness expands the cross product, runs every point through the
cached eval pipeline, parses the QoR metrics, and compares them against a
committed *golden* results file.

Suite schema (all keys except ``name`` and ``grids`` optional)::

    {
      "format": 1,
      "name": "smoke",
      "description": "...",
      "defaults": {"channel_width": 8, "cluster": 1, "codecs": "paper",
                   "scale": 1.0, "seed": 1},
      "grids": [
        {"circuit": ["ex5p", {"name": "t1", "n_luts": 14,
                              "n_inputs": 6, "n_outputs": 4}],
         "channel_width": [5, 8],
         "cluster": [1, 2],
         "codecs": ["paper", "auto"]},
        {"type": "workload",
         "kind": ["hot-set"], "tasks": [2], "length": [12], "seed": [1]}
      ],
      "tolerances": {"ratio": {"rel": 0.0}},
      "golden": "golden/smoke.json"
    }

Grid axes multiply (every combination is one point).  A grid's ``type``
is ``flow`` (default: place-and-route one circuit, encode it, record
compression/QoR metrics) or ``workload`` (replay a seeded trace through
the runtime simulator, record cache/cycle metrics).  ``circuit`` entries
are either corpus names (MCNC proxies / :data:`~repro.eval.experiments.
EVAL_EXTRAS`) or inline :class:`~repro.netlist.generate.CircuitSpec`
dicts — the latter keep smoke suites hermetic and fast.

Point results are cached under ``<results-dir>/tasks/`` with the same
versioned-JSON convention as the figure runners, so re-running a suite
only computes what is missing.  ``repro tasks run`` executes a suite
(``--update-golden`` records the goldens); ``repro tasks check`` also
compares against the golden file and fails on any QoR regression beyond
the declared tolerances — deterministic metrics default to exact match.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from itertools import product
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.errors import ReproError

#: Accepted suite-file format versions.
SUITE_FORMATS = (1,)

#: Golden-file format version.
GOLDEN_FORMAT = 1

#: Flow-point axes with their defaults (also the allowed key set).
_FLOW_AXES = {
    "circuit": None,  # required
    "channel_width": 8,
    "cluster": 1,
    "codecs": "paper",
    "scale": 1.0,
    "seed": 1,
}

#: Workload-point axes with their defaults.
_WORKLOAD_AXES = {
    "kind": "hot-set",
    "tasks": 2,
    "length": 12,
    "seed": 1,
    "channel_width": 8,
    "cluster": 1,
    "arrivals": None,
    "mean_interarrival": 2000,
}


class TaskSuiteError(ReproError):
    """Malformed suite file, unknown axis, or missing golden results."""


@dataclass(frozen=True)
class TaskPoint:
    """One expanded grid point: a stable key plus its parameters."""

    kind: str  # "flow" | "workload"
    key: str
    params: Tuple[Tuple[str, object], ...]

    @property
    def param_dict(self) -> Dict[str, object]:
        return dict(self.params)


@dataclass
class SuiteReport:
    """Everything one suite run produced."""

    suite: dict
    suite_path: Path
    points: "Dict[str, dict]" = field(default_factory=dict)

    def to_json(self) -> dict:
        return {
            "format": GOLDEN_FORMAT,
            "suite": self.suite["name"],
            "points": {k: dict(v) for k, v in sorted(self.points.items())},
        }


# -- suite loading and expansion --------------------------------------------------


def load_suite(path: Path) -> dict:
    """Parse and validate a suite file."""
    try:
        suite = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise TaskSuiteError(f"cannot read suite {path}: {exc}")
    if not isinstance(suite, dict):
        raise TaskSuiteError(f"suite {path} is not a JSON object")
    if suite.get("format", 1) not in SUITE_FORMATS:
        raise TaskSuiteError(
            f"suite {path}: unsupported format {suite.get('format')!r}"
        )
    if not suite.get("name"):
        raise TaskSuiteError(f"suite {path}: missing 'name'")
    grids = suite.get("grids")
    if not isinstance(grids, list) or not grids:
        raise TaskSuiteError(f"suite {path}: 'grids' must be a non-empty list")
    for i, grid in enumerate(grids):
        if not isinstance(grid, dict):
            raise TaskSuiteError(f"suite {path}: grid #{i} is not an object")
        gtype = grid.get("type", "flow")
        axes = _FLOW_AXES if gtype == "flow" else (
            _WORKLOAD_AXES if gtype == "workload" else None
        )
        if axes is None:
            raise TaskSuiteError(
                f"suite {path}: grid #{i} has unknown type {gtype!r}"
            )
        for axis in grid:
            if axis == "type":
                continue
            if axis not in axes:
                raise TaskSuiteError(
                    f"suite {path}: grid #{i} has unknown axis {axis!r} "
                    f"for type {gtype!r} (known: {', '.join(sorted(axes))})"
                )
        if gtype == "flow" and "circuit" not in grid:
            raise TaskSuiteError(
                f"suite {path}: flow grid #{i} needs a 'circuit' axis"
            )
    return suite


def _circuit_key(circuit) -> str:
    """Stable short label of a circuit axis value (name or inline spec)."""
    if isinstance(circuit, str):
        return circuit
    if isinstance(circuit, dict) and circuit.get("name"):
        return str(circuit["name"])
    raise TaskSuiteError(f"bad circuit entry {circuit!r} (name or spec dict)")


def expand_points(suite: dict) -> List[TaskPoint]:
    """Cross-product every grid into a sorted, de-duplicated point list."""
    defaults = suite.get("defaults", {})
    points: Dict[str, TaskPoint] = {}
    for grid in suite["grids"]:
        gtype = grid.get("type", "flow")
        axes = _FLOW_AXES if gtype == "flow" else _WORKLOAD_AXES
        values = {}
        for axis, default in axes.items():
            v = grid.get(axis, defaults.get(axis, default))
            if not isinstance(v, list):
                v = [v]
            if axis == "circuit" and any(x is None for x in v):
                raise TaskSuiteError("flow grid: 'circuit' may not be null")
            values[axis] = v
        names = sorted(values)
        for combo in product(*(values[a] for a in names)):
            params = tuple(zip(names, combo))
            pd = dict(params)
            if gtype == "flow":
                key = (
                    f"flow/{_circuit_key(pd['circuit'])}"
                    f"/W{pd['channel_width']}/c{pd['cluster']}"
                    f"/{pd['codecs']}/s{pd['scale']:g}/seed{pd['seed']}"
                )
            else:
                key = (
                    f"workload/{pd['kind']}/t{pd['tasks']}/n{pd['length']}"
                    f"/W{pd['channel_width']}/c{pd['cluster']}"
                    f"/seed{pd['seed']}"
                )
                if pd.get("arrivals"):
                    key += f"/{pd['arrivals']}{pd['mean_interarrival']}"
            points[key] = TaskPoint(gtype, key, params)
    return [points[k] for k in sorted(points)]


# -- point execution --------------------------------------------------------------

#: In-process flow cache: grids share one placed-and-routed flow per
#: (circuit, width, scale, seed) arch point across codec/cluster axes.
_FLOW_CACHE: Dict[tuple, object] = {}


def _flow_for_point(pd: dict):
    from repro.arch.params import ArchParams
    from repro.cad.flow import run_flow
    from repro.eval.experiments import flow_for
    from repro.netlist.generate import CircuitSpec, generate_circuit

    circuit = pd["circuit"]
    if isinstance(circuit, str):
        cache_key = (circuit, pd["channel_width"], pd["scale"], pd["seed"])
        if cache_key not in _FLOW_CACHE:
            _FLOW_CACHE[cache_key] = flow_for(
                circuit, pd["channel_width"], pd["scale"], pd["seed"]
            )
        return _FLOW_CACHE[cache_key]
    spec_kwargs = dict(circuit)
    cache_key = (
        tuple(sorted(spec_kwargs.items())),
        pd["channel_width"],
        pd["seed"],
    )
    if cache_key not in _FLOW_CACHE:
        netlist = generate_circuit(CircuitSpec(**spec_kwargs))
        params = ArchParams(channel_width=pd["channel_width"])
        _FLOW_CACHE[cache_key] = run_flow(netlist, params, seed=pd["seed"])
    return _FLOW_CACHE[cache_key]


def _resolve_codecs(codecs: str):
    from repro.vbs.codecs import V3_CODECS

    if codecs == "paper":
        return None
    if codecs == "auto":
        return "auto"
    if codecs == "v3":
        return list(V3_CODECS)
    return [name.strip() for name in codecs.split(",") if name.strip()]


def _run_flow_point(pd: dict) -> dict:
    """QoR metrics of one flow point (all deterministic for a seed)."""
    from repro.bitstream.expand import expand_routing
    from repro.bitstream.raw import RawBitstream
    from repro.eval.experiments import format_codec_counts
    from repro.vbs.encode import encode_flow

    flow = _flow_for_point(pd)
    config = expand_routing(
        flow.design, flow.placement, flow.routing, flow.rrg
    )
    raw_bits = RawBitstream.size_for(
        flow.params, flow.fabric.width, flow.fabric.height
    )
    vbs = encode_flow(
        flow, config,
        cluster_size=pd["cluster"],
        codecs=_resolve_codecs(pd["codecs"]),
    )
    return {
        "lbs": flow.design.num_clbs,
        "nets": len(flow.routing.trees),
        "route_iterations": flow.routing.iterations,
        "wirelength": flow.routing.total_wirelength,
        "raw_bits": raw_bits,
        "vbs_bits": vbs.size_bits,
        "ratio": round(vbs.size_bits / raw_bits, 6),
        "clusters_raw": vbs.stats.clusters_raw,
        "codec_counts": format_codec_counts(dict(vbs.codec_tags())),
    }


def _run_workload_point(pd: dict) -> dict:
    """Runtime-simulator metrics of one workload point."""
    from repro.runtime.workload import run_scenario

    report = run_scenario(
        kind=pd["kind"],
        n_tasks=pd["tasks"],
        length=pd["length"],
        seed=pd["seed"],
        channel_width=pd["channel_width"],
        cluster_size=pd["cluster"],
        arrivals=pd["arrivals"],
        mean_interarrival=pd["mean_interarrival"],
    )
    metrics = {
        "loads": report["events"]["loads"],
        "unloads": report["events"]["unloads"],
        "cache_hits": report["cache"]["hits"],
        "cache_misses": report["cache"]["misses"],
        "bytes_decoded": report["bytes_decoded"],
        "total_cycles": report["cycles"]["total"],
    }
    latency = report.get("latency")
    if latency:
        metrics["p99_latency"] = latency["p99"]
    return metrics


def _point_cache_path(results_dir: Path, suite_name: str, key: str) -> Path:
    digest = hashlib.sha256(key.encode()).hexdigest()[:12]
    safe = key.replace("/", "_").replace(":", "_")
    d = results_dir / "tasks" / suite_name
    d.mkdir(parents=True, exist_ok=True)
    return d / f"{safe}-{digest}.json"


def run_point(
    point: TaskPoint,
    results_dir: Path,
    suite_name: str,
    force: bool = False,
) -> dict:
    """Run (or load from cache) one expanded point's metrics."""
    from repro.eval.experiments import CACHE_VERSION

    path = _point_cache_path(results_dir, suite_name, point.key)
    if path.exists() and not force:
        try:
            cached = json.loads(path.read_text())
        except json.JSONDecodeError:
            cached = None
        if cached is not None and cached.get("cache_version") == CACHE_VERSION:
            return cached["metrics"]
    pd = point.param_dict
    metrics = (
        _run_flow_point(pd) if point.kind == "flow"
        else _run_workload_point(pd)
    )
    path.write_text(json.dumps(
        {"cache_version": CACHE_VERSION, "key": point.key,
         "metrics": metrics},
        indent=1, sort_keys=True,
    ))
    return metrics


def run_suite(
    suite_path: Path,
    results_dir: Path,
    force: bool = False,
    progress=None,
) -> SuiteReport:
    """Expand and execute every point of a suite."""
    suite = load_suite(suite_path)
    report = SuiteReport(suite, Path(suite_path))
    for point in expand_points(suite):
        if progress is not None:
            progress(point)
        report.points[point.key] = run_point(
            point, Path(results_dir), suite["name"], force=force
        )
    return report


# -- golden comparison -------------------------------------------------------------


def golden_path(suite_path: Path, suite: dict) -> Path:
    """Golden-results location: suite-relative ``golden`` key, or a
    ``<suite>.golden.json`` sibling."""
    suite_path = Path(suite_path)
    rel = suite.get("golden")
    if rel:
        return (suite_path.parent / rel).resolve()
    return suite_path.with_suffix(".golden.json")


def save_golden(report: SuiteReport) -> Path:
    path = golden_path(report.suite_path, report.suite)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report.to_json(), indent=1, sort_keys=True)
                    + "\n")
    return path


def load_golden(suite_path: Path, suite: dict) -> Optional[dict]:
    path = golden_path(suite_path, suite)
    if not path.exists():
        return None
    try:
        golden = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise TaskSuiteError(f"corrupt golden file {path}: {exc}")
    if golden.get("format") != GOLDEN_FORMAT:
        raise TaskSuiteError(
            f"golden file {path}: unsupported format {golden.get('format')!r}"
        )
    return golden


def _within_tolerance(metric: str, old, new, tolerances: dict) -> bool:
    if isinstance(old, str) or isinstance(new, str):
        return old == new
    tol = tolerances.get(metric, {})
    abs_tol = tol.get("abs", 0)
    rel_tol = tol.get("rel", 0.0)
    delta = abs(new - old)
    return delta <= abs_tol or (old != 0 and delta / abs(old) <= rel_tol)


def compare_to_golden(report: SuiteReport, golden: dict) -> dict:
    """Per-point QoR deltas versus the golden results.

    Returns ``{"passed": bool, "regressions": [...], "deltas": {...}}``.
    A regression is a metric outside its declared tolerance, a point
    missing from the golden file, or a golden point the suite no longer
    produces (stale goldens hide drift).
    """
    tolerances = report.suite.get("tolerances", {})
    gpoints = golden.get("points", {})
    regressions: List[str] = []
    deltas: Dict[str, dict] = {}
    for key, metrics in sorted(report.points.items()):
        gold = gpoints.get(key)
        if gold is None:
            regressions.append(f"{key}: not in golden (run --update-golden)")
            continue
        row = {}
        for metric, new in sorted(metrics.items()):
            old = gold.get(metric)
            if old is None:
                regressions.append(f"{key}: metric {metric!r} not in golden")
                continue
            if isinstance(new, str) or isinstance(old, str):
                row[metric] = {"golden": old, "got": new,
                               "ok": old == new}
            else:
                row[metric] = {"golden": old, "got": new,
                               "delta": round(new - old, 9),
                               "ok": _within_tolerance(
                                   metric, old, new, tolerances)}
            if not row[metric]["ok"]:
                regressions.append(
                    f"{key}: {metric} {old!r} -> {new!r} "
                    f"(outside tolerance)"
                )
        deltas[key] = row
    for key in sorted(gpoints):
        if key not in report.points:
            regressions.append(f"golden point {key} no longer produced")
    return {
        "passed": not regressions,
        "regressions": regressions,
        "deltas": deltas,
    }


def summarize_comparison(comparison: dict) -> str:
    """Human-readable QoR-vs-golden digest."""
    lines = []
    n_pts = len(comparison["deltas"])
    n_metrics = sum(len(v) for v in comparison["deltas"].values())
    changed = sum(
        1 for row in comparison["deltas"].values()
        for cell in row.values() if cell.get("delta") not in (0, None)
    )
    lines.append(
        f"golden check: {n_pts} points, {n_metrics} metrics, "
        f"{changed} drifted, {len(comparison['regressions'])} regression(s)"
    )
    for reg in comparison["regressions"]:
        lines.append(f"  REGRESSION {reg}")
    return "\n".join(lines)
