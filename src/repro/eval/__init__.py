"""Evaluation harness: Table II data, experiment runners, figure rendering."""

from repro.eval.mcnc import (
    FULL_SET,
    MCNC_TABLE,
    MEDIUM_SET,
    SMALL_SET,
    McncCircuit,
    benchmark_names,
    circuit,
)
from repro.eval.experiments import (
    DEFAULT_CLUSTERS,
    EVAL_CHANNEL_WIDTH,
    EVAL_EXTRAS,
    evaluate_circuit,
    extra_spec,
    flow_for,
    run_fig4,
    run_fig5,
    run_table2,
    v4_ratio_summary,
)
from repro.eval.figures import (
    format_table,
    geomean,
    render_fig4,
    render_fig5,
    render_table2,
    to_csv,
)

__all__ = [
    "FULL_SET",
    "MCNC_TABLE",
    "MEDIUM_SET",
    "SMALL_SET",
    "McncCircuit",
    "benchmark_names",
    "circuit",
    "DEFAULT_CLUSTERS",
    "EVAL_CHANNEL_WIDTH",
    "EVAL_EXTRAS",
    "evaluate_circuit",
    "extra_spec",
    "flow_for",
    "run_fig4",
    "run_fig5",
    "run_table2",
    "v4_ratio_summary",
    "format_table",
    "geomean",
    "render_fig4",
    "render_fig5",
    "render_table2",
    "to_csv",
]
