"""Rendering of the paper's tables and figures as text and CSV.

No plotting dependencies are available offline, so figures are rendered as
aligned ASCII (log-scale bar charts for Figure 4, a min/geomean/max series
for Figure 5) plus machine-readable CSV files next to the results cache.
"""

from __future__ import annotations

import csv
import io
import math
from typing import Dict, List, Sequence, Tuple


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Fixed-width table with a header rule."""
    cols = [list(map(str, col)) for col in zip(headers, *rows)] if rows else [
        [h] for h in headers
    ]
    widths = [max(len(v) for v in col) for col in cols]
    def fmt(row: Sequence[object]) -> str:
        return "  ".join(str(v).rjust(w) for v, w in zip(row, widths))
    out = [fmt(headers), fmt(["-" * w for w in widths])]
    out.extend(fmt(row) for row in rows)
    return "\n".join(out)


def log_bar(value: float, lo: float, hi: float, width: int = 40) -> str:
    """A log-scale bar for Figure 4's logarithmic size axis."""
    if value <= 0 or hi <= lo:
        return ""
    frac = (math.log10(value) - math.log10(lo)) / (
        math.log10(hi) - math.log10(lo)
    )
    frac = max(0.0, min(1.0, frac))
    return "#" * max(1, round(frac * width))


def render_fig4(rows: List[Dict[str, object]]) -> str:
    """Figure 4: per-circuit raw (BS) vs Virtual Bit-Stream (VBS) sizes."""
    sizes = [float(r["raw_bits"]) for r in rows] + [
        float(r["vbs_bits"]) for r in rows
    ]
    lo, hi = min(sizes) * 0.9, max(sizes) * 1.1
    lines = ["Figure 4 — raw bit-stream vs Virtual Bit-Stream size (log scale)", ""]
    for r in rows:
        lines.append(f"{r['name']:>10}  BS  {int(r['raw_bits']):>12,} "
                     f"|{log_bar(float(r['raw_bits']), lo, hi)}")
        lines.append(f"{'':>10}  VBS {int(r['vbs_bits']):>12,} "
                     f"|{log_bar(float(r['vbs_bits']), lo, hi)}"
                     f"  ({100 * float(r['ratio']):.1f}% of raw)")
    ratios = [float(r["ratio"]) for r in rows]
    avg = sum(ratios) / len(ratios)
    lines.append("")
    lines.append(
        f"average compression ratio: {100 * avg:.1f}% of raw "
        f"(paper: 41%) — {1 / avg:.2f}x smaller"
    )
    return "\n".join(lines)


def render_fig5(series: List[Dict[str, object]]) -> str:
    """Figure 5: VBS size statistics per cluster size."""
    lines = [
        "Figure 5 — effect of macro cluster size on VBS size",
        "",
        format_table(
            ["cluster", "min bits", "geomean bits", "max bits", "avg ratio"],
            [
                [
                    r["cluster"],
                    f"{int(r['min_bits']):,}",
                    f"{int(r['geomean_bits']):,}",
                    f"{int(r['max_bits']):,}",
                    f"{100 * float(r['avg_ratio']):.1f}%",
                ]
                for r in series
            ],
        ),
    ]
    base = float(series[0]["avg_ratio"]) if series else 0.0
    best = min((float(r["avg_ratio"]) for r in series), default=0.0)
    if base and best:
        lines.append("")
        lines.append(
            f"best clustering improves the ratio {base / best:.2f}x over "
            f"no clustering (paper: ~4x at cluster size 2)"
        )
    return "\n".join(lines)


def render_table2(rows: List[Dict[str, object]]) -> str:
    """Table II: benchmark characteristics, paper vs this reproduction."""
    return "Table II — benchmark set (paper values vs proxies)\n\n" + format_table(
        ["name", "size", "MCW(paper)", "MCW(ours)", "LBs(paper)", "LBs(ours)"],
        [
            [
                r["name"],
                r["size"],
                r["mcw_paper"],
                r.get("mcw_ours", "-"),
                r["lbs_paper"],
                r.get("lbs_ours", "-"),
            ]
            for r in rows
        ],
    )


def geomean(values: Sequence[float]) -> float:
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def to_csv(rows: List[Dict[str, object]], field_order: Sequence[str]) -> str:
    """Serialize result rows to CSV text."""
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=list(field_order))
    writer.writeheader()
    for row in rows:
        writer.writerow({k: row.get(k) for k in field_order})
    return buf.getvalue()
