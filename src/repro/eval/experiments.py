"""Experiment runners regenerating every table and figure of the paper.

Each runner produces plain dict rows (JSON-serializable) and caches them
under a results directory, so the expensive CAD runs happen once; the
pytest benchmarks and the ``run_all`` CLI both sit on top of these.

Experiments (ids match DESIGN.md):

* E1 / Table II — benchmark characteristics with our recomputed MCW;
* E2 / Figure 4 — raw vs Virtual Bit-Stream size at W = 20, cluster 1;
* E3 / Figure 5 — VBS size and ratio across cluster sizes.

A ``scale`` parameter (default 1.0) shrinks the proxy circuits uniformly —
shape-preserving reduced runs for laptops and CI; EXPERIMENTS.md records
which scale produced the published numbers.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.arch.params import ArchParams
from repro.bitstream.expand import expand_routing
from repro.bitstream.raw import RawBitstream
from repro.cad.flow import FlowResult, run_flow
from repro.cad.mcw import find_mcw
from repro.eval.figures import geomean
from repro.eval.mcnc import MCNC_TABLE, circuit
from repro.netlist.generate import CircuitSpec
from repro.vbs.codecs import V3_CODECS
from repro.vbs.encode import encode_flow

#: Bump to invalidate caches when result-affecting code changes.
CACHE_VERSION = 8

#: Synthetic eval circuits beyond the MCNC proxy table — workloads the
#: later codec families target.  ``dpath`` is a replicated datapath: a
#: small truth-table vocabulary (``pattern_pool``) stamped across the
#: fabric, the repetition structure real synthesized logic exhibits and
#: the VERSION 4 best-of-k delta codec exploits.  ``run_all`` appends
#: these to the figure corpora; they have no Table II row, so the MCW
#: search skips them.
EVAL_EXTRAS = ("dpath",)


def extra_spec(name: str, scale: float = 1.0) -> CircuitSpec:
    """The generator spec of a synthetic eval circuit."""
    if name == "dpath":
        n_luts = max(24, round(96 * scale))
        return CircuitSpec(
            "dpath",
            n_luts=n_luts,
            n_inputs=max(4, round(12 * scale)),
            n_outputs=max(4, round(10 * scale)),
            pattern_pool=3,
        )
    raise ValueError(f"unknown synthetic eval circuit {name!r}")


def format_codec_counts(counts: Dict[str, int]) -> str:
    """Flatten a per-codec record-count map for CSV cells (stable order)."""
    return ";".join(f"{name}={counts[name]}" for name in sorted(counts))

DEFAULT_CLUSTERS = (1, 2, 3, 4, 5, 6, 8)
EVAL_CHANNEL_WIDTH = 20  # the paper normalizes all circuits to 20 tracks


def _cache_path(results_dir: Path, key: str) -> Path:
    results_dir.mkdir(parents=True, exist_ok=True)
    return results_dir / f"{key}.json"


def _load_cache(path: Path) -> Optional[dict]:
    if not path.exists():
        return None
    try:
        data = json.loads(path.read_text())
    except json.JSONDecodeError:
        return None
    if data.get("cache_version") != CACHE_VERSION:
        return None
    return data


def flow_for(
    name: str,
    channel_width: int = EVAL_CHANNEL_WIDTH,
    scale: float = 1.0,
    seed: int = 1,
) -> FlowResult:
    """Run the CAD flow for one eval circuit (no caching: live objects).

    ``name`` is an MCNC proxy from Table II or one of the synthetic
    :data:`EVAL_EXTRAS`.
    """
    from repro.netlist.generate import generate_circuit

    params = ArchParams(channel_width=channel_width)
    if name in EVAL_EXTRAS:
        netlist = generate_circuit(extra_spec(name, scale))
        return run_flow(netlist, params, seed=seed)
    bench = circuit(name)
    netlist = bench.netlist(scale)
    logic_size = bench.size if scale == 1.0 else None
    big = bench.lbs * scale > 1200
    return run_flow(
        netlist,
        params,
        logic_size=logic_size,
        seed=seed,
        place_inner_num=0.25 if big else 0.5,
        place_fast=big,
    )


def evaluate_circuit(
    name: str,
    results_dir: Path,
    channel_width: int = EVAL_CHANNEL_WIDTH,
    clusters: Sequence[int] = DEFAULT_CLUSTERS,
    scale: float = 1.0,
    seed: int = 1,
    force: bool = False,
) -> dict:
    """Compression measurements of one circuit at every cluster size.

    Returns (and caches) a row with raw size and, per cluster size, the VBS
    size, ratio, fallback count and decode work.
    """
    key = f"{name}_W{channel_width}_s{scale:g}"
    path = _cache_path(results_dir, key)
    cached = _load_cache(path)
    want = [str(c) for c in clusters]
    if cached is not None and not force:
        if all(c in cached["clusters"] for c in want):
            return cached

    t0 = time.perf_counter()
    flow = flow_for(name, channel_width, scale, seed)
    config = expand_routing(flow.design, flow.placement, flow.routing, flow.rrg)
    raw_bits = RawBitstream.size_for(
        flow.params, flow.fabric.width, flow.fabric.height
    )

    row: dict = {
        "cache_version": CACHE_VERSION,
        "name": name,
        "channel_width": channel_width,
        "scale": scale,
        "lbs": flow.design.num_clbs,
        "pads": flow.design.num_pads,
        "nets": len(flow.routing.trees),
        "task_w": flow.fabric.width,
        "task_h": flow.fabric.height,
        "route_iterations": flow.routing.iterations,
        "wirelength": flow.routing.total_wirelength,
        "raw_bits": raw_bits,
        "clusters": {},
        "flow_seconds": round(time.perf_counter() - t0, 2),
    }
    if cached is not None:
        row["clusters"].update(cached.get("clusters", {}))

    from repro.vbs.devirt import DecodeMemo

    memo = DecodeMemo()
    for c in clusters:
        if str(c) in row["clusters"] and not force:
            continue
        t1 = time.perf_counter()
        vbs = encode_flow(flow, config, cluster_size=c, memo=memo)
        from repro.vbs.decode import decode_vbs

        _cfg, dstats = decode_vbs(vbs)
        # The cost-driven picker at both codec generations: the VERSION 3
        # set versus the full family (VERSION 4 engages only where the
        # wide tag field pays — the improvement column must be >= 0).
        auto_v3 = encode_flow(
            flow, config, cluster_size=c, codecs=list(V3_CODECS), memo=memo
        )
        auto_v4 = encode_flow(
            flow, config, cluster_size=c, codecs="auto", memo=memo
        )
        row["clusters"][str(c)] = {
            "vbs_bits": vbs.size_bits,
            "ratio": vbs.size_bits / raw_bits,
            "clusters_listed": vbs.stats.clusters_listed,
            "clusters_raw": vbs.stats.clusters_raw,
            "pairs": vbs.stats.pairs_total,
            "orders_tried": vbs.stats.orders_tried,
            "codec_counts": dict(sorted(vbs.codec_tags().items())),
            "auto_v3_bits": auto_v3.size_bits,
            "auto_v4_bits": auto_v4.size_bits,
            "auto_v4_version": auto_v4.wire_version,
            "auto_v4_codec_counts": dict(
                sorted(auto_v4.codec_tags().items())
            ),
            "auto_v4_family_trials": auto_v4.stats.family_trials,
            "decode_work": dstats.router_work,
            "decode_max_cluster_work": dstats.max_cluster_work,
            "encode_seconds": round(time.perf_counter() - t1, 2),
        }

    path.write_text(json.dumps(row, indent=1, sort_keys=True))
    return row


def run_fig4(
    names: Sequence[str],
    results_dir: Path,
    channel_width: int = EVAL_CHANNEL_WIDTH,
    scale: float = 1.0,
    seed: int = 1,
) -> List[dict]:
    """Figure 4 rows: raw vs VBS size per circuit (cluster size 1)."""
    rows = []
    for name in names:
        data = evaluate_circuit(
            name, results_dir, channel_width, clusters=(1,), scale=scale, seed=seed
        )
        c1 = data["clusters"]["1"]
        rows.append(
            {
                "name": name,
                "raw_bits": data["raw_bits"],
                "vbs_bits": c1["vbs_bits"],
                "ratio": c1["ratio"],
                "clusters_raw": c1["clusters_raw"],
                "codec_counts": format_codec_counts(
                    c1.get("codec_counts", {})
                ),
                "auto_v3_bits": c1.get("auto_v3_bits", ""),
                "auto_v4_bits": c1.get("auto_v4_bits", ""),
                "auto_v4_codec_counts": format_codec_counts(
                    c1.get("auto_v4_codec_counts", {})
                ),
                "auto_v4_family_trials": c1.get(
                    "auto_v4_family_trials", ""
                ),
            }
        )
    return rows


def v4_ratio_summary(
    names: Sequence[str],
    results_dir: Path,
    channel_width: int = EVAL_CHANNEL_WIDTH,
    clusters: Sequence[int] = DEFAULT_CLUSTERS,
    scale: float = 1.0,
    seed: int = 1,
) -> dict:
    """VERSION 3-vs-4 compression totals over the evaluated corpus.

    Sums the cost-driven picker's payload bits at both codec generations
    across every (circuit, cluster) point — the number the VERSION 4
    acceptance gate watches: ``total_auto_v4_bits`` must never exceed
    ``total_auto_v3_bits``, and improves strictly wherever the wide tag
    field engages.  Reuses the per-circuit result cache, so calling this
    after the figure runners costs no new flows.
    """
    per_circuit = []
    total_v3 = total_v4 = 0
    for name in names:
        data = evaluate_circuit(
            name, results_dir, channel_width, clusters, scale=scale,
            seed=seed,
        )
        row = {"name": name, "clusters": {}}
        for c in clusters:
            cell = data["clusters"][str(c)]
            row["clusters"][str(c)] = {
                "auto_v3_bits": cell["auto_v3_bits"],
                "auto_v4_bits": cell["auto_v4_bits"],
                "auto_v4_version": cell["auto_v4_version"],
            }
            total_v3 += cell["auto_v3_bits"]
            total_v4 += cell["auto_v4_bits"]
        per_circuit.append(row)
    return {
        "cache_version": CACHE_VERSION,
        "channel_width": channel_width,
        "scale": scale,
        "clusters": list(clusters),
        "per_circuit": per_circuit,
        "total_auto_v3_bits": total_v3,
        "total_auto_v4_bits": total_v4,
        "improvement_bits": total_v3 - total_v4,
        "v4_over_v3_ratio": (total_v4 / total_v3) if total_v3 else 1.0,
    }


def run_fig5(
    names: Sequence[str],
    results_dir: Path,
    channel_width: int = EVAL_CHANNEL_WIDTH,
    clusters: Sequence[int] = DEFAULT_CLUSTERS,
    scale: float = 1.0,
    seed: int = 1,
) -> List[dict]:
    """Figure 5 series: min/geomean/max VBS size and avg ratio per cluster."""
    per_circuit = [
        evaluate_circuit(
            name, results_dir, channel_width, clusters, scale=scale, seed=seed
        )
        for name in names
    ]
    series = []
    for c in clusters:
        sizes = [row["clusters"][str(c)]["vbs_bits"] for row in per_circuit]
        ratios = [row["clusters"][str(c)]["ratio"] for row in per_circuit]
        work = [row["clusters"][str(c)]["decode_work"] for row in per_circuit]
        series.append(
            {
                "cluster": c,
                "min_bits": min(sizes),
                "max_bits": max(sizes),
                "geomean_bits": geomean(sizes),
                "avg_ratio": sum(ratios) / len(ratios),
                "avg_decode_work": sum(work) / len(work),
            }
        )
    return series


def run_workload(
    results_dir: Path,
    kind: str = "hot-set",
    n_tasks: int = 3,
    length: int = 40,
    seed: int = 1,
    force: bool = False,
    arrivals: "str | None" = None,
    mean_interarrival: int = 2000,
    zipf_alpha: float = 1.1,
    task_scope: bool = False,
    shards: int = 1,
    router: str = "hash",
) -> dict:
    """One workload-simulator report, cached like the figure rows.

    The decode cache (and the controller's DecodeMemo) is persisted
    under ``<results_dir>/decode_cache`` — the cross-process reuse path:
    re-running the experiment (or any other scenario over the same
    images) starts warm.  The report itself is cached under the usual
    versioned JSON convention, so ``run_all`` replays are free.

    ``arrivals="poisson"`` runs the open-loop engine (latency
    percentiles, queue depths); ``task_scope=True`` replays over
    multi-container ``encode_task`` groups instead of independent
    images.  ``shards > 1`` replays the same trace across a sharded
    fabric fleet under the ``router`` placement policy.  Open-loop,
    task-scope and fleet variants cache under distinct keys, so the
    closed-loop report's key is unchanged.
    """
    from repro.runtime.workload import run_scenario

    key = f"workload_{kind}_t{n_tasks}_n{length}_seed{seed}"
    if kind == "zipf":
        key += f"_a{zipf_alpha:g}"
    if arrivals is not None:
        key += f"_{arrivals}{mean_interarrival}"
    if task_scope:
        key += "_taskscope"
    if shards > 1:
        key += f"_s{shards}{router}"
    path = _cache_path(results_dir, key)
    cached = _load_cache(path)
    if cached is not None and not force:
        return cached

    report = run_scenario(
        kind=kind,
        n_tasks=n_tasks,
        length=length,
        seed=seed,
        cache_dir=str(results_dir / "decode_cache"),
        arrivals=arrivals,
        mean_interarrival=mean_interarrival,
        zipf_alpha=zipf_alpha,
        task_scope=task_scope,
        shards=shards,
        router=router,
    )
    report["cache_version"] = CACHE_VERSION
    path.write_text(json.dumps(report, indent=1, sort_keys=True))
    return report


def run_sweep(
    results_dir: Path,
    kind: str = "zipf",
    n_tasks: int = 3,
    length: int = 30,
    seed: int = 3,
    base_interarrival: int = 20000,
    factor: float = 4.0,
    steps: int = 6,
    servers: int = 1,
    policy: "str | None" = None,
    force: bool = False,
) -> dict:
    """One saturation-knee sweep report, cached like the figure rows.

    Replays the seeded trace at a geometric ladder of arrival rates
    (fresh simulator state per rate — see
    :func:`~repro.runtime.workload.run_sweep_scenario`) and locates the
    saturation knee; ``run_all --workload`` persists the result as
    ``knee.json`` next to the other workload artifacts.
    """
    from repro.runtime.workload import run_sweep_scenario

    key = (
        f"sweep_{kind}_t{n_tasks}_n{length}_seed{seed}"
        f"_b{base_interarrival}_f{factor:g}_x{steps}"
    )
    if servers != 1:
        key += f"_k{servers}"
    if policy not in (None, "none"):
        key += f"_{policy}"
    path = _cache_path(results_dir, key)
    cached = _load_cache(path)
    if cached is not None and not force:
        return cached

    sweep = run_sweep_scenario(
        kind=kind,
        n_tasks=n_tasks,
        length=length,
        seed=seed,
        base_interarrival=base_interarrival,
        factor=factor,
        steps=steps,
        servers=servers,
        policy=policy,
    )
    sweep["cache_version"] = CACHE_VERSION
    path.write_text(json.dumps(sweep, indent=1, sort_keys=True))
    return sweep


def run_table2(
    names: Sequence[str],
    results_dir: Path,
    scale: float = 1.0,
    seed: int = 1,
    w_max: int = 40,
    force: bool = False,
) -> List[dict]:
    """Table II rows: grid size, MCW (paper and ours), LB count."""
    rows = []
    for name in names:
        bench = circuit(name)
        key = f"mcw_{name}_s{scale:g}"
        path = _cache_path(results_dir, key)
        cached = _load_cache(path)
        if cached is None or force:
            netlist = bench.netlist(scale)
            params = ArchParams(channel_width=EVAL_CHANNEL_WIDTH)
            from repro.cad.flow import run_flow as _run

            t0 = time.perf_counter()
            big = bench.lbs * scale > 1200
            flow = _run(
                netlist,
                params,
                logic_size=bench.size if scale == 1.0 else None,
                seed=seed,
                place_inner_num=0.25 if big else 0.5,
                place_fast=big,
            )
            mcw = find_mcw(
                flow.design,
                flow.fabric,
                placement=flow.placement,
                w_max=w_max,
                max_iterations=20,
            )
            cached = {
                "cache_version": CACHE_VERSION,
                "name": name,
                "mcw_ours": mcw.mcw,
                "lbs_ours": flow.design.num_clbs,
                "seconds": round(time.perf_counter() - t0, 2),
            }
            path.write_text(json.dumps(cached, indent=1, sort_keys=True))
        rows.append(
            {
                "name": name,
                "size": bench.size,
                "mcw_paper": bench.mcw_paper,
                "mcw_ours": cached["mcw_ours"],
                "lbs_paper": bench.lbs,
                "lbs_ours": cached["lbs_ours"],
            }
        )
    return rows
