"""Full evaluation harness: regenerate Table II, Figure 4 and Figure 5.

Usage::

    python -m repro.eval.run_all --subset small --scale 1.0
    python -m repro.eval.run_all --subset full            # the paper's set
    python -m repro.eval.run_all --mcw                    # include Table II MCW

Results are cached under ``--results-dir`` (default ``results/``); rendered
figures and CSVs are written next to the cache.  Re-running only computes
what is missing.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.eval.experiments import (
    DEFAULT_CLUSTERS,
    EVAL_CHANNEL_WIDTH,
    EVAL_EXTRAS,
    run_fig4,
    run_fig5,
    run_sweep,
    run_table2,
    run_workload,
    v4_ratio_summary,
)
from repro.eval.figures import render_fig4, render_fig5, render_table2, to_csv
from repro.eval.mcnc import benchmark_names


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--subset", default="small",
                        choices=("small", "medium", "full"))
    parser.add_argument("--names", nargs="*", default=None,
                        help="explicit circuit names (overrides --subset)")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="proxy size scale in (0,1]; 1.0 = paper scale")
    parser.add_argument("--channel-width", type=int, default=EVAL_CHANNEL_WIDTH)
    parser.add_argument("--clusters", type=int, nargs="*",
                        default=list(DEFAULT_CLUSTERS))
    parser.add_argument("--results-dir", type=Path, default=Path("results"))
    parser.add_argument("--mcw", action="store_true",
                        help="also run the Table II MCW search (slow)")
    parser.add_argument("--workload", action="store_true",
                        help="also replay the runtime workload-simulator "
                             "scenario (hot-set trace)")
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args(argv)

    names = tuple(args.names) if args.names else benchmark_names(args.subset)
    if not args.names:
        # The synthetic extras ride along with every subset run: the
        # workloads the VERSION 4 codec family targets (replicated
        # datapaths) have no MCNC row but belong in the corpus.
        names = names + tuple(n for n in EVAL_EXTRAS if n not in names)
    results_dir = args.results_dir
    t0 = time.perf_counter()

    print(f"# Evaluating {len(names)} circuits at scale {args.scale:g}, "
          f"W={args.channel_width}: {', '.join(names)}", flush=True)

    fig4 = run_fig4(names, results_dir, args.channel_width,
                    scale=args.scale, seed=args.seed)
    print()
    print(render_fig4(fig4))
    (results_dir / "fig4.csv").write_text(
        to_csv(fig4, ["name", "raw_bits", "vbs_bits", "ratio",
                      "clusters_raw", "codec_counts",
                      "auto_v3_bits", "auto_v4_bits",
                      "auto_v4_codec_counts", "auto_v4_family_trials"])
    )

    fig5 = run_fig5(names, results_dir, args.channel_width,
                    clusters=tuple(args.clusters), scale=args.scale,
                    seed=args.seed)
    print()
    print(render_fig5(fig5))
    (results_dir / "fig5.csv").write_text(
        to_csv(fig5, ["cluster", "min_bits", "geomean_bits", "max_bits",
                      "avg_ratio", "avg_decode_work"])
    )

    from json import dumps as _dumps

    ratio = v4_ratio_summary(names, results_dir, args.channel_width,
                             clusters=tuple(args.clusters),
                             scale=args.scale, seed=args.seed)
    (results_dir / "bench_v4_ratio.json").write_text(
        _dumps(ratio, indent=1, sort_keys=True) + "\n"
    )
    print(f"\n# VERSION 3 -> 4 auto totals: "
          f"{ratio['total_auto_v3_bits']} -> {ratio['total_auto_v4_bits']} "
          f"bits ({ratio['improvement_bits']} saved)")

    if args.mcw:
        table2 = run_table2(
            [n for n in names if n not in EVAL_EXTRAS], results_dir,
            scale=args.scale, seed=args.seed,
        )
        print()
        print(render_table2(table2))
        (results_dir / "table2.csv").write_text(
            to_csv(table2, ["name", "size", "mcw_paper", "mcw_ours",
                            "lbs_paper", "lbs_ours"])
        )

    if args.workload:
        from json import dumps

        from repro.runtime.workload import summarize_report, summarize_sweep

        report = run_workload(results_dir, seed=args.seed)
        print()
        print(summarize_report(report))
        (results_dir / "workload.json").write_text(
            dumps(report, indent=1, sort_keys=True) + "\n"
        )
        # The open-loop companion: a Zipf mix under Poisson arrivals,
        # the latency-percentile view a deployment is sized by.
        openloop = run_workload(
            results_dir, kind="zipf", arrivals="poisson", seed=args.seed,
        )
        print()
        print(summarize_report(openloop))
        (results_dir / "openloop.json").write_text(
            dumps(openloop, indent=1, sort_keys=True) + "\n"
        )
        # The fleet companion: the same Zipf/Poisson trace across four
        # fabric shards behind the consistent-hash router — per-shard
        # and fleet-wide percentile sections side by side.
        fleet = run_workload(
            results_dir, kind="zipf", arrivals="poisson", seed=args.seed,
            shards=4, router="hash",
        )
        print()
        print(summarize_report(fleet))
        (results_dir / "fleet.json").write_text(
            dumps(fleet, indent=1, sort_keys=True) + "\n"
        )
        # The saturation-knee companion: the same Zipf workload replayed
        # at a geometric ladder of arrival rates, locating where the
        # open-loop clock saturates and the tail blows up.
        knee = run_sweep(results_dir, seed=args.seed)
        print()
        print(summarize_sweep(knee))
        (results_dir / "knee.json").write_text(
            dumps(knee, indent=1, sort_keys=True) + "\n"
        )

    print(f"\n# done in {time.perf_counter() - t0:.1f}s; cache: {results_dir}/",
          flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
