"""Declarative task suites: parsing, expansion, goldens, CLI gating."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.eval.tasks import (
    TaskSuiteError,
    compare_to_golden,
    expand_points,
    golden_path,
    load_golden,
    load_suite,
    run_suite,
    save_golden,
    summarize_comparison,
)

#: A two-point flow grid over one inline circuit, plus one workload
#: point — small enough that the whole file's tests run in seconds.
SUITE = {
    "format": 1,
    "name": "unit",
    "defaults": {"channel_width": 8, "seed": 11},
    "grids": [
        {
            "circuit": [{"name": "tiny", "n_luts": 14,
                         "n_inputs": 6, "n_outputs": 4}],
            "codecs": ["paper", "auto"],
        },
        {"type": "workload", "tasks": [2], "length": [8]},
    ],
    "tolerances": {"ratio": {"rel": 0.02}},
}


@pytest.fixture()
def suite_file(tmp_path):
    path = tmp_path / "unit.json"
    path.write_text(json.dumps(SUITE))
    return path


class TestSuiteParsing:
    def test_rejects_bad_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(TaskSuiteError, match="cannot read"):
            load_suite(path)

    def test_rejects_unknown_format(self, tmp_path):
        path = tmp_path / "s.json"
        path.write_text(json.dumps({"format": 99, "name": "x",
                                    "grids": [{"circuit": ["ex5p"]}]}))
        with pytest.raises(TaskSuiteError, match="format"):
            load_suite(path)

    def test_rejects_unknown_axis(self, tmp_path):
        path = tmp_path / "s.json"
        path.write_text(json.dumps(
            {"name": "x", "grids": [{"circuit": ["ex5p"], "wat": [1]}]}
        ))
        with pytest.raises(TaskSuiteError, match="unknown axis 'wat'"):
            load_suite(path)

    def test_rejects_flow_grid_without_circuit(self, tmp_path):
        path = tmp_path / "s.json"
        path.write_text(json.dumps({"name": "x", "grids": [{"cluster": [1]}]}))
        with pytest.raises(TaskSuiteError, match="circuit"):
            load_suite(path)

    def test_rejects_unknown_grid_type(self, tmp_path):
        path = tmp_path / "s.json"
        path.write_text(json.dumps(
            {"name": "x", "grids": [{"type": "mystery"}]}
        ))
        with pytest.raises(TaskSuiteError, match="unknown type"):
            load_suite(path)


class TestExpansion:
    def test_cross_product_with_defaults(self, suite_file):
        points = expand_points(load_suite(suite_file))
        keys = [p.key for p in points]
        assert keys == sorted(keys)
        assert keys == [
            "flow/tiny/W8/c1/auto/s1/seed11",
            "flow/tiny/W8/c1/paper/s1/seed11",
            "workload/hot-set/t2/n8/W8/c1/seed11",
        ]
        flow = points[0].param_dict
        assert flow["channel_width"] == 8  # suite default
        assert flow["seed"] == 11  # suite defaults apply to every grid type
        wl = points[-1].param_dict
        assert wl["kind"] == "hot-set"  # axis default fills unset axes

    def test_duplicate_points_collapse(self, tmp_path):
        doubled = dict(SUITE, grids=[SUITE["grids"][0], SUITE["grids"][0]])
        path = tmp_path / "d.json"
        path.write_text(json.dumps(doubled))
        assert len(expand_points(load_suite(path))) == 2


class TestRunAndGolden:
    def test_run_caches_and_compares_clean(self, suite_file, tmp_path):
        results = tmp_path / "results"
        report = run_suite(suite_file, results)
        assert len(report.points) == 3
        flow_metrics = report.points["flow/tiny/W8/c1/paper/s1/seed11"]
        assert flow_metrics["lbs"] == 14
        assert 0 < flow_metrics["ratio"] < 1
        wl_metrics = report.points["workload/hot-set/t2/n8/W8/c1/seed11"]
        assert wl_metrics["loads"] > 0

        save_golden(report)
        golden = load_golden(suite_file, report.suite)
        comparison = compare_to_golden(report, golden)
        assert comparison["passed"]
        assert "0 regression(s)" in summarize_comparison(comparison)

        # Second run comes from the point cache: identical metrics.
        again = run_suite(suite_file, results)
        assert again.points == report.points

    def test_tolerances_and_regressions(self, suite_file, tmp_path):
        report = run_suite(suite_file, tmp_path / "results")
        golden = save_golden(report)
        data = json.loads(golden.read_text())
        key = "flow/tiny/W8/c1/paper/s1/seed11"
        # Within the declared 2% ratio tolerance: not a regression.
        data["points"][key]["ratio"] *= 1.01
        # wirelength has no tolerance: exact match required.
        data["points"][key]["wirelength"] += 1
        golden.write_text(json.dumps(data))
        comparison = compare_to_golden(
            report, load_golden(suite_file, report.suite)
        )
        assert not comparison["passed"]
        assert any("wirelength" in r for r in comparison["regressions"])
        assert not any("ratio" in r for r in comparison["regressions"])

    def test_missing_and_stale_points_are_regressions(
        self, suite_file, tmp_path
    ):
        report = run_suite(suite_file, tmp_path / "results")
        golden_file = save_golden(report)
        data = json.loads(golden_file.read_text())
        data["points"]["flow/ghost/W8/c1/paper/s1/seed1"] = {"lbs": 1}
        del data["points"]["workload/hot-set/t2/n8/W8/c1/seed11"]
        golden_file.write_text(json.dumps(data))
        comparison = compare_to_golden(
            report, load_golden(suite_file, report.suite)
        )
        assert not comparison["passed"]
        assert any("not in golden" in r for r in comparison["regressions"])
        assert any("no longer produced" in r
                   for r in comparison["regressions"])

    def test_golden_path_defaults_to_sibling(self, tmp_path):
        assert golden_path(tmp_path / "s.json", {"name": "s"}) == (
            tmp_path / "s.golden.json"
        )
        assert golden_path(
            tmp_path / "s.json", {"golden": "g/s.json"}
        ) == (tmp_path / "g" / "s.json").resolve()


class TestTasksCli:
    def test_run_then_check_roundtrip(self, suite_file, tmp_path):
        results = str(tmp_path / "results")
        assert main(["tasks", "run", str(suite_file),
                     "--results-dir", results, "--update-golden"]) == 0
        out = tmp_path / "check.json"
        assert main(["tasks", "check", str(suite_file),
                     "--results-dir", results, "--json", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["passed"] is True
        assert payload["suite"] == "unit"

    def test_check_without_golden_exits_2(self, suite_file, tmp_path, capsys):
        rc = main(["tasks", "check", str(suite_file),
                   "--results-dir", str(tmp_path / "results")])
        assert rc == 2
        assert "no golden" in capsys.readouterr().err

    def test_check_regression_exits_1(self, suite_file, tmp_path):
        results = str(tmp_path / "results")
        assert main(["tasks", "run", str(suite_file),
                     "--results-dir", results, "--update-golden"]) == 0
        golden = suite_file.parent / "unit.golden.json"
        data = json.loads(golden.read_text())
        for metrics in data["points"].values():
            if "wirelength" in metrics:
                metrics["wirelength"] += 5
        golden.write_text(json.dumps(data))
        assert main(["tasks", "check", str(suite_file),
                     "--results-dir", results]) == 1

    def test_bad_suite_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        rc = main(["tasks", "run", str(bad),
                   "--results-dir", str(tmp_path / "r")])
        assert rc == 2
        assert "error:" in capsys.readouterr().err


def test_committed_smoke_suite_is_valid():
    """The suite and golden shipped with the repo must stay loadable and
    mutually consistent (every suite point has a golden row)."""
    from pathlib import Path

    suite_path = Path(__file__).resolve().parents[2] / "suites" / "smoke.json"
    suite = load_suite(suite_path)
    points = expand_points(suite)
    golden = load_golden(suite_path, suite)
    assert golden is not None
    assert sorted(golden["points"]) == [p.key for p in points]
