"""Evaluation harness: Table II data, runners, figure rendering."""

import pytest

from repro.eval import (
    MCNC_TABLE,
    benchmark_names,
    circuit,
    evaluate_circuit,
    format_table,
    geomean,
    render_fig4,
    render_fig5,
    render_table2,
    run_fig4,
    run_fig5,
    to_csv,
)


class TestTable2Data:
    def test_twenty_circuits(self):
        assert len(MCNC_TABLE) == 20

    def test_paper_rows_exact(self):
        # Spot checks against Table II.
        alu4 = circuit("alu4")
        assert (alu4.size, alu4.mcw_paper, alu4.lbs) == (35, 9, 1173)
        clma = circuit("clma")
        assert (clma.size, clma.mcw_paper, clma.lbs) == (79, 15, 6226)
        ex1010 = circuit("ex1010")
        assert (ex1010.size, ex1010.mcw_paper, ex1010.lbs) == (56, 16, 3093)

    def test_majority_over_thousand_lbs(self):
        # "Of these 20 benchmarks, 13 of them contain over a thousand LBs."
        assert sum(1 for c in MCNC_TABLE if c.lbs > 1000) == 13

    def test_lbs_fit_grid(self):
        for c in MCNC_TABLE:
            assert c.lbs <= c.size * c.size

    def test_io_clamping(self):
        bigkey = circuit("bigkey")
        n_in, n_out = bigkey.clamped_io()
        assert n_in + n_out <= bigkey.pad_capacity
        alu4 = circuit("alu4")
        assert alu4.clamped_io() == (14, 8)  # fits, unchanged

    def test_locality_ordering(self):
        # Congested circuits (high MCW) get lower locality.
        assert circuit("ex1010").locality < circuit("des").locality

    def test_spec_counts(self):
        spec = circuit("tseng").spec()
        assert spec.n_luts == 799
        assert spec.n_latches == 385

    def test_scaled_spec(self):
        spec = circuit("alu4").spec(scale=0.1)
        assert spec.n_luts == 117

    def test_subsets(self):
        assert set(benchmark_names("small")) < set(benchmark_names("medium"))
        assert len(benchmark_names("full")) == 20
        with pytest.raises(Exception):
            benchmark_names("gigantic")

    def test_unknown_circuit(self):
        with pytest.raises(Exception):
            circuit("mystery99")


class TestRunners:
    @pytest.mark.integration
    def test_evaluate_circuit_caches(self, tmp_path):
        row = evaluate_circuit(
            "ex5p", tmp_path, channel_width=8, clusters=(1, 2), scale=0.08,
        )
        assert row["raw_bits"] > row["clusters"]["1"]["vbs_bits"]
        # Second call must come from cache (no new flow).
        again = evaluate_circuit(
            "ex5p", tmp_path, channel_width=8, clusters=(1, 2), scale=0.08,
        )
        assert again["clusters"] == row["clusters"]

    @pytest.mark.integration
    def test_fig_runners(self, tmp_path):
        rows = run_fig4(["ex5p"], tmp_path, channel_width=8, scale=0.08)
        assert rows[0]["ratio"] < 1.0
        series = run_fig5(["ex5p"], tmp_path, channel_width=8,
                          clusters=(1, 2), scale=0.08)
        assert [s["cluster"] for s in series] == [1, 2]

    @pytest.mark.integration
    def test_rows_carry_codec_counts(self, tmp_path):
        row = evaluate_circuit(
            "ex5p", tmp_path, channel_width=8, clusters=(1,), scale=0.08,
        )
        counts = row["clusters"]["1"]["codec_counts"]
        assert counts and sum(counts.values()) == (
            row["clusters"]["1"]["clusters_listed"]
        )
        fig4 = run_fig4(["ex5p"], tmp_path, channel_width=8, scale=0.08)
        # The flattened per-codec record counts ride along in fig4 rows
        # (and therefore in fig4.csv).
        flat = fig4[0]["codec_counts"]
        assert flat == ";".join(
            f"{name}={counts[name]}" for name in sorted(counts)
        )

    @pytest.mark.integration
    def test_rows_carry_auto_generation_columns(self, tmp_path):
        """Every cluster cell records the cost-driven picker at both
        codec generations, and VERSION 4 never regresses VERSION 3."""
        row = evaluate_circuit(
            "ex5p", tmp_path, channel_width=8, clusters=(1,), scale=0.08,
        )
        cell = row["clusters"]["1"]
        assert cell["auto_v4_bits"] <= cell["auto_v3_bits"]
        assert cell["auto_v4_version"] in (2, 3, 4)
        fig4 = run_fig4(["ex5p"], tmp_path, channel_width=8, scale=0.08)
        assert fig4[0]["auto_v3_bits"] == cell["auto_v3_bits"]
        assert fig4[0]["auto_v4_bits"] == cell["auto_v4_bits"]
        # The exhaustive trial count rides along too — the denominator
        # of the predictor's trial-reduction claims.
        assert cell["auto_v4_family_trials"] > 0
        assert fig4[0]["auto_v4_family_trials"] == (
            cell["auto_v4_family_trials"]
        )
        counts = cell["auto_v4_codec_counts"]
        assert fig4[0]["auto_v4_codec_counts"] == ";".join(
            f"{name}={counts[name]}" for name in sorted(counts)
        )

    @pytest.mark.integration
    def test_v4_ratio_summary_improves_on_replicated_corpus(self, tmp_path):
        """The synthetic replicated-datapath extra engages the VERSION 4
        family: the corpus total strictly improves over the best
        VERSION 3 pick (the acceptance gate of the V4 codecs)."""
        from repro.eval import EVAL_EXTRAS, v4_ratio_summary

        assert "dpath" in EVAL_EXTRAS
        summary = v4_ratio_summary(
            ["dpath"], tmp_path, channel_width=8, clusters=(2, 3),
            scale=0.25,
        )
        assert summary["total_auto_v4_bits"] < summary["total_auto_v3_bits"]
        assert summary["improvement_bits"] > 0
        versions = {
            cell["auto_v4_version"]
            for row in summary["per_circuit"]
            for cell in row["clusters"].values()
        }
        assert 4 in versions

    @pytest.mark.integration
    def test_workload_runner_caches(self, tmp_path):
        from repro.eval.experiments import run_workload

        report = run_workload(tmp_path, n_tasks=2, length=8, seed=2)
        assert report["events"]["loads"] > 0
        # The decode cache persisted next to the results cache.
        assert list((tmp_path / "decode_cache").glob("decode_*.pkl"))
        # Second call comes from the versioned JSON cache (no new flows
        # and no new simulation: identical object, including timestamps).
        again = run_workload(tmp_path, n_tasks=2, length=8, seed=2)
        assert again == report


class TestRendering:
    def test_format_table(self):
        txt = format_table(["a", "bb"], [[1, 2], [30, 4]])
        lines = txt.splitlines()
        assert len(lines) == 4
        assert "30" in lines[2] or "30" in lines[3]

    def test_geomean(self):
        assert geomean([1, 100]) == pytest.approx(10.0)
        assert geomean([]) == 0.0

    def test_render_fig4(self):
        rows = [
            {"name": "x", "raw_bits": 1000, "vbs_bits": 400, "ratio": 0.4},
            {"name": "y", "raw_bits": 9000, "vbs_bits": 900, "ratio": 0.1},
        ]
        txt = render_fig4(rows)
        assert "x" in txt and "VBS" in txt and "%" in txt

    def test_render_fig5(self):
        series = [
            {"cluster": 1, "min_bits": 10, "geomean_bits": 20,
             "max_bits": 30, "avg_ratio": 0.4},
            {"cluster": 2, "min_bits": 5, "geomean_bits": 10,
             "max_bits": 20, "avg_ratio": 0.1},
        ]
        txt = render_fig5(series)
        assert "cluster" in txt and "4.00x" in txt

    def test_render_table2(self):
        rows = [{
            "name": "alu4", "size": 35, "mcw_paper": 9, "mcw_ours": 11,
            "lbs_paper": 1173, "lbs_ours": 1173,
        }]
        txt = render_table2(rows)
        assert "alu4" in txt and "1173" in txt

    def test_to_csv(self):
        txt = to_csv([{"a": 1, "b": 2}], ["a", "b"])
        assert txt.splitlines()[0] == "a,b"
        assert txt.splitlines()[1] == "1,2"
