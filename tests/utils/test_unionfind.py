"""Unit tests for the disjoint-set structure behind net extraction."""

from repro.utils.unionfind import UnionFind


class TestUnionFind:
    def test_singletons(self):
        uf = UnionFind(["a", "b"])
        assert not uf.connected("a", "b")
        assert len(uf) == 2

    def test_union_connects(self):
        uf = UnionFind()
        uf.union("a", "b")
        uf.union("b", "c")
        assert uf.connected("a", "c")
        assert not uf.connected("a", "d")

    def test_lazy_element_creation(self):
        uf = UnionFind()
        assert "x" not in uf
        uf.find("x")
        assert "x" in uf

    def test_union_returns_root(self):
        uf = UnionFind()
        root = uf.union(1, 2)
        assert uf.find(1) == root and uf.find(2) == root

    def test_groups_partition(self):
        uf = UnionFind(range(6))
        uf.union(0, 1)
        uf.union(2, 3)
        uf.union(3, 4)
        groups = sorted(sorted(g) for g in uf.groups())
        assert groups == [[0, 1], [2, 3, 4], [5]]

    def test_idempotent_union(self):
        uf = UnionFind()
        uf.union("a", "b")
        uf.union("a", "b")
        assert len([g for g in uf.groups() if len(g) > 1]) == 1

    def test_tuple_elements(self):
        uf = UnionFind()
        uf.union(("tx", 0, 0, 1, 2), ("ly", 3, 4, 0, 0))
        assert uf.connected(("tx", 0, 0, 1, 2), ("ly", 3, 4, 0, 0))

    def test_path_compression_consistency(self):
        uf = UnionFind()
        for i in range(100):
            uf.union(i, i + 1)
        root = uf.find(0)
        assert all(uf.find(i) == root for i in range(101))
