"""Unit tests for the bit-level containers."""

import pytest

from repro.utils.bitarray import BitArray, BitReader, BitWriter, bits_for


class TestBitsFor:
    def test_paper_io_space_width(self):
        # Section II-B: 4W + L + 1 = 28 values need M = 5 bits.
        assert bits_for(28) == 5

    def test_exact_powers(self):
        assert bits_for(2) == 1
        assert bits_for(4) == 2
        assert bits_for(5) == 3
        assert bits_for(1024) == 10

    def test_single_value_still_one_bit(self):
        assert bits_for(1) == 1

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            bits_for(0)


class TestBitArray:
    def test_zero_initialized(self):
        arr = BitArray(17)
        assert len(arr) == 17
        assert list(arr) == [0] * 17
        assert arr.count() == 0

    def test_fill_one(self):
        arr = BitArray(10, fill=1)
        assert arr.count() == 10
        assert arr.to_bytes()[-1] & 0b00111111 == 0  # padding cleared

    def test_set_get_roundtrip(self):
        arr = BitArray(64)
        for i in (0, 7, 8, 31, 63):
            arr[i] = 1
        assert [i for i in range(64) if arr[i]] == [0, 7, 8, 31, 63]

    def test_negative_index(self):
        arr = BitArray(8)
        arr[-1] = 1
        assert arr[7] == 1

    def test_out_of_range(self):
        arr = BitArray(8)
        with pytest.raises(IndexError):
            _ = arr[8]
        with pytest.raises(IndexError):
            arr[9] = 1

    def test_field_roundtrip(self):
        arr = BitArray(32)
        arr.set_field(3, 11, 0x5A5)
        assert arr.get_field(3, 11) == 0x5A5

    def test_field_overflow_rejected(self):
        arr = BitArray(16)
        with pytest.raises(ValueError):
            arr.set_field(0, 4, 16)

    def test_from_bits_and_eq(self):
        a = BitArray.from_bits([1, 0, 1, 1, 0])
        b = BitArray(5)
        b[0] = b[2] = b[3] = 1
        assert a == b
        assert hash(a) == hash(b)

    def test_bytes_roundtrip(self):
        a = BitArray.from_bits([1, 1, 0, 1, 0, 0, 1, 0, 1])
        b = BitArray.from_bytes(a.to_bytes(), nbits=9)
        assert a == b

    def test_bytes_roundtrip_normalizes_padding(self):
        b = BitArray.from_bytes(b"\xff", nbits=3)
        assert list(b) == [1, 1, 1]
        assert b.to_bytes() == b"\xe0"

    def test_append_extend(self):
        arr = BitArray(0)
        arr.extend([1, 0, 1])
        arr.append(1)
        assert list(arr) == [1, 0, 1, 1]

    def test_slice_and_overwrite(self):
        arr = BitArray.from_bits([0, 1, 1, 0, 1, 0, 0, 1])
        piece = arr.slice(2, 4)
        assert list(piece) == [1, 0, 1, 0]
        target = BitArray(8)
        target.overwrite(3, piece)
        assert list(target) == [0, 0, 0, 1, 0, 1, 0, 0]

    def test_slice_bounds(self):
        arr = BitArray(8)
        with pytest.raises(IndexError):
            arr.slice(5, 4)

    def test_copy_is_independent(self):
        a = BitArray(4)
        b = a.copy()
        b[0] = 1
        assert a[0] == 0 and b[0] == 1


class TestBitStreams:
    def test_writer_reader_roundtrip(self):
        w = BitWriter()
        w.write(0b101, 3)
        w.write(0xBEEF, 16)
        w.write(0, 1)
        w.write(7, 3)
        bits = w.finish()
        assert len(bits) == 23
        r = BitReader(bits)
        assert r.read(3) == 0b101
        assert r.read(16) == 0xBEEF
        assert r.read(1) == 0
        assert r.read(3) == 7
        assert r.remaining == 0

    def test_writer_rejects_overflow(self):
        w = BitWriter()
        with pytest.raises(ValueError):
            w.write(8, 3)

    def test_reader_eof(self):
        r = BitReader(BitArray(4))
        r.read(4)
        with pytest.raises(EOFError):
            r.read(1)

    def test_write_bits_passthrough(self):
        w = BitWriter()
        w.write(1, 1)
        w.write_bits(BitArray.from_bits([1, 1, 0]))
        bits = w.finish()
        assert list(bits) == [1, 1, 1, 0]

    def test_reader_read_bits(self):
        r = BitReader(BitArray.from_bits([1, 0, 1, 1]))
        piece = r.read_bits(3)
        assert list(piece) == [1, 0, 1]
        assert r.position == 3
