"""Unit tests for Rect/Point used by placement and the runtime manager."""

import pytest

from repro.utils.geometry import Point, Rect


class TestPoint:
    def test_manhattan(self):
        assert Point(1, 2).manhattan(Point(4, 0)) == 5

    def test_translated(self):
        assert Point(1, 2).translated(-1, 3) == Point(0, 5)


class TestRect:
    def test_basic_properties(self):
        r = Rect(2, 3, 4, 5)
        assert (r.x2, r.y2) == (6, 8)
        assert r.area == 20
        assert r.semiperimeter == 9

    def test_negative_sides_rejected(self):
        with pytest.raises(ValueError):
            Rect(0, 0, -1, 2)

    def test_contains(self):
        r = Rect(1, 1, 3, 3)
        assert r.contains(1, 1)
        assert r.contains(3, 3)
        assert not r.contains(4, 1)
        assert not r.contains(0, 2)

    def test_contains_rect(self):
        outer = Rect(0, 0, 10, 10)
        assert outer.contains_rect(Rect(2, 2, 8, 8))
        assert not outer.contains_rect(Rect(5, 5, 6, 2))

    def test_overlaps(self):
        a = Rect(0, 0, 4, 4)
        assert a.overlaps(Rect(3, 3, 2, 2))
        assert not a.overlaps(Rect(4, 0, 2, 2))  # edge-adjacent: no overlap
        assert not a.overlaps(Rect(0, 4, 2, 2))

    def test_spanning(self):
        r = Rect.spanning([(1, 5), (3, 2), (2, 2)])
        assert r == Rect(1, 2, 3, 4)

    def test_spanning_empty_rejected(self):
        with pytest.raises(ValueError):
            Rect.spanning([])

    def test_cells_raster_order(self):
        cells = list(Rect(1, 1, 2, 2).cells())
        assert cells == [Point(1, 1), Point(2, 1), Point(1, 2), Point(2, 2)]

    def test_clipped(self):
        r = Rect(-2, -2, 6, 6).clipped(Rect(0, 0, 3, 3))
        assert r == Rect(0, 0, 3, 3)

    def test_clipped_empty(self):
        r = Rect(10, 10, 2, 2).clipped(Rect(0, 0, 3, 3))
        assert r.area == 0

    def test_expanded_with_bounds(self):
        r = Rect(1, 1, 2, 2).expanded(3, Rect(0, 0, 5, 5))
        assert r == Rect(0, 0, 5, 5)

    def test_translated(self):
        assert Rect(1, 2, 3, 4).translated(2, -1) == Rect(3, 1, 3, 4)
