"""Fleet tier: placement routers, fleet-scope dictionaries, k-server replay.

The load-bearing properties: routing is deterministic (sha256 ring, not
the salted built-in ``hash``), a fleet of one is *exactly* the single
simulator (and ``run_scenario(shards=1)`` stays byte-identical to the
pre-fleet report), and sharding strictly improves tail latency at a
saturating arrival rate — the acceptance criterion of the scale-out.
"""

import json

import pytest

from repro.arch import FabricArch
from repro.errors import RuntimeManagementError
from repro.runtime import (
    ConsistentHashRouter,
    ExternalMemory,
    FabricManager,
    FleetManager,
    LoadAwareRouter,
    PolicyStore,
    ReconfigurationController,
    TraceEvent,
    WorkloadSimulator,
    WorkloadTrace,
    generate_trace,
    run_scenario,
    validate_fleet_request,
)
from repro.utils.bitarray import BitArray
from repro.vbs.encode import VirtualBitstream
from repro.vbs.format import ClusterRecord, VbsLayout


def _logic(layout, positions):
    arr = BitArray(layout.logic_bits_per_cluster)
    for p in positions:
        arr[p] = 1
    return arr


def _image(params, bits_a, bits_b):
    """A hand-built 3x2 VBS (logic-only records decode with zero routing)."""
    layout = VbsLayout(params, 1, 3, 2)
    records = [
        ClusterRecord((0, 0), raw=False, logic=_logic(layout, bits_a),
                      pairs=[]),
        ClusterRecord((2, 1), raw=False, logic=_logic(layout, bits_b),
                      pairs=[]),
    ]
    return VirtualBitstream(layout, records)


@pytest.fixture(scope="module")
def images(params5):
    """Two distinct-digest task images, no CAD flow involved."""
    return [
        ("a", _image(params5, [0, 7], [3])),
        ("b", _image(params5, [1, 2], [5, 6])),
    ]


def _shard_managers(params5, images, n, width=7, height=3, **ctrl_kwargs):
    """``n`` full manager stacks over one shared external memory."""
    memory = ExternalMemory()
    managers = []
    for _ in range(n):
        fabric = FabricArch(
            params5, width, height,
            {(x, y): "clb" for x in range(width) for y in range(height)},
        )
        managers.append(FabricManager(
            ReconfigurationController(fabric, memory, **ctrl_kwargs)
        ))
    for name, vbs in images:
        managers[0].controller.store_vbs(name, vbs)
    return managers


class TestFleetValidation:
    def test_non_positive_shard_count_rejected(self):
        with pytest.raises(RuntimeManagementError, match="shard count"):
            validate_fleet_request(0, "hash")
        with pytest.raises(RuntimeManagementError, match="shard count"):
            validate_fleet_request(-3, "load")

    def test_unknown_router_rejected(self):
        with pytest.raises(RuntimeManagementError,
                           match="unknown placement router"):
            validate_fleet_request(4, "round-robin")

    def test_known_combinations_accepted(self):
        for router in ("hash", "load"):
            validate_fleet_request(1, router)
            validate_fleet_request(8, router)

    def test_empty_fleet_rejected(self):
        with pytest.raises(RuntimeManagementError, match="at least one"):
            FleetManager([])

    def test_shards_must_share_one_memory(self, params5, images):
        a = _shard_managers(params5, images, 1)[0]
        b = _shard_managers(params5, images, 1)[0]
        with pytest.raises(RuntimeManagementError, match="share one"):
            FleetManager([a, b])

    def test_bad_migration_threshold_rejected(self, params5, images):
        managers = _shard_managers(params5, images, 2)
        with pytest.raises(RuntimeManagementError, match="backlog"):
            FleetManager(managers, migrate_backlog=0)

    def test_simulator_needs_exactly_one_target(self, params5, images):
        managers = _shard_managers(params5, images, 2)
        fleet = FleetManager(managers)
        with pytest.raises(RuntimeManagementError, match="exactly one"):
            WorkloadSimulator()
        with pytest.raises(RuntimeManagementError, match="exactly one"):
            WorkloadSimulator(managers[0], fleet=fleet)


class TestRouters:
    def test_hash_router_is_deterministic_across_instances(self):
        one = ConsistentHashRouter(4)
        two = ConsistentHashRouter(4)
        names = [f"task{i}" for i in range(32)]
        assert [one.choose(n, None) for n in names] == \
               [two.choose(n, None) for n in names]
        assert all(0 <= one.choose(n, None) < 4 for n in names)

    def test_hash_router_spreads_tasks(self):
        # 64 virtual nodes per shard: a modest task population must not
        # collapse onto one shard.
        router = ConsistentHashRouter(4)
        homes = {router.choose(f"task{i}", None) for i in range(64)}
        assert len(homes) >= 3

    def test_load_router_picks_coldest_backlog(self, params5, images):
        managers = _shard_managers(params5, images, 3)
        fleet = FleetManager(managers, router="load")
        fleet.server_free[0] = [500]  # shard 0 is busy at fleet time 0
        fleet.server_free[1] = [200]
        assert fleet.router.choose("a", fleet) == 2

    def test_load_router_prefers_measured_over_unmeasured_guess(
        self, params5, images
    ):
        """The knowledge-base regression: a shard whose (cold, depth)
        class was never measured used to win the routing on the strength
        of ``expected_latency``'s pooled-fallback guess — or the
        no-knowledge 0.0 — beating a shard with a *measured* (higher)
        latency.  The ordering now trusts measured cells first."""
        store = PolicyStore()
        store.record(False, 1, 10)    # cold@1: measured, cheap
        store.record(False, 0, 100)   # cold@0: measured, expensive
        managers = _shard_managers(params5, images, 2)
        fleet = FleetManager(managers, router="load", policy_store=store)
        fleet.queue_depths[0] = 4     # bucket 4 empty -> pooled guess 55
        fleet.queue_depths[1] = 0     # bucket 0 measured at 100
        # Shard 0's 55 is a guess; shard 1's 100 is a measurement.  The
        # old (predicted, backlog) ordering picked shard 0.
        assert store.expected_latency(False, 4) < store.expected_latency(
            False, 0
        )
        assert fleet.router.choose("a", fleet) == 1

    def test_load_router_zero_knowledge_store_is_neutral(
        self, params5, images
    ):
        """An empty store must not perturb the pre-store ordering: every
        shard is equally unmeasured (predicted 0.0), so backlog decides
        exactly as in a storeless fleet."""
        managers = _shard_managers(params5, images, 3)
        fleet = FleetManager(managers, router="load",
                             policy_store=PolicyStore())
        fleet.server_free[0] = [500]
        fleet.server_free[1] = [200]
        assert fleet.router.choose("a", fleet) == 2

    def test_load_router_ties_break_by_index(self, params5, images):
        managers = _shard_managers(params5, images, 3)
        fleet = FleetManager(managers, router="load")
        assert fleet.router.choose("a", fleet) == 0

    def test_resident_task_routes_sticky(self, params5, images):
        managers = _shard_managers(params5, images, 4)
        fleet = FleetManager(managers, router="hash")
        shard, _task = fleet.place_task("a")
        # Stickiness beats the policy: wherever the router would send a
        # fresh placement, a resident task routes home.
        assert fleet.route("a") == shard
        assert fleet.shard_of("a") == shard

    def test_router_object_passes_through(self, params5, images):
        class PinRouter:
            name = "pin"

            def choose(self, task, fleet):
                return 1

        managers = _shard_managers(params5, images, 2)
        fleet = FleetManager(managers, router=PinRouter())
        shard, _task = fleet.place_task("a")
        assert shard == 1


class TestFleetLifecycle:
    def test_place_and_unload_roundtrip(self, params5, images):
        managers = _shard_managers(params5, images, 2)
        fleet = FleetManager(managers)
        shard, task = fleet.place_task("a")
        assert task.name == "a"
        assert "a" in managers[shard].controller.resident
        others = [i for i in range(2) if i != shard]
        assert all("a" not in managers[i].controller.resident
                   for i in others)
        assert fleet.unload_task("a") == shard
        assert fleet.shard_of("a") is None

    def test_unload_of_unplaced_task_rejected(self, params5, images):
        fleet = FleetManager(_shard_managers(params5, images, 2))
        with pytest.raises(RuntimeManagementError, match="not loaded"):
            fleet.unload_task("a")

    def test_published_image_resolves_from_every_shard(
        self, params5, images
    ):
        # store_vbs publishes once into the shared memory: every shard
        # can place the task without its own copy.
        managers = _shard_managers(params5, images, 3)
        fleet = FleetManager(managers)
        for index, mgr in enumerate(managers):
            task = mgr.place_task("a")
            assert task.name == "a"
            mgr.controller.unload_task("a")
            assert fleet.can_host(index, "a")


class TestMigration:
    def test_migrate_moves_task_and_keeps_cache_warmth(
        self, params5, images
    ):
        managers = _shard_managers(params5, images, 2)
        fleet = FleetManager(managers)
        src, first = fleet.place_task("a")
        assert not first.load_cost.cache_hit  # cold decode
        dst = 1 - src
        task = fleet.migrate_across("a", dst)
        assert fleet.shard_of("a") == dst
        assert fleet.cross_migrations == 1
        # The digest-keyed entry travelled: the re-place decoded nothing.
        assert task.load_cost.cache_hit
        assert task.load_cost.decode_cycles == 0

    def test_migrate_to_same_shard_is_noop(self, params5, images):
        fleet = FleetManager(_shard_managers(params5, images, 2))
        src, _task = fleet.place_task("a")
        task = fleet.migrate_across("a", src)
        assert task.name == "a"
        assert fleet.cross_migrations == 0

    def test_migrate_of_unplaced_task_rejected(self, params5, images):
        fleet = FleetManager(_shard_managers(params5, images, 2))
        with pytest.raises(RuntimeManagementError, match="not loaded"):
            fleet.migrate_across("a", 1)

    def test_migrate_to_unknown_shard_rejected(self, params5, images):
        fleet = FleetManager(_shard_managers(params5, images, 2))
        fleet.place_task("a")
        with pytest.raises(RuntimeManagementError, match="no shard"):
            fleet.migrate_across("a", 7)

    def test_infeasible_migration_never_loses_the_task(
        self, params5, images
    ):
        # Destination shard too small for the 3x2 image: the migration
        # must fail *before* the source unload.
        memory = ExternalMemory()
        big = FabricArch(
            params5, 7, 3,
            {(x, y): "clb" for x in range(7) for y in range(3)},
        )
        tiny = FabricArch(params5, 2, 2, {(x, y): "clb"
                                          for x in range(2)
                                          for y in range(2)})
        managers = [
            FabricManager(ReconfigurationController(big, memory)),
            FabricManager(ReconfigurationController(tiny, memory)),
        ]
        for name, vbs in images:
            managers[0].controller.store_vbs(name, vbs)
        fleet = FleetManager(managers)
        managers[0].place_task("a")
        with pytest.raises(RuntimeManagementError, match="cannot fit"):
            fleet.migrate_across("a", 1)
        assert fleet.shard_of("a") == 0

    def test_migration_accounted_as_cold_shard_request(
        self, params5, images
    ):
        # One load pinned to shard 0 builds instant backlog; shard 1 is
        # idle, so the saturation migration fires immediately.  The
        # re-place must show up as a *request* on the cold shard —
        # charging its clock while leaving arrivals/latency empty was
        # the historical under-reporting bug.
        class PinRouter:
            name = "pin"

            def choose(self, task, fleet):
                return 0

        trace = WorkloadTrace(
            kind="zipf", seed=0, tasks=("a",),
            events=(TraceEvent("load", "a", at=0),),
            arrivals="poisson", mean_interarrival=1,
        )
        fleet = FleetManager(
            _shard_managers(params5, images, 2),
            router=PinRouter(), migrate_backlog=1,
        )
        report = WorkloadSimulator(fleet=fleet).run(trace)
        assert report["fleet"]["cross_migrations"] == 1
        cold = report["shards"][1]
        assert cold["fabric"]["resident_at_end"] == ["a"]
        assert cold["clock"]["busy_cycles"] > 0
        assert cold["queue"]["arrivals"] == 1
        assert cold["latency"]["requests"] == 1
        assert cold["latency"]["p99"] >= cold["clock"]["busy_cycles"]
        # Both the fleet-wide and per-task dictionaries see it too.
        assert report["latency"]["requests"] == 2
        assert report["queue"]["arrivals"] == 2
        assert report["events"]["migrations"] == 1
        assert report["per_task"]["a"]["migrations"] == 1
        # And the load-aware knowledge base, when the fleet carries one.
        store = PolicyStore()
        fleet2 = FleetManager(
            _shard_managers(params5, images, 2),
            router=PinRouter(), migrate_backlog=1, policy_store=store,
        )
        WorkloadSimulator(fleet=fleet2).run(trace)
        assert len(store) == 2

    def test_closed_loop_migration_fails_fast(self, params5, images):
        # A closed-loop trace has no backlog clock: arming migration on
        # one must raise instead of silently never firing.
        trace = generate_trace("round-robin", [n for n, _v in images],
                               8, seed=1)
        fleet = FleetManager(_shard_managers(params5, images, 2),
                             migrate_backlog=1)
        with pytest.raises(RuntimeManagementError,
                           match="open-loop trace"):
            WorkloadSimulator(fleet=fleet).run(trace)

    def test_closed_loop_migration_rejected_by_scenario(self):
        with pytest.raises(RuntimeManagementError,
                           match="open-loop trace"):
            run_scenario(kind="zipf", n_tasks=2, length=8, seed=1,
                         shards=2, router="hash", migrate_backlog=1)


class TestFleetSimulation:
    def test_fleet_of_one_matches_single_simulator(self, params5, images):
        trace = generate_trace(
            "zipf", [n for n, _v in images], 20, seed=2,
            arrivals="poisson", mean_interarrival=400,
        )
        single = WorkloadSimulator(
            _shard_managers(params5, images, 1)[0]
        ).run(trace)
        fleet_report = WorkloadSimulator(
            fleet=FleetManager(_shard_managers(params5, images, 1))
        ).run(trace)
        # One shard is one FIFO server: the fleet-wide sections must
        # agree with the single-manager simulator exactly.
        for key in ("events", "cycles", "latency", "queue",
                    "bytes_decoded", "per_task"):
            assert fleet_report[key] == single[key], key
        assert fleet_report["clock"]["makespan"] == \
               single["clock"]["makespan"]
        assert fleet_report["shards"][0]["latency"] == single["latency"]

    def test_fleet_replay_is_deterministic(self, params5, images):
        trace = generate_trace(
            "zipf", [n for n, _v in images], 24, seed=5,
            arrivals="poisson", mean_interarrival=300,
        )
        reports = [
            WorkloadSimulator(
                fleet=FleetManager(
                    _shard_managers(params5, images, 3), router="load"
                )
            ).run(trace)
            for _ in range(2)
        ]
        assert json.dumps(reports[0], sort_keys=True) == \
               json.dumps(reports[1], sort_keys=True)

    def test_closed_loop_fleet_replay(self, params5, images):
        # No arrival stamps: the fleet still routes and accounts, with
        # no latency/queue/clock sections anywhere.
        trace = generate_trace("round-robin", [n for n, _v in images],
                               12, seed=1)
        report = WorkloadSimulator(
            fleet=FleetManager(_shard_managers(params5, images, 2))
        ).run(trace)
        assert "latency" not in report
        assert all("latency" not in s for s in report["shards"])
        assert report["fleet"]["shards"] == 2

    def test_idle_shard_reports_null_latency(self, params5, images):
        # Both tasks hash to a subset of a 4-shard ring: any shard that
        # serviced nothing must report ``latency: None``, not crash on
        # an empty percentile sample.
        trace = generate_trace(
            "hot-set", [n for n, _v in images], 16, seed=1,
            arrivals="poisson", mean_interarrival=400,
        )
        report = WorkloadSimulator(
            fleet=FleetManager(_shard_managers(params5, images, 4))
        ).run(trace)
        idle = [s for s in report["shards"] if s["latency"] is None]
        busy = [s for s in report["shards"] if s["latency"] is not None]
        assert busy  # someone serviced the trace
        for shard in idle:
            assert shard["clock"]["busy_cycles"] == 0

    def test_k_servers_per_shard(self, params5, images):
        trace = generate_trace(
            "zipf", [n for n, _v in images], 24, seed=5,
            arrivals="poisson", mean_interarrival=2,
        )
        one = WorkloadSimulator(
            fleet=FleetManager(_shard_managers(params5, images, 2))
        ).run(trace)
        two = WorkloadSimulator(
            fleet=FleetManager(_shard_managers(params5, images, 2),
                               servers=2)
        ).run(trace)
        # servers=1 stays schema-identical; k>1 tags every clock and
        # normalizes utilization per server.
        assert "servers" not in one["clock"]
        assert all("servers" not in s["clock"] for s in one["shards"])
        assert two["clock"]["servers"] == 2
        assert all(s["clock"]["servers"] == 2 for s in two["shards"])
        assert two["clock"]["makespan"] <= one["clock"]["makespan"]
        for section in (two, *two["shards"]):
            assert 0.0 <= section["clock"]["utilization"] <= 1.0
        with pytest.raises(RuntimeManagementError, match="server count"):
            FleetManager(_shard_managers(params5, images, 2), servers=0)


@pytest.mark.integration
class TestScenarioAcceptance:
    """run_scenario-level fleet contract: byte-identity at shards=1,
    strictly lower fleet-wide p99 at a saturating arrival rate."""

    SATURATING = dict(kind="zipf", n_tasks=4, length=40, seed=3,
                      arrivals="poisson", mean_interarrival=200)

    def test_single_shard_report_is_byte_identical(self):
        legacy = run_scenario(kind="zipf", n_tasks=2, length=14, seed=1,
                              arrivals="poisson", mean_interarrival=500)
        routed = run_scenario(kind="zipf", n_tasks=2, length=14, seed=1,
                              arrivals="poisson", mean_interarrival=500,
                              shards=1, router="hash")
        assert json.dumps(legacy, sort_keys=True) == \
               json.dumps(routed, sort_keys=True)
        assert "fleet" not in routed
        assert "shards" not in routed
        assert "shards" not in routed["scenario"]

    @pytest.mark.parametrize("router", ["hash", "load"])
    def test_four_shards_beat_one_at_saturation(self, router):
        single = run_scenario(**self.SATURATING)
        fleet = run_scenario(**self.SATURATING, shards=4, router=router)
        # The acceptance criterion: k parallel reconfiguration servers
        # strictly improve the tail at a saturating arrival rate.
        assert fleet["latency"]["p99"] < single["latency"]["p99"]
        # Both views are present: fleet-wide and per-shard percentiles.
        assert fleet["fleet"]["shards"] == 4
        assert fleet["fleet"]["router"] == router
        assert len(fleet["shards"]) == 4
        assert any(
            s["latency"] is not None and "p99" in s["latency"]
            for s in fleet["shards"]
        )
        assert fleet["scenario"]["shards"] == 4
        assert fleet["scenario"]["router"] == router

    def test_fleet_scenario_deterministic(self):
        one = run_scenario(**self.SATURATING, shards=3, router="load")
        two = run_scenario(**self.SATURATING, shards=3, router="load")
        assert json.dumps(one, sort_keys=True) == \
               json.dumps(two, sort_keys=True)

    def test_event_totals_conserved_across_sharding(self):
        single = run_scenario(**self.SATURATING)
        fleet = run_scenario(**self.SATURATING, shards=4, router="hash")
        # Same trace, same tasks: sharding redistributes events but the
        # per-shard sections must sum back to the fleet totals.
        summed = {}
        for shard in fleet["shards"]:
            for field, value in shard["events"].items():
                summed[field] = summed.get(field, 0) + value
        assert summed == fleet["events"]
        assert sum(s["bytes_decoded"] for s in fleet["shards"]) == \
               fleet["bytes_decoded"]
        # Request grouping is per shard: co-stamped events routed to
        # different shards (an eviction's unload + the incoming load)
        # count once per shard, so the fleet sees at least as many
        # request arrivals as the single server did.
        assert fleet["queue"]["arrivals"] >= single["queue"]["arrivals"]

    def test_migration_threshold_recorded_and_counted(self):
        report = run_scenario(**self.SATURATING, shards=2, router="hash",
                              migrate_backlog=1)
        assert report["scenario"]["migrate_backlog"] == 1
        assert report["fleet"]["migrate_backlog"] == 1
        assert report["fleet"]["migrations_armed"] is True
        assert report["fleet"]["cross_migrations"] >= 0
        migrations = report["events"]["migrations"]
        assert migrations >= report["fleet"]["cross_migrations"]
        # Migrations are accounted as requests: the fleet-wide latency
        # and queue sections must stay the exact sum of the per-shard
        # views even with saturation migration in play.
        assert report["latency"]["requests"] == sum(
            (s["latency"] or {}).get("requests", 0)
            for s in report["shards"]
        )
        assert report["queue"]["arrivals"] == sum(
            s["queue"]["arrivals"] for s in report["shards"]
        )

    def test_unarmed_migration_reported_as_such(self):
        report = run_scenario(**self.SATURATING, shards=2, router="hash")
        assert report["fleet"]["migrate_backlog"] is None
        assert report["fleet"]["migrations_armed"] is False
        assert report["fleet"]["cross_migrations"] == 0


class TestFleetCli:
    def test_zero_shards_exits_two(self, capsys):
        from repro.cli import main

        rc = main([
            "runtime", "simulate", "--tasks", "2", "--length", "8",
            "--shards", "0",
        ])
        assert rc == 2
        assert "shard count" in capsys.readouterr().err

    def test_unknown_router_exits_two(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "report.json"
        rc = main([
            "runtime", "simulate", "--tasks", "2", "--length", "8",
            "--shards", "4", "--router", "roundrobin",
            "--json", str(out),
        ])
        assert rc == 2
        assert not out.exists()
        assert "unknown placement router" in capsys.readouterr().err

    def test_closed_loop_migrate_backlog_exits_two(self, tmp_path,
                                                   capsys):
        from repro.cli import main

        out = tmp_path / "report.json"
        # No --arrivals: a closed-loop replay cannot fire saturation
        # migration, so arming it must fail loudly, not no-op.
        rc = main([
            "runtime", "simulate", "--tasks", "2", "--length", "8",
            "--shards", "2", "--migrate-backlog", "1",
            "--json", str(out),
        ])
        assert rc == 2
        assert not out.exists()
        assert "open-loop trace" in capsys.readouterr().err

    def test_fleet_simulate_json(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "fleet.json"
        rc = main([
            "runtime", "simulate", "--kind", "zipf", "--arrivals",
            "poisson", "--tasks", "3", "--length", "16", "--seed", "2",
            "--mean-interarrival", "300", "--shards", "3",
            "--router", "load", "--json", str(out),
        ])
        assert rc == 0
        report = json.loads(out.read_text())
        assert report["fleet"]["shards"] == 3
        assert report["fleet"]["router"] == "load"
        assert len(report["shards"]) == 3
        assert "fleet:" in capsys.readouterr().out

    def test_single_shard_cli_output_unchanged(self, tmp_path):
        from repro.cli import main

        outs = []
        for tag, extra in (("legacy", []),
                           ("routed", ["--shards", "1"])):
            out = tmp_path / f"{tag}.json"
            rc = main([
                "runtime", "simulate", "--tasks", "2", "--length", "8",
                "--seed", "1", "--json", str(out), *extra,
            ])
            assert rc == 0
            outs.append(out.read_text())
        assert outs[0] == outs[1]
