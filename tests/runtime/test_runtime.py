"""Run-time management: memory, controller, manager, cost model."""

import pytest

from repro.bitstream import RawBitstream
from repro.errors import RuntimeManagementError
from repro.fabric import verify_connectivity
from repro.runtime import (
    BEST_FIT,
    CostParams,
    DecodeCache,
    ExternalMemory,
    FabricManager,
    ReconfigurationController,
    decode_cost,
    lpt_makespan,
)
from repro.utils.bitarray import BitArray
from repro.utils.geometry import Rect
from repro.vbs import encode_flow


@pytest.fixture(scope="module")
def task_vbs(small_flow, small_config):
    return encode_flow(small_flow, small_config, cluster_size=1)


@pytest.fixture()
def controller(small_flow, task_vbs, small_config):
    from repro.arch import FabricArch, ArchParams

    # A fabric big enough for two copies of the task side by side.
    w = small_flow.fabric.width
    big = FabricArch(
        small_flow.params, 2 * w + 2, w + 2,
        {
            (x, y): "clb"
            for x in range(2 * w + 2)
            for y in range(w + 2)
        },
    )
    # Preserve the original cell types inside the two task slots so that
    # extraction agrees; runtime placement itself is type-agnostic here.
    mem = ExternalMemory(bus_bits=32)
    ctrl = ReconfigurationController(big, mem)
    ctrl.store_vbs("small", task_vbs)
    raw = RawBitstream.from_config(small_config)
    ctrl.store_raw("small_raw", raw)
    return ctrl


class TestExternalMemory:
    def test_store_and_fetch_cycles(self):
        mem = ExternalMemory(bus_bits=8)
        mem.store("t", BitArray(100), "raw", 2, 2)
        img, cycles = mem.fetch("t")
        assert cycles == 13  # ceil(100 / 8)
        assert img.size_bits == 100

    def test_missing_image(self):
        mem = ExternalMemory()
        with pytest.raises(RuntimeManagementError):
            mem.fetch("ghost")

    def test_total_bits(self):
        mem = ExternalMemory()
        mem.store("a", BitArray(10), "raw", 1, 1)
        mem.store("b", BitArray(30), "vbs", 1, 1)
        assert mem.total_bits == 40
        mem.remove("a")
        assert mem.total_bits == 30

    def test_bad_kind_rejected(self):
        mem = ExternalMemory()
        with pytest.raises(RuntimeManagementError):
            mem.store("x", BitArray(1), "zip", 1, 1)


class TestCostModel:
    def test_lpt_makespan(self):
        span, loads = lpt_makespan([5, 3, 3, 2, 2, 1], 2)
        assert span == 8 and sorted(loads) == [8, 8]

    def test_lpt_single_unit(self):
        span, _ = lpt_makespan([4, 4, 4], 1)
        assert span == 12

    def test_parallel_units_speed_decode(self, task_vbs):
        from repro.vbs import decode_vbs

        _cfg, stats = decode_vbs(task_vbs)
        seq, _ = decode_cost(stats, CostParams(parallel_units=1))
        par, _ = decode_cost(stats, CostParams(parallel_units=8))
        assert par < seq
        assert par >= stats.max_cluster_work  # critical path bound


class TestController:
    def test_load_and_verify(self, controller, small_flow):
        task = controller.load_task("small", (0, 0))
        assert task.load_cost.total_cycles > 0
        # The written configuration must still realize the design's nets
        # (extraction over the big fabric with matching cell types).

    def test_collision_rejected(self, controller):
        controller.load_task("small", (0, 0))
        with pytest.raises(RuntimeManagementError):
            controller.load_task("small", (0, 0))

    def test_region_overlap_rejected(self, controller, task_vbs):
        controller.load_task("small", (0, 0))
        controller.store_vbs("small2", task_vbs)
        with pytest.raises(RuntimeManagementError):
            controller.load_task("small2", (1, 1))

    def test_out_of_bounds_rejected(self, controller):
        w = controller.fabric.width
        with pytest.raises(RuntimeManagementError):
            controller.load_task("small", (w - 2, 0))

    def test_unload_frees_region(self, controller, task_vbs):
        controller.load_task("small", (0, 0))
        controller.unload_task("small")
        assert not controller.resident
        controller.load_task("small", (0, 0))  # reload succeeds

    def test_unload_clears_config(self, controller):
        task = controller.load_task("small", (0, 0))
        assert controller.config.occupied_cells()
        controller.unload_task("small")
        for cell in task.region.cells():
            assert controller.config.is_empty_macro(cell.x, cell.y)

    def test_migrate_moves_content(self, controller):
        task = controller.load_task("small", (0, 0))
        w = task.region.w
        before = {
            (c.x, c.y) for c in task.region.cells()
            if not controller.config.is_empty_macro(c.x, c.y)
        }
        moved = controller.migrate_task("small", (w, 0))
        after = {
            (c.x, c.y) for c in moved.region.cells()
            if not controller.config.is_empty_macro(c.x, c.y)
        }
        assert {(x + w, y) for (x, y) in before} == after

    def test_raw_image_load(self, controller):
        task = controller.load_task("small_raw", (0, 0))
        assert task.decode_stats is None
        assert task.load_cost.decode_cycles == 0

    def test_vbs_fetch_cheaper_than_raw(self, controller):
        vbs_task = controller.load_task("small", (0, 0))
        w = vbs_task.region.w
        raw_task = controller.load_task("small_raw", (w, 0))
        assert vbs_task.load_cost.fetch_cycles < raw_task.load_cost.fetch_cycles
        assert vbs_task.load_cost.decode_cycles > 0

    def test_utilization(self, controller):
        assert controller.utilization() == 0.0
        task = controller.load_task("small", (0, 0))
        expected = task.region.area / controller.fabric.bounds.area
        assert controller.utilization() == pytest.approx(expected)


class TestFabricManager:
    def test_place_task_auto(self, controller):
        mgr = FabricManager(controller)
        task = mgr.place_task("small")
        assert task.region.x == 0 and task.region.y == 0

    def test_second_task_beside_first(self, controller):
        mgr = FabricManager(controller)
        mgr.place_task("small")
        t2 = mgr.place_task("small_raw")
        assert not t2.region.overlaps(
            controller.resident["small"].region
        )

    def test_no_room(self, controller, task_vbs):
        mgr = FabricManager(controller)
        placed = 0
        for i in range(8):
            controller.store_vbs(f"t{i}", task_vbs)
            try:
                mgr.place_task(f"t{i}")
                placed += 1
            except RuntimeManagementError:
                break
        assert 0 < placed < 8  # fabric saturates eventually

    def test_defragment(self, controller):
        mgr = FabricManager(controller)
        t1 = mgr.place_task("small")
        t2 = mgr.place_task("small_raw")
        mgr.controller.unload_task("small")
        moved = mgr.defragment()
        assert moved == 1
        assert mgr.controller.resident["small_raw"].region.x == 0


def _geometry_controller(params8, width, height, **kwargs):
    """An all-CLB fabric for pure placement-geometry tests."""
    from repro.arch import FabricArch

    fabric = FabricArch(
        params8, width, height,
        {(x, y): "clb" for x in range(width) for y in range(height)},
    )
    return ReconfigurationController(fabric, ExternalMemory(), **kwargs)


def _store_blank_raw(ctrl, name, w, h):
    """Publish an all-zero raw image of the requested footprint."""
    bits = BitArray(w * h * ctrl.fabric.params.nraw)
    ctrl.memory.store(name, bits, "raw", w, h)


class TestDefragmentOverlap:
    """find_origin must ignore the migrating task's own footprint."""

    def test_task_slides_into_own_region(self, params8):
        ctrl = _geometry_controller(params8, 6, 2)
        _store_blank_raw(ctrl, "a", 4, 2)
        ctrl.load_task("a", (1, 0))
        mgr = FabricManager(ctrl)
        # Every free 4x2 origin overlaps the task's current region; without
        # self-exclusion the task is stuck and fragmentation survives.
        assert mgr.find_origin(4, 2) is None
        assert mgr.find_origin(4, 2, ignore="a") == (0, 0)
        moved = mgr.defragment()
        assert moved == 1
        assert ctrl.resident["a"].region == Rect(0, 0, 4, 2)

    def test_region_free_self_exclusion(self, params8):
        ctrl = _geometry_controller(params8, 6, 2)
        _store_blank_raw(ctrl, "a", 4, 2)
        ctrl.load_task("a", (1, 0))
        assert not ctrl.region_free(Rect(0, 0, 4, 2))
        assert ctrl.region_free(Rect(0, 0, 4, 2), ignore="a")
        assert ctrl.region_free(Rect(2, 0, 4, 2), ignore="a")


class TestBestFit:
    """Adjacency-aware best-fit vs raster first-fit."""

    def _controller_with_gap(self, params8):
        # 8x2 fabric, 1x2 blocker at x=4: a loose 4-wide gap at x=0..3 and
        # a snug 3-wide gap at x=5..7.
        ctrl = _geometry_controller(params8, 8, 2)
        _store_blank_raw(ctrl, "blocker", 1, 2)
        ctrl.load_task("blocker", (4, 0))
        _store_blank_raw(ctrl, "t", 3, 2)
        return ctrl

    def test_first_fit_takes_raster_first(self, params8):
        ctrl = self._controller_with_gap(params8)
        task = FabricManager(ctrl).place_task("t")
        assert (task.region.x, task.region.y) == (0, 0)

    def test_best_fit_takes_snug_gap(self, params8):
        ctrl = self._controller_with_gap(params8)
        task = FabricManager(ctrl, strategy=BEST_FIT).place_task("t")
        assert (task.region.x, task.region.y) == (5, 0)

    def test_best_fit_empty_fabric_hugs_corner(self, params8):
        ctrl = _geometry_controller(params8, 8, 2)
        _store_blank_raw(ctrl, "t", 3, 2)
        task = FabricManager(ctrl, strategy=BEST_FIT).place_task("t")
        assert (task.region.x, task.region.y) == (0, 0)

    def test_free_perimeter_scoring(self, params8):
        ctrl = self._controller_with_gap(params8)
        mgr = FabricManager(ctrl, strategy=BEST_FIT)
        assert mgr._free_perimeter(Rect(5, 0, 3, 2)) == 0  # fully snug
        assert mgr._free_perimeter(Rect(0, 0, 3, 2)) == 2  # open east side


class TestDecodeCache:
    def test_repeated_load_hits(self, controller):
        first = controller.load_task("small", (0, 0))
        assert not first.load_cost.cache_hit
        assert first.load_cost.decode_cycles > 0
        controller.unload_task("small")
        second = controller.load_task("small", (0, 0))
        assert second.load_cost.cache_hit
        assert second.load_cost.decode_cycles == 0
        stats = controller.decode_cache.stats
        assert stats.hits == 1 and stats.misses == 1
        assert stats.hit_rate == pytest.approx(0.5)

    def test_relocated_hit_matches_decode(self, controller):
        first = controller.load_task("small", (0, 0))
        w = first.region.w
        before = {
            (c.x, c.y) for c in first.region.cells()
            if not controller.config.is_empty_macro(c.x, c.y)
        }
        controller.unload_task("small")
        moved = controller.load_task("small", (w, 0))
        assert moved.load_cost.cache_hit
        after = {
            (c.x, c.y) for c in moved.region.cells()
            if not controller.config.is_empty_macro(c.x, c.y)
        }
        assert {(x + w, y) for (x, y) in before} == after

    def test_migration_replays_from_cache(self, controller):
        task = controller.load_task("small", (0, 0))
        moved = controller.migrate_task("small", (task.region.w, 0))
        assert moved.load_cost.cache_hit
        assert moved.load_cost.decode_cycles == 0
        assert controller.decode_cache.stats.hits == 1

    def test_cache_entry_metadata(self, controller, task_vbs):
        controller.load_task("small", (0, 0))
        (entry,) = controller.decode_cache._entries.values()
        assert entry.layout == (
            task_vbs.layout.width,
            task_vbs.layout.height,
            task_vbs.layout.cluster_size,
            task_vbs.layout.compact_logic,
        )
        assert entry.codec_tags == tuple(sorted(task_vbs.codec_tags()))

    def test_cache_disabled(self, small_flow, task_vbs, params8):
        w = small_flow.fabric.width
        ctrl = _geometry_controller(
            small_flow.params, 2 * w + 2, w + 2, cache_capacity=0
        )
        ctrl.store_vbs("t", task_vbs)
        assert ctrl.decode_cache is None
        ctrl.load_task("t", (0, 0))
        ctrl.unload_task("t")
        again = ctrl.load_task("t", (0, 0))
        assert not again.load_cost.cache_hit
        assert again.load_cost.decode_cycles >= 0

    def test_changed_image_same_name_misses(self, controller, small_flow,
                                            small_config):
        controller.load_task("small", (0, 0))
        controller.unload_task("small")
        # Re-publish different bits under the same name: the digest key
        # must not serve the stale expansion.
        other = encode_flow(small_flow, small_config, cluster_size=1,
                            compact_logic=True)
        controller.store_vbs("small", other)
        again = controller.load_task("small", (0, 0))
        assert not again.load_cost.cache_hit
        assert controller.decode_cache.stats.misses == 2

    def test_lru_eviction(self):
        cache = DecodeCache(capacity=2)
        for i in range(3):
            cache.put((f"d{i}", "vbs", 1, 1), object())
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        assert cache.get(("d0", "vbs", 1, 1)) is None  # evicted
        assert cache.get(("d2", "vbs", 1, 1)) is not None

    def test_manager_surfaces_cache_stats(self, controller):
        mgr = FabricManager(controller)
        mgr.place_task("small")
        assert mgr.cache_stats is controller.decode_cache.stats
        assert mgr.cache_stats.misses == 1
