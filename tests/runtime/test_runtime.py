"""Run-time management: memory, controller, manager, cost model."""

import pytest

from repro.bitstream import RawBitstream
from repro.errors import RuntimeManagementError
from repro.fabric import verify_connectivity
from repro.runtime import (
    CostParams,
    ExternalMemory,
    FabricManager,
    ReconfigurationController,
    decode_cost,
    lpt_makespan,
)
from repro.utils.bitarray import BitArray
from repro.utils.geometry import Rect
from repro.vbs import encode_flow


@pytest.fixture(scope="module")
def task_vbs(small_flow, small_config):
    return encode_flow(small_flow, small_config, cluster_size=1)


@pytest.fixture()
def controller(small_flow, task_vbs, small_config):
    from repro.arch import FabricArch, ArchParams

    # A fabric big enough for two copies of the task side by side.
    w = small_flow.fabric.width
    big = FabricArch(
        small_flow.params, 2 * w + 2, w + 2,
        {
            (x, y): "clb"
            for x in range(2 * w + 2)
            for y in range(w + 2)
        },
    )
    # Preserve the original cell types inside the two task slots so that
    # extraction agrees; runtime placement itself is type-agnostic here.
    mem = ExternalMemory(bus_bits=32)
    ctrl = ReconfigurationController(big, mem)
    ctrl.store_vbs("small", task_vbs)
    raw = RawBitstream.from_config(small_config)
    ctrl.store_raw("small_raw", raw)
    return ctrl


class TestExternalMemory:
    def test_store_and_fetch_cycles(self):
        mem = ExternalMemory(bus_bits=8)
        mem.store("t", BitArray(100), "raw", 2, 2)
        img, cycles = mem.fetch("t")
        assert cycles == 13  # ceil(100 / 8)
        assert img.size_bits == 100

    def test_missing_image(self):
        mem = ExternalMemory()
        with pytest.raises(RuntimeManagementError):
            mem.fetch("ghost")

    def test_total_bits(self):
        mem = ExternalMemory()
        mem.store("a", BitArray(10), "raw", 1, 1)
        mem.store("b", BitArray(30), "vbs", 1, 1)
        assert mem.total_bits == 40
        mem.remove("a")
        assert mem.total_bits == 30

    def test_bad_kind_rejected(self):
        mem = ExternalMemory()
        with pytest.raises(RuntimeManagementError):
            mem.store("x", BitArray(1), "zip", 1, 1)


class TestCostModel:
    def test_lpt_makespan(self):
        span, loads = lpt_makespan([5, 3, 3, 2, 2, 1], 2)
        assert span == 8 and sorted(loads) == [8, 8]

    def test_lpt_single_unit(self):
        span, _ = lpt_makespan([4, 4, 4], 1)
        assert span == 12

    def test_parallel_units_speed_decode(self, task_vbs):
        from repro.vbs import decode_vbs

        _cfg, stats = decode_vbs(task_vbs)
        seq, _ = decode_cost(stats, CostParams(parallel_units=1))
        par, _ = decode_cost(stats, CostParams(parallel_units=8))
        assert par < seq
        assert par >= stats.max_cluster_work  # critical path bound


class TestController:
    def test_load_and_verify(self, controller, small_flow):
        task = controller.load_task("small", (0, 0))
        assert task.load_cost.total_cycles > 0
        # The written configuration must still realize the design's nets
        # (extraction over the big fabric with matching cell types).

    def test_collision_rejected(self, controller):
        controller.load_task("small", (0, 0))
        with pytest.raises(RuntimeManagementError):
            controller.load_task("small", (0, 0))

    def test_region_overlap_rejected(self, controller, task_vbs):
        controller.load_task("small", (0, 0))
        controller.store_vbs("small2", task_vbs)
        with pytest.raises(RuntimeManagementError):
            controller.load_task("small2", (1, 1))

    def test_out_of_bounds_rejected(self, controller):
        w = controller.fabric.width
        with pytest.raises(RuntimeManagementError):
            controller.load_task("small", (w - 2, 0))

    def test_unload_frees_region(self, controller, task_vbs):
        controller.load_task("small", (0, 0))
        controller.unload_task("small")
        assert not controller.resident
        controller.load_task("small", (0, 0))  # reload succeeds

    def test_unload_clears_config(self, controller):
        task = controller.load_task("small", (0, 0))
        assert controller.config.occupied_cells()
        controller.unload_task("small")
        for cell in task.region.cells():
            assert controller.config.is_empty_macro(cell.x, cell.y)

    def test_migrate_moves_content(self, controller):
        task = controller.load_task("small", (0, 0))
        w = task.region.w
        before = {
            (c.x, c.y) for c in task.region.cells()
            if not controller.config.is_empty_macro(c.x, c.y)
        }
        moved = controller.migrate_task("small", (w, 0))
        after = {
            (c.x, c.y) for c in moved.region.cells()
            if not controller.config.is_empty_macro(c.x, c.y)
        }
        assert {(x + w, y) for (x, y) in before} == after

    def test_raw_image_load(self, controller):
        task = controller.load_task("small_raw", (0, 0))
        assert task.decode_stats is None
        assert task.load_cost.decode_cycles == 0

    def test_vbs_fetch_cheaper_than_raw(self, controller):
        vbs_task = controller.load_task("small", (0, 0))
        w = vbs_task.region.w
        raw_task = controller.load_task("small_raw", (w, 0))
        assert vbs_task.load_cost.fetch_cycles < raw_task.load_cost.fetch_cycles
        assert vbs_task.load_cost.decode_cycles > 0

    def test_utilization(self, controller):
        assert controller.utilization() == 0.0
        task = controller.load_task("small", (0, 0))
        expected = task.region.area / controller.fabric.bounds.area
        assert controller.utilization() == pytest.approx(expected)


class TestFabricManager:
    def test_place_task_auto(self, controller):
        mgr = FabricManager(controller)
        task = mgr.place_task("small")
        assert task.region.x == 0 and task.region.y == 0

    def test_second_task_beside_first(self, controller):
        mgr = FabricManager(controller)
        mgr.place_task("small")
        t2 = mgr.place_task("small_raw")
        assert not t2.region.overlaps(
            controller.resident["small"].region
        )

    def test_no_room(self, controller, task_vbs):
        mgr = FabricManager(controller)
        placed = 0
        for i in range(8):
            controller.store_vbs(f"t{i}", task_vbs)
            try:
                mgr.place_task(f"t{i}")
                placed += 1
            except RuntimeManagementError:
                break
        assert 0 < placed < 8  # fabric saturates eventually

    def test_defragment(self, controller):
        mgr = FabricManager(controller)
        t1 = mgr.place_task("small")
        t2 = mgr.place_task("small_raw")
        mgr.controller.unload_task("small")
        moved = mgr.defragment()
        assert moved == 1
        assert mgr.controller.resident["small_raw"].region.x == 0
