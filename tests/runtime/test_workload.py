"""Workload scenario layer: trace generator, simulator, goldens, CLI.

Determinism is the load-bearing property — a seeded trace must replay to
the *identical* report (that is what makes reports usable as regression
artifacts), and one small hand-built scenario is pinned end-to-end as a
golden so any drift in the trace generator, the eviction policy, the
cache accounting or the cost model fails loudly here.
"""

import json

import pytest

from repro.arch import FabricArch
from repro.errors import RuntimeManagementError
from repro.runtime import (
    TRACE_KINDS,
    ExternalMemory,
    FabricManager,
    ReconfigurationController,
    TraceEvent,
    WorkloadSimulator,
    generate_trace,
    run_scenario,
)
from repro.utils.bitarray import BitArray
from repro.vbs.encode import VirtualBitstream
from repro.vbs.format import ClusterRecord, VbsLayout


def _logic(layout, positions):
    arr = BitArray(layout.logic_bits_per_cluster)
    for p in positions:
        arr[p] = 1
    return arr


def _image(params, bits_a, bits_b):
    """A hand-built 3x2 VBS (logic-only records decode with zero routing)."""
    layout = VbsLayout(params, 1, 3, 2)
    records = [
        ClusterRecord((0, 0), raw=False, logic=_logic(layout, bits_a),
                      pairs=[]),
        ClusterRecord((2, 1), raw=False, logic=_logic(layout, bits_b),
                      pairs=[]),
    ]
    return VirtualBitstream(layout, records)


@pytest.fixture(scope="module")
def images(params5):
    """Two distinct-digest task images, no CAD flow involved."""
    return [
        ("a", _image(params5, [0, 7], [3])),
        ("b", _image(params5, [1, 2], [5, 6])),
    ]


def _manager(params5, images, width=7, height=3, **ctrl_kwargs):
    fabric = FabricArch(
        params5, width, height,
        {(x, y): "clb" for x in range(width) for y in range(height)},
    )
    ctrl = ReconfigurationController(fabric, ExternalMemory(), **ctrl_kwargs)
    for name, vbs in images:
        ctrl.store_vbs(name, vbs)
    return FabricManager(ctrl)


class TestTraceGenerator:
    def test_unknown_kind_rejected(self):
        with pytest.raises(RuntimeManagementError):
            generate_trace("zipfian", ["a"], 10)

    def test_empty_task_list_rejected(self):
        with pytest.raises(RuntimeManagementError):
            generate_trace("hot-set", [], 10)

    @pytest.mark.parametrize("kind", TRACE_KINDS)
    def test_length_and_task_closure(self, kind):
        trace = generate_trace(kind, ["a", "b", "c"], 25, seed=9)
        assert len(trace) == 25
        assert all(e.task in ("a", "b", "c") for e in trace.events)
        assert all(e.op in ("load", "unload", "migrate")
                   for e in trace.events)

    @pytest.mark.parametrize("kind", TRACE_KINDS)
    def test_same_seed_same_trace(self, kind):
        one = generate_trace(kind, ["a", "b", "c"], 40, seed=3)
        two = generate_trace(kind, ["a", "b", "c"], 40, seed=3)
        assert one == two

    def test_different_seeds_differ(self):
        one = generate_trace("hot-set", ["a", "b", "c", "d"], 40, seed=0)
        two = generate_trace("hot-set", ["a", "b", "c", "d"], 40, seed=1)
        assert one.events != two.events

    def test_adversarial_alternates_load_unload(self):
        trace = generate_trace("adversarial", ["a", "b", "c"], 12, seed=0)
        ops = [e.op for e in trace.events]
        assert ops == ["load", "unload"] * 6
        loads = [e.task for e in trace.events if e.op == "load"]
        assert loads == ["a", "b", "c", "a", "b", "c"]


class TestSimulatorDeterminism:
    @pytest.mark.parametrize("kind", TRACE_KINDS)
    def test_fixed_seed_replays_identically(self, params5, images, kind):
        trace = generate_trace(kind, [n for n, _v in images], 30, seed=7)
        reports = [
            WorkloadSimulator(_manager(params5, images)).run(trace)
            for _ in range(2)
        ]
        assert json.dumps(reports[0], sort_keys=True) == json.dumps(
            reports[1], sort_keys=True
        )

    def test_reports_are_json_serializable(self, params5, images):
        trace = generate_trace("round-robin", [n for n, _v in images], 10)
        report = WorkloadSimulator(_manager(params5, images)).run(trace)
        assert json.loads(json.dumps(report)) == report


#: End-to-end pinned report: 18 hot-set events over two hand-built tasks
#: on a 7x3 fabric.  Regenerate ONLY for an intentional, documented
#: behavior change (and say why in the commit): this string pins the
#: trace generator's event stream, the simulator's eviction policy, the
#: cache counters and the integer cost model all at once.
GOLDEN_TRACE_SEED = 4
# PR 5 regeneration: the report schema gained the always-present
# "shared_dicts" section (VERSION 4 table lifecycle counters); every
# pre-existing key is byte-identical to the PR 3 golden.
GOLDEN_REPORT = (
    '{"bytes_decoded": 426, "cache": {"bytes_in_cache": 426, "capacity": 16,'
    ' "capacity_bytes": null, "enabled": true, "entries": 2, "evictions": 0,'
    ' "hit_rate": 0.7777777777777778, "hits": 7, "misses": 2}, "cycles":'
    ' {"decode": 0, "fetch": 63, "total": 549, "write": 486}, "events":'
    ' {"evictions_for_space": 0, "failed_loads": 0, "loads": 9,'
    ' "migrations": 0, "skipped": 1, "unloads": 8}, "fabric": {"height": 3,'
    ' "resident_at_end": ["b"], "utilization": 0.2857142857142857,'
    ' "width": 7}, "load_cache_hits": 7, "per_task": {"a": {"cache_hits": 6,'
    ' "loads": 7, "migrations": 0}, "b": {"cache_hits": 1, "loads": 2,'
    ' "migrations": 0}}, "report_version": 1, "shared_dicts": {"drops": 0,'
    ' "faults": 0, "max_resident": 0, "resident_at_end": []}, "trace":'
    ' {"kind": "hot-set", "length": 18, "seed": 4, "tasks": ["a", "b"]}}'
)


class TestGoldenReport:
    def test_small_trace_end_to_end(self, params5, images):
        trace = generate_trace(
            "hot-set", [n for n, _v in images], 18, seed=GOLDEN_TRACE_SEED
        )
        report = WorkloadSimulator(_manager(params5, images)).run(trace)
        assert json.dumps(report, sort_keys=True) == GOLDEN_REPORT


#: The open-loop companion golden: the same 18-event hot-set trace with
#: Poisson timestamps at a 60-cycle mean gap (far below the ~60-cycle
#: service times, so the queue really builds).  Pins the arrival-clock
#: stream, the FIFO server model, the nearest-rank percentiles and the
#: queue-depth accounting on top of everything the closed-loop golden
#: pins.  Regenerate ONLY for an intentional, documented change.
GOLDEN_OPENLOOP_MEAN_GAP = 60
GOLDEN_OPENLOOP_REPORT = (
    '{"bytes_decoded": 426, "cache": {"bytes_in_cache": 426, "capacity": 16,'
    ' "capacity_bytes": null, "enabled": true, "entries": 2, "evictions": 0,'
    ' "hit_rate": 0.7777777777777778, "hits": 7, "misses": 2}, "clock":'
    ' {"busy_cycles": 549, "makespan": 583, "utilization":'
    ' 0.9416809605488851}, "cycles": {"decode": 0, "fetch": 63, "total": 549,'
    ' "write": 486}, "events": {"evictions_for_space": 0, "failed_loads": 0,'
    ' "loads": 9, "migrations": 0, "skipped": 1, "unloads": 8}, "fabric":'
    ' {"height": 3, "resident_at_end": ["b"], "utilization":'
    ' 0.2857142857142857, "width": 7}, "latency": {"max": 204, "mean":'
    ' 137.77777777777777, "p50": 147, "p95": 204, "p99": 204, "phases":'
    ' {"decode": {"p50": 0, "p95": 0, "p99": 0}, "fetch": {"p50": 7, "p95":'
    ' 7, "p99": 7}, "write": {"p50": 54, "p95": 54, "p99": 54}}, "queueing":'
    ' {"max": 143, "p50": 86, "p95": 143, "p99": 143, "total": 691},'
    ' "requests": 9, "unit": "cycles"}, "load_cache_hits": 7, "per_task":'
    ' {"a": {"cache_hits": 6, "loads": 7, "migrations": 0}, "b":'
    ' {"cache_hits": 1, "loads": 2, "migrations": 0}}, "queue": {"arrivals":'
    ' 11, "max_depth": 5, "mean_depth": 3.1818181818181817},'
    ' "report_version": 1, "shared_dicts": {"drops": 0, "faults": 0,'
    ' "max_resident": 0, "resident_at_end": []}, "trace": {"arrivals":'
    ' "poisson", "kind": "hot-set", "length": 18, "mean_interarrival": 60,'
    ' "seed": 4, "tasks": ["a", "b"]}}'
)


class TestOpenLoopGolden:
    def test_open_loop_trace_end_to_end(self, params5, images):
        trace = generate_trace(
            "hot-set", [n for n, _v in images], 18, seed=GOLDEN_TRACE_SEED,
            arrivals="poisson",
            mean_interarrival=GOLDEN_OPENLOOP_MEAN_GAP,
        )
        report = WorkloadSimulator(_manager(params5, images)).run(trace)
        assert json.dumps(report, sort_keys=True) == GOLDEN_OPENLOOP_REPORT


class TestOpenLoopEngine:
    def _trace(self, images, mean_gap, kind="hot-set", length=24, seed=7):
        return generate_trace(
            kind, [n for n, _v in images], length, seed=seed,
            arrivals="poisson", mean_interarrival=mean_gap,
        )

    def test_unknown_arrival_process_rejected(self):
        with pytest.raises(RuntimeManagementError):
            generate_trace("hot-set", ["a"], 4, arrivals="bursty")

    def test_bad_mean_interarrival_rejected(self):
        with pytest.raises(RuntimeManagementError):
            generate_trace("hot-set", ["a"], 4, arrivals="poisson",
                           mean_interarrival=0)

    def test_timestamps_monotone_and_shared_per_arrival(self, images):
        trace = self._trace(images, 500)
        stamps = [e.at for e in trace.events]
        assert all(s is not None for s in stamps)
        assert stamps == sorted(stamps)
        # A load and the eviction unloads preceding it share one stamp,
        # so distinct stamps number at most the count of arrivals.
        assert len(set(stamps)) <= len(stamps)

    def test_task_mix_identical_with_and_without_timestamps(self, images):
        names = [n for n, _v in images]
        closed = generate_trace("hot-set", names, 30, seed=9)
        opened = generate_trace("hot-set", names, 30, seed=9,
                                arrivals="poisson")
        assert [(e.op, e.task) for e in closed.events] == [
            (e.op, e.task) for e in opened.events
        ]

    def test_open_loop_report_is_deterministic(self, params5, images):
        trace = self._trace(images, 80)
        reports = [
            WorkloadSimulator(_manager(params5, images)).run(trace)
            for _ in range(2)
        ]
        assert json.dumps(reports[0], sort_keys=True) == json.dumps(
            reports[1], sort_keys=True
        )

    def test_saturation_builds_queue_and_relaxation_drains_it(
        self, params5, images
    ):
        # Arrivals far faster than the ~60-cycle services must queue;
        # arrivals far slower must not.
        tight = WorkloadSimulator(_manager(params5, images)).run(
            self._trace(images, 10)
        )
        relaxed = WorkloadSimulator(_manager(params5, images)).run(
            self._trace(images, 100000)
        )
        assert tight["queue"]["max_depth"] > 1
        assert tight["latency"]["queueing"]["total"] > 0
        assert relaxed["queue"]["max_depth"] == 1
        assert relaxed["latency"]["queueing"]["total"] == 0
        # Without queueing, latency is pure service time: the percentile
        # of the phase sums matches the end-to-end percentile.
        assert relaxed["latency"]["p99"] <= tight["latency"]["p99"]
        assert relaxed["clock"]["utilization"] < tight["clock"]["utilization"]

    def test_arrivals_counted_per_request_not_per_event(self, params5,
                                                        images):
        # Events sharing a timestamp (a load plus its eviction unloads)
        # are one request: the queue section must not double-count them.
        trace = self._trace(images, 500, kind="round-robin", length=30)
        report = WorkloadSimulator(_manager(params5, images)).run(trace)
        requests = len({e.at for e in trace.events})
        assert report["queue"]["arrivals"] == requests
        assert requests < len(trace.events)  # grouping really happened

    def test_run_scenario_rejects_bad_mix_before_synthesis(self):
        import time

        from repro.runtime import run_scenario

        start = time.perf_counter()
        with pytest.raises(RuntimeManagementError):
            run_scenario(kind="nope", n_tasks=2, length=8)
        with pytest.raises(RuntimeManagementError):
            run_scenario(arrivals="uniform", n_tasks=2, length=8)
        # Validation must not pay for CAD flows first (they take
        # seconds; rejection is effectively instant).
        assert time.perf_counter() - start < 1.0

    def test_percentiles_are_ordered_and_bounded(self, params5, images):
        report = WorkloadSimulator(_manager(params5, images)).run(
            self._trace(images, 40)
        )
        la = report["latency"]
        assert la["p50"] <= la["p95"] <= la["p99"] <= la["max"]
        assert la["requests"] > 0
        for phase in ("fetch", "decode", "write"):
            ph = la["phases"][phase]
            assert ph["p50"] <= ph["p95"] <= ph["p99"]

    def test_closed_loop_report_has_no_clock_sections(self, params5, images):
        trace = generate_trace("hot-set", [n for n, _v in images], 12, seed=2)
        report = WorkloadSimulator(_manager(params5, images)).run(trace)
        assert "latency" not in report
        assert "queue" not in report
        assert "clock" not in report
        assert "arrivals" not in report["trace"]


class TestZipfMix:
    def test_zipf_in_trace_kinds(self):
        assert "zipf" in TRACE_KINDS

    def test_zipf_records_alpha(self):
        trace = generate_trace("zipf", ["a", "b", "c"], 20, seed=1,
                               zipf_alpha=1.4)
        assert trace.zipf_alpha == 1.4
        assert all(e.op in ("load", "unload") for e in trace.events)

    def test_bad_alpha_rejected(self):
        with pytest.raises(RuntimeManagementError):
            generate_trace("zipf", ["a"], 4, zipf_alpha=0.0)

    def test_non_zipf_traces_do_not_record_alpha(self):
        assert generate_trace("hot-set", ["a"], 4).zipf_alpha is None


class TestSummarizeCompatibility:
    def test_tolerates_pre_open_loop_reports(self, params5, images):
        # A report written by the PR 3/4 schema: no latency, queue,
        # clock or shared_dicts sections.  summarize_report must render
        # it without tripping on the missing keys.
        from repro.runtime.workload import summarize_report

        trace = generate_trace("round-robin", [n for n, _v in images], 8)
        report = WorkloadSimulator(_manager(params5, images)).run(trace)
        for legacy_missing in ("latency", "queue", "clock", "shared_dicts"):
            report.pop(legacy_missing, None)
        text = summarize_report(report)
        assert "hit rate" in text
        assert "latency" not in text

    def test_renders_open_loop_sections(self, params5, images):
        from repro.runtime.workload import summarize_report

        trace = generate_trace(
            "hot-set", [n for n, _v in images], 18, seed=4,
            arrivals="poisson", mean_interarrival=60,
        )
        report = WorkloadSimulator(_manager(params5, images)).run(trace)
        text = summarize_report(report)
        assert "p95" in text and "queue" in text and "utilization" in text

    def test_tolerates_null_latency_report(self, params5, images):
        # An empty open-loop trace reports ``latency: null`` — the
        # degenerate-but-valid schema.  The summary must skip the
        # latency/queue lines instead of subscripting None.
        from repro.runtime.workload import (
            WorkloadTrace,
            summarize_report,
        )

        trace = WorkloadTrace(
            kind="zipf", seed=1, tasks=("a", "b"), events=(),
            arrivals="poisson", mean_interarrival=500, zipf_alpha=1.1,
        )
        report = WorkloadSimulator(_manager(params5, images)).run(trace)
        assert report["latency"] is None
        text = summarize_report(report)
        assert "0 events" in text
        assert "p95" not in text and "queue" not in text

    def test_renders_k_server_bank(self, params5, images):
        from repro.runtime.workload import summarize_report

        trace = generate_trace(
            "hot-set", [n for n, _v in images], 18, seed=4,
            arrivals="poisson", mean_interarrival=60,
        )
        report = WorkloadSimulator(
            _manager(params5, images), servers=3
        ).run(trace)
        text = summarize_report(report)
        assert "3-server utilization" in text
        single = WorkloadSimulator(_manager(params5, images)).run(trace)
        assert "server utilization" in summarize_report(single)
        assert "3-server" not in summarize_report(single)

    def test_renders_admission_line(self, params5, images):
        from repro.runtime.workload import summarize_report

        trace = generate_trace(
            "zipf", [n for n, _v in images], 20, seed=4,
            arrivals="poisson", mean_interarrival=2, max_resident=1,
        )
        report = WorkloadSimulator(
            _manager(params5, images), policy="defer-cold",
            queue_threshold=2,
        ).run(trace)
        text = summarize_report(report)
        assert "admission: defer-cold (threshold 2)" in text
        assert "store holds" in text
        # Reports with no admission section render no such line.
        plain = WorkloadSimulator(_manager(params5, images)).run(trace)
        assert "admission:" not in summarize_report(plain)


class TestEvictionForSpace:
    """A fabric with room for one 3x2 task forces make-room evictions."""

    def test_simulator_evicts_oldest(self, params5, images):
        mgr = _manager(params5, images, width=5, height=3)
        trace = generate_trace(
            "round-robin", [n for n, _v in images], 12, seed=1
        )
        report = WorkloadSimulator(mgr).run(trace)
        assert report["events"]["failed_loads"] == 0
        assert len(mgr.controller.resident) <= 1

    def test_make_room_and_evicting_place(self, params5, images):
        mgr = _manager(params5, images, width=5, height=3)
        mgr.place_task("a")
        with pytest.raises(RuntimeManagementError):
            mgr.place_task("b")  # default stays fail-fast
        task = mgr.place_task("b", evict=True)
        assert task.name == "b"
        assert list(mgr.controller.resident) == ["b"]

    def test_make_room_on_impossible_fit(self, params5, images):
        mgr = _manager(params5, images, width=5, height=3)
        assert mgr.make_room(6, 6) is None

    def test_infeasible_make_room_keeps_residents(self, params5, images):
        # An oversized request must fail without collateral evictions.
        mgr = _manager(params5, images, width=5, height=3)
        mgr.place_task("a")
        assert mgr.make_room(6, 6) is None
        assert list(mgr.controller.resident) == ["a"]

    def test_evicting_place_of_oversized_image_keeps_residents(
        self, params5, images
    ):
        mgr = _manager(params5, images, width=5, height=3)
        ctrl = mgr.controller
        bits = BitArray(6 * 6 * params5.nraw)
        ctrl.memory.store("huge", bits, "raw", 6, 6)
        mgr.place_task("a")
        with pytest.raises(RuntimeManagementError):
            mgr.place_task("huge", evict=True)
        assert list(ctrl.resident) == ["a"]

    def test_make_room_noop_when_free(self, params5, images):
        mgr = _manager(params5, images)
        assert mgr.make_room(3, 2) == []

    def test_replace_resident_task_spares_unrelated_victims(
        self, params5, images
    ):
        # Regression: ``place_task(name, evict=True)`` on an already-
        # resident task used to evict *unrelated* victims — the task's
        # own stale footprint blocked the region search, make_room
        # unloaded the oldest resident, and load_task then rejected the
        # duplicate anyway, losing the victim for nothing.  Re-placing
        # must reuse the task's own region and leave siblings alone.
        mgr = _manager(params5, images)  # 7x3: both 3x2 tasks fit, no spare
        mgr.place_task("b")  # oldest — the old code's collateral victim
        mgr.place_task("a")
        task = mgr.place_task("a", evict=True)
        assert task.name == "a"
        assert sorted(mgr.controller.resident) == ["a", "b"]


class TestControllerMemoParameter:
    """The DecodeMemo bound is a constructor knob; 0/None disable reuse."""

    def _load_twice(self, params5, images, **kwargs):
        mgr = _manager(params5, images, **kwargs)
        ctrl = mgr.controller
        ctrl.load_task("a", (0, 0))
        ctrl.load_task("b", (3, 0))
        return ctrl

    def test_default_is_bounded(self, params5, images):
        ctrl = _manager(params5, images).controller
        assert ctrl.decode_memo is not None
        assert ctrl.decode_memo.max_entries == 4096

    def test_custom_bound(self, params5, images):
        ctrl = _manager(params5, images, memo_entries=7).controller
        assert ctrl.decode_memo.max_entries == 7

    @pytest.mark.parametrize("disabled", [0, None])
    def test_disable_path_still_loads(self, params5, images, disabled):
        ctrl = self._load_twice(params5, images, memo_entries=disabled)
        assert ctrl.decode_memo is None
        assert len(ctrl.resident) == 2


class TestByteBudgetThroughController:
    def test_capacity_bytes_plumbed(self, params5, images):
        mgr = _manager(
            params5, images, cache_capacity=None, cache_capacity_bytes=4096
        )
        cache = mgr.controller.decode_cache
        assert cache.capacity is None and cache.capacity_bytes == 4096
        trace = generate_trace(
            "round-robin", [n for n, _v in images], 12, seed=2
        )
        WorkloadSimulator(mgr).run(trace)
        assert cache.total_bytes <= 4096

    def test_capacity_zero_with_byte_budget_keeps_cache(self, params5,
                                                        images):
        # --capacity 0 --capacity-bytes N must mean "byte bound only",
        # not "caching off".
        mgr = _manager(
            params5, images, cache_capacity=0, cache_capacity_bytes=4096
        )
        cache = mgr.controller.decode_cache
        assert cache is not None
        assert cache.capacity is None and cache.capacity_bytes == 4096
        ctrl = _manager(params5, images, cache_capacity=0).controller
        assert ctrl.decode_cache is None  # no byte budget: still disabled
        none_ctrl = _manager(
            params5, images, cache_capacity=None
        ).controller
        assert none_ctrl.decode_cache is None  # None + no budget: same

    def test_tiny_budget_thrashes_but_never_exceeds(self, params5, images):
        mgr = _manager(
            params5, images, cache_capacity=None, cache_capacity_bytes=300
        )
        cache = mgr.controller.decode_cache
        trace = generate_trace(
            "round-robin", [n for n, _v in images], 12, seed=2
        )
        report = WorkloadSimulator(mgr).run(trace)
        assert cache.total_bytes <= 300
        assert report["cache"]["hits"] == 0  # entries never fit


class TestRunScenario:
    """The one-call harness behind the CLI / eval / CI smoke trace."""

    def test_seeded_scenario_reproducible(self):
        one = run_scenario(kind="hot-set", n_tasks=2, length=10, seed=2)
        two = run_scenario(kind="hot-set", n_tasks=2, length=10, seed=2)
        assert json.dumps(one, sort_keys=True) == json.dumps(
            two, sort_keys=True
        )
        assert one["events"]["loads"] > 0

    def test_cache_dir_warms_second_process(self, tmp_path):
        first = run_scenario(kind="hot-set", n_tasks=2, length=8, seed=2,
                             cache_dir=str(tmp_path))
        second = run_scenario(kind="hot-set", n_tasks=2, length=8, seed=2,
                              cache_dir=str(tmp_path))
        assert first["scenario"]["cache_entries_restored"] == 0
        assert second["scenario"]["cache_entries_restored"] > 0
        assert second["cache"]["misses"] == 0
        assert second["bytes_decoded"] == 0

    def test_cache_dir_warms_decode_memo(self, tmp_path):
        from repro.runtime.workload import MEMO_FILE_NAME

        first = run_scenario(kind="round-robin", n_tasks=2, length=8,
                             seed=2, cache_capacity=1,
                             cache_dir=str(tmp_path))
        assert first["scenario"]["memo_entries_restored"] == 0
        assert (tmp_path / MEMO_FILE_NAME).exists()
        # Thrashing cache (capacity 1 over 2 tasks) forces re-decodes,
        # which the restored memo now serves without router replays.
        second = run_scenario(kind="round-robin", n_tasks=2, length=8,
                              seed=2, cache_capacity=1,
                              cache_dir=str(tmp_path))
        assert second["scenario"]["memo_entries_restored"] > 0
        # The memo never changes *what happens* — same event outcomes,
        # same frames written — but the warm start is a real latency
        # win: router replays the cold run paid are served from the
        # memo (and the one restored cache entry) instead.
        assert first["events"] == second["events"]
        assert second["cycles"]["decode"] < first["cycles"]["decode"]
        assert second["cycles"]["write"] == first["cycles"]["write"]
        assert second["cycles"]["fetch"] == first["cycles"]["fetch"]


class TestSimulateCli:
    def test_runtime_simulate_json(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "report.json"
        rc = main([
            "runtime", "simulate", "--tasks", "2", "--length", "8",
            "--seed", "1", "--json", str(out),
        ])
        assert rc == 0
        report = json.loads(out.read_text())
        assert report["report_version"] == 1
        assert report["trace"]["kind"] == "hot-set"
        text = capsys.readouterr().out
        assert "hit rate" in text and "cycles" in text

    def test_unknown_mix_exits_nonzero(self, tmp_path, capsys):
        # The regression this pins: an unknown mix name must exit
        # non-zero (and write no artifact), never fall back silently.
        from repro.cli import main

        out = tmp_path / "report.json"
        rc = main([
            "runtime", "simulate", "--kind", "zipfian", "--tasks", "2",
            "--length", "8", "--json", str(out),
        ])
        assert rc == 2
        assert not out.exists()
        assert "unknown trace kind" in capsys.readouterr().err

    def test_unknown_arrivals_exits_nonzero(self, capsys):
        from repro.cli import main

        rc = main([
            "runtime", "simulate", "--arrivals", "bursty",
            "--tasks", "2", "--length", "8",
        ])
        assert rc == 2
        assert "unknown arrival process" in capsys.readouterr().err

    def test_poisson_arrivals_report_percentiles(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "openloop.json"
        rc = main([
            "runtime", "simulate", "--kind", "zipf", "--arrivals",
            "poisson", "--tasks", "2", "--length", "10", "--seed", "1",
            "--mean-interarrival", "500", "--json", str(out),
        ])
        assert rc == 0
        report = json.loads(out.read_text())
        for field in ("p50", "p95", "p99"):
            assert isinstance(report["latency"][field], int)
        assert report["queue"]["max_depth"] >= 1
        assert report["trace"]["arrivals"] == "poisson"
        text = capsys.readouterr().out
        assert "latency" in text and "queue" in text

    def test_empty_open_loop_trace_reports_null_latency(
        self, params5, images
    ):
        # Regression: percentile([]) used to raise a bare IndexError out
        # of the report assembly.  A hand-built empty trace is still a
        # valid replay: the report carries ``latency: null`` instead of
        # percentiles (the generator itself now rejects length < 1).
        from repro.errors import RuntimeManagementError
        from repro.runtime.costmodel import percentile
        from repro.runtime.workload import WorkloadSimulator, WorkloadTrace

        with pytest.raises(RuntimeManagementError, match="empty"):
            percentile([], 99)

        trace = WorkloadTrace(
            kind="zipf", seed=1, tasks=("a", "b"), events=(),
            arrivals="poisson", mean_interarrival=500, zipf_alpha=1.1,
        )
        report = WorkloadSimulator(_manager(params5, images)).run(trace)
        assert report["latency"] is None
        assert report["queue"]["arrivals"] == 0
        assert report["clock"]["utilization"] == 0.0

    def test_zero_length_trace_exits_2(self, tmp_path, capsys):
        # The generator's length floor: ``--length 0`` is a request for
        # nothing and must fail loudly, not emit an empty artifact.
        from repro.cli import main

        out = tmp_path / "empty.json"
        rc = main([
            "runtime", "simulate", "--kind", "zipf", "--arrivals",
            "poisson", "--tasks", "2", "--length", "0", "--seed", "1",
            "--json", str(out),
        ])
        assert rc == 2
        assert "length" in capsys.readouterr().err
        assert not out.exists()

    def test_cli_open_loop_deterministic(self, tmp_path):
        from repro.cli import main

        outs = []
        for tag in ("one", "two"):
            out = tmp_path / f"{tag}.json"
            rc = main([
                "runtime", "simulate", "--arrivals", "poisson",
                "--tasks", "2", "--length", "8", "--seed", "3",
                "--json", str(out),
            ])
            assert rc == 0
            outs.append(out.read_text())
        assert outs[0] == outs[1]


@pytest.mark.integration
class TestTaskScopeScenario:
    """Trace-driven shared-dictionary churn: the VERSION 4 refcount path
    under the fabric's eviction pressure (ROADMAP open item 3)."""

    def test_tight_capacity_exercises_drops(self):
        report = run_scenario(
            kind="hot-set", n_tasks=2, length=30, seed=3, task_scope=True,
        )
        sd = report["shared_dicts"]
        assert report["scenario"]["task_scope"] is True
        assert report["scenario"]["shared_dict_ids"]  # tables were kept
        assert sd["faults"] >= 1
        assert sd["drops"] >= 1  # a last-referencing unload happened
        assert sd["max_resident"] >= 1
        # Whatever is left resident is consistent with the final tasks.
        assert sd["drops"] <= sd["faults"]

    def test_task_scope_scenario_deterministic(self):
        one = run_scenario(kind="round-robin", n_tasks=2, length=12,
                           seed=5, task_scope=True)
        two = run_scenario(kind="round-robin", n_tasks=2, length=12,
                           seed=5, task_scope=True)
        assert json.dumps(one, sort_keys=True) == json.dumps(
            two, sort_keys=True
        )
