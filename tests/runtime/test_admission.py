"""Admission/QoS layer: policies, the recorded-latency store, sweeps.

The load-bearing properties: ``policy="none"``/``servers=1`` leave the
report byte-identical to the pre-QoS simulator, k parallel servers
strictly cut the tail at a saturating arrival rate, drop-cold and
defer-cold strictly bound the queue depth while the *hot* tail does not
regress, and the saturation-knee sweep is a pure deterministic function
of its scenario parameters.
"""

import json

import pytest

from repro.arch import FabricArch
from repro.errors import RuntimeManagementError
from repro.runtime import (
    AdmissionPolicy,
    DeferColdPolicy,
    DropColdPolicy,
    ExternalMemory,
    FabricManager,
    FleetManager,
    POLICY_KINDS,
    PolicyStore,
    PriorityPolicy,
    ReconfigurationController,
    WorkloadSimulator,
    generate_trace,
    locate_knee,
    make_policy,
    run_scenario,
    run_sweep_scenario,
    summarize_sweep,
    sweep_arrival_rates,
    validate_policy_request,
)
from repro.utils.bitarray import BitArray
from repro.vbs.encode import VirtualBitstream
from repro.vbs.format import ClusterRecord, VbsLayout


def _logic(layout, positions):
    arr = BitArray(layout.logic_bits_per_cluster)
    for p in positions:
        arr[p] = 1
    return arr


def _image(params, bits_a, bits_b):
    """A hand-built 3x2 VBS (logic-only records decode with zero routing)."""
    layout = VbsLayout(params, 1, 3, 2)
    records = [
        ClusterRecord((0, 0), raw=False, logic=_logic(layout, bits_a),
                      pairs=[]),
        ClusterRecord((2, 1), raw=False, logic=_logic(layout, bits_b),
                      pairs=[]),
    ]
    return VirtualBitstream(layout, records)


@pytest.fixture(scope="module")
def images(params5):
    """Two distinct-digest task images, no CAD flow involved."""
    return [
        ("a", _image(params5, [0, 7], [3])),
        ("b", _image(params5, [1, 2], [5, 6])),
    ]


def _manager(params5, images, width=7, height=3, **ctrl_kwargs):
    memory = ExternalMemory()
    fabric = FabricArch(
        params5, width, height,
        {(x, y): "clb" for x in range(width) for y in range(height)},
    )
    manager = FabricManager(
        ReconfigurationController(fabric, memory, **ctrl_kwargs)
    )
    for name, vbs in images:
        manager.controller.store_vbs(name, vbs)
    return manager


def _churn_trace(images, length=30, seed=4, gap=2):
    """Zipf/Poisson arrivals with forced evictions (max_resident=1), so
    the mix carries both hot re-arrivals and cold reloads."""
    return generate_trace(
        "zipf", [n for n, _v in images], length, seed=seed,
        arrivals="poisson", mean_interarrival=gap, max_resident=1,
    )


class TestPolicyStore:
    def test_bucket_mapping(self):
        cases = {0: 0, 1: 1, 2: 2, 3: 2, 4: 4, 7: 4, 8: 8, 15: 8,
                 16: 16, 100: 16, -5: 0}
        for depth, bucket in cases.items():
            assert PolicyStore.bucket(depth) == bucket, depth

    def test_record_and_len(self):
        store = PolicyStore()
        assert len(store) == 0
        store.record(True, 0, 100)
        store.record(True, 3, 200)
        store.record(False, 9, 5000)
        assert len(store) == 3

    def test_expected_latency_falls_back_to_pooled_then_zero(self):
        store = PolicyStore()
        # Nothing recorded at all: a knowledge-free reader must not
        # prefer any shard or threshold over another.
        assert store.expected_latency(True, 0) == 0.0
        store.record(True, 0, 100)
        store.record(True, 0, 300)
        # Exact cell.
        assert store.expected_latency(True, 0) == 200.0
        # Empty bucket of a known temperature: pooled fallback.
        assert store.expected_latency(True, 16) == 200.0
        # The other temperature has no samples anywhere.
        assert store.expected_latency(False, 0) == 0.0

    def test_has_samples_distinguishes_measurement_from_fallback(self):
        """``expected_latency`` answers something for any class once one
        sample of the temperature exists; ``has_samples`` is how readers
        tell that measured answer from the pooled guess / zero."""
        store = PolicyStore()
        assert not store.has_samples(True, 0)
        store.record(True, 0, 100)
        assert store.has_samples(True, 0)
        # Same temperature, unmeasured bucket: pooled answer, no sample.
        assert store.expected_latency(True, 16) == 100.0
        assert not store.has_samples(True, 16)
        # Other temperature: zero answer, no sample.
        assert not store.has_samples(False, 0)
        # Depths bucket together exactly like record() files them.
        store.record(False, 3, 50)
        assert store.has_samples(False, 2)
        assert not store.has_samples(False, 4)

    def test_tail_latency_none_on_empty(self):
        store = PolicyStore()
        assert store.tail_latency(False, 0) is None
        for latency in (10, 20, 30, 40):
            store.record(False, 2, latency)
        assert store.tail_latency(False, 2) == 40
        assert store.tail_latency(False, 2, p=50) == 20
        # Pooled fallback serves unseen buckets too.
        assert store.tail_latency(False, 16) == 40

    def test_snapshot_is_json_safe(self):
        store = PolicyStore()
        store.record(True, 0, 100)
        store.record(False, 5, 900)
        snap = store.snapshot()
        assert snap["samples"] == 2
        assert set(snap["cells"]) == {"hot@0", "cold@4"}
        assert snap["cells"]["cold@4"] == {
            "count": 1, "mean": 900.0, "p99": 900,
        }
        json.dumps(snap)  # must round-trip without a custom encoder


class TestPolicyValidation:
    def test_unknown_policy_rejected(self):
        with pytest.raises(RuntimeManagementError,
                           match="unknown admission policy"):
            validate_policy_request("lifo")

    def test_bad_threshold_rejected(self):
        with pytest.raises(RuntimeManagementError,
                           match="queue threshold"):
            validate_policy_request("drop-cold", queue_threshold=0)
        with pytest.raises(RuntimeManagementError,
                           match="queue threshold"):
            DropColdPolicy(queue_threshold=-1)

    def test_bad_deferral_bound_rejected(self):
        with pytest.raises(RuntimeManagementError,
                           match="deferral bound"):
            DeferColdPolicy(max_defers=0)

    def test_make_policy_resolution(self):
        assert make_policy(None) is None
        assert make_policy("none") is None
        for name in POLICY_KINDS[1:]:
            policy = make_policy(name, queue_threshold=2)
            assert policy is not None
            assert policy.kind == name
            assert policy.queue_threshold == 2
        with pytest.raises(RuntimeManagementError,
                           match="unknown admission policy"):
            make_policy("fifo")

    def test_make_policy_instance_and_store_passthrough(self):
        store = PolicyStore()
        built = DropColdPolicy(queue_threshold=3, store=store)
        assert make_policy(built) is built
        assert make_policy("defer-cold", store=store).store is store
        # A fresh store per policy unless shared explicitly.
        assert make_policy("drop-cold").store is not store

    def test_decide_triggers(self):
        drop = DropColdPolicy(queue_threshold=4)
        defer = DeferColdPolicy(queue_threshold=4)
        for policy, verdict in ((drop, "drop"), (defer, "defer")):
            assert policy.decide(hot=False, depth=4) == verdict
            assert policy.decide(hot=False, depth=9) == verdict
            assert policy.decide(hot=False, depth=3) == "admit"
            assert policy.decide(hot=True, depth=100) == "admit"
        # The base policy and priority never shed anything at the door.
        assert AdmissionPolicy().decide(False, 100) == "admit"
        assert PriorityPolicy().decide(False, 100) == "admit"


class TestSimulatorAdmission:
    def test_no_policy_no_admission_section(self, params5, images):
        report = WorkloadSimulator(_manager(params5, images)).run(
            _churn_trace(images)
        )
        assert "admission" not in report
        assert "servers" not in report["clock"]

    def test_none_string_is_unarmed(self, params5, images):
        plain = WorkloadSimulator(_manager(params5, images)).run(
            _churn_trace(images)
        )
        named = WorkloadSimulator(
            _manager(params5, images), policy="none"
        ).run(_churn_trace(images))
        assert json.dumps(plain, sort_keys=True) == \
               json.dumps(named, sort_keys=True)

    def test_armed_base_policy_admits_everything(self, params5, images):
        report = WorkloadSimulator(
            _manager(params5, images), policy=AdmissionPolicy()
        ).run(_churn_trace(images))
        ad = report["admission"]
        assert ad["policy"] == "none"
        assert ad["dropped"] == 0 and ad["deferred"] == 0
        assert ad["admitted"] == report["queue"]["arrivals"]
        assert ad["lanes"]["hot"] + ad["lanes"]["cold"] == ad["admitted"]
        # Every serviced request was filed in the knowledge base.
        assert ad["store"]["samples"] == report["latency"]["requests"]

    def test_drop_cold_sheds_load(self, params5, images):
        # No decode cache: temperature is fabric residency alone, and
        # max_resident=1 churn guarantees cold reloads under pressure.
        baseline = WorkloadSimulator(
            _manager(params5, images, cache_capacity=0),
            policy=AdmissionPolicy(),
        ).run(_churn_trace(images))
        report = WorkloadSimulator(
            _manager(params5, images, cache_capacity=0),
            policy="drop-cold", queue_threshold=1,
        ).run(_churn_trace(images))
        ad = report["admission"]
        assert ad["policy"] == "drop-cold"
        assert ad["dropped"] >= 1
        assert ad["deferred"] == 0
        # Door conservation: every arriving group is admitted or dropped.
        assert ad["admitted"] + ad["dropped"] == \
               baseline["queue"]["arrivals"]
        assert report["queue"]["arrivals"] == ad["admitted"]
        # Dropped requests never reach the fabric manager.
        assert report["events"]["loads"] < baseline["events"]["loads"]

    def test_defer_cold_retries_without_loss(self, params5, images):
        baseline = WorkloadSimulator(
            _manager(params5, images, cache_capacity=0),
            policy=AdmissionPolicy(),
        ).run(_churn_trace(images))
        report = WorkloadSimulator(
            _manager(params5, images, cache_capacity=0),
            policy="defer-cold", queue_threshold=1,
        ).run(_churn_trace(images))
        ad = report["admission"]
        assert ad["policy"] == "defer-cold"
        assert ad["deferred"] >= 1
        assert ad["dropped"] == 0
        # Deferral sheds nothing: every group is eventually admitted.
        assert ad["admitted"] == baseline["queue"]["arrivals"]
        assert report["queue"]["arrivals"] == ad["admitted"]

    def test_priority_policy_counts_lanes(self, params5, images):
        report = WorkloadSimulator(
            _manager(params5, images, cache_capacity=0),
            policy="priority", servers=2,
        ).run(_churn_trace(images))
        ad = report["admission"]
        assert ad["policy"] == "priority"
        assert ad["dropped"] == 0 and ad["deferred"] == 0
        assert ad["lanes"]["cold"] >= 1  # churn forces cold reloads
        assert ad["lanes"]["hot"] + ad["lanes"]["cold"] == ad["admitted"]

    def test_policy_needs_open_loop_trace(self, params5, images):
        closed = generate_trace(
            "round-robin", [n for n, _v in images], 8, seed=1
        )
        sim = WorkloadSimulator(
            _manager(params5, images), policy="drop-cold"
        )
        with pytest.raises(RuntimeManagementError, match="open-loop"):
            sim.run(closed)

    def test_constructor_rejects_bad_combinations(self, params5, images):
        manager = _manager(params5, images)
        with pytest.raises(RuntimeManagementError, match="server count"):
            WorkloadSimulator(manager, servers=0)
        fleet = FleetManager([manager])
        with pytest.raises(RuntimeManagementError,
                           match="set on the FleetManager"):
            WorkloadSimulator(fleet=fleet, servers=2)
        with pytest.raises(RuntimeManagementError,
                           match="single-manager"):
            WorkloadSimulator(fleet=fleet, policy="drop-cold")

    def test_parallel_servers_preserve_event_totals(self, params5, images):
        trace = _churn_trace(images, length=40, seed=6)
        one = WorkloadSimulator(_manager(params5, images)).run(trace)
        three = WorkloadSimulator(
            _manager(params5, images), servers=3
        ).run(trace)
        # Same trace, same application order: only the clock differs.
        assert three["events"] == one["events"]
        assert three["per_task"] == one["per_task"]
        assert "servers" not in one["clock"]
        assert three["clock"]["servers"] == 3
        assert three["clock"]["makespan"] <= one["clock"]["makespan"]
        assert 0.0 <= three["clock"]["utilization"] <= 1.0


@pytest.mark.integration
class TestAdmissionAcceptance:
    """run_scenario-level QoS contract: byte-identity when unarmed,
    strictly lower p99 with k servers, strictly bounded queue depth
    under drop/defer with no hot-tail regression."""

    SATURATING = dict(kind="zipf", n_tasks=4, length=40, seed=3,
                      arrivals="poisson", mean_interarrival=200)
    # Admission comparison runs at seed=2: same saturating pressure,
    # a task mix where shedding cold work helps the hot tail.
    ADMISSION = dict(kind="zipf", n_tasks=4, length=40, seed=2,
                     arrivals="poisson", mean_interarrival=200)

    def test_servers_one_is_byte_identical(self):
        legacy = run_scenario(**self.SATURATING)
        explicit = run_scenario(**self.SATURATING, servers=1)
        assert json.dumps(legacy, sort_keys=True) == \
               json.dumps(explicit, sort_keys=True)
        assert "servers" not in explicit["scenario"]
        assert "servers" not in explicit["clock"]

    def test_policy_none_is_byte_identical(self):
        legacy = run_scenario(**self.SATURATING)
        named = run_scenario(**self.SATURATING, policy="none")
        assert json.dumps(legacy, sort_keys=True) == \
               json.dumps(named, sort_keys=True)
        assert "admission" not in named
        assert "policy" not in named["scenario"]

    def test_four_servers_cut_the_tail_at_saturation(self):
        single = run_scenario(**self.SATURATING)
        quad = run_scenario(**self.SATURATING, servers=4)
        # The acceptance criterion: k parallel reconfiguration servers
        # strictly improve the tail at a saturating arrival rate.
        assert quad["latency"]["p99"] < single["latency"]["p99"]
        assert quad["queue"]["max_depth"] <= single["queue"]["max_depth"]
        assert quad["clock"]["servers"] == 4
        assert quad["scenario"]["servers"] == 4
        # Utilization is normalized per server: k idle lanes show up as
        # lower utilization, never a value past 1.
        assert 0.0 < quad["clock"]["utilization"] <= 1.0

    @pytest.mark.parametrize("policy_cls", [DropColdPolicy,
                                            DeferColdPolicy])
    def test_admission_bounds_queue_without_hot_regression(
        self, policy_cls
    ):
        # Shared-store instances: the baseline replay files its hot/cold
        # latencies in one knowledge base, the policy replay in another,
        # so the hot tails are comparable afterwards.
        base_store = PolicyStore()
        baseline = run_scenario(
            **self.ADMISSION,
            policy=AdmissionPolicy(store=base_store),
        )
        store = PolicyStore()
        report = run_scenario(
            **self.ADMISSION,
            policy=policy_cls(queue_threshold=4, store=store),
        )
        ad = report["admission"]
        assert ad["policy"] == policy_cls.kind
        assert ad["queue_threshold"] == 4
        shed = ad["dropped"] if policy_cls is DropColdPolicy \
            else ad["deferred"]
        assert shed >= 1
        # The acceptance criterion: shedding cold work strictly bounds
        # the queue while the hot tail does not regress.
        assert report["queue"]["max_depth"] < \
               baseline["queue"]["max_depth"]
        hot_p99 = store.tail_latency(True, 0)
        base_hot_p99 = base_store.tail_latency(True, 0)
        assert hot_p99 is not None and base_hot_p99 is not None
        assert hot_p99 <= base_hot_p99

    def test_policy_needs_arrivals_and_one_fabric(self):
        with pytest.raises(RuntimeManagementError, match="open-loop"):
            run_scenario(kind="zipf", n_tasks=2, length=8, seed=1,
                         policy="drop-cold")
        with pytest.raises(RuntimeManagementError,
                           match="single-fabric"):
            run_scenario(**self.SATURATING, shards=2, router="hash",
                         policy="drop-cold")


class TestKneeLocation:
    @staticmethod
    def _row(gap, utilization, p99):
        return {"mean_interarrival": gap, "utilization": utilization,
                "p99": p99}

    def test_bad_parameters_rejected(self):
        with pytest.raises(RuntimeManagementError,
                           match="utilization floor"):
            locate_knee([], utilization_floor=0.0)
        with pytest.raises(RuntimeManagementError, match="p99 factor"):
            locate_knee([], p99_factor=1.0)

    def test_no_serviced_rate_no_knee(self):
        rows = [self._row(100, 0.0, None), self._row(50, 0.0, None)]
        assert locate_knee(rows) is None

    def test_first_qualifying_row_wins(self):
        rows = [
            self._row(400, 0.40, 100),   # relaxed baseline
            self._row(200, 0.96, 250),   # saturated but tail held
            self._row(100, 0.97, 330),   # knee: >= 3x relaxed
            self._row(50, 0.99, 900),
        ]
        knee = locate_knee(rows)
        assert knee["index"] == 2
        assert knee["mean_interarrival"] == 100
        assert knee["p99_over_relaxed"] == pytest.approx(3.3)

    def test_unsaturated_sweep_has_no_knee(self):
        rows = [self._row(400, 0.40, 100), self._row(200, 0.60, 120)]
        assert locate_knee(rows) is None


class TestArrivalSweep:
    def test_bad_parameters_rejected(self):
        run_at = lambda gap: {}
        with pytest.raises(RuntimeManagementError,
                           match="base inter-arrival"):
            sweep_arrival_rates(run_at, 0)
        with pytest.raises(RuntimeManagementError, match="factor"):
            sweep_arrival_rates(run_at, 100, factor=1.0)
        with pytest.raises(RuntimeManagementError,
                           match="at least two rates"):
            sweep_arrival_rates(run_at, 100, steps=1)

    def test_ladder_stops_when_rounding_bottoms_out(self):
        seen = []

        def run_at(gap):
            seen.append(gap)
            return {"latency": None, "queue": None, "clock": None}

        sweep = sweep_arrival_rates(run_at, 4, factor=2.0, steps=6)
        # 4 -> 2 -> 1; further rungs would repeat gap 1 and are cut.
        assert seen == [4, 2, 1]
        assert sweep["steps"] == 3
        assert [r["mean_interarrival"] for r in sweep["rates"]] == seen
        assert sweep["relaxed_p99"] is None
        assert sweep["knee"] is None

    def test_rows_and_knee_from_reports(self):
        canned = {
            1000: (0.30, 100, 3),
            500: (0.80, 180, 6),
            250: (0.98, 450, 14),  # knee: saturated, 4.5x relaxed
        }

        def run_at(gap):
            utilization, p99, depth = canned[gap]
            return {
                "latency": {"p50": p99 // 2, "p99": p99, "max": p99,
                            "requests": 20},
                "queue": {"max_depth": depth},
                "clock": {"utilization": utilization, "makespan": 9000},
            }

        sweep = sweep_arrival_rates(run_at, 1000, factor=2.0, steps=3)
        assert [r["arrival_rate"] for r in sweep["rates"]] == \
               [1 / 1000, 1 / 500, 1 / 250]
        assert sweep["relaxed_p99"] == 100
        assert sweep["knee"]["index"] == 2
        assert sweep["knee"]["mean_interarrival"] == 250
        text = summarize_sweep(sweep)
        assert "knee: gap 250" in text
        assert "max depth 14" in text

    def test_summary_reports_missing_knee(self):
        sweep = sweep_arrival_rates(
            lambda gap: {"latency": None, "queue": None, "clock": None},
            10, factor=2.0, steps=2,
        )
        assert "knee: not reached" in summarize_sweep(sweep)


@pytest.mark.integration
class TestSweepScenario:
    # The pinned deterministic knee of the CI smoke configuration
    # (single server, 30-event trace): gap 78, rung 4 of the ladder
    # 20000 -> 5000 -> 1250 -> 312 -> 78 -> 20.
    KNEE_SWEEP = dict(n_tasks=3, length=30, seed=3,
                      base_interarrival=20000, factor=4.0, steps=6)

    def test_knee_is_pinned_and_deterministic(self):
        sweep = run_sweep_scenario(**self.KNEE_SWEEP)
        gaps = [r["mean_interarrival"] for r in sweep["rates"]]
        assert gaps == [20000, 5000, 1250, 312, 78, 20]
        knee = sweep["knee"]
        assert knee is not None
        assert knee["index"] == 4
        assert knee["mean_interarrival"] == 78
        assert knee["utilization"] >= 0.95
        assert knee["p99_over_relaxed"] >= 3.0
        again = run_sweep_scenario(**self.KNEE_SWEEP)
        assert json.dumps(sweep, sort_keys=True) == \
               json.dumps(again, sort_keys=True)

    def test_relaxed_rates_stay_unsaturated(self):
        sweep = run_sweep_scenario(**self.KNEE_SWEEP)
        knee = sweep["knee"]
        for row in sweep["rates"][:knee["index"]]:
            assert (
                row["utilization"] < 0.95
                or row["p99"] < 3.0 * sweep["relaxed_p99"]
            )

    def test_sweep_carries_scenario_parameters(self):
        sweep = run_sweep_scenario(**self.KNEE_SWEEP, servers=2,
                                   policy="drop-cold")
        assert sweep["servers"] == 2
        assert sweep["policy"] == "drop-cold"
        assert sweep["trace"]["kind"] == "zipf"
        assert sweep["trace"]["seed"] == 3


class TestSweepCli:
    def test_sweep_writes_validated_artifact(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "sweep.json"
        rc = main([
            "runtime", "sweep", "--tasks", "2", "--length", "12",
            "--seed", "1", "--base-interarrival", "400",
            "--factor", "2", "--steps", "3", "--json", str(out),
        ])
        assert rc == 0
        sweep = json.loads(out.read_text())
        assert sweep["sweep_version"] == 1
        gaps = [r["mean_interarrival"] for r in sweep["rates"]]
        assert gaps == sorted(gaps, reverse=True)
        assert len(set(gaps)) == len(gaps)
        assert "sweep: zipf" in capsys.readouterr().out

    def test_require_knee_exits_one_when_unsaturated(self, tmp_path,
                                                     capsys):
        from repro.cli import main

        out = tmp_path / "sweep.json"
        # Two relaxed rungs cannot saturate the clock: the gate trips.
        rc = main([
            "runtime", "sweep", "--tasks", "2", "--length", "10",
            "--seed", "1", "--base-interarrival", "100000",
            "--factor", "2", "--steps", "2", "--require-knee",
            "--json", str(out),
        ])
        assert rc == 1
        assert not out.exists()
        assert "no saturation knee" in capsys.readouterr().err

    def test_sweep_validation_exits_two(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "sweep.json"
        rc = main([
            "runtime", "sweep", "--tasks", "2", "--length", "10",
            "--steps", "1", "--json", str(out),
        ])
        assert rc == 2
        assert not out.exists()
        assert "at least two rates" in capsys.readouterr().err

    def test_unknown_policy_exits_two(self, capsys):
        from repro.cli import main

        rc = main([
            "runtime", "simulate", "--tasks", "2", "--length", "8",
            "--arrivals", "poisson", "--policy", "lifo",
        ])
        assert rc == 2
        assert "unknown admission policy" in capsys.readouterr().err

    def test_simulate_reports_admission_section(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "report.json"
        rc = main([
            "runtime", "simulate", "--kind", "zipf", "--tasks", "3",
            "--length", "16", "--seed", "2", "--arrivals", "poisson",
            "--mean-interarrival", "200", "--policy", "drop-cold",
            "--queue-threshold", "2", "--servers", "2",
            "--json", str(out),
        ])
        assert rc == 0
        report = json.loads(out.read_text())
        assert report["admission"]["policy"] == "drop-cold"
        assert report["admission"]["queue_threshold"] == 2
        assert report["clock"]["servers"] == 2
        assert "admission: drop-cold" in capsys.readouterr().out
