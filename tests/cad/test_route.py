"""PathFinder routing: legality, determinism, congestion negotiation."""

import pytest

from repro.arch import ArchParams, FabricArch, RoutingGraph
from repro.cad import pack, place, route_design
from repro.cad.route import PathFinderRouter, net_terminals
from repro.errors import UnroutableError
from repro.netlist import CircuitSpec, generate_circuit


@pytest.fixture(scope="module")
def routed(params8):
    netlist = generate_circuit(
        CircuitSpec("rt", n_luts=40, n_inputs=8, n_outputs=6)
    )
    design = pack(netlist, 6)
    fabric = FabricArch.island(params8, 8)
    placement = place(design, fabric, seed=7)
    rrg = RoutingGraph(fabric)
    terminals = net_terminals(design, placement, rrg)
    routing = PathFinderRouter(rrg).route(terminals)
    return design, placement, rrg, terminals, routing


class TestRouting:
    def test_every_net_routed(self, routed):
        design, _pl, _rrg, terminals, routing = routed
        assert set(routing.trees) == set(terminals)

    def test_trees_are_trees(self, routed):
        *_rest, routing = routed
        for tree in routing.trees.values():
            # parent map: every non-source node has exactly one parent and
            # walking up always reaches the source.
            for node in tree.parent:
                cur, hops = node, 0
                while cur != tree.source:
                    cur = tree.parent[cur]
                    hops += 1
                    assert hops <= len(tree.parent) + 1

    def test_sinks_in_tree(self, routed):
        *_rest, routing = routed
        for tree in routing.trees.values():
            nodes = set(tree.nodes)
            assert set(tree.sinks) <= nodes

    def test_exclusive_occupancy(self, routed):
        *_rest, routing = routed
        seen = {}
        for name, tree in routing.trees.items():
            for node in tree.nodes:
                assert node not in seen, (
                    f"node shared by {seen.get(node)} and {name}"
                )
                seen[node] = name

    def test_edges_exist_in_rrg(self, routed):
        _d, _p, rrg, _t, routing = routed
        for tree in routing.trees.values():
            for child, parent in tree.parent.items():
                assert child in set(int(n) for n in rrg.neighbors(parent))

    def test_deterministic(self, routed, params8):
        design, placement, rrg, terminals, routing = routed
        again = PathFinderRouter(rrg2 := RoutingGraph(placement.fabric)).route(
            net_terminals(design, placement, rrg2)
        )
        assert {
            n: sorted(t.parent.items()) for n, t in routing.trees.items()
        } == {n: sorted(t.parent.items()) for n, t in again.trees.items()}

    def test_children_map_consistent(self, routed):
        *_rest, routing = routed
        for tree in routing.trees.values():
            kids = tree.children_map()
            count = sum(len(v) for v in kids.values())
            assert count == len(tree.parent)

    def test_unroutable_raises(self, params8):
        # Saturate a tiny fabric: W=2 with a dense circuit cannot route.
        netlist = generate_circuit(
            CircuitSpec("dense", n_luts=16, n_inputs=6, n_outputs=4,
                        locality=0.2)
        )
        design = pack(netlist, 6)
        params2 = ArchParams(channel_width=2)
        fabric = FabricArch.island(params2, 4)
        placement = place(design, fabric, seed=1)
        rrg = RoutingGraph(fabric)
        terminals = net_terminals(design, placement, rrg)
        router = PathFinderRouter(rrg, max_iterations=6)
        with pytest.raises(UnroutableError):
            router.route(terminals)

    def test_wirelength_positive(self, routed):
        *_rest, routing = routed
        assert routing.total_wirelength > 0
        assert routing.max_occupancy == 1
