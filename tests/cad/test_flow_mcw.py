"""Flow driver and minimum-channel-width search."""

import pytest

from repro.arch import ArchParams
from repro.cad import find_mcw, required_logic_size, required_pad_ring, run_flow
from repro.errors import PlacementError
from repro.netlist import CircuitSpec, generate_circuit


class TestSizing:
    def test_required_logic_size(self):
        assert required_logic_size(1) == 1
        assert required_logic_size(16) == 4
        assert required_logic_size(17) == 5
        assert required_logic_size(1173) == 35  # alu4, Table II

    def test_required_pad_ring(self):
        # 4n + 4 ring cells, 2 pads each.
        assert required_pad_ring(8) == 1
        assert required_pad_ring(40) == 4
        assert required_pad_ring(41) == 5


class TestFlow:
    def test_flow_summary(self, small_flow):
        s = small_flow.summary()
        assert "60 CLBs" in s and "routed" in s

    def test_flow_respects_logic_size(self, params8):
        netlist = generate_circuit(CircuitSpec("f1", 12, 6, 4))
        flow = run_flow(netlist, params8, logic_size=9, seed=1)
        assert flow.fabric.width == 11

    def test_flow_rejects_small_grid(self, params8):
        netlist = generate_circuit(CircuitSpec("f2", 30, 6, 4))
        with pytest.raises(PlacementError):
            run_flow(netlist, params8, logic_size=3, seed=1)

    def test_flow_maps_wide_luts(self, params8):
        # A netlist with an 8-input function must be legalized in-flow.
        import random
        from repro.netlist import Lut, Netlist

        ins = tuple(f"a{i}" for i in range(8))
        n = Netlist("wide", list(ins), ["z"],
                    [Lut("g", ins, "z", random.Random(0).randrange(1 << 256))])
        flow = run_flow(n, params8, seed=1)
        assert flow.design.num_clbs >= 3  # decomposed into several LUTs


class TestMcw:
    @pytest.fixture(scope="class")
    def flow(self, params8):
        netlist = generate_circuit(
            CircuitSpec("mcw", n_luts=25, n_inputs=8, n_outputs=6)
        )
        return run_flow(netlist, params8, seed=2)

    def test_mcw_found_and_minimal(self, flow):
        result = find_mcw(
            flow.design, flow.fabric, placement=flow.placement, w_max=16,
            max_iterations=12,
        )
        assert 2 <= result.mcw <= 16
        assert result.attempts[result.mcw] is True
        if result.mcw - 1 in result.attempts:
            assert result.attempts[result.mcw - 1] is False

    def test_mcw_routing_returned_at_mcw(self, flow):
        result = find_mcw(
            flow.design, flow.fabric, placement=flow.placement, w_max=16,
            max_iterations=12,
        )
        assert result.routing.channel_width == result.mcw

    def test_impossible_raises(self, flow):
        from repro.errors import UnroutableError

        with pytest.raises(UnroutableError):
            find_mcw(flow.design, flow.fabric, placement=flow.placement,
                     w_max=2, max_iterations=3)


class TestAnalysis:
    def test_routing_report(self, small_flow):
        from repro.cad import analyze_routing

        rep = analyze_routing(small_flow.rrg, small_flow.routing)
        assert 0 < rep.track_utilization < 1
        assert rep.total_wirelength == small_flow.routing.total_wirelength
        assert rep.densest_cells(3)

    def test_logic_depth(self, small_netlist):
        from repro.cad import logic_depth

        assert logic_depth(small_netlist) >= 1
