"""Router sparse-state properties: memory, byte-identity, RRG parity."""

from __future__ import annotations

import hashlib
import tracemalloc

from repro.arch.fabric import FabricArch
from repro.arch.params import ArchParams
from repro.arch.rrg import RoutingGraph, TilePatternRoutingGraph
from repro.cad.route import PathFinderRouter, net_terminals


def routing_signature(routing) -> str:
    """Order-independent digest of every route tree's exact node set."""
    h = hashlib.sha256()
    for name in sorted(routing.trees):
        tree = routing.trees[name]
        h.update(f"{name}:{tree.source}".encode())
        for child in sorted(tree.parent):
            h.update(f",{child}>{tree.parent[child]}".encode())
        h.update(b";")
    return h.hexdigest()


def test_routing_byte_identity_pinned(tiny_flow, small_flow):
    """The exact routed trees are pinned: any change to router costs,
    ordering or state handling that alters results must show up here
    (and be justified), not slip through as silent QoR drift."""
    assert tiny_flow.routing.total_wirelength == 175
    assert tiny_flow.routing.iterations == 3
    assert routing_signature(tiny_flow.routing) == (
        "84580c558733b68e952f62d56e22c6d963039d3f156e01a3998ec6e1dd5d0a43"
    )
    assert small_flow.routing.total_wirelength == 975
    assert small_flow.routing.iterations == 8
    assert routing_signature(small_flow.routing) == (
        "ba648ead210995f9cf78e76bd1a5a9572cba9918505ea940b24a58c3ac179960"
    )


def test_router_construction_is_o1_memory():
    """Construction must not copy the CSR (the old ``.tolist()`` bug
    retained two Python-list copies of the whole graph) nor allocate any
    per-node array — a few hundred bytes of empty dicts, no more."""
    fabric = FabricArch(ArchParams(channel_width=20), 48, 48, {})
    rrg = RoutingGraph(fabric)
    assert rrg.num_nodes > 100_000
    tracemalloc.start()
    tracemalloc.clear_traces()
    router = PathFinderRouter(rrg)
    retained, _ = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert router.rrg is rrg
    assert retained < 10_000, f"router construction retained {retained} bytes"


def test_routed_design_identical_on_compressed_rrg(tiny_flow):
    """Explicit CSR and tile-pattern graphs route byte-identically."""
    compressed = TilePatternRoutingGraph(tiny_flow.fabric)
    placement = tiny_flow.placement
    terminals = net_terminals(tiny_flow.design, placement, compressed)
    routing = PathFinderRouter(compressed).route(terminals)
    assert routing_signature(routing) == routing_signature(tiny_flow.routing)
    assert routing.total_wirelength == tiny_flow.routing.total_wirelength
    assert routing.iterations == tiny_flow.routing.iterations
