"""Simulated-annealing placement."""

import pytest

from repro.arch import ArchParams, FabricArch
from repro.cad import pack, place
from repro.errors import PlacementError
from repro.netlist import CircuitSpec, generate_circuit


@pytest.fixture(scope="module")
def design():
    return pack(
        generate_circuit(CircuitSpec("pl", n_luts=30, n_inputs=8, n_outputs=6)),
        6,
    )


@pytest.fixture(scope="module")
def fabric(params8):
    return FabricArch.island(params8, 7)


class TestPlacement:
    def test_all_instances_placed(self, design, fabric):
        pl = place(design, fabric, seed=1)
        assert len(pl.locations) == design.num_clbs + design.num_pads

    def test_clbs_on_logic_cells_pads_on_ring(self, design, fabric):
        pl = place(design, fabric, seed=1)
        for clb in design.clbs:
            x, y, sub = pl.site_of(clb.name)
            assert fabric.type_name_at(x, y) == "clb" and sub == 0
        for pad in design.pads:
            x, y, sub = pl.site_of(pad.name)
            assert fabric.type_name_at(x, y) == "iob" and sub in (0, 1)

    def test_no_site_shared(self, design, fabric):
        pl = place(design, fabric, seed=2)
        sites = list(pl.locations.values())
        assert len(sites) == len(set(sites))

    def test_deterministic(self, design, fabric):
        a = place(design, fabric, seed=5)
        b = place(design, fabric, seed=5)
        assert a.locations == b.locations

    def test_seed_changes_result(self, design, fabric):
        a = place(design, fabric, seed=1)
        b = place(design, fabric, seed=2)
        assert a.locations != b.locations

    def test_annealing_beats_random(self, design, fabric):
        # The final cost must improve substantially on the initial random
        # placement (compare against a fresh random assignment's HPWL).
        from repro.cad.place import _Annealer

        eng = _Annealer(design, fabric, seed=3)
        eng._initial_place()
        random_cost = eng.total_cost()
        pl = place(design, fabric, seed=3)
        assert pl.hpwl() < 0.7 * random_cost

    def test_cost_tracks_hpwl(self, design, fabric):
        pl = place(design, fabric, seed=4)
        assert pl.cost == pytest.approx(pl.hpwl(), rel=1e-9)

    def test_too_many_blocks_rejected(self, params8):
        big = pack(
            generate_circuit(CircuitSpec("big", 30, 6, 4)), 6
        )
        tiny_fabric = FabricArch.island(params8, 3)  # 9 logic sites
        with pytest.raises(PlacementError):
            place(big, tiny_fabric, seed=1)

    def test_unplaced_instance_query(self, design, fabric):
        pl = place(design, fabric, seed=1)
        with pytest.raises(PlacementError):
            pl.site_of("nonexistent")
