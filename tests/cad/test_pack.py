"""Packing LUTs and latches into logic blocks."""

import pytest

from repro.errors import PackError
from repro.netlist import Latch, Lut, Netlist
from repro.cad import pack


def _simple() -> Netlist:
    return Netlist(
        "s", ["a", "b"], ["z"],
        [Lut("g", ("a", "b"), "z", 0b0110)],
    )


class TestPack:
    def test_simple_lut(self):
        d = pack(_simple(), 6)
        assert d.num_clbs == 1
        clb = d.clbs[0]
        assert clb.inputs[:2] == ("a", "b")
        assert clb.inputs[2:] == (None,) * 4
        assert not clb.use_ff
        assert clb.output == "z"

    def test_truth_table_widened_dont_care(self):
        d = pack(_simple(), 6)
        tt = d.clbs[0].truth_table
        # With extra inputs at any value, rows repeat the 2-input xor.
        for idx in range(64):
            assert (tt >> idx) & 1 == [0, 1, 1, 0][idx & 3]

    def test_latch_absorbed_into_driver(self):
        n = Netlist(
            "seq", ["a"], ["q"],
            [Lut("g", ("a",), "d", 0b10)],
            [Latch("ff", "d", "q")],
        )
        d = pack(n, 6)
        assert d.num_clbs == 1
        assert d.clbs[0].use_ff
        assert d.clbs[0].output == "q"
        assert "d" not in d.nets  # internal net disappeared

    def test_multi_fanout_latch_not_absorbed(self):
        # d drives both the latch and an output: needs a pass-through block.
        n = Netlist(
            "seq2", ["a"], ["q", "d"],
            [Lut("g", ("a",), "d", 0b10)],
            [Latch("ff", "d", "q")],
        )
        d = pack(n, 6)
        assert d.num_clbs == 2
        ff_blocks = [c for c in d.clbs if c.use_ff]
        assert len(ff_blocks) == 1
        assert ff_blocks[0].inputs[0] == "d"

    def test_latch_from_pi_gets_passthrough(self):
        n = Netlist("seq3", ["d"], ["q"], [], [Latch("ff", "d", "q")])
        d = pack(n, 6)
        assert d.num_clbs == 1
        clb = d.clbs[0]
        assert clb.use_ff and clb.inputs[0] == "d"
        # The pass-through LUT is identity on in0.
        assert (clb.truth_table >> 1) & 1 == 1
        assert clb.truth_table & 1 == 0

    def test_pads_created(self):
        d = pack(_simple(), 6)
        assert d.num_pads == 3
        in_pads = [p for p in d.pads if p.drives_fabric]
        assert {p.net for p in in_pads} == {"a", "b"}

    def test_nets_have_driver_and_sinks(self):
        d = pack(_simple(), 6)
        z = d.nets["z"]
        assert z.driver == ("clb_g", "out")
        assert ("opad_z", "i") in z.sinks
        a = d.nets["a"]
        assert a.driver == ("ipad_a", "o")
        assert ("clb_g", "in0") in a.sinks

    def test_po_also_feeding_logic(self):
        n = Netlist(
            "ff2", ["a"], ["z", "w"],
            [Lut("g", ("a",), "z", 0b10), Lut("h", ("z",), "w", 0b01)],
        )
        d = pack(n, 6)
        z = d.nets["z"]
        assert len(z.sinks) == 2  # output pad + LUT h

    def test_oversized_lut_rejected(self):
        n = Netlist(
            "big", [f"a{i}" for i in range(7)], ["z"],
            [Lut("g", tuple(f"a{i}" for i in range(7)), "z", 1)],
        )
        with pytest.raises(PackError):
            pack(n, 6)

    def test_stats(self, small_flow):
        stats = small_flow.design.stats()
        assert stats["clbs"] == 60
        assert stats["ffs"] == 12
