"""Electrical extraction and functional simulation of configurations."""

import pytest

from repro.bitstream import FabricConfig
from repro.errors import BitstreamError
from repro.fabric import extract_circuit, switch_pair_table
from repro.fabric.equivalence import random_vectors, verify_functional
from repro.utils.geometry import Rect


class TestSwitchPairTable:
    def test_covers_every_offset(self, params5):
        table = switch_pair_table(params5)
        assert len(table) == params5.routing_bits
        assert all(len(entry) == 2 for entry in table)

    def test_matches_cluster_model(self, params5):
        from repro.arch import get_cluster_model

        table = switch_pair_table(params5)
        model = get_cluster_model(params5, 1)
        for sw in model.switches:
            a, b = table[sw.offset]
            keys = {model.seg_keys[sw.seg_a][2], model.seg_keys[sw.seg_b][2]}
            assert {a, b} == keys


class TestExtraction:
    def test_components_match_nets(self, small_flow, small_config):
        extracted = extract_circuit(small_config, small_flow.fabric)
        assert extracted.num_components >= len(small_flow.routing.trees)
        extracted.check_no_shorts()

    def test_blocks_recovered(self, small_flow, small_config):
        extracted = extract_circuit(small_config, small_flow.fabric)
        clb_cells = {
            small_flow.placement.cell_of(c.name)
            for c in small_flow.design.clbs
        }
        assert {b.cell for b in extracted.blocks} == clb_cells

    def test_ff_flags_recovered(self, small_flow, small_config):
        extracted = extract_circuit(small_config, small_flow.fabric)
        expected_ffs = sum(1 for c in small_flow.design.clbs if c.use_ff)
        assert sum(1 for b in extracted.blocks if b.use_ff) == expected_ffs

    def test_pads_recovered(self, small_flow, small_config):
        extracted = extract_circuit(small_config, small_flow.fabric)
        assert len(extracted.pads) == small_flow.design.num_pads
        drivers = sum(1 for p in extracted.pads if p.drives_fabric)
        expected = sum(1 for p in small_flow.design.pads if p.drives_fabric)
        assert drivers == expected

    def test_short_detection(self, small_flow, small_config):
        # Artificially short two driver pins through a fabricated config.
        from repro.arch import get_cluster_model

        cfg = FabricConfig(small_config.params, small_config.region)
        for cell, bits in small_config.logic.items():
            cfg.set_logic(cell[0], cell[1], bits.copy())
        for cell, offs in small_config.closed.items():
            cfg.close_switches(cell[0], cell[1], offs)
        # Find two CLBs in the same row and short their output pins by
        # closing an entire track corridor between them.
        clbs = sorted(
            {small_flow.placement.cell_of(c.name)
             for c in small_flow.design.clbs}
        )
        rows = {}
        pair = None
        for (x, y) in clbs:
            if y in rows and abs(rows[y] - x) == 1:
                pair = ((rows[y], y), (x, y))
                break
            rows[y] = x
        if pair is None:
            pytest.skip("no adjacent CLB pair in this placement")
        model = get_cluster_model(small_config.params, 1)
        # Close every switch of both macros: guaranteed to short things.
        for (x, y) in pair:
            for off in range(small_config.params.routing_bits):
                cfg.close_switch(x, y, off)
        extracted = extract_circuit(cfg, small_flow.fabric)
        with pytest.raises(BitstreamError):
            extracted.check_no_shorts()

    def test_empty_config_extracts_empty(self, small_flow, params8):
        cfg = FabricConfig(
            params8, Rect(0, 0, small_flow.fabric.width,
                          small_flow.fabric.height)
        )
        extracted = extract_circuit(cfg, small_flow.fabric)
        assert extracted.num_components == 0
        assert not extracted.blocks and not extracted.pads


class TestFunctionalEquivalence:
    def test_tiny_flow_equivalent(self, tiny_flow, tiny_config, tiny_netlist):
        steps = verify_functional(
            tiny_netlist, tiny_flow.design, tiny_flow.placement, tiny_config,
            tiny_flow.fabric, num_vectors=16,
        )
        assert steps == 16

    def test_sequential_equivalent(self, small_flow, small_config,
                                   small_netlist):
        steps = verify_functional(
            small_netlist, small_flow.design, small_flow.placement,
            small_config, small_flow.fabric, num_vectors=12,
        )
        assert steps == 12

    def test_mismatch_detected(self, tiny_flow, tiny_config, tiny_netlist):
        # Corrupt one LUT truth table: simulation must catch it.
        from repro.arch import encode_clb_config, decode_clb_config

        cfg = FabricConfig(tiny_config.params, tiny_config.region)
        for cell, bits in tiny_config.logic.items():
            cfg.set_logic(cell[0], cell[1], bits.copy())
        for cell, offs in tiny_config.closed.items():
            cfg.close_switches(cell[0], cell[1], offs)
        cell = tiny_flow.placement.cell_of(tiny_flow.design.clbs[0].name)
        tt, ff = decode_clb_config(cfg.params, cfg.logic[cell])
        cfg.set_logic(
            cell[0], cell[1],
            encode_clb_config(cfg.params, tt ^ 0xFFFF, ff),
        )
        with pytest.raises(BitstreamError):
            verify_functional(
                tiny_netlist, tiny_flow.design, tiny_flow.placement, cfg,
                tiny_flow.fabric, num_vectors=32,
            )

    def test_random_vectors_deterministic(self):
        a = random_vectors(["x", "y"], 5, seed=3)
        b = random_vectors(["x", "y"], 5, seed=3)
        assert a == b
