"""End-to-end integration: netlist -> flow -> VBS -> runtime -> simulation.

These are the library's strongest guarantees: after every transformation
(raw serialization, VBS encode/decode, relocation through the run-time
controller) the configured fabric must still compute the original circuit.
"""

import pytest

from repro.arch import ArchParams, FabricArch
from repro.bitstream import RawBitstream, expand_routing
from repro.cad import run_flow
from repro.fabric import extract_circuit, verify_connectivity, verify_functional
from repro.netlist import CircuitSpec, generate_circuit, parse_blif, write_blif
from repro.runtime import ExternalMemory, FabricManager, ReconfigurationController
from repro.vbs import VirtualBitstream, decode_vbs, encode_flow

pytestmark = pytest.mark.integration


class TestFullPipeline:
    @pytest.mark.parametrize("cluster", [1, 2, 3])
    def test_vbs_roundtrip_preserves_function(
        self, small_flow, small_config, small_netlist, cluster
    ):
        vbs = encode_flow(small_flow, small_config, cluster_size=cluster)
        parsed = VirtualBitstream.from_bits(vbs.to_bits())
        cfg, _ = decode_vbs(parsed)
        verify_functional(
            small_netlist, small_flow.design, small_flow.placement, cfg,
            small_flow.fabric, num_vectors=10,
        )

    def test_blif_source_through_flow(self, params8):
        blif = """
.model demo
.inputs a b c d
.outputs y z
.names a b t1
11 1
.names t1 c t2
10 1
01 1
.names t2 d y
00 1
.names a d z
1- 1
-1 1
.end
"""
        netlist = parse_blif(blif)
        flow = run_flow(netlist, params8, seed=4)
        config = expand_routing(
            flow.design, flow.placement, flow.routing, flow.rrg
        )
        vbs = encode_flow(flow, config, cluster_size=1)
        cfg, _ = decode_vbs(vbs)
        verify_functional(
            netlist, flow.design, flow.placement, cfg, flow.fabric,
            num_vectors=16,
        )

    def test_blif_write_parse_flow_identity(self, small_netlist, params8):
        rt = parse_blif(write_blif(small_netlist))
        vecs = [
            {pi: (i * 3 + k) % 2 for k, pi in enumerate(small_netlist.inputs)}
            for i in range(6)
        ]
        assert small_netlist.simulate(vecs) == rt.simulate(vecs)

    def test_raw_and_vbs_equivalent_configs(self, small_flow, small_config):
        raw_cfg = RawBitstream.from_config(small_config).to_config()
        vbs = encode_flow(small_flow, small_config, cluster_size=1)
        vbs_cfg, _ = decode_vbs(vbs)
        # Both must realize the same nets (switch sets may differ: the
        # decoder is free to re-route macro-internally).
        a = extract_circuit(raw_cfg, small_flow.fabric)
        b = extract_circuit(vbs_cfg, small_flow.fabric)
        assert len(a.blocks) == len(b.blocks)
        assert len(a.pads) == len(b.pads)

    def test_compression_claims_hold_on_small_design(
        self, small_flow, small_config
    ):
        raw = RawBitstream.from_config(small_config)
        vbs1 = encode_flow(small_flow, small_config, cluster_size=1)
        vbs2 = encode_flow(small_flow, small_config, cluster_size=2)
        # Paper: VBS is consistently smaller than raw; clustering helps at
        # size 2 on routed designs.
        assert vbs1.size_bits < raw.size_bits
        assert vbs2.size_bits < vbs1.size_bits


class TestRuntimeIntegration:
    def test_relocated_task_still_computes(
        self, small_flow, small_config, small_netlist
    ):
        """Load a task via the controller at a non-origin position, then
        verify the fabric region computes the original function."""
        vbs = encode_flow(small_flow, small_config, cluster_size=2)
        w = small_flow.fabric.width
        h = small_flow.fabric.height
        # Build a bigger fabric whose cell types repeat the task's layout at
        # the load origin, so extraction sees consistent block types.
        dx, dy = 3, 2
        type_map = {}
        for x in range(w + 6):
            for y in range(h + 6):
                sx, sy = x - dx, y - dy
                if 0 <= sx < w and 0 <= sy < h:
                    type_map[(x, y)] = small_flow.fabric.type_name_at(sx, sy)
                else:
                    type_map[(x, y)] = "clb"
        big = FabricArch(small_flow.params, w + 6, h + 6, type_map)

        controller = ReconfigurationController(big, ExternalMemory())
        controller.store_vbs("task", vbs)
        controller.load_task("task", (dx, dy))

        extracted = extract_circuit(controller.config, big)
        extracted.check_no_shorts()

        # Drive the relocated task through its relocated pad sites.
        in_site = {}
        out_site = {}
        for pad in small_flow.design.pads:
            x, y, sub = small_flow.placement.site_of(pad.name)
            site = ((x + dx, y + dy), sub)
            if pad.drives_fabric:
                in_site[pad.net] = site
            else:
                out_site[pad.net] = site
        vectors = [
            {pi: (i + k) % 2 for k, pi in enumerate(small_netlist.inputs)}
            for i in range(8)
        ]
        expected = small_netlist.simulate(vectors)
        actual = extracted.simulate(
            [{in_site[pi]: v[pi] for pi in small_netlist.inputs}
             for v in vectors]
        )
        for step, exp in enumerate(expected):
            for po in small_netlist.outputs:
                assert actual[step][out_site[po]] == exp[po], (
                    f"step {step} output {po}"
                )

    def test_manager_places_and_migrates(self, small_flow, small_config):
        vbs = encode_flow(small_flow, small_config, cluster_size=1)
        w = small_flow.fabric.width
        big = FabricArch(
            small_flow.params, 2 * w + 4, w + 4,
            {(x, y): "clb" for x in range(2 * w + 4) for y in range(w + 4)},
        )
        controller = ReconfigurationController(big, ExternalMemory())
        controller.store_vbs("a", vbs)
        controller.store_vbs("b", vbs)
        mgr = FabricManager(controller)
        ta = mgr.place_task("a")
        tb = mgr.place_task("b")
        assert not ta.region.overlaps(tb.region)
        controller.unload_task("a")
        assert mgr.defragment() == 1
        assert controller.resident["b"].region.x == 0
