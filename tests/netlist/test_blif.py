"""BLIF reader/writer."""

import pytest

from repro.errors import NetlistError
from repro.netlist import parse_blif, write_blif

ADDER = """
# a tiny adder
.model add1
.inputs a b cin
.outputs s cout
.names a b cin s
100 1
010 1
001 1
111 1
.names a b cin cout
11- 1
1-1 1
-11 1
.end
"""


class TestParse:
    def test_adder_structure(self):
        n = parse_blif(ADDER)
        assert n.name == "add1"
        assert n.inputs == ["a", "b", "cin"]
        assert n.outputs == ["s", "cout"]
        assert len(n.luts) == 2

    def test_adder_function(self):
        n = parse_blif(ADDER)
        vectors = [
            {"a": a, "b": b, "cin": c}
            for a in (0, 1) for b in (0, 1) for c in (0, 1)
        ]
        for vec, out in zip(vectors, n.simulate(vectors)):
            total = vec["a"] + vec["b"] + vec["cin"]
            assert out["s"] == total & 1
            assert out["cout"] == total >> 1

    def test_dont_care_expansion(self):
        n = parse_blif(".model m\n.inputs a b\n.outputs z\n.names a b z\n1- 1\n.end")
        lut = n.luts[0]
        assert lut.evaluate([1, 0]) == 1 and lut.evaluate([1, 1]) == 1
        assert lut.evaluate([0, 0]) == 0

    def test_off_set_cover(self):
        n = parse_blif(".model m\n.inputs a\n.outputs z\n.names a z\n1 0\n.end")
        lut = n.luts[0]
        assert lut.evaluate([1]) == 0 and lut.evaluate([0]) == 1

    def test_constant_one(self):
        n = parse_blif(".model m\n.inputs a\n.outputs z\n.names z\n1\n.names a q\n1 1\n.outputs\n.end".replace(".outputs\n.end", ".end"))
        # z is a constant-1 net; q copies a (needed so 'a' is read).
        assert any(l.output == "z" and l.arity == 0 for l in n.luts)

    def test_latch(self):
        txt = ".model m\n.inputs d\n.outputs q\n.latch d q re clk 0\n.end"
        n = parse_blif(txt)
        assert len(n.latches) == 1
        assert n.latches[0].init == 0

    def test_mixed_cover_rejected(self):
        bad = ".model m\n.inputs a\n.outputs z\n.names a z\n1 1\n0 0\n.end"
        with pytest.raises(NetlistError):
            parse_blif(bad)

    def test_unknown_construct_rejected(self):
        with pytest.raises(NetlistError):
            parse_blif(".model m\n.gate nand a b z\n.end")

    def test_comments_and_continuations(self):
        txt = ".model m # comment\n.inputs a \\\n b\n.outputs z\n.names a b z\n11 1\n.end"
        n = parse_blif(txt)
        assert n.inputs == ["a", "b"]


class TestWriteRoundtrip:
    def test_combinational_roundtrip(self):
        n = parse_blif(ADDER)
        n2 = parse_blif(write_blif(n))
        vectors = [
            {"a": a, "b": b, "cin": c}
            for a in (0, 1) for b in (0, 1) for c in (0, 1)
        ]
        assert n.simulate(vectors) == n2.simulate(vectors)

    def test_sequential_roundtrip(self):
        txt = (".model m\n.inputs d\n.outputs q\n.latch d q re clk 1\n.end")
        n = parse_blif(txt)
        n2 = parse_blif(write_blif(n))
        vecs = [{"d": v} for v in (1, 0, 1, 1)]
        assert n.simulate(vecs) == n2.simulate(vecs)
