"""Netlist model: validation, queries, simulation semantics."""

import pytest

from repro.errors import NetlistError
from repro.netlist import Latch, Lut, Netlist


def half_adder() -> Netlist:
    """sum = a xor b, carry = a and b."""
    return Netlist(
        "ha",
        ["a", "b"],
        ["sum", "carry"],
        [
            Lut("x", ("a", "b"), "sum", 0b0110),
            Lut("c", ("a", "b"), "carry", 0b1000),
        ],
    )


class TestLut:
    def test_evaluate_truth_table(self):
        lut = Lut("x", ("a", "b"), "z", 0b0110)  # xor
        assert lut.evaluate([0, 0]) == 0
        assert lut.evaluate([1, 0]) == 1
        assert lut.evaluate([0, 1]) == 1
        assert lut.evaluate([1, 1]) == 0

    def test_input_order_is_lsb_first(self):
        lut = Lut("x", ("a", "b"), "z", 0b0010)  # only row a=1,b=0
        assert lut.evaluate([1, 0]) == 1
        assert lut.evaluate([0, 1]) == 0

    def test_oversized_table_rejected(self):
        with pytest.raises(NetlistError):
            Lut("x", ("a",), "z", 0b10000)

    def test_arity_mismatch_on_evaluate(self):
        with pytest.raises(NetlistError):
            Lut("x", ("a", "b"), "z", 0).evaluate([1])


class TestValidation:
    def test_double_driver_rejected(self):
        with pytest.raises(NetlistError):
            Netlist("bad", ["a"], ["z"],
                    [Lut("l1", ("a",), "z", 1), Lut("l2", ("a",), "z", 1)])

    def test_undriven_input_rejected(self):
        with pytest.raises(NetlistError):
            Netlist("bad", ["a"], ["z"], [Lut("l", ("ghost",), "z", 1)])

    def test_undriven_output_rejected(self):
        with pytest.raises(NetlistError):
            Netlist("bad", ["a"], ["z"], [])

    def test_latch_breaks_cycles(self):
        # q feeds the LUT that computes the latch input: legal feedback.
        n = Netlist(
            "loop", ["a"], ["q"],
            [Lut("l", ("a", "q"), "d", 0b0110)],
            [Latch("ff", "d", "q")],
        )
        assert n.is_sequential()

    def test_combinational_cycle_detected(self):
        n = Netlist(
            "cyc", ["a"], ["x"],
            [
                Lut("l1", ("a", "y"), "x", 0b0110),
                Lut("l2", ("x",), "y", 0b10),
            ],
        )
        with pytest.raises(NetlistError):
            n.simulate([{"a": 0}])

    def test_queries(self):
        n = half_adder()
        assert n.driver_of("sum") == "LUT x"
        assert "output carry" in n.sinks_of("carry")
        assert n.nets() == {"a", "b", "sum", "carry"}
        assert n.max_lut_arity() == 2
        assert not n.is_sequential()


class TestSimulation:
    def test_half_adder_exhaustive(self):
        n = half_adder()
        vectors = [{"a": a, "b": b} for a in (0, 1) for b in (0, 1)]
        outs = n.simulate(vectors)
        expected = [(0, 0), (1, 0), (1, 0), (0, 1)]
        assert [(o["sum"], o["carry"]) for o in outs] == expected

    def test_latch_delays_one_cycle(self):
        n = Netlist(
            "reg", ["d"], ["q"], [], [Latch("ff", "d", "q", init=0)]
        )
        outs = n.simulate([{"d": 1}, {"d": 0}, {"d": 1}])
        assert [o["q"] for o in outs] == [0, 1, 0]

    def test_latch_init_value(self):
        n = Netlist("reg", ["d"], ["q"], [], [Latch("ff", "d", "q", init=1)])
        assert n.simulate([{"d": 0}])[0]["q"] == 1

    def test_missing_stimulus_rejected(self):
        n = half_adder()
        with pytest.raises(NetlistError):
            n.simulate([{"a": 1}])

    def test_shift_register(self):
        n = Netlist(
            "shift", ["d"], ["q2"], [],
            [Latch("f1", "d", "q1"), Latch("f2", "q1", "q2")],
        )
        outs = n.simulate([{"d": v} for v in (1, 0, 0, 0)])
        assert [o["q2"] for o in outs] == [0, 0, 1, 0]
