"""Shannon-decomposition technology mapping."""

import random

import pytest

from repro.errors import NetlistError
from repro.netlist import Lut, Netlist, map_to_luts
from repro.netlist.lutmap import MUX_TT, _cofactor, _prune_inputs


class TestPrimitives:
    def test_mux_truth_table(self):
        lut = Lut("m", ("s", "a", "b"), "z", MUX_TT)
        for s in (0, 1):
            for a in (0, 1):
                for b in (0, 1):
                    assert lut.evaluate([s, a, b]) == (b if s else a)

    def test_cofactor(self):
        # f = a xor b; cofactor b=1 is NOT a.
        assert _cofactor(0b0110, 2, 1, 1) == 0b01
        assert _cofactor(0b0110, 2, 1, 0) == 0b10

    def test_prune_drops_dead_inputs(self):
        # z depends only on input 0 (identity on a, ignores b).
        lut = Lut("x", ("a", "b"), "z", 0b1010)
        pruned = _prune_inputs(lut)
        assert pruned.inputs == ("a",)
        assert pruned.truth_table == 0b10


class TestMapping:
    def _random_netlist(self, arity: int, seed: int) -> Netlist:
        rng = random.Random(seed)
        ins = tuple(f"a{i}" for i in range(arity))
        tt = rng.randrange(1, 1 << (1 << arity))
        return Netlist("wide", list(ins), ["z"], [Lut("big", ins, "z", tt)])

    @pytest.mark.parametrize("arity,seed", [(7, 1), (8, 2), (9, 3), (10, 4)])
    def test_equivalence_after_decomposition(self, arity, seed):
        n = self._random_netlist(arity, seed)
        mapped = map_to_luts(n, 6)
        assert mapped.max_lut_arity() <= 6
        rng = random.Random(seed + 100)
        vectors = [
            {f"a{i}": rng.randrange(2) for i in range(arity)}
            for _ in range(64)
        ]
        assert n.simulate(vectors) == mapped.simulate(vectors)

    def test_small_functions_untouched(self):
        n = self._random_netlist(4, 9)
        mapped = map_to_luts(n, 6)
        assert len(mapped.luts) == 1

    def test_latches_preserved(self):
        from repro.netlist import Latch

        n = Netlist(
            "seq", ["a"], ["q"],
            [Lut("l", ("a",), "d", 0b10)],
            [Latch("ff", "d", "q")],
        )
        mapped = map_to_luts(n, 6)
        assert len(mapped.latches) == 1

    def test_rejects_k1(self):
        with pytest.raises(NetlistError):
            map_to_luts(self._random_netlist(3, 5), 1)
