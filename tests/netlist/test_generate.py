"""Synthetic MCNC-proxy generator invariants."""

import pytest

from repro.errors import NetlistError
from repro.netlist import CircuitSpec, generate_circuit
from repro.netlist.generate import generated_stats


class TestGenerator:
    def test_exact_lut_count(self):
        for n_luts in (8, 57, 200):
            spec = CircuitSpec("t", n_luts=n_luts, n_inputs=8, n_outputs=4)
            assert len(generate_circuit(spec).luts) == n_luts

    def test_deterministic_by_name(self):
        spec = CircuitSpec("alpha", n_luts=40, n_inputs=8, n_outputs=4)
        a = generate_circuit(spec)
        b = generate_circuit(spec)
        assert [l.truth_table for l in a.luts] == [l.truth_table for l in b.luts]
        assert a.outputs == b.outputs

    def test_different_names_differ(self):
        a = generate_circuit(CircuitSpec("one", 40, 8, 4))
        b = generate_circuit(CircuitSpec("two", 40, 8, 4))
        assert [l.truth_table for l in a.luts] != [l.truth_table for l in b.luts]

    def test_latch_count(self):
        spec = CircuitSpec("seq", n_luts=50, n_inputs=8, n_outputs=4,
                           n_latches=17)
        n = generate_circuit(spec)
        assert len(n.latches) == 17

    def test_latch_nets_single_sink(self):
        # Registered LUT outputs must feed only their latch (packs 1:1).
        spec = CircuitSpec("seq2", n_luts=60, n_inputs=8, n_outputs=6,
                           n_latches=20)
        n = generate_circuit(spec)
        latch_inputs = {l.input for l in n.latches}
        for lut in n.luts:
            for net in lut.inputs:
                assert net not in latch_inputs
        assert not (set(n.outputs) & latch_inputs)

    def test_every_net_observable(self):
        n = generate_circuit(CircuitSpec("obs", 80, 10, 6))
        read = set(n.outputs)
        for lut in n.luts:
            read.update(lut.inputs)
        for latch in n.latches:
            read.add(latch.input)
        for lut in n.luts:
            visible = lut.output
            assert visible in read or any(
                l.input == visible for l in n.latches
            ), f"dangling net {visible}"

    def test_simulates_without_cycles(self):
        spec = CircuitSpec("sim", n_luts=70, n_inputs=9, n_outputs=5,
                           n_latches=15)
        n = generate_circuit(spec)
        vecs = [{pi: (i + k) % 2 for k, pi in enumerate(n.inputs)}
                for i in range(5)]
        outs = n.simulate(vecs)
        assert len(outs) == 5

    def test_max_arity_respected(self):
        n = generate_circuit(CircuitSpec("ar", 100, 10, 6))
        assert n.max_lut_arity() <= 6

    def test_avg_fanin_reasonable(self):
        n = generate_circuit(CircuitSpec("fi", 300, 16, 8))
        stats = generated_stats(n)
        assert 3.0 < stats["avg_fanin"] < 5.5

    def test_locality_changes_structure(self):
        tight = generate_circuit(CircuitSpec("loc", 150, 10, 6, locality=0.95))
        loose = generate_circuit(CircuitSpec("loc", 150, 10, 6, locality=0.3))
        # Identical seeds, different wiring statistics.
        assert [l.inputs for l in tight.luts] != [l.inputs for l in loose.luts]

    def test_validation(self):
        with pytest.raises(NetlistError):
            CircuitSpec("bad", 0, 1, 1)
        with pytest.raises(NetlistError):
            CircuitSpec("bad", 10, 0, 1)
        with pytest.raises(NetlistError):
            CircuitSpec("bad", 10, 2, 2, n_latches=20)
        with pytest.raises(NetlistError):
            CircuitSpec("bad", 10, 2, 2, locality=1.5)
