"""The de-virtualization router in isolation."""

import pytest

from repro.arch import get_cluster_model
from repro.errors import DevirtualizationError
from repro.vbs.devirt import ClusterDecoder


@pytest.fixture()
def model(params5):
    return get_cluster_model(params5, 1)


def w_io(t):
    return t            # WEST track t


def e_io(t):
    return 5 + t        # EAST


def s_io(t):
    return 10 + t       # SOUTH


def n_io(t):
    return 15 + t       # NORTH


def p_io(p):
    return 20 + p       # PIN


class TestSingleConnections:
    def test_straight_through(self, model):
        result = ClusterDecoder(model).decode([(w_io(2), e_io(2))])
        assert result.connections_routed == 1
        assert (0, 0) in result.closed
        assert result.work > 0

    def test_turn_through_switch_box(self, model):
        result = ClusterDecoder(model).decode([(w_io(1), n_io(1))])
        assert result.connections_routed == 1

    def test_track_change_dogleg(self, model):
        # WEST track 0 to EAST track 3 requires a pin-line dogleg.
        result = ClusterDecoder(model).decode([(w_io(0), e_io(3))])
        assert result.connections_routed == 1

    def test_boundary_to_pin(self, model):
        result = ClusterDecoder(model).decode([(w_io(2), p_io(0))])
        assert result.connections_routed == 1

    def test_pin_to_boundary(self, model):
        result = ClusterDecoder(model).decode([(p_io(6), n_io(4))])
        assert result.connections_routed == 1

    def test_pin_to_pin_same_macro(self, model):
        result = ClusterDecoder(model).decode([(p_io(6), p_io(0))])
        assert result.connections_routed == 1

    def test_bad_io_rejected(self, model):
        with pytest.raises(DevirtualizationError):
            ClusterDecoder(model).decode([(0, 99)])


class TestStatefulness:
    def test_fanout_extends_net(self, model):
        result = ClusterDecoder(model).decode(
            [(w_io(2), e_io(2)), (w_io(2), n_io(2))]
        )
        assert result.connections_routed == 2

    def test_redundant_pair_skipped(self, model):
        result = ClusterDecoder(model).decode(
            [(w_io(2), e_io(2)), (w_io(2), e_io(2))]
        )
        assert result.connections_routed == 1
        assert result.connections_skipped == 1

    def test_distinct_nets_disjoint(self, model):
        result = ClusterDecoder(model).decode(
            [(w_io(0), e_io(0)), (w_io(1), e_io(1)), (w_io(4), e_io(4))]
        )
        assert result.connections_routed == 3

    def test_determinism(self, model):
        pairs = [(w_io(0), e_io(0)), (w_io(1), n_io(3)), (p_io(6), s_io(2))]
        a = ClusterDecoder(model).decode(pairs)
        b = ClusterDecoder(model).decode(pairs)
        assert a.closed == b.closed
        assert a.work == b.work

    def test_pin_line_protection(self, model):
        # A dogleg (W0 -> E3) routed before a pin connection must not take
        # the pin's line when the pin appears later in the list.
        pairs = [(w_io(0), e_io(3)), (w_io(4), p_io(0))]
        result = ClusterDecoder(model).decode(pairs)
        assert result.connections_routed == 2

    def test_ripup_recovers_conflict(self, model):
        # Saturate, then demand one more constrained route; the decoder may
        # need to tear a net down but must still succeed.
        pairs = [
            (w_io(t), e_io(t)) for t in range(5)
        ] + [(s_io(0), n_io(0))]
        result = ClusterDecoder(model).decode(pairs)
        assert result.connections_routed == len(pairs)


class TestClusterScope:
    def test_cluster_route_across_macros(self, params5):
        model = get_cluster_model(params5, 2)
        W, c = 5, 2
        west = 0 * W + 1                     # WEST row 0, track 1
        east = c * W + 1 * W + 1             # EAST row 1, track 1
        result = ClusterDecoder(model).decode([(west, east)])
        assert result.connections_routed == 1
        # The path must close switches in more than one member macro.
        assert len(result.closed) >= 2

    def test_valid_mask_blocks_outside(self, params5):
        model = get_cluster_model(params5, 2)
        decoder = ClusterDecoder(model, valid_macros={(0, 0)})
        W, c = 5, 2
        # An endpoint on the excluded column must be refused.
        east_row0 = c * W + 0 * W + 0
        with pytest.raises(DevirtualizationError):
            decoder.decode([(0, east_row0)])

    def test_work_grows_with_cluster(self, params5):
        small = ClusterDecoder(get_cluster_model(params5, 1)).decode(
            [(w_io(2), e_io(2))]
        )
        model3 = get_cluster_model(params5, 3)
        W, c = 5, 3
        west = 0 * W + 2
        east = c * W + 0 * W + 2
        big = ClusterDecoder(model3).decode([(west, east)])
        assert big.work > small.work
