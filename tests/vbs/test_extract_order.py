"""Connection-list extraction and ordering strategies."""

import pytest

from repro.vbs import candidate_orders, extract_components, pair_distance
from repro.vbs.extract import crossing_ios, pin_io
from repro.vbs.format import VbsLayout
from repro.arch import get_cluster_model


class TestCrossingIos:
    def test_east_west_symmetry(self, params5):
        layout = VbsLayout(params5, 1, 8, 8)
        exit_io, entry_io = crossing_ios(layout, (2, 3), (3, 3), track=4)
        assert exit_io == 5 + 4      # EAST t=4 of the from-macro
        assert entry_io == 4         # WEST t=4 of the to-macro
        back_exit, back_entry = crossing_ios(layout, (3, 3), (2, 3), track=4)
        assert (back_exit, back_entry) == (entry_io, exit_io)

    def test_north_south_symmetry(self, params5):
        layout = VbsLayout(params5, 1, 8, 8)
        exit_io, entry_io = crossing_ios(layout, (2, 3), (2, 4), track=1)
        assert exit_io == 15 + 1     # NORTH
        assert entry_io == 10 + 1    # SOUTH

    def test_cluster_rows(self, params5):
        layout = VbsLayout(params5, 2, 8, 8)
        # Crossing east out of cluster (0,0) from macro row 1.
        exit_io, entry_io = crossing_ios(layout, (1, 1), (2, 1), track=0)
        assert exit_io == 2 * 5 + 1 * 5 + 0   # EAST, row 1 in cluster
        assert entry_io == 0 + 1 * 5 + 0      # WEST, row 1

    def test_non_neighbours_rejected(self, params5):
        from repro.errors import VbsError

        layout = VbsLayout(params5, 1, 8, 8)
        with pytest.raises(VbsError):
            crossing_ios(layout, (0, 0), (2, 0), track=0)

    def test_pin_io_layout(self, params5):
        layout = VbsLayout(params5, 2, 8, 8)
        # Macro (3, 5) lives in cluster (1, 2) at local (1, 1).
        io = pin_io(layout, 3, 5, 6)
        assert io == 4 * 2 * 5 + (1 * 2 + 1) * 7 + 6


class TestExtraction:
    @pytest.fixture(scope="class")
    def components(self, small_flow):
        layout = VbsLayout(
            small_flow.params, 1, small_flow.fabric.width,
            small_flow.fabric.height,
        )
        return layout, extract_components(
            small_flow.design, small_flow.placement, small_flow.routing,
            small_flow.rrg, layout,
        )

    def test_every_net_has_source_component(self, components, small_flow):
        layout, comps = components
        nets_seen = {c.net for lst in comps.values() for c in lst}
        assert nets_seen == set(small_flow.routing.trees)

    def test_entries_and_exits_in_io_space(self, components, small_flow):
        layout, comps = components
        limit = small_flow.params.cluster_io_count(1)
        for lst in comps.values():
            for comp in lst:
                assert 0 <= comp.entry < limit
                assert all(0 <= e < limit for e in comp.exits)
                assert comp.exits, "componens must carry at least one exit"

    def test_crossings_pair_up_across_boundaries(self, components):
        layout, comps = components
        # Every EAST exit of cluster (x,y) must appear as the WEST entry of
        # cluster (x+1,y) for the same net (and vice versa).
        W = layout.params.channel_width
        exits = {}
        for (cx, cy), lst in comps.items():
            for comp in lst:
                for e in comp.exits:
                    if W <= e < 2 * W:  # EAST side, c == 1
                        exits[(cx, cy, e - W, comp.net)] = True
        for (cx, cy), lst in comps.items():
            for comp in lst:
                if 0 <= comp.entry < W:  # WEST entry
                    key = (cx - 1, cy, comp.entry, comp.net)
                    assert key in exits, (
                        f"unmatched WEST entry {comp.entry} of {comp.net} "
                        f"at {(cx, cy)}"
                    )

    def test_pairs_anchored_at_entry(self, components):
        _layout, comps = components
        for lst in comps.values():
            for comp in lst:
                for a, _b in comp.pairs():
                    assert a == comp.entry


class TestOrdering:
    def test_orders_distinct_and_bounded(self, params5):
        model = get_cluster_model(params5, 1)
        pairs = [(0, 5), (1, 6), (2, 7), (20, 8), (3, 21)]
        orders = list(candidate_orders(pairs, model, max_orders=8))
        assert 1 <= len(orders) <= 8
        assert all(sorted(o) == sorted(pairs) for o in orders)
        as_tuples = [tuple(o) for o in orders]
        assert len(set(as_tuples)) == len(as_tuples)

    def test_first_order_is_natural(self, params5):
        model = get_cluster_model(params5, 1)
        pairs = [(0, 5), (20, 8)]
        first = next(iter(candidate_orders(pairs, model)))
        assert first == pairs

    def test_single_pair(self, params5):
        model = get_cluster_model(params5, 1)
        orders = list(candidate_orders([(0, 5)], model, max_orders=4))
        assert orders == [[(0, 5)]]

    def test_empty_list(self, params5):
        model = get_cluster_model(params5, 1)
        orders = list(candidate_orders([], model, max_orders=4))
        assert orders == [[]]

    def test_distance_heuristic(self, params5):
        model = get_cluster_model(params5, 1)
        # A through-route spans the macro; a pin stub is short.
        far = pair_distance(model, (0, 5))       # WEST -> EAST
        near = pair_distance(model, (20, 21))    # two pins
        assert far > near
